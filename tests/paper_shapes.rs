//! Shape tests: the qualitative findings of the paper's evaluation must
//! hold in the reproduction (who wins, what grows with what). These use
//! shortened runs; the `recobench-bench` binaries regenerate the full
//! tables.

use recobench::core::{Experiment, ExperimentOutcome, RecoveryConfig};
use recobench::faults::FaultType;
use recobench::tpcc::TpccScale;

fn run(config: &str, fault: Option<(FaultType, u64)>, duration: u64, archive: bool) -> ExperimentOutcome {
    let mut b = Experiment::builder(RecoveryConfig::named(config).unwrap())
        .duration_secs(duration)
        .scale(TpccScale::tiny())
        .archive_logs(archive)
        .seed(77);
    if let Some((f, t)) = fault {
        b = b.fault(f, t);
    }
    b.run().expect("valid setup")
}

#[test]
fn fig4_shape_crash_recovery_shrinks_with_checkpoint_frequency() {
    // Rare checkpoints (400 MB files, 20-minute timeout) vs constant
    // checkpoints (1 MB files).
    let slow = run("F400G3T20", Some((FaultType::ShutdownAbort, 120)), 360, false);
    let fast = run("F1G3T1", Some((FaultType::ShutdownAbort, 120)), 360, false);
    let rt_slow = slow.measures.recovery_time_secs.unwrap();
    let rt_fast = fast.measures.recovery_time_secs.unwrap();
    assert!(
        rt_fast < rt_slow,
        "frequent checkpoints must shorten crash recovery: {rt_fast} vs {rt_slow}"
    );
}

#[test]
fn fig4_shape_short_timeout_buys_recovery_even_with_big_files() {
    // The paper: F400G3T1 recovers fast despite huge log files, because
    // the 60 s checkpoint timeout keeps the incremental position fresh.
    let lazy = run("F400G3T20", Some((FaultType::ShutdownAbort, 200)), 440, false);
    let eager = run("F400G3T1", Some((FaultType::ShutdownAbort, 200)), 440, false);
    let rt_lazy = lazy.measures.recovery_time_secs.unwrap();
    let rt_eager = eager.measures.recovery_time_secs.unwrap();
    assert!(
        rt_eager < rt_lazy,
        "checkpoint timeout must bound recovery: eager {rt_eager} vs lazy {rt_lazy}"
    );
}

#[test]
fn fig4_shape_only_high_checkpoint_rates_hurt_throughput() {
    // Needs the standard scale: with a tiny working set the checkpoint
    // bursts are too small to dent throughput.
    let at_scale = |config: &str| {
        Experiment::builder(RecoveryConfig::named(config).unwrap())
            .duration_secs(360)
            .archive_logs(false)
            .seed(77)
            .run()
            .expect("valid setup")
    };
    let base = at_scale("F100G3T20");
    let busy = at_scale("F1G3T1");
    assert!(
        busy.measures.tpmc < base.measures.tpmc,
        "constant checkpointing must cost throughput"
    );
    let drop = (base.measures.tpmc - busy.measures.tpmc) / base.measures.tpmc;
    assert!(
        drop < 0.40,
        "but the cost stays moderate (paper: no severe impact), got {:.0}%",
        drop * 100.0
    );
}

#[test]
fn table5_shape_media_recovery_grows_with_injection_time() {
    let early = run("F10G3T1", Some((FaultType::DeleteDatafile, 60)), 420, true);
    let late = run("F10G3T1", Some((FaultType::DeleteDatafile, 240)), 600, true);
    let rt_early = early.measures.recovery_time_secs.unwrap();
    let rt_late = late.measures.recovery_time_secs.unwrap();
    assert!(
        rt_late > rt_early,
        "more redo since backup means longer media recovery: {rt_late} vs {rt_early}"
    );
}

#[test]
fn table4_shape_small_archive_files_slow_incomplete_recovery() {
    let big = run("F40G3T1", Some((FaultType::DeleteUsersObject, 240)), 900, true);
    let small = run("F1G3T1", Some((FaultType::DeleteUsersObject, 240)), 900, true);
    let rt_big = big.measures.recovery_time_secs.unwrap_or(f64::INFINITY);
    let rt_small = small.measures.recovery_time_secs.unwrap_or(f64::INFINITY);
    assert!(
        rt_small > rt_big,
        "per-archive-file overhead must dominate with 1 MB files: {rt_small} vs {rt_big}"
    );
}

#[test]
fn fig5_shape_archiving_costs_only_moderate_throughput() {
    let off = run("F10G3T5", None, 360, false);
    let on = run("F10G3T5", None, 360, true);
    let drop = (off.measures.tpmc - on.measures.tpmc) / off.measures.tpmc;
    assert!(
        drop < 0.15,
        "archiving must be affordable (paper: always activate it), got {:.1}%",
        drop * 100.0
    );
}

#[test]
fn fig7_shape_standby_loss_grows_with_redo_file_size() {
    let small = Experiment::builder(RecoveryConfig::new(1, 3, 60))
        .duration_secs(420)
        .scale(TpccScale::tiny())
        .standby(true)
        .fault(FaultType::ShutdownAbort, 240)
        .seed(5)
        .run()
        .unwrap();
    let big = Experiment::builder(RecoveryConfig::new(10, 3, 60))
        .duration_secs(420)
        .scale(TpccScale::tiny())
        .standby(true)
        .fault(FaultType::ShutdownAbort, 240)
        .seed(5)
        .run()
        .unwrap();
    assert!(
        big.measures.lost_transactions > small.measures.lost_transactions,
        "bigger unarchived groups must lose more: {} vs {}",
        big.measures.lost_transactions,
        small.measures.lost_transactions
    );
}

#[test]
fn fig6_shape_standby_beats_media_recovery_at_late_injection() {
    let media = run("F1G3T1", Some((FaultType::DeleteDatafile, 240)), 600, true);
    let standby = Experiment::builder(RecoveryConfig::named("F1G3T1").unwrap())
        .duration_secs(600)
        .scale(TpccScale::tiny())
        .standby(true)
        .fault(FaultType::DeleteDatafile, 240)
        .seed(77)
        .run()
        .unwrap();
    let rt_media = media.measures.recovery_time_secs.unwrap();
    let rt_standby = standby.measures.recovery_time_secs.unwrap();
    assert!(
        rt_standby < rt_media,
        "fail-over must beat restore+replay: {rt_standby} vs {rt_media}"
    );
}
