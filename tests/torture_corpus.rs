//! Regression corpus replay: every schedule under `tests/corpus/` runs
//! against the healthy engine on every `cargo test`.
//!
//! The corpus holds minimized fault schedules that once exposed (or were
//! crafted to stress) engine/oracle disagreements — most were harvested
//! with the sabotage self-test (`torture --sabotage N`) and shrunk to one
//! or two faults. On a healthy engine each must replay with zero
//! divergences and a recoverable database; when the torture sweep finds a
//! new divergence, its minimized JSON artifact belongs here once fixed.

use recobench::faults::FaultSchedule;
use recobench::oracle::TortureRunner;

#[test]
fn corpus_schedules_replay_clean() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus directory exists")
        .map(|e| e.expect("readable corpus entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("json"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 3, "the corpus must not be silently empty: {paths:?}");

    let runner = TortureRunner::default();
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("readable schedule");
        let schedule = FaultSchedule::from_json(text.trim())
            .unwrap_or_else(|e| panic!("{}: invalid schedule: {e}", path.display()));
        assert_eq!(
            format!("{}\n", schedule.to_json()),
            text,
            "{}: corpus files are stored in canonical JSON",
            path.display()
        );
        let outcome = runner
            .run(&schedule)
            .unwrap_or_else(|e| panic!("{}: setup failed: {e}", path.display()));
        assert!(
            !outcome.unrecoverable,
            "{}: database must recover; faults: {:?}",
            path.display(),
            outcome.faults
        );
        assert!(
            !outcome.diverged(),
            "{}: healthy engine diverged from the model: {:?}",
            path.display(),
            outcome.divergences
        );
    }
}
