//! Cross-crate integration: every injected fault type runs through a full
//! experiment (engine + TPC-C + injector + harness) and ends with a
//! consistent, serviceable database.

use recobench::core::{Experiment, RecoveryConfig};
use recobench::faults::{FaultType, RecoveryKind};
use recobench::tpcc::TpccScale;

fn run_fault(fault: FaultType) -> recobench::core::ExperimentOutcome {
    Experiment::builder(RecoveryConfig::named("F10G3T5").unwrap())
        .duration_secs(420)
        .scale(TpccScale::tiny())
        .fault(fault, 90)
        .seed(1234)
        .run()
        .expect("experiment setup is valid")
}

#[test]
fn every_fault_type_recovers_with_zero_integrity_violations() {
    for fault in FaultType::all() {
        let out = run_fault(fault);
        assert!(!out.unrecoverable, "{fault}: recovery procedure must succeed");
        assert!(
            out.measures.recovery_time_secs.is_some(),
            "{fault}: service must return within the run"
        );
        assert_eq!(out.measures.integrity_violations, 0, "{fault}: integrity violated");
    }
}

#[test]
fn complete_faults_lose_nothing_incomplete_faults_lose_the_tail() {
    for fault in FaultType::all() {
        let out = run_fault(fault);
        match fault.recovery_kind() {
            RecoveryKind::Complete => {
                assert_eq!(
                    out.measures.lost_transactions, 0,
                    "{fault}: complete recovery must keep all committed work"
                );
            }
            RecoveryKind::Incomplete => {
                assert!(
                    out.measures.lost_transactions > 0,
                    "{fault}: incomplete recovery sacrifices the pre-fault margin"
                );
            }
        }
    }
}

#[test]
fn offline_faults_are_fastest_crash_is_slower_pitr_is_slowest() {
    let ts_offline = run_fault(FaultType::SetTablespaceOffline);
    let crash = run_fault(FaultType::ShutdownAbort);
    let pitr = run_fault(FaultType::DeleteUsersObject);
    let rt = |o: &recobench::core::ExperimentOutcome| o.measures.recovery_time_secs.unwrap();
    assert!(
        rt(&ts_offline) < rt(&crash),
        "tablespace online ({}) should beat crash recovery ({})",
        rt(&ts_offline),
        rt(&crash)
    );
    assert!(
        rt(&crash) < rt(&pitr),
        "crash recovery ({}) should beat whole-database restore + roll-forward ({})",
        rt(&crash),
        rt(&pitr)
    );
}

#[test]
fn breakdown_phases_sum_to_recovery_time_for_every_fault_type() {
    // The tentpole invariant of the observability subsystem: for every
    // recovered cell, the per-phase durations (built from the engine's
    // span events) reproduce the end-user recovery time within one
    // simulator tick (1 µs).
    for fault in FaultType::all() {
        let out = run_fault(fault);
        let b = out.breakdown.unwrap_or_else(|| panic!("{fault}: recovered runs carry a breakdown"));
        let rt_us = (out.measures.recovery_time_secs.unwrap() * 1e6).round() as u64;
        assert!(
            b.total_us().abs_diff(rt_us) <= 1,
            "{fault}: breakdown {}µs vs recovery time {}µs",
            b.total_us(),
            rt_us
        );
        assert!(b.detection_us > 0, "{fault}: operator detection is never instant");
        assert_eq!(b.standby_activation_us, 0, "{fault}: no stand-by in the matrix");
        match fault.recovery_kind() {
            RecoveryKind::Complete => {}
            RecoveryKind::Incomplete => assert!(
                b.media_restore_us > 0,
                "{fault}: PITR restores the whole database from the backup"
            ),
        }
    }
}

#[test]
fn standby_failover_breakdown_is_dominated_by_activation() {
    let out = Experiment::builder(RecoveryConfig::named("F10G3T5").unwrap())
        .duration_secs(420)
        .scale(TpccScale::tiny())
        .standby(true)
        .fault(FaultType::ShutdownAbort, 90)
        .seed(1234)
        .run()
        .expect("experiment setup is valid");
    let b = out.breakdown.expect("failover recovered");
    let rt_us = (out.measures.recovery_time_secs.unwrap() * 1e6).round() as u64;
    assert!(b.total_us().abs_diff(rt_us) <= 1);
    assert!(b.standby_activation_us > 0, "fail-over time is the activation");
    assert_eq!(b.detection_us, 0, "fail-over needs no operator diagnosis");
    assert_eq!(b.media_restore_us, 0, "nothing is restored from backup");
}

#[test]
fn availability_timeline_brackets_the_outage() {
    let out = run_fault(FaultType::ShutdownAbort);
    let tl = &out.timeline;
    let fault_us = 90 * 1_000_000u64;
    let first_err = tl.first_error_us.expect("the crash surfaces as client errors");
    let back = tl.service_return_us.expect("service returns within the run");
    assert!(first_err >= fault_us, "errors start at the fault, not before");
    assert!(back > first_err);
    assert!(tl.zero_seconds() > 0, "the outage blanks whole seconds");
    // The gap between loss and return matches the reported recovery time
    // to within the one-second bucket resolution.
    let gap_secs = (back - first_err) as f64 / 1e6;
    let rt = out.measures.recovery_time_secs.unwrap();
    assert!(
        (gap_secs - rt).abs() < 5.0,
        "timeline gap {gap_secs:.1}s vs recovery time {rt:.1}s"
    );
}

#[test]
fn throughput_survives_a_fault_experiment() {
    let out = run_fault(FaultType::ShutdownAbort);
    assert!(out.measures.tpmc > 100.0, "pre-fault tpmC is healthy: {}", out.measures.tpmc);
    assert!(out.measures.total_commits > 500);
}
