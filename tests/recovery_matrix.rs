//! Cross-crate integration: every injected fault type runs through a full
//! experiment (engine + TPC-C + injector + harness) and ends with a
//! consistent, serviceable database.

use recobench::core::{Experiment, RecoveryConfig};
use recobench::faults::{FaultType, RecoveryKind};
use recobench::tpcc::TpccScale;

fn run_fault(fault: FaultType) -> recobench::core::ExperimentOutcome {
    Experiment::builder(RecoveryConfig::named("F10G3T5").unwrap())
        .duration_secs(420)
        .scale(TpccScale::tiny())
        .fault(fault, 90)
        .seed(1234)
        .run()
        .expect("experiment setup is valid")
}

#[test]
fn every_fault_type_recovers_with_zero_integrity_violations() {
    for fault in FaultType::all() {
        let out = run_fault(fault);
        assert!(!out.unrecoverable, "{fault}: recovery procedure must succeed");
        assert!(
            out.measures.recovery_time_secs.is_some(),
            "{fault}: service must return within the run"
        );
        assert_eq!(out.measures.integrity_violations, 0, "{fault}: integrity violated");
    }
}

#[test]
fn complete_faults_lose_nothing_incomplete_faults_lose_the_tail() {
    for fault in FaultType::all() {
        let out = run_fault(fault);
        match fault.recovery_kind() {
            RecoveryKind::Complete => {
                assert_eq!(
                    out.measures.lost_transactions, 0,
                    "{fault}: complete recovery must keep all committed work"
                );
            }
            RecoveryKind::Incomplete => {
                assert!(
                    out.measures.lost_transactions > 0,
                    "{fault}: incomplete recovery sacrifices the pre-fault margin"
                );
            }
        }
    }
}

#[test]
fn offline_faults_are_fastest_crash_is_slower_pitr_is_slowest() {
    let ts_offline = run_fault(FaultType::SetTablespaceOffline);
    let crash = run_fault(FaultType::ShutdownAbort);
    let pitr = run_fault(FaultType::DeleteUsersObject);
    let rt = |o: &recobench::core::ExperimentOutcome| o.measures.recovery_time_secs.unwrap();
    assert!(
        rt(&ts_offline) < rt(&crash),
        "tablespace online ({}) should beat crash recovery ({})",
        rt(&ts_offline),
        rt(&crash)
    );
    assert!(
        rt(&crash) < rt(&pitr),
        "crash recovery ({}) should beat whole-database restore + roll-forward ({})",
        rt(&crash),
        rt(&pitr)
    );
}

#[test]
fn throughput_survives_a_fault_experiment() {
    let out = run_fault(FaultType::ShutdownAbort);
    assert!(out.measures.tpmc > 100.0, "pre-fault tpmC is healthy: {}", out.measures.tpmc);
    assert!(out.measures.total_commits > 500);
}
