//! Cross-crate ACID checks: the engine's transactional guarantees as seen
//! through the public facade, under crashes and media damage.

use std::sync::Arc;

use recobench::engine::catalog::IndexDef;
use recobench::engine::row::{Row, Value};
use recobench::engine::{DbError, DbServer, DiskLayout, InstanceConfig};
use recobench::sim::SimClock;

fn server() -> DbServer {
    let cfg = InstanceConfig::builder()
        .redo_file_bytes(128 * 1024)
        .redo_groups(3)
        .checkpoint_timeout_secs(60)
        .archive_mode(true)
        .cache_blocks(64)
        .build();
    let mut srv = DbServer::on_fresh_disks("ACID", SimClock::shared(), DiskLayout::four_disk(), cfg);
    srv.create_database().unwrap();
    srv.create_user("app").unwrap();
    srv.create_tablespace("DATA", 2, 512).unwrap();
    srv.create_table(
        "ACCOUNTS",
        "app",
        "DATA",
        vec![IndexDef { name: "PK".into(), cols: vec![0], unique: true, ordered: true }],
    )
    .unwrap();
    srv
}

fn account(id: u64, balance: i64) -> Row {
    Row::new(vec![Value::U64(id), Value::I64(balance)])
}

#[test]
fn atomicity_transfer_is_all_or_nothing_across_crash() {
    let mut srv = server();
    let t = srv.table_id("ACCOUNTS").unwrap();
    let txn = srv.begin().unwrap();
    let a = srv.insert(txn, t, account(1, 100)).unwrap();
    let b = srv.insert(txn, t, account(2, 100)).unwrap();
    srv.commit(txn).unwrap();

    // A transfer that crashes mid-flight must leave both sides intact.
    let txn = srv.begin().unwrap();
    srv.update(txn, t, a, account(1, 0)).unwrap();
    // Force the half-done change into the durable log via an unrelated
    // commit, then crash before the transfer commits.
    let txn2 = srv.begin().unwrap();
    let c = srv.insert(txn2, t, account(3, 7)).unwrap();
    srv.commit(txn2).unwrap();
    srv.shutdown_abort().unwrap();
    srv.startup().unwrap();

    assert_eq!(srv.get_row(t, a).unwrap(), account(1, 100), "in-flight debit rolled back");
    assert_eq!(srv.get_row(t, b).unwrap(), account(2, 100));
    assert_eq!(srv.get_row(t, c).unwrap(), account(3, 7), "committed work survives");
    // Total money is conserved.
    let total: i64 = srv
        .peek_scan(t)
        .unwrap()
        .iter()
        .map(|(_, r)| r.get(1).and_then(Value::as_i64).unwrap())
        .sum();
    assert_eq!(total, 207);
}

#[test]
fn durability_every_acked_commit_survives_repeated_crashes() {
    let mut srv = server();
    let t = srv.table_id("ACCOUNTS").unwrap();
    let mut acked = Vec::new();
    for round in 0..5u64 {
        for i in 0..20u64 {
            let id = round * 100 + i;
            let txn = srv.begin().unwrap();
            srv.insert(txn, t, account(id, id as i64)).unwrap();
            srv.commit(txn).unwrap();
            acked.push(id);
        }
        srv.shutdown_abort().unwrap();
        srv.startup().unwrap();
        for &id in &acked {
            assert_eq!(
                srv.lookup(t, 0, &[Value::U64(id)]).unwrap().len(),
                1,
                "account {id} lost after crash round {round}"
            );
        }
    }
}

#[test]
fn isolation_conflicting_writes_are_rejected() {
    let mut srv = server();
    let t = srv.table_id("ACCOUNTS").unwrap();
    let txn = srv.begin().unwrap();
    let a = srv.insert(txn, t, account(1, 50)).unwrap();
    srv.commit(txn).unwrap();

    let t1 = srv.begin().unwrap();
    srv.update(t1, t, a, account(1, 60)).unwrap();
    let t2 = srv.begin().unwrap();
    let err = srv.update(t2, t, a, account(1, 70)).unwrap_err();
    assert!(matches!(err, DbError::LockConflict { .. }));
    srv.rollback(t2).unwrap();
    srv.commit(t1).unwrap();
    assert_eq!(srv.get_row(t, a).unwrap(), account(1, 60));
}

#[test]
fn media_recovery_reconstructs_committed_state_exactly() {
    let mut srv = server();
    let t = srv.table_id("ACCOUNTS").unwrap();
    for i in 0..40u64 {
        let txn = srv.begin().unwrap();
        srv.insert(txn, t, account(i, 2 * i as i64)).unwrap();
        srv.commit(txn).unwrap();
    }
    srv.take_cold_backup().unwrap();
    for i in 40..80u64 {
        let txn = srv.begin().unwrap();
        srv.insert(txn, t, account(i, 2 * i as i64)).unwrap();
        srv.commit(txn).unwrap();
    }
    let before: Vec<_> = srv.peek_scan(t).unwrap();

    let victim = srv.datafile_paths("DATA").unwrap()[1].clone();
    srv.os_delete_file(&victim).unwrap();
    srv.offline_datafile(&victim).unwrap();
    srv.recover_datafile(&victim).unwrap();

    let after: Vec<_> = srv.peek_scan(t).unwrap();
    assert_eq!(before, after, "restore + redo reproduces the exact committed state");
}

#[test]
fn facade_reexports_are_usable_together() {
    // The whole stack is reachable through the `recobench` facade.
    let clock: Arc<SimClock> = SimClock::shared();
    let _rng = recobench::sim::SimRng::seed_from(1);
    let _cfg = recobench::core::RecoveryConfig::table3();
    let _classes = recobench::faults::FaultClass::all();
    let _scale = recobench::tpcc::TpccScale::tiny();
    drop(clock);
}
