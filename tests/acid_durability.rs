//! Cross-crate ACID checks: the engine's transactional guarantees as seen
//! through the public facade, under crashes and media damage.

use std::sync::Arc;

use recobench::engine::catalog::IndexDef;
use recobench::engine::row::{Row, Value};
use recobench::engine::{DbError, DbServer, DiskLayout, InstanceConfig};
use recobench::sim::SimClock;

fn server() -> DbServer {
    let cfg = InstanceConfig::builder()
        .redo_file_bytes(128 * 1024)
        .redo_groups(3)
        .checkpoint_timeout_secs(60)
        .archive_mode(true)
        .cache_blocks(64)
        .build();
    let mut srv = DbServer::on_fresh_disks("ACID", SimClock::shared(), DiskLayout::four_disk(), cfg);
    srv.create_database().unwrap();
    srv.create_user("app").unwrap();
    srv.create_tablespace("DATA", 2, 512).unwrap();
    srv.create_table(
        "ACCOUNTS",
        "app",
        "DATA",
        vec![IndexDef { name: "PK".into(), cols: vec![0], unique: true, ordered: true }],
    )
    .unwrap();
    srv
}

fn account(id: u64, balance: i64) -> Row {
    Row::new(vec![Value::U64(id), Value::I64(balance)])
}

#[test]
fn atomicity_transfer_is_all_or_nothing_across_crash() {
    let mut srv = server();
    let t = srv.table_id("ACCOUNTS").unwrap();
    let s1 = srv.connect().unwrap();
    let a = srv.insert(s1, t, account(1, 100)).unwrap();
    let b = srv.insert(s1, t, account(2, 100)).unwrap();
    srv.commit(s1).unwrap();

    // A transfer that crashes mid-flight must leave both sides intact.
    srv.update(s1, t, a, account(1, 0)).unwrap();
    // Force the half-done change into the durable log via an unrelated
    // session's commit, then crash before the transfer commits.
    let s2 = srv.connect().unwrap();
    let c = srv.insert(s2, t, account(3, 7)).unwrap();
    srv.commit(s2).unwrap();
    srv.shutdown_abort().unwrap();
    srv.startup().unwrap();

    assert_eq!(srv.get_row(t, a).unwrap(), account(1, 100), "in-flight debit rolled back");
    assert_eq!(srv.get_row(t, b).unwrap(), account(2, 100));
    assert_eq!(srv.get_row(t, c).unwrap(), account(3, 7), "committed work survives");
    // Total money is conserved.
    let total: i64 = srv
        .peek_scan(t)
        .unwrap()
        .iter()
        .map(|(_, r)| r.get(1).and_then(Value::as_i64).unwrap())
        .sum();
    assert_eq!(total, 207);
}

#[test]
fn durability_every_acked_commit_survives_repeated_crashes() {
    let mut srv = server();
    let t = srv.table_id("ACCOUNTS").unwrap();
    let mut acked = Vec::new();
    for round in 0..5u64 {
        for i in 0..20u64 {
            let id = round * 100 + i;
            let s = srv.connect().unwrap();
            srv.insert(s, t, account(id, id as i64)).unwrap();
            srv.commit(s).unwrap();
            srv.disconnect(s);
            acked.push(id);
        }
        srv.shutdown_abort().unwrap();
        srv.startup().unwrap();
        for &id in &acked {
            assert_eq!(
                srv.lookup(t, 0, &[Value::U64(id)]).unwrap().len(),
                1,
                "account {id} lost after crash round {round}"
            );
        }
    }
}

#[test]
fn isolation_conflicting_write_waits_and_rollback_cancels_the_wait() {
    let mut srv = server();
    let t = srv.table_id("ACCOUNTS").unwrap();
    let s1 = srv.connect().unwrap();
    let a = srv.insert(s1, t, account(1, 50)).unwrap();
    srv.commit(s1).unwrap();

    srv.update(s1, t, a, account(1, 60)).unwrap();
    let s2 = srv.connect().unwrap();
    let err = srv.update(s2, t, a, account(1, 70)).unwrap_err();
    let holder = srv.session_txn_id(s1).unwrap();
    assert!(
        matches!(err, DbError::LockWait { holder: h } if h == holder),
        "second writer queues behind the first: {err}"
    );
    // Rolling the waiter back cancels its queued request, so the later
    // commit grants the lock to nobody.
    srv.rollback(s2).unwrap();
    srv.commit(s1).unwrap();
    assert!(srv.take_lock_grants().is_empty(), "cancelled wait must not be granted");
    assert_eq!(srv.get_row(t, a).unwrap(), account(1, 60));
}

#[test]
fn isolation_deadlock_aborts_the_closing_requester_only() {
    let mut srv = server();
    let t = srv.table_id("ACCOUNTS").unwrap();
    let s1 = srv.connect().unwrap();
    let a = srv.insert(s1, t, account(1, 10)).unwrap();
    let b = srv.insert(s1, t, account(2, 20)).unwrap();
    srv.commit(s1).unwrap();

    let s2 = srv.connect().unwrap();
    srv.update(s1, t, a, account(1, 11)).unwrap();
    srv.update(s2, t, b, account(2, 21)).unwrap();
    // s1 queues behind s2 on `b`…
    assert!(matches!(srv.update(s1, t, b, account(2, 22)), Err(DbError::LockWait { .. })));
    // …so s2 asking for `a` closes the cycle and dies as the victim.
    let err = srv.update(s2, t, a, account(1, 12)).unwrap_err();
    let victim = srv.session_txn_id(s2).unwrap();
    match err {
        DbError::Deadlock { victim: v, cycle } => {
            assert_eq!(v, victim, "the requester that closed the cycle is the victim");
            assert!(cycle.contains(&victim));
        }
        other => panic!("expected a deadlock, got {other}"),
    }
    srv.rollback(s2).unwrap();
    // The victim's rollback frees `b`; the survivor is granted its wait
    // and finishes the transfer.
    let grants = srv.take_lock_grants();
    assert_eq!(grants.len(), 1);
    assert_eq!(grants[0].0, s1);
    srv.update(s1, t, b, account(2, 22)).unwrap();
    srv.commit(s1).unwrap();
    assert_eq!(srv.get_row(t, a).unwrap(), account(1, 11));
    assert_eq!(srv.get_row(t, b).unwrap(), account(2, 22));
    let stats = srv.stats();
    assert_eq!(stats.deadlocks, 1);
    assert!(stats.lock_waits >= 1 && stats.lock_grants >= 1);
}

#[test]
fn isolation_vacated_unique_key_blocks_the_reinserter() {
    // An uncommitted delete leaves its unique key out of the index, but
    // the key is not free: rollback would resurrect it. A concurrent
    // insert of the same key must queue behind the deleting transaction
    // and, once the delete commits, succeed on retry.
    let mut srv = server();
    let t = srv.table_id("ACCOUNTS").unwrap();
    let s1 = srv.connect().unwrap();
    let a = srv.insert(s1, t, account(1, 50)).unwrap();
    srv.commit(s1).unwrap();

    srv.delete(s1, t, a).unwrap();
    let s2 = srv.connect().unwrap();
    let holder = srv.session_txn_id(s1).unwrap();
    let err = srv.insert(s2, t, account(1, 99)).unwrap_err();
    assert!(
        matches!(err, DbError::LockWait { holder: h } if h == holder),
        "reinserter queues behind the uncommitted delete: {err}"
    );
    srv.commit(s1).unwrap();
    let grants = srv.take_lock_grants();
    assert_eq!(grants.len(), 1);
    assert_eq!(grants[0].0, s2);
    let b = srv.insert(s2, t, account(1, 99)).unwrap();
    srv.commit(s2).unwrap();
    assert_eq!(srv.get_row(t, b).unwrap(), account(1, 99));

    // The mirror case: if the delete rolls back instead, the retried
    // insert collides with the resurrected row.
    srv.delete(s2, t, b).unwrap();
    assert!(matches!(srv.insert(s1, t, account(1, 7)), Err(DbError::LockWait { .. })));
    srv.rollback(s2).unwrap();
    assert_eq!(srv.take_lock_grants().len(), 1);
    assert!(
        matches!(srv.insert(s1, t, account(1, 7)), Err(DbError::DuplicateKey { .. })),
        "rollback resurrected the key, so the retry must now collide"
    );
    srv.rollback(s1).unwrap();
    srv.disconnect(s1);
    srv.disconnect(s2);
}

#[test]
fn media_recovery_reconstructs_committed_state_exactly() {
    let mut srv = server();
    let t = srv.table_id("ACCOUNTS").unwrap();
    let s = srv.connect().unwrap();
    for i in 0..40u64 {
        srv.insert(s, t, account(i, 2 * i as i64)).unwrap();
        srv.commit(s).unwrap();
    }
    // The cold backup severs every session; reconnect for the tail.
    srv.take_cold_backup().unwrap();
    let s = srv.connect().unwrap();
    for i in 40..80u64 {
        srv.insert(s, t, account(i, 2 * i as i64)).unwrap();
        srv.commit(s).unwrap();
    }
    let before: Vec<_> = srv.peek_scan(t).unwrap();

    let victim = srv.datafile_paths("DATA").unwrap()[1].clone();
    srv.os_delete_file(&victim).unwrap();
    srv.offline_datafile(&victim).unwrap();
    srv.recover_datafile(&victim).unwrap();

    let after: Vec<_> = srv.peek_scan(t).unwrap();
    assert_eq!(before, after, "restore + redo reproduces the exact committed state");
}

#[test]
fn facade_reexports_are_usable_together() {
    // The whole stack is reachable through the `recobench` facade.
    let clock: Arc<SimClock> = SimClock::shared();
    let _rng = recobench::sim::SimRng::seed_from(1);
    let _cfg = recobench::core::RecoveryConfig::table3();
    let _classes = recobench::faults::FaultClass::all();
    let _scale = recobench::tpcc::TpccScale::tiny();
    drop(clock);
}
