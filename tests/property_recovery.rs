//! Property-based tests on the core recovery invariants: whatever random
//! committed workload ran, and whenever the crash hits, recovery restores
//! exactly the acknowledged state.

use proptest::prelude::*;
use recobench::engine::catalog::IndexDef;
use recobench::engine::row::{Row, Value};
use recobench::engine::{DbServer, DiskLayout, InstanceConfig};
use recobench::sim::SimClock;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert { key: u64, val: i64 },
    Update { key: u64, val: i64 },
    Delete { key: u64 },
    Commit,
    Rollback,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..64u64, any::<i64>()).prop_map(|(key, val)| Op::Insert { key, val }),
        3 => (0..64u64, any::<i64>()).prop_map(|(key, val)| Op::Update { key, val }),
        2 => (0..64u64).prop_map(|key| Op::Delete { key }),
        3 => Just(Op::Commit),
        1 => Just(Op::Rollback),
    ]
}

fn server(redo_kb: u64) -> DbServer {
    let cfg = InstanceConfig::builder()
        .redo_file_bytes(redo_kb * 1024)
        .redo_groups(3)
        .checkpoint_timeout_secs(30)
        .archive_mode(true)
        .cache_blocks(32)
        .build();
    let mut srv = DbServer::on_fresh_disks("PROP", SimClock::shared(), DiskLayout::four_disk(), cfg);
    srv.create_database().unwrap();
    srv.create_user("p").unwrap();
    srv.create_tablespace("P", 2, 256).unwrap();
    srv.create_table("KV", "p", "P", vec![IndexDef { name: "PK".into(), cols: vec![0], unique: true, ordered: true }])
        .unwrap();
    srv
}

/// Applies the ops, mirroring committed state into a model map; crashes at
/// the end, recovers, and compares the database to the model.
fn run_model(ops: &[Op], redo_kb: u64, crash: bool) {
    let mut srv = server(redo_kb);
    let t = srv.table_id("KV").unwrap();
    let mut committed: BTreeMap<u64, i64> = BTreeMap::new();
    let mut pending: BTreeMap<u64, Option<i64>> = BTreeMap::new(); // None = deleted
    let s = srv.connect().unwrap();

    let lookup = |srv: &mut DbServer, key: u64| {
        srv.lookup(t, 0, &[Value::U64(key)]).unwrap().first().copied()
    };
    for op in ops {
        match op {
            Op::Insert { key, val } => {
                if lookup(&mut srv, *key).is_none() {
                    srv.insert(s, t, Row::new(vec![Value::U64(*key), Value::I64(*val)])).unwrap();
                    pending.insert(*key, Some(*val));
                }
            }
            Op::Update { key, val } => {
                if let Some(rid) = lookup(&mut srv, *key) {
                    match srv.update(s, t, rid, Row::new(vec![Value::U64(*key), Value::I64(*val)]))
                    {
                        Ok(()) => {
                            pending.insert(*key, Some(*val));
                        }
                        Err(_) => { /* lock conflict impossible single-txn */ }
                    }
                }
            }
            Op::Delete { key } => {
                if let Some(rid) = lookup(&mut srv, *key) {
                    if srv.delete(s, t, rid).is_ok() {
                        pending.insert(*key, None);
                    }
                }
            }
            Op::Commit => {
                srv.commit(s).unwrap();
                for (k, v) in std::mem::take(&mut pending) {
                    match v {
                        Some(v) => {
                            committed.insert(k, v);
                        }
                        None => {
                            committed.remove(&k);
                        }
                    }
                }
            }
            Op::Rollback => {
                srv.rollback(s).unwrap();
                pending.clear();
            }
        }
    }
    // Crash with the final transaction in flight (its changes must vanish).
    if crash {
        srv.shutdown_abort().unwrap();
        srv.startup().unwrap();
    } else {
        srv.rollback(s).unwrap();
        srv.disconnect(s);
    }

    let actual: BTreeMap<u64, i64> = srv
        .peek_scan(t)
        .unwrap()
        .into_iter()
        .map(|(_, row)| {
            (
                row.get(0).and_then(Value::as_u64).unwrap(),
                row.get(1).and_then(Value::as_i64).unwrap(),
            )
        })
        .collect();
    assert_eq!(actual, committed, "recovered state must equal acknowledged state");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn crash_recovery_restores_exactly_the_committed_state(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        redo_kb in 16u64..128,
    ) {
        run_model(&ops, redo_kb, true);
    }

    #[test]
    fn clean_shutdown_free_run_matches_model_too(
        ops in proptest::collection::vec(op_strategy(), 1..80),
    ) {
        run_model(&ops, 64, false);
    }

    #[test]
    fn double_crash_is_idempotent(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        // Run a workload, crash, recover, then crash again immediately:
        // the second recovery must not change anything.
        let mut srv = server(64);
        let t = srv.table_id("KV").unwrap();
        let s = srv.connect().unwrap();
        let mut n = 0u64;
        for op in &ops {
            if let Op::Insert { key, val } = op {
                if srv.lookup(t, 0, &[Value::U64(*key)]).unwrap().is_empty() {
                    srv.insert(s, t, Row::new(vec![Value::U64(*key), Value::I64(*val)])).unwrap();
                    n += 1;
                }
            }
        }
        srv.commit(s).unwrap();
        srv.shutdown_abort().unwrap();
        srv.startup().unwrap();
        let first: Vec<_> = srv.peek_scan(t).unwrap();
        prop_assert_eq!(first.len() as u64, n);
        srv.shutdown_abort().unwrap();
        srv.startup().unwrap();
        let second: Vec<_> = srv.peek_scan(t).unwrap();
        prop_assert_eq!(first, second);
    }
}
