//! Balanced tuning: the paper's closing argument, as a program.
//!
//! The paper's conclusion is that database administrators can pick a
//! configuration with *good recovery at moderate performance cost* — but
//! only an experimental approach reveals which one. This example sweeps a
//! few Table 3 configurations, measures both sides of the trade-off
//! (baseline tpmC, crash-recovery time), and prints a recommendation.
//!
//! ```text
//! cargo run --release --example balanced_tuning
//! ```

use recobench::core::report::Table;
use recobench::core::{Campaign, Experiment, RecoveryConfig};
use recobench::faults::FaultType;

fn main() {
    let candidates = ["F400G3T20", "F100G3T10", "F40G3T10", "F10G3T5", "F10G3T1", "F1G3T1"];
    println!("Sweeping {} recovery configurations (simulated)...", candidates.len());

    // One throughput run and one crash-recovery run per configuration.
    let mut experiments = Vec::new();
    for name in candidates {
        let cfg = RecoveryConfig::named(name).expect("known configuration");
        experiments.push(Experiment::builder(cfg.clone()).duration_secs(420).seed(7).build());
        experiments.push(
            Experiment::builder(cfg)
                .duration_secs(420)
                .fault(FaultType::ShutdownAbort, 240)
                .seed(7)
                .build(),
        );
    }
    let outcomes = Campaign::new(experiments).run().expect_all();

    let mut table = Table::new(vec!["Config", "tpmC", "crash recovery (s)", "perf cost %", "score"])
        .title("Performance vs. recovery balance");
    let best_tpmc =
        outcomes.iter().step_by(2).map(|o| o.measures.tpmc).fold(f64::MIN, f64::max);

    let mut best: Option<(String, f64)> = None;
    for pair in outcomes.chunks(2) {
        let perf = &pair[0];
        let rec = &pair[1];
        let tpmc = perf.measures.tpmc;
        let rt = rec.measures.recovery_time_secs.unwrap_or(f64::INFINITY);
        let cost = 100.0 * (best_tpmc - tpmc) / best_tpmc;
        // A simple balance score: relative throughput minus normalized
        // recovery time (the paper leaves the weighting to the DBA).
        let score = tpmc / best_tpmc - rt / 60.0;
        table.row(vec![
            perf.config_name.clone(),
            format!("{tpmc:.0}"),
            format!("{rt:.0}"),
            format!("{cost:.1}"),
            format!("{score:.2}"),
        ]);
        if best.as_ref().is_none_or(|(_, s)| score > *s) {
            best = Some((perf.config_name.clone(), score));
        }
    }
    println!("{}", table.render());
    let (winner, _) = best.expect("at least one configuration");
    println!(
        "Recommendation: {winner} — frequent checkpoints cut crash recovery to a few\n\
         seconds while costing only a small fraction of peak tpmC. That is the paper's\n\
         point: you can buy recoverability cheaply, but you need measurements to see it."
    );
}
