//! Stand-by database fail-over (paper §5.3), driven by hand.
//!
//! Instead of the packaged [`Experiment`](recobench::core::Experiment)
//! runner, this example wires the pieces together directly — primary
//! server, stand-by server, TPC-C driver, fault — to show the library's
//! lower-level API, then demonstrates the two headline stand-by results:
//! near-constant recovery time, and committed transactions lost from the
//! never-archived current redo group.
//!
//! ```text
//! cargo run --release --example standby_failover
//! ```

use std::sync::Arc;

use recobench::engine::{DbServer, DiskLayout, InstanceConfig, StandbyServer};
use recobench::sim::{SimClock, SimRng, SimTime};
use recobench::tpcc::{create_schema, load_database, DriverConfig, TpccDriver, TpccScale};

fn main() {
    let clock = SimClock::shared();
    let config = InstanceConfig::builder()
        .redo_file_mb(10)
        .redo_groups(3)
        .checkpoint_timeout_secs(60)
        .archive_mode(true)
        .build();

    // Primary: create, load TPC-C, back up.
    let mut primary = DbServer::on_fresh_disks(
        "PRIMARY",
        Arc::clone(&clock),
        DiskLayout::four_disk(),
        config.clone(),
    );
    primary.create_database().expect("fresh disks");
    let schema = create_schema(&mut primary, TpccScale::mini(), 8, 768).expect("schema");
    let mut rng = SimRng::seed_from(99);
    load_database(&mut primary, &schema, &mut rng).expect("load");
    primary.take_cold_backup().expect("backup");

    // Stand-by: instantiated from that backup, kept in managed recovery.
    let mut standby = StandbyServer::instantiate(
        &primary,
        "STANDBY",
        Arc::clone(&clock),
        DiskLayout::four_disk(),
        config,
    )
    .expect("standby from backup");

    // Drive the workload; ship archives continuously.
    let t0 = clock.now();
    let mut driver = TpccDriver::new(schema, DriverConfig::default(), rng.fork(1), t0);
    let crash_at = t0 + recobench::sim::SimDuration::from_secs(300);
    while clock.now() < crash_at {
        driver.step(&mut primary);
        standby.sync(&primary).expect("shipping");
    }
    let committed_before_crash = driver.committed_orders().len();
    println!("t={:7}: primary crashes with {committed_before_crash} acknowledged orders", clock.now());

    // The primary dies; the stand-by takes over.
    let fault_time = clock.now();
    primary.shutdown_abort().expect("crash");
    standby.sync(&primary).ok();
    let ready = standby.activate().expect("failover");
    println!(
        "t={:7}: stand-by activated after {:.1}s (applied seq {} / {} shipped archives)",
        clock.now(),
        ready.saturating_since(fault_time).as_secs_f64(),
        standby.applied_seq(),
        standby.archives_shipped,
    );

    // Clients reconnect to the stand-by and keep working.
    let until = clock.now() + recobench::sim::SimDuration::from_secs(60);
    while clock.now() < until {
        driver.step(standby.server_mut());
    }
    let restored: SimTime = driver.first_success_after(ready).expect("service restored");
    let lost = driver.audit_lost_orders(standby.server()).expect("auditable");
    println!(
        "t={:7}: service restored (end-user recovery time {:.1}s)",
        restored,
        restored.saturating_since(fault_time).as_secs_f64()
    );
    println!(
        "Lost committed orders: {lost} — these sat in the primary's current online\n\
         redo group, which was never archived. Shrinking the redo files shrinks the\n\
         loss window (the paper's Figure 7)."
    );
}
