//! Quickstart: one dependability-benchmark experiment, end to end.
//!
//! Runs a TPC-C workload on the simulated DBMS configured as `F10G3T5`
//! (10 MB redo logs, 3 groups, 300 s checkpoint timeout, ARCHIVELOG on),
//! injects a `SHUTDOWN ABORT` operator fault 150 seconds in, lets the
//! recovery procedure run, and prints the paper's measures.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use recobench::core::{Experiment, RecoveryConfig};
use recobench::faults::FaultType;

fn main() {
    let config = RecoveryConfig::named("F10G3T5").expect("known Table 3 configuration");
    println!("Running TPC-C + shutdown-abort on {config} (this is all simulated time)...");

    let outcome = Experiment::builder(config)
        .fault(FaultType::ShutdownAbort, 150)
        .duration_secs(600)
        .seed(42)
        .run()
        .expect("experiment setup is valid");

    let m = &outcome.measures;
    println!();
    println!("Configuration        : {}", outcome.config_name);
    println!("Fault                : {:?} at t+{}s", outcome.fault.unwrap(), outcome.trigger_secs.unwrap());
    println!("Throughput (tpmC)    : {:.0}", m.tpmc);
    println!("Recovery time        : {} s (end-user view)", m.recovery_cell(600));
    println!("Lost transactions    : {}", m.lost_transactions);
    println!("Integrity violations : {}", m.integrity_violations);
    println!("Client errors seen   : {}", m.client_errors);
    println!("Redo generated       : {:.1} MB over {} commits", m.redo_mb, m.total_commits);
    println!();
    println!(
        "A shutdown abort needs only crash recovery: no committed work is lost and \
         the TPC-C consistency conditions all hold."
    );
}
