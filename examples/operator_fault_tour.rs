//! A tour of the six injected operator faults (paper §4).
//!
//! Runs one short experiment per fault type on the same configuration and
//! prints how each one hurts and how the DBMS recovers — including the
//! complete/incomplete recovery split that structures the paper's
//! Tables 4 and 5.
//!
//! ```text
//! cargo run --release --example operator_fault_tour
//! ```

use recobench::core::report::Table;
use recobench::core::{Campaign, Experiment, RecoveryConfig};
use recobench::faults::{FaultType, RecoveryKind};

fn main() {
    let config = RecoveryConfig::named("F10G3T5").expect("known configuration");
    println!("Injecting all six operator fault types on {config}...");

    let experiments = FaultType::all()
        .iter()
        .map(|&fault| {
            Experiment::builder(config.clone())
                .duration_secs(540)
                .fault(fault, 120)
                .seed(11)
                .build()
        })
        .collect();
    let outcomes = Campaign::new(experiments).run().expect_all();

    let mut table = Table::new(vec![
        "Fault",
        "Recovery kind",
        "Recovery time (s)",
        "Lost txns",
        "Integrity",
        "Redo re-applied",
    ])
    .title("The six injected operator faults on F10G3T5 (fault at t+120 s)");
    for (fault, o) in FaultType::all().iter().zip(&outcomes) {
        table.row(vec![
            fault.to_string(),
            match fault.recovery_kind() {
                RecoveryKind::Complete => "complete".into(),
                RecoveryKind::Incomplete => "incomplete".into(),
            },
            o.measures.recovery_cell(420),
            o.measures.lost_transactions.to_string(),
            o.measures.integrity_violations.to_string(),
            o.recovery_records_applied.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Complete recovery (crash/media/offline) loses nothing; the two faults that\n\
         are themselves committed operations (dropping a table or tablespace) force\n\
         point-in-time recovery, which sacrifices the moments before the mistake —\n\
         and still never violates a TPC-C consistency condition."
    );
}
