//! A hand-rolled Rust lexer: the token layer under tidy's item parser
//! and call graph.
//!
//! The workspace is offline/vendored, so no syn/proc-macro2 — and none is
//! needed: tidy's analyses are about *this* repo's idioms, not arbitrary
//! Rust. The lexer produces a flat token stream with line numbers;
//! comments are dropped (waiver markers are parsed line-wise by
//! [`crate::source`]), string/char literals become single tokens so no
//! pattern lint can fire on quoted text, and raw strings (`r#"…"#`) are
//! handled so multi-line literals cannot desynchronize the stream.

/// What a token is, coarsely — fine distinctions (keyword vs identifier)
/// are left to the consumer, which has the text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `foo`, `SimFs`, `r#type`).
    Ident,
    /// Single punctuation character (`.`, `(`, `{`, `<`, `!`, …).
    Punct,
    /// String literal (`"…"`, `r#"…"#`, `b"…"`), content dropped.
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (`42`, `1.5e3`, `0xB1`, `4_096u64`).
    Num,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Coarse kind.
    pub kind: TokKind,
    /// The token text (empty for [`TokKind::Str`] — contents are never
    /// meaningful to a lint and dropping them keeps the stream small).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// Lexes `text` into a token stream. Never fails: unterminated constructs
/// simply run to end-of-file (tidy lints a tree that rustc compiles, so
/// malformed input only occurs in fixtures, where best-effort is fine).
pub fn lex(text: &str) -> Vec<Tok> {
    let b = text.as_bytes();
    let mut toks = Vec::with_capacity(text.len() / 4);
    let mut i = 0usize;
    let mut line = 1usize;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                // Line comment: consume to end of line.
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Block comment, nested.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if raw_string_hashes(b, i).is_some() => {
                // Raw string r"…", r#"…"#, br#"…"# — find the matching
                // closing quote + hashes.
                let (start, hashes) = raw_string_hashes(b, i).unwrap_or((i + 1, 0));
                let tok_line = line;
                i = start + 1; // past the opening quote
                'raw: while i < b.len() {
                    if b[i] == b'\n' {
                        line += 1;
                    } else if b[i] == b'"' {
                        let mut ok = true;
                        for k in 0..hashes {
                            if b.get(i + 1 + k) != Some(&b'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            i += 1 + hashes;
                            break 'raw;
                        }
                    }
                    i += 1;
                }
                toks.push(Tok { kind: TokKind::Str, text: String::new(), line: tok_line });
            }
            b'"' => {
                let tok_line = line;
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                toks.push(Tok { kind: TokKind::Str, text: String::new(), line: tok_line });
            }
            b'\'' => {
                // Char literal vs lifetime: a lifetime is `'ident` with no
                // closing quote right after one character.
                let is_char = matches!(
                    (b.get(i + 1), b.get(i + 2)),
                    (Some(b'\\'), _) | (Some(_), Some(b'\''))
                );
                if is_char {
                    let tok_line = line;
                    i += 1;
                    if b.get(i) == Some(&b'\\') {
                        i += 2;
                    } else {
                        i += 1;
                    }
                    // Consume to the closing quote (handles b'\x7f').
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                    toks.push(Tok { kind: TokKind::Char, text: String::new(), line: tok_line });
                } else {
                    let start = i + 1;
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric()
                        || b[i] == b'_'
                        || (b[i] == b'.'
                            && b.get(i + 1).is_some_and(u8::is_ascii_digit)
                            && b.get(i.wrapping_sub(1)) != Some(&b'.')))
                {
                    // `1.5` stays one number; `0..n` stops before `..`.
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                    line,
                });
            }
            _ => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// If `b[i]` starts a raw-string prefix (`r`, `br`, `rb` + hashes +
/// quote), returns (index of the opening quote, hash count).
fn raw_string_hashes(b: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if b.get(j) == Some(&b'b') {
        j += 1;
    }
    if b.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) == Some(&b'"') {
        Some((j, hashes))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn lexes_idents_puncts_numbers() {
        let toks = lex("fn f(x: u64) -> bool { x < 10 }");
        let names: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.as_str()).collect();
        assert_eq!(names, vec!["fn", "f", "x", "u64", "bool", "x"]);
        assert!(toks.iter().any(|t| t.kind == TokKind::Num && t.text == "10"));
    }

    #[test]
    fn drops_comments_and_string_bodies() {
        let toks = kinds("a /* b /* c */ d */ e // f\n\"HashMap\" g");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, vec!["a", "e", "g"]);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_do_not_desync_lines() {
        let src = "let a = r#\"multi\nline \" quote\"#;\nlet b = 1;";
        let toks = lex(src);
        let b_tok = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn chars_vs_lifetimes() {
        let toks = lex("let c: char = 'x'; fn f<'a>(s: &'a str) {} let e = '\\n';");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
    }

    #[test]
    fn numeric_ranges_split_correctly() {
        let toks = lex("for i in 0..xs.len() { let f = 1.5e3; }");
        assert!(toks.iter().any(|t| t.kind == TokKind::Num && t.text == "0"));
        assert!(toks.iter().any(|t| t.kind == TokKind::Num && t.text == "1.5e3"));
        // The two dots of `..` survive as puncts.
        assert!(toks.windows(2).any(|w| w[0].is_punct('.') && w[1].is_punct('.')));
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
