//! Loaded files with the per-line analysis every lint shares: comment
//! stripping, `#[cfg(test)]` region detection, attribute-gated region
//! detection, and `tidy-allow` waiver parsing.

use std::path::{Path, PathBuf};

/// One parsed `// tidy-allow(<lint>): <reason>` waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the waiver sits on; it covers this line and the next.
    pub line: usize,
    /// Lint name inside the parentheses.
    pub lint: String,
    /// Justification after the colon (must be non-empty).
    pub reason: String,
}

/// A workspace file plus the shared per-line analysis.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Absolute path.
    pub abs: PathBuf,
    /// Raw lines, 0-indexed (diagnostics add 1).
    pub lines: Vec<String>,
    /// Lines with line comments and string-literal contents blanked, so
    /// pattern lints never fire on prose or quoted text.
    pub code: Vec<String>,
    /// Parsed waivers.
    pub allows: Vec<Allow>,
    /// 1-based inclusive line ranges covered by a `#[cfg(test)] mod`.
    test_regions: Vec<(usize, usize)>,
    /// 1-based inclusive ranges gated by `#[cfg(any(test, feature = "sabotage"))]`.
    sabotage_regions: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Loads and analyzes one file.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be read.
    pub fn load(root: &Path, path: &Path) -> Result<SourceFile, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        let code: Vec<String> = lines.iter().map(|l| strip_noncode(l)).collect();
        let allows = parse_allows(&lines, &code);
        let test_regions = attribute_regions(&lines, &code, |attr| {
            attr.contains("#[cfg(test)]")
        });
        let sabotage_regions = attribute_regions(&lines, &code, |attr| {
            attr.contains("cfg(any(test, feature = \"sabotage\"))")
        });
        Ok(SourceFile { rel, abs: path.to_path_buf(), lines, code, allows, test_regions, sabotage_regions })
    }

    /// Whether 1-based `line` is inside a `#[cfg(test)]`-gated region.
    pub fn in_test_region(&self, line: usize) -> bool {
        self.test_regions.iter().any(|&(a, b)| (a..=b).contains(&line))
    }

    /// Whether 1-based `line` is gated by
    /// `cfg(any(test, feature = "sabotage"))`.
    pub fn in_sabotage_region(&self, line: usize) -> bool {
        self.sabotage_regions.iter().any(|&(a, b)| (a..=b).contains(&line))
    }

    /// Whether this is a Rust source file.
    pub fn is_rust(&self) -> bool {
        self.rel.ends_with(".rs")
    }

    /// The file's full text (lossless enough for whole-file parses —
    /// trailing newline normalization does not matter to any lint).
    pub fn text(&self) -> String {
        self.lines.join("\n")
    }
}

/// Blanks string-literal contents and strips `//` line comments, keeping
/// byte offsets of the surviving code intact. Tidy's pattern lints run on
/// the result so neither comments nor user-visible strings trigger them.
/// (Raw/multi-line strings are not tracked; the repo style keeps literals
/// on one line, and a miss only risks a false positive that a waiver can
/// document.)
fn strip_noncode(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    let mut in_char = false;
    while let Some(c) = chars.next() {
        if in_str {
            if c == '\\' {
                chars.next();
                out.push_str("__");
            } else if c == '"' {
                in_str = false;
                out.push('"');
            } else {
                out.push('_');
            }
        } else if in_char {
            if c == '\\' {
                chars.next();
                out.push_str("__");
            } else if c == '\'' {
                in_char = false;
                out.push('\'');
            } else {
                out.push('_');
            }
        } else {
            match c {
                '"' => {
                    in_str = true;
                    out.push('"');
                }
                // A lifetime tick (`'a`) is followed by an identifier and
                // no closing quote nearby; treat `'` as a char literal
                // only when one or two chars later a `'` closes it.
                '\'' => {
                    let rest: String = chars.clone().take(3).collect();
                    let closes = rest.char_indices().any(|(i, r)| r == '\'' && i <= 2);
                    if closes {
                        in_char = true;
                    }
                    out.push('\'');
                }
                '/' if chars.peek() == Some(&'/') => break,
                _ => out.push(c),
            }
        }
    }
    out
}

/// Parses every `// tidy-allow(<lint>): <reason>` in the file. A waiver
/// with an empty reason is deliberately not parsed — it then suppresses
/// nothing and the un-suppressed violation keeps the tree red until a
/// justification is written. Lint names must be kebab-case identifiers,
/// so prose placeholders like the one in this doc comment never parse,
/// and the marker must sit in the comment tail of the line (past where
/// `strip_noncode` truncated it), not inside a string literal.
fn parse_allows(lines: &[String], code: &[String]) -> Vec<Allow> {
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let Some(pos) = line.find("tidy-allow(") else { continue };
        if pos < code[i].len() {
            continue; // inside a (blanked) string literal, not a comment
        }
        let rest = &line[pos + "tidy-allow(".len()..];
        let Some(close) = rest.find(')') else { continue };
        let lint = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_start();
        let Some(reason) = after.strip_prefix(':') else { continue };
        let reason = reason.trim();
        let valid_name = !lint.is_empty()
            && lint.chars().next().is_some_and(|c| c.is_ascii_lowercase())
            && lint.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-');
        if !valid_name || reason.is_empty() {
            continue;
        }
        out.push(Allow { line: i + 1, lint, reason: reason.to_string() });
    }
    out
}

/// Given comment/string-stripped lines and a 0-based line on or after
/// which an item's `{` opens, returns the 0-based line of the matching
/// `}` (or the last line if unbalanced).
pub fn brace_region(code: &[String], start: usize) -> usize {
    let mut depth: i64 = 0;
    let mut opened = false;
    for (k, c) in code.iter().enumerate().skip(start) {
        for ch in c.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if opened && depth <= 0 {
            return k;
        }
    }
    code.len().saturating_sub(1)
}

/// Finds the 1-based inclusive line ranges of items gated by an attribute
/// matching `pred`. The region starts at the first code line after the
/// attribute (skipping further attributes and comments) and runs to the
/// end of that item: the matching close of its first brace, or the single
/// logical line for brace-less items (struct fields, literal fields).
fn attribute_regions(
    lines: &[String],
    code: &[String],
    pred: impl Fn(&str) -> bool,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if line.trim_start().starts_with("//") || !pred(line) {
            continue;
        }
        // Find the first following line that is code (not attr/comment).
        let mut j = i + 1;
        while j < lines.len() {
            let t = lines[j].trim_start();
            if t.is_empty() || t.starts_with("#[") || t.starts_with("//") {
                j += 1;
            } else {
                break;
            }
        }
        if j >= lines.len() {
            continue;
        }
        // Brace-track from line j until depth returns to zero. If the
        // item never opens a brace, the region is the lines up to the
        // first one ending in `,` or `;`.
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut end = j;
        for (k, c) in code.iter().enumerate().skip(j) {
            for ch in c.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            end = k;
            let t = c.trim_end();
            if opened && depth <= 0 {
                break;
            }
            if !opened && (t.ends_with(',') || t.ends_with(';')) {
                break;
            }
        }
        out.push((j + 1, end + 1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(src: &str) -> Vec<String> {
        src.lines().map(str::to_string).collect()
    }

    #[test]
    fn strips_comments_and_string_bodies() {
        assert_eq!(strip_noncode("let x = 1; // HashMap here"), "let x = 1; ");
        assert_eq!(strip_noncode("let s = \"Instant::now\";"), "let s = \"____________\";");
        assert_eq!(strip_noncode("let c = 'x'; let l: &'a str;"), "let c = '_'; let l: &'a str;");
        assert_eq!(strip_noncode("url(\"https://x\") // tail"), "url(\"_________\") ");
    }

    #[test]
    fn parses_allows_and_rejects_empty_reasons() {
        // The marker is built by concatenation so tidy, run over its own
        // sources, never mistakes this test data for real waivers.
        let m = format!("tidy-{}", "allow");
        let ls = lines(&format!(
            "foo(); // {m}(determinism): bench-only timer\n\
             bar(); // {m}(panic-freedom):\n\
             // {m}(ordered-serialization): scratch map, drained sorted\n\
             // {m}(<lint>): placeholder names never parse\n\
             let s = \"// {m}(determinism): inside a string literal\";",
        ));
        let code: Vec<String> = ls.iter().map(|l| strip_noncode(l)).collect();
        let allows = parse_allows(&ls, &code);
        assert_eq!(allows.len(), 2);
        assert_eq!(allows[0], Allow { line: 1, lint: "determinism".into(), reason: "bench-only timer".into() });
        assert_eq!(allows[1].line, 3);
    }

    #[test]
    fn finds_cfg_test_module_region() {
        let src = "\
fn real() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); }
}
fn after() {}";
        let ls = lines(src);
        let code: Vec<String> = ls.iter().map(|l| strip_noncode(l)).collect();
        let regions = attribute_regions(&ls, &code, |a| a.contains("#[cfg(test)]"));
        assert_eq!(regions, vec![(3, 6)]);
    }

    #[test]
    fn braceless_item_region_is_one_logical_line() {
        let src = "\
struct S {
    #[cfg(any(test, feature = \"sabotage\"))]
    pub sabotage_skip_redo: u32,
    pub other: u32,
}";
        let ls = lines(src);
        let code: Vec<String> = ls.iter().map(|l| strip_noncode(l)).collect();
        let regions =
            attribute_regions(&ls, &code, |a| a.contains("cfg(any(test, feature = \"sabotage\"))"));
        assert_eq!(regions, vec![(3, 3)]);
    }

    #[test]
    fn gated_statement_region_spans_its_braces() {
        let src = "\
fn f(&mut self) {
    #[cfg(any(test, feature = \"sabotage\"))]
    if self.sabotage_skip_redo > 0 {
        self.sabotage_skip_redo -= 1;
        return;
    }
    work();
}";
        let ls = lines(src);
        let code: Vec<String> = ls.iter().map(|l| strip_noncode(l)).collect();
        let regions =
            attribute_regions(&ls, &code, |a| a.contains("cfg(any(test, feature = \"sabotage\"))"));
        assert_eq!(regions, vec![(3, 6)]);
    }
}
