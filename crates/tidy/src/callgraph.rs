//! The workspace model: every parsed file, a global function table, an
//! approximate intra-workspace call graph, and the shared dataflow-lite
//! pass (local type environments from parameter types, struct fields,
//! type aliases and `let` chains) that the v2 lints build on.
//!
//! ## Known approximations (also documented in DESIGN.md §12)
//!
//! * **Name-based resolution.** `self.m(…)` resolves through the
//!   enclosing `impl` type; `recv.m(…)` resolves through the receiver's
//!   inferred type when the dataflow-lite pass can infer one, and
//!   otherwise falls back to "the one workspace method with that name" —
//!   unless the name is a common `std` method (`insert`, `push`, …),
//!   where guessing would wire the graph to the wrong crate.
//! * **No trait-object dispatch.** A call through `dyn Trait` resolves to
//!   nothing; lints over-approximate by walking all inherent impls only.
//! * **Closures inline.** A closure body belongs to its enclosing fn;
//!   calls inside it are edges of that fn (sound for reachability).
//! * **Type inference is first-ident-deep.** `DbResult<&mut Instance>`
//!   infers `Instance`; tuples infer their first named type. Wrong
//!   inferences degrade to *unresolved*, never to a wrong edge, except
//!   where two workspace types share a uniquely-named method.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::{FileItems, FnItem};
use crate::lex::{Tok, TokKind};

/// Smart-pointer-ish wrappers skipped when inferring the interesting type
/// inside a type expression.
const WRAPPERS: &[&str] =
    &["Arc", "Mutex", "RwLock", "MutexGuard", "Box", "Rc", "RefCell", "Cell", "Pin", "Vec"];

/// Result-ish wrappers additionally skipped when inferring what a call
/// *yields* (the `Ok` payload is what flows onward).
const RET_WRAPPERS: &[&str] = &["DbResult", "VfsResult", "Result", "Option"];

/// Methods that yield the same interesting type they were called on
/// (lock/borrow/clone adapters), letting chains like
/// `self.fs.lock().append_padded(…)` resolve.
const TYPE_PRESERVING: &[&str] =
    &["lock", "clone", "as_ref", "as_mut", "borrow", "borrow_mut", "unwrap", "expect"];

/// Method names too common in `std` to resolve by workspace-wide
/// uniqueness alone — a `.insert(` on a `BTreeMap` must not become an
/// edge to `Index::insert`.
const COMMON_STD_METHODS: &[&str] = &[
    "insert", "remove", "get", "get_mut", "push", "pop", "len", "is_empty", "clear", "contains",
    "contains_key", "iter", "iter_mut", "into_iter", "next", "next_back", "clone", "to_string",
    "map", "and_then", "filter", "find", "any", "all", "ok_or", "ok_or_else", "unwrap_or",
    "unwrap_or_else", "unwrap_or_default", "extend", "truncate", "drain", "entry", "keys",
    "values", "take", "split_at", "sort", "sort_by", "min", "max", "count", "sum", "rev", "new",
    "append", "write", "read", "flush", "send", "join", "name", "kind", "fmt", "eq", "cmp",
];

/// Keywords that terminate a backward receiver-chain walk.
const EXPR_KEYWORDS: &[&str] = &[
    "match", "if", "while", "return", "let", "in", "else", "for", "loop", "move", "break",
    "continue", "await", "mut", "ref", "as", "where", "impl", "dyn", "fn", "use", "pub",
];

/// How a call site was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallStyle {
    /// `name(…)`
    Free,
    /// `recv.name(…)`
    Method,
    /// `path::name(…)`
    Path,
}

/// One call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Token index of the callee name (within the file's token stream).
    pub tok: usize,
    /// 1-based source line.
    pub line: usize,
    /// Callee name as written.
    pub name: String,
    /// Inferred receiver type for method calls, when the dataflow-lite
    /// pass could resolve one.
    pub recv_type: Option<String>,
    /// Syntactic style.
    pub style: CallStyle,
    /// Resolved target fn indexes (possibly several same-name free fns;
    /// empty when unresolved or external).
    pub targets: Vec<usize>,
}

/// One fn in the global table.
#[derive(Debug)]
pub struct FnNode {
    /// Index into [`Model::files`].
    pub file: usize,
    /// The parsed item.
    pub item: FnItem,
}

/// One parsed file.
pub struct FileModel {
    /// Workspace-relative path.
    pub rel: String,
    /// Parsed items + token stream.
    pub items: FileItems,
}

/// The whole-workspace model.
pub struct Model {
    /// Parsed files, in workspace order.
    pub files: Vec<FileModel>,
    /// Global fn table.
    pub fns: Vec<FnNode>,
    /// Call sites per fn (indexed like [`Model::fns`]).
    pub sites: Vec<Vec<CallSite>>,
    /// Adjacency: callee fn indexes per fn.
    pub edges: Vec<Vec<usize>>,
    /// `(type, field)` → inferred field type.
    fields: BTreeMap<(String, String), String>,
    /// Type alias → inferred target type.
    aliases: BTreeMap<String, String>,
    /// `(impl type, method)` → fn indexes.
    methods: BTreeMap<(String, String), Vec<usize>>,
    /// Method name → fn indexes (all impls).
    methods_by_name: BTreeMap<String, Vec<usize>>,
    /// Free-fn name → fn indexes.
    free_by_name: BTreeMap<String, Vec<usize>>,
}

impl Model {
    /// Builds the model from parsed files.
    pub fn build(files: Vec<FileModel>) -> Model {
        let mut fns = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            for item in &f.items.fns {
                fns.push(FnNode { file: fi, item: item.clone() });
            }
        }
        let mut fields = BTreeMap::new();
        let mut aliases = BTreeMap::new();
        for f in &files {
            for s in &f.items.structs {
                for (fname, fty) in &s.fields {
                    if let Some(t) = first_type_ident(fty, WRAPPERS) {
                        fields.insert((s.name.clone(), fname.clone()), t);
                    }
                }
            }
            for a in &f.items.aliases {
                if let Some(t) = first_type_ident(&a.target, WRAPPERS) {
                    aliases.insert(a.name.clone(), t);
                }
            }
        }
        let mut methods: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            match &f.item.impl_type {
                Some(t) => {
                    methods.entry((t.clone(), f.item.name.clone())).or_default().push(i);
                    methods_by_name.entry(f.item.name.clone()).or_default().push(i);
                }
                None => free_by_name.entry(f.item.name.clone()).or_default().push(i),
            }
        }
        let mut model = Model {
            files,
            fns,
            sites: Vec::new(),
            edges: Vec::new(),
            fields,
            aliases,
            methods,
            methods_by_name,
            free_by_name,
        };
        for i in 0..model.fns.len() {
            let sites = model.extract_sites(i);
            model.edges.push(sites.iter().flat_map(|s| s.targets.iter().copied()).collect());
            model.sites.push(sites);
        }
        model
    }

    /// Total call-graph edge count (for the runtime report).
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// The token stream of the file a fn lives in.
    pub fn toks_of(&self, fn_idx: usize) -> &[Tok] {
        &self.files[self.fns[fn_idx].file].items.toks
    }

    /// Workspace-relative path of the file a fn lives in.
    pub fn rel_of(&self, fn_idx: usize) -> &str {
        &self.files[self.fns[fn_idx].file].rel
    }

    /// `Type::name` / `name` display form.
    pub fn display_name(&self, fn_idx: usize) -> String {
        let f = &self.fns[fn_idx];
        match &f.item.impl_type {
            Some(t) => format!("{t}::{}", f.item.name),
            None => f.item.name.clone(),
        }
    }

    /// Fn indexes whose `// tidy-entry(<role>)` marker names `role`.
    pub fn entries(&self, role: &str) -> Vec<usize> {
        (0..self.fns.len())
            .filter(|&i| self.fns[i].item.entry_roles.iter().any(|r| r == role))
            .collect()
    }

    /// BFS over the call graph from `roots`; the map's value is the
    /// parent fn each node was first reached from (roots map to
    /// themselves), which [`Model::trace`] turns into a call path.
    pub fn reachable(&self, roots: &[usize]) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &r in roots {
            if parent.insert(r, r).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &m in &self.edges[n] {
                if self.fns[m].item.is_test {
                    continue;
                }
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(m) {
                    e.insert(n);
                    queue.push_back(m);
                }
            }
        }
        parent
    }

    /// Renders the call path `entry → … → target` from a reachability map.
    pub fn trace(&self, parent: &BTreeMap<usize, usize>, target: usize) -> String {
        let mut path = vec![target];
        let mut cur = target;
        while let Some(&p) = parent.get(&cur) {
            if p == cur {
                break;
            }
            path.push(p);
            cur = p;
        }
        path.reverse();
        path.iter().map(|&i| self.display_name(i)).collect::<Vec<_>>().join(" → ")
    }

    /// Whether a fn's return type carries one of the repo's error types
    /// (`DbResult`, `VfsResult`, or a `Result`/`Option` naming `DbError` /
    /// `VfsError` / `RecoveryError`).
    pub fn returns_fallible(&self, fn_idx: usize) -> bool {
        ret_is_fallible(&self.fns[fn_idx].item.ret)
    }

    /// Resolves what `name` means in `file` through its `use`
    /// declarations, following one level of workspace `pub use`
    /// re-exports. Returns the full path when an import exists.
    pub fn resolve_use(&self, file: usize, name: &str) -> Option<String> {
        let u = self.files[file].items.uses.iter().find(|u| u.binding == name)?;
        // One level of re-export chasing: `use crate::x::Y` where some
        // workspace file declares `pub use std::…::Z as Y`.
        let leaf = u.path.rsplit("::").next().unwrap_or(&u.path);
        for f in &self.files {
            for ru in &f.items.uses {
                if ru.is_pub && ru.binding == leaf && ru.path != u.path {
                    return Some(ru.path.clone());
                }
            }
        }
        Some(u.path.clone())
    }

    /// The local type environment of a fn: parameter names (and `self`)
    /// plus simple `let name = chain;` bindings, mapped to inferred types.
    pub fn type_env(&self, fn_idx: usize) -> BTreeMap<String, String> {
        let node = &self.fns[fn_idx];
        let mut env = BTreeMap::new();
        for (pname, pty) in &node.item.params {
            let ty = if pname == "self" {
                Some(pty.clone()).filter(|t| !t.is_empty())
            } else {
                first_type_ident(pty, WRAPPERS).map(|t| self.dealias(&t))
            };
            if let Some(t) = ty {
                env.insert(pname.clone(), self.dealias(&t));
            }
        }
        let toks = self.toks_of(fn_idx);
        let body = node.item.body.clone();
        let mut j = body.start;
        while j < body.end {
            if toks[j].is_ident("let")
                && toks
                    .get(j + 1)
                    .is_some_and(|t| t.kind == TokKind::Ident && !t.is_ident("mut"))
                && toks.get(j + 2).is_some_and(|t| t.is_punct('='))
            {
                let name = toks[j + 1].text.clone();
                if let Some(ty) = self.eval_chain(toks, j + 3, body.end, &env) {
                    env.insert(name, ty);
                }
            } else if toks[j].is_ident("let")
                && toks.get(j + 1).is_some_and(|t| t.is_ident("mut"))
                && toks.get(j + 2).is_some_and(|t| t.kind == TokKind::Ident)
                && toks.get(j + 3).is_some_and(|t| t.is_punct('='))
            {
                let name = toks[j + 2].text.clone();
                if let Some(ty) = self.eval_chain(toks, j + 4, body.end, &env) {
                    env.insert(name, ty);
                }
            }
            j += 1;
        }
        env
    }

    fn dealias(&self, t: &str) -> String {
        self.aliases.get(t).cloned().unwrap_or_else(|| t.to_string())
    }

    /// Evaluates the type a postfix chain starting at `toks[start]`
    /// yields: `self.fs.lock()` → `SimFs`, `self.inst_mut()?` →
    /// `Instance`. `None` when inference gives out.
    fn eval_chain(
        &self,
        toks: &[Tok],
        start: usize,
        end: usize,
        env: &BTreeMap<String, String>,
    ) -> Option<String> {
        let mut j = start;
        while j < end && (toks[j].is_punct('&') || toks[j].is_ident("mut") || toks[j].is_punct('*'))
        {
            j += 1;
        }
        let head = toks.get(j)?;
        if head.kind != TokKind::Ident {
            return None;
        }
        let mut cur: String;
        if head.text == "self" {
            cur = env.get("self")?.clone();
            j += 1;
        } else if head.text == "Arc"
            && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(j + 3).is_some_and(|t| t.is_ident("clone"))
        {
            // `Arc::clone(&expr)` yields expr's type.
            let open = j + 4;
            if !toks.get(open).is_some_and(|t| t.is_punct('(')) {
                return None;
            }
            let close = match_group(toks, open)?;
            cur = self.eval_chain(toks, open + 1, close, env)?;
            j = close + 1;
        } else if head.text.chars().next().is_some_and(char::is_uppercase)
            && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
        {
            // `Type::assoc(…)` — yields the method's inner return type,
            // or the type itself for constructors like `new`.
            let ty = self.dealias(&head.text);
            let m = toks.get(j + 3)?.text.clone();
            j += 4;
            if toks.get(j).is_some_and(|t| t.is_punct('(')) {
                j = match_group(toks, j)? + 1;
            }
            cur = match self.methods.get(&(ty.clone(), m.clone())) {
                Some(idxs) => {
                    let ret = &self.fns[idxs[0]].item.ret;
                    first_type_ident(ret, RET_WRAPPERS)
                        .map(|t| self.dealias(&t))
                        .unwrap_or(ty)
                }
                None if m == "new" || m == "default" || m == "builder" => ty,
                None => return None,
            };
        } else if let Some(t) = env.get(&head.text) {
            cur = t.clone();
            j += 1;
        } else {
            return None;
        }
        // Postfix segments.
        loop {
            while j < end && toks[j].is_punct('?') {
                j += 1;
            }
            if j >= end || !toks[j].is_punct('.') {
                break;
            }
            let seg = toks.get(j + 1)?;
            if seg.kind != TokKind::Ident {
                return None;
            }
            let seg_name = seg.text.clone();
            if toks.get(j + 2).is_some_and(|t| t.is_punct('(')) {
                // Method call.
                let close = match_group(toks, j + 2)?;
                j = close + 1;
                if let Some(idxs) = self.methods.get(&(cur.clone(), seg_name.clone())) {
                    let ret = &self.fns[idxs[0]].item.ret;
                    match first_type_ident(ret, RET_WRAPPERS) {
                        Some(t) => cur = self.dealias(&t),
                        None => return None,
                    }
                } else if TYPE_PRESERVING.contains(&seg_name.as_str()) {
                    // `.lock()`, `.clone()`, `?` — same interesting type.
                } else {
                    return None;
                }
            } else {
                // Field access.
                match self.fields.get(&(cur.clone(), seg_name.clone())) {
                    Some(t) => cur = self.dealias(t),
                    None => return None,
                }
                j += 2;
            }
        }
        Some(cur)
    }

    /// Extracts and resolves every call site in a fn body.
    fn extract_sites(&self, fn_idx: usize) -> Vec<CallSite> {
        let node = &self.fns[fn_idx];
        let body = node.item.body.clone();
        if body.is_empty() {
            return Vec::new();
        }
        let env = self.type_env(fn_idx);
        let toks = self.toks_of(fn_idx);
        let mut out = Vec::new();
        for i in body.clone() {
            if toks[i].kind != TokKind::Ident || !toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                continue;
            }
            let name = toks[i].text.clone();
            if EXPR_KEYWORDS.contains(&name.as_str()) {
                continue;
            }
            let prev = i.checked_sub(1).map(|k| &toks[k]);
            let site = if prev.is_some_and(|t| t.is_punct('.')) {
                self.resolve_method(fn_idx, &env, toks, i, &name, body.start)
            } else if prev.is_some_and(|t| t.is_punct(':')) {
                self.resolve_path(toks, i, &name)
            } else if prev.is_some_and(|t| t.is_ident("fn") || t.is_punct('!')) {
                continue; // nested fn def / macro body — not a call
            } else {
                // Bare call: free fns with this name anywhere in the
                // workspace (module paths are flattened).
                let targets = self.free_by_name.get(&name).cloned().unwrap_or_default();
                CallSite {
                    tok: i,
                    line: toks[i].line,
                    name: name.clone(),
                    recv_type: None,
                    style: CallStyle::Free,
                    targets,
                }
            };
            out.push(site);
        }
        out
    }

    fn resolve_method(
        &self,
        _fn_idx: usize,
        env: &BTreeMap<String, String>,
        toks: &[Tok],
        name_tok: usize,
        name: &str,
        body_start: usize,
    ) -> CallSite {
        let chain_start = chain_start(toks, name_tok.saturating_sub(1), body_start);
        let recv_type =
            self.eval_chain(toks, chain_start, name_tok.saturating_sub(1), env);
        let targets = match &recv_type {
            Some(t) => self.methods.get(&(t.clone(), name.to_string())).cloned().unwrap_or_default(),
            None => Vec::new(),
        };
        let targets = if targets.is_empty() && recv_type.is_none() {
            // Fallback: unique workspace method, unless the name is a
            // common std method.
            match self.methods_by_name.get(name) {
                Some(idxs)
                    if !COMMON_STD_METHODS.contains(&name)
                        && idxs
                            .iter()
                            .map(|&i| self.fns[i].item.impl_type.clone())
                            .collect::<BTreeSet<_>>()
                            .len()
                            == 1 =>
                {
                    idxs.clone()
                }
                _ => Vec::new(),
            }
        } else {
            targets
        };
        CallSite {
            tok: name_tok,
            line: toks[name_tok].line,
            name: name.to_string(),
            recv_type,
            style: CallStyle::Method,
            targets,
        }
    }

    fn resolve_path(&self, toks: &[Tok], name_tok: usize, name: &str) -> CallSite {
        // `qual::name(` — a type method (`LockTable::new`) or a
        // module-qualified free fn (`checkpoint::write_dirty`).
        let qual = name_tok
            .checked_sub(3)
            .map(|k| &toks[k])
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone());
        let targets = match &qual {
            Some(q) if q.chars().next().is_some_and(char::is_uppercase) => {
                let ty = self.dealias(q);
                self.methods.get(&(ty, name.to_string())).cloned().unwrap_or_default()
            }
            _ => self.free_by_name.get(name).cloned().unwrap_or_default(),
        };
        CallSite {
            tok: name_tok,
            line: toks[name_tok].line,
            name: name.to_string(),
            recv_type: qual,
            style: CallStyle::Path,
            targets,
        }
    }
}

/// Index of the matching close token for the open group at `open`.
pub fn match_group(toks: &[Tok], open: usize) -> Option<usize> {
    let (o, c) = match toks[open].text.as_str() {
        "(" => ('(', ')'),
        "[" => ('[', ']'),
        "{" => ('{', '}'),
        _ => return None,
    };
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Index of the matching open token for the close token at `close`,
/// scanning backwards from it.
fn match_group_back(toks: &[Tok], close: usize) -> Option<usize> {
    let (o, c) = match toks[close].text.as_str() {
        ")" => ('(', ')'),
        "]" => ('[', ']'),
        _ => return None,
    };
    let mut depth = 0i64;
    let mut k = close;
    loop {
        if toks[k].is_punct(c) {
            depth += 1;
        } else if toks[k].is_punct(o) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
        k = k.checked_sub(1)?;
    }
}

/// Start index of the postfix receiver chain that ends at the `.` token
/// `dot` (exclusive): walks back over `ident`, matched groups, `?`, `.`
/// and `::` connectors, stopping at keywords and operators.
fn chain_start(toks: &[Tok], dot: usize, floor: usize) -> usize {
    let mut k = dot; // toks[dot] is the `.`; walk from the unit before it
    loop {
        if k == floor {
            return k;
        }
        let prev = k - 1;
        let t = &toks[prev];
        if t.is_punct('?') {
            // `expr?` — postfix operator, transparent to the chain.
            k = prev;
            continue;
        }
        let unit_start = if t.is_punct(')') || t.is_punct(']') {
            let Some(open) = match_group_back(toks, prev) else { return k };
            if open <= floor {
                return k;
            }
            // A call group: include the callee name and any `::` path.
            let mut s = open;
            if s > floor
                && toks[s - 1].kind == TokKind::Ident
                && !EXPR_KEYWORDS.contains(&toks[s - 1].text.as_str())
            {
                s -= 1;
                while s > floor + 1 && toks[s - 1].is_punct(':') && toks[s - 2].is_punct(':') {
                    s -= 2;
                    if s > floor && toks[s - 1].kind == TokKind::Ident {
                        s -= 1;
                    }
                }
            }
            s
        } else if t.kind == TokKind::Ident && !EXPR_KEYWORDS.contains(&t.text.as_str()) {
            let mut s = prev;
            while s > floor + 1 && toks[s - 1].is_punct(':') && toks[s - 2].is_punct(':') {
                s -= 2;
                if s > floor && toks[s - 1].kind == TokKind::Ident {
                    s -= 1;
                }
            }
            s
        } else if t.is_punct('?') {
            prev
        } else {
            return k;
        };
        // Continue only across a `.` or `?` connector further left.
        if unit_start > floor
            && (toks[unit_start - 1].is_punct('.') || toks[unit_start - 1].is_punct('?'))
        {
            let mut c = unit_start - 1;
            while c > floor && toks[c].is_punct('?') {
                c -= 1;
            }
            if toks[c].is_punct('.') {
                k = c;
                continue;
            }
            return unit_start;
        }
        return unit_start;
    }
}

/// The first uppercase-initial identifier in a type expression that is
/// not one of `skip` — the "interesting" type.
pub fn first_type_ident(ty: &str, skip: &[&str]) -> Option<String> {
    let mut word = String::new();
    let mut words = Vec::new();
    for c in ty.chars().chain(std::iter::once(' ')) {
        if c.is_ascii_alphanumeric() || c == '_' {
            word.push(c);
        } else if !word.is_empty() {
            words.push(std::mem::take(&mut word));
        }
    }
    words
        .into_iter()
        .find(|w| w.chars().next().is_some_and(char::is_uppercase) && !skip.contains(&w.as_str()))
}

/// Whether a return-type string carries one of the repo's error types.
pub fn ret_is_fallible(ret: &str) -> bool {
    ret.contains("DbResult")
        || ret.contains("VfsResult")
        || (ret.contains("Result")
            && (ret.contains("DbError") || ret.contains("VfsError") || ret.contains("RecoveryError")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items;

    fn model_of(srcs: &[(&str, &str)]) -> Model {
        let files = srcs
            .iter()
            .map(|(rel, src)| {
                let lines: Vec<String> = src.lines().map(str::to_string).collect();
                FileModel {
                    rel: (*rel).to_string(),
                    items: items::parse(src, &lines, &|_| false),
                }
            })
            .collect();
        Model::build(files)
    }

    const ENGINE: &str = "
pub type SharedFs = Arc<Mutex<SimFs>>;
pub struct SimFs { n: u64 }
impl SimFs {
    pub fn append_padded(&mut self, pad: u64) -> VfsResult<()> { Ok(()) }
    pub fn write_block(&mut self) -> VfsResult<()> { Ok(()) }
}
pub struct DbServer { fs: SharedFs, inst: Option<Instance> }
pub struct Instance { locks: LockTable }
pub struct LockTable { held: u64 }
impl LockTable {
    pub fn lock_row(&mut self) -> bool { true }
}
impl DbServer {
    fn inst_mut(&mut self) -> DbResult<&mut Instance> { todo!() }
    fn flush_redo(&mut self) -> DbResult<()> {
        let mut fs = self.fs.lock();
        fs.append_padded(0)?;
        Ok(())
    }
    fn lock_for_dml(&mut self) -> DbResult<bool> {
        let got = self.inst_mut()?.locks.lock_row();
        Ok(got)
    }
    fn insert_one(&mut self) -> DbResult<()> {
        self.lock_for_dml()?;
        self.flush_redo()?;
        helper();
        Ok(())
    }
}
// tidy-entry(recovery)
pub fn startup(srv: &mut DbServer) -> DbResult<()> { srv.insert_one() }
fn helper() { x.unwrap(); }
";

    fn idx(m: &Model, name: &str) -> usize {
        (0..m.fns.len()).find(|&i| m.fns[i].item.name == name).unwrap()
    }

    #[test]
    fn resolves_self_methods_fields_and_guards() {
        let m = model_of(&[("crates/engine/src/server.rs", ENGINE)]);
        // flush_redo: `self.fs.lock()` infers SimFs, so the
        // `fs.append_padded(…)` site resolves to SimFs::append_padded.
        let flush = idx(&m, "flush_redo");
        let site = m.sites[flush].iter().find(|s| s.name == "append_padded").unwrap();
        assert_eq!(site.recv_type.as_deref(), Some("SimFs"));
        assert_eq!(site.targets, vec![idx(&m, "append_padded")]);
        // lock_for_dml: `self.inst_mut()?.locks.lock_row()` resolves
        // through the return type and the field table.
        let lock = idx(&m, "lock_for_dml");
        let site = m.sites[lock].iter().find(|s| s.name == "lock_row").unwrap();
        assert_eq!(site.recv_type.as_deref(), Some("LockTable"));
    }

    #[test]
    fn reachability_walks_entries_transitively() {
        let m = model_of(&[("crates/engine/src/server.rs", ENGINE)]);
        let entries = m.entries("recovery");
        assert_eq!(entries, vec![idx(&m, "startup")]);
        let reach = m.reachable(&entries);
        for f in ["insert_one", "flush_redo", "lock_for_dml", "append_padded", "helper"] {
            assert!(reach.contains_key(&idx(&m, f)), "{f} should be reachable");
        }
        let trace = m.trace(&reach, idx(&m, "helper"));
        assert_eq!(trace, "startup → DbServer::insert_one → helper");
    }

    #[test]
    fn common_std_method_names_do_not_false_edge() {
        let m = model_of(&[(
            "a.rs",
            "impl Index { pub fn insert(&mut self) -> DbResult<()> { Ok(()) } }\n\
             fn user() { let mut m = BTreeMap::new(); m.insert(1, 2); }\n",
        )]);
        let user = idx(&m, "user");
        let site = m.sites[user].iter().find(|s| s.name == "insert").unwrap();
        assert!(site.targets.is_empty(), "BTreeMap::insert must not edge to Index::insert");
    }

    #[test]
    fn use_resolution_follows_aliases_and_reexports() {
        let m = model_of(&[
            ("a.rs", "use std::collections::HashMap as FastMap;\nfn f() {}\n"),
            ("b.rs", "pub use std::collections::HashSet as Pool;\n"),
            ("c.rs", "use crate::b::Pool;\nfn g() {}\n"),
        ]);
        assert_eq!(m.resolve_use(0, "FastMap").as_deref(), Some("std::collections::HashMap"));
        // One level of re-export chasing: c.rs's `Pool` resolves through
        // b.rs's `pub use`.
        assert_eq!(m.resolve_use(2, "Pool").as_deref(), Some("std::collections::HashSet"));
    }

    #[test]
    fn fallible_return_detection() {
        assert!(ret_is_fallible("DbResult < RowId >"));
        assert!(ret_is_fallible("Result < ( ) , VfsError >"));
        assert!(!ret_is_fallible("std :: fmt :: Result"));
        assert!(!ret_is_fallible("bool"));
    }
}
