//! `recobench-tidy`: the repo-specific static-analysis wall.
//!
//! The benchmark's measures (recovery time, lost transactions, integrity
//! violations) are only trustworthy because every run is bit-for-bit
//! deterministic on the simulated clock and every recovery path reports
//! failure instead of panicking. Ordinary clippy cannot express those
//! rules — they are about *this* repo's layering — so, in the style of
//! rustc's `tidy` pass, this crate walks the workspace sources and data
//! files and enforces them with `file:line` diagnostics. v2 parses every
//! Rust file ([`lex`] → [`items`]) into an approximate intra-workspace
//! call graph with dataflow-lite receiver resolution ([`callgraph`]), so
//! lints can reason about reachability, not just text:
//!
//! * [`lints::determinism`] — no wall-clock or env-seeded randomness
//!   outside `crates/bench` (alias-aware through the use table);
//! * [`lints::panic_freedom`] — nothing reachable from a
//!   `// tidy-entry(recovery)` fn may `unwrap()`/`expect()`/`panic!` or
//!   index with an unguarded `[]`; diagnostics carry the call path;
//! * [`lints::error_swallow`] — engine/oracle code never discards a
//!   typed error (`let _ =`, statement `.ok();`, dropped results);
//! * [`lints::lock_discipline`] — `lock_row` only via the `lock_for_dml`
//!   chokepoint, locks before WAL append, session-path VFS writes only
//!   inside the sanctioned writers;
//! * [`lints::write_site_coverage`] — every static engine `SimFs` write
//!   site appears in the crash sweep's coverage manifest;
//! * [`lints::ordered_serialization`] — no `HashMap`/`HashSet` in modules
//!   whose output must be byte-stable (alias- and type-alias-aware);
//! * [`lints::sorted_uses`] — import blocks in byte-stable modules are
//!   sorted (auto-fixable with [`fix`]);
//! * [`lints::schema_conformance`] — event enum ↔ JSONL exporter
//!   coverage, and corpus / benchmark artifacts parse against their
//!   schemas;
//! * [`lints::sabotage_isolation`] — test-only `sabotage_*` hooks stay
//!   behind `cfg(any(test, feature = "sabotage"))`.
//!
//! Escape hatch: a justified inline waiver on the offending line or the
//! line directly above it —
//!
//! ```text
//! // tidy-allow(<lint-name>): <non-empty reason>
//! ```
//!
//! Waivers that no longer suppress anything are themselves reported
//! (`unused-allow`), so stale exemptions cannot accumulate; `FIXME`
//! placeholder justifications (what `--fix` drafts) are flagged even
//! while they suppress.

use std::fmt;
use std::path::{Path, PathBuf};

pub mod callgraph;
pub mod fix;
pub mod items;
pub mod json;
pub mod lex;
pub mod lints;
pub mod source;

pub use source::SourceFile;

/// Directory names never descended into, wherever they appear.
const SKIP_DIRS: &[&str] = &["target", ".git", "third_party", "node_modules"];

/// Workspace-relative path prefixes excluded from the walk. The tidy
/// fixture tree intentionally contains violations; scanning it from the
/// real run would make a clean tree impossible.
const SKIP_PREFIXES: &[&str] = &["crates/tidy/tests/fixtures"];

/// File extensions collected by the walker (source + data artifacts).
const EXTENSIONS: &[&str] = &["rs", "json", "jsonl"];

/// The walked workspace: every lintable file, with sources pre-analyzed
/// and the Rust files parsed into the call-graph model.
pub struct Workspace {
    /// Absolute workspace root.
    pub root: PathBuf,
    /// All collected files, sorted by relative path for stable output.
    pub files: Vec<SourceFile>,
    /// Items + approximate call graph over every `.rs` file.
    pub model: callgraph::Model,
}

impl Workspace {
    /// Walks `root` and loads every lintable file.
    ///
    /// # Errors
    ///
    /// Fails if `root` is not a readable directory or a file under it
    /// disappears mid-walk.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let root = root
            .canonicalize()
            .map_err(|e| format!("cannot open workspace root {}: {e}", root.display()))?;
        let mut files = Vec::new();
        walk(&root, &root, &mut files)?;
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        let parsed = files
            .iter()
            .filter(|f| f.is_rust())
            .map(|f| callgraph::FileModel {
                rel: f.rel.clone(),
                items: items::parse(&f.text(), &f.lines, &|l| f.in_test_region(l)),
            })
            .collect();
        let model = callgraph::Model::build(parsed);
        Ok(Workspace { root, files, model })
    }

    /// The file with this workspace-relative path, if it was collected.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }

    /// Files whose relative path starts with `prefix`.
    pub fn under<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a SourceFile> {
        self.files.iter().filter(move |f| f.rel.starts_with(prefix))
    }
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            let rel = rel_path(root, &path);
            if SKIP_PREFIXES.iter().any(|p| rel == *p || rel.starts_with(&format!("{p}/"))) {
                continue;
            }
            walk(root, &path, out)?;
        } else if EXTENSIONS.iter().any(|e| name.ends_with(&format!(".{e}"))) {
            out.push(SourceFile::load(root, &path)?);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// One finding, anchored to a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Name of the lint that fired (or `unused-allow`).
    pub lint: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.lint, self.message)
    }
}

/// Collects diagnostics, honouring per-line `tidy-allow` waivers.
pub struct Diagnostics {
    violations: Vec<Diagnostic>,
    /// (file, line, lint, reason, used) for every parsed waiver.
    allows: Vec<AllowState>,
    /// Files checked, for the report.
    pub files_checked: usize,
}

struct AllowState {
    file: String,
    line: usize,
    lint: String,
    reason: String,
    used: bool,
}

impl Diagnostics {
    /// Builds the collector, registering every waiver found in `ws`.
    pub fn new(ws: &Workspace) -> Diagnostics {
        let mut allows = Vec::new();
        for f in &ws.files {
            for a in &f.allows {
                allows.push(AllowState {
                    file: f.rel.clone(),
                    line: a.line,
                    lint: a.lint.clone(),
                    reason: a.reason.clone(),
                    used: false,
                });
            }
        }
        Diagnostics { violations: Vec::new(), allows, files_checked: ws.files.len() }
    }

    /// Records a finding unless a matching waiver covers `line` (same
    /// line, or the line directly above).
    pub fn emit(&mut self, lint: &'static str, file: &str, line: usize, message: String) {
        for a in &mut self.allows {
            if a.file == file && a.lint == lint && (a.line == line || a.line + 1 == line) {
                a.used = true;
                return;
            }
        }
        self.violations.push(Diagnostic { lint, file: file.to_string(), line, message });
    }

    /// Finishes the run: flags stale waivers, sorts, and returns every
    /// violation.
    pub fn finish(mut self) -> Vec<Diagnostic> {
        let known: Vec<&str> = lints::all().iter().map(|l| l.name()).collect();
        for a in &self.allows {
            if !known.contains(&a.lint.as_str()) {
                self.violations.push(Diagnostic {
                    lint: "unused-allow",
                    file: a.file.clone(),
                    line: a.line,
                    message: format!(
                        "tidy-allow names unknown lint {:?} (known: {})",
                        a.lint,
                        known.join(", ")
                    ),
                });
            } else if !a.used {
                self.violations.push(Diagnostic {
                    lint: "unused-allow",
                    file: a.file.clone(),
                    line: a.line,
                    message: format!(
                        "tidy-allow({}) suppresses nothing here; remove the stale waiver",
                        a.lint
                    ),
                });
            } else if a.reason.contains("FIXME") {
                // `--fix` inserts waiver templates with a FIXME reason so
                // the tree stays red until a human justifies them.
                self.violations.push(Diagnostic {
                    lint: "unused-allow",
                    file: a.file.clone(),
                    line: a.line,
                    message: format!(
                        "tidy-allow({}) has a FIXME placeholder justification; write a real one",
                        a.lint
                    ),
                });
            }
        }
        self.violations.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
        // Two hazards on one line produce identical diagnostics (and one
        // waiver covers both); report each line's finding once.
        self.violations.dedup();
        self.violations
    }
}

/// A tidy lint: a named, repo-specific rule over the whole workspace.
pub trait Lint {
    /// Stable kebab-case name used in diagnostics and `tidy-allow`.
    fn name(&self) -> &'static str;
    /// One-line human description for `--list` and the JSON report.
    fn description(&self) -> &'static str;
    /// Checks the workspace, emitting findings into `diags`.
    fn check(&self, ws: &Workspace, diags: &mut Diagnostics);
}

/// Runs every registered lint over `ws` and returns the sorted findings.
pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Diagnostics::new(ws);
    for lint in lints::all() {
        lint.check(ws, &mut diags);
    }
    diags.finish()
}

/// Cost of one tidy run, recorded in the JSON report so analysis cost is
/// tracked alongside the BENCH artifacts.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Wall-clock of load + analysis, milliseconds.
    pub millis: u128,
    /// Files walked.
    pub files: usize,
    /// Functions in the call-graph model.
    pub fns: usize,
    /// Resolved call-graph edges.
    pub edges: usize,
}

impl RunStats {
    /// Fills the model-shaped fields from a workspace.
    pub fn for_workspace(ws: &Workspace, millis: u128) -> RunStats {
        RunStats {
            millis,
            files: ws.files.len(),
            fns: ws.model.fns.len(),
            edges: ws.model.edge_count(),
        }
    }
}

/// Renders the machine-readable JSON report (one stable shape the CI job
/// uploads as an artifact).
pub fn json_report(ws: &Workspace, diagnostics: &[Diagnostic], stats: &RunStats) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n  \"tool\": \"recobench-tidy\",\n");
    let _ = writeln!(out, "  \"files_checked\": {},", ws.files.len());
    let _ = writeln!(
        out,
        "  \"runtime\": {{\"millis\": {}, \"files\": {}, \"fns\": {}, \"call_graph_edges\": {}}},",
        stats.millis, stats.files, stats.fns, stats.edges
    );
    out.push_str("  \"lints\": [");
    for (i, l) in lints::all().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{:?}", l.name());
    }
    out.push_str("],\n  \"violations\": [");
    for (i, d) in diagnostics.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        let _ = write!(
            out,
            "{{\"lint\": {:?}, \"file\": {:?}, \"line\": {}, \"message\": {:?}}}",
            d.lint, d.file, d.line, d.message
        );
    }
    if !diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}
