//! Lint: `use` blocks in the byte-stable-output modules stay sorted.
//!
//! The codec/report modules are diffed byte-for-byte in review whenever a
//! serialization contract changes; keeping their import blocks in sorted
//! order keeps those diffs minimal and mechanical. This is also the
//! demonstration target for `tidy --fix`, which rewrites an unsorted
//! block in place.

use crate::{Diagnostics, Lint, Workspace};

/// The modules held to sorted imports — the same byte-stable set as
/// `ordered-serialization`.
pub const SORTED_FILES: &[&str] = &[
    "crates/engine/src/codec.rs",
    "crates/engine/src/events.rs",
    "crates/core/src/report.rs",
    "crates/core/src/measures.rs",
    "crates/core/src/experiment.rs",
    "crates/faults/src/schedule.rs",
    "crates/oracle/src/diff.rs",
    "crates/vfs/src/snapshot.rs",
];

/// Finds unsorted contiguous `use` blocks: returns `(start, end)` 0-based
/// inclusive line ranges that need re-sorting.
pub fn unsorted_blocks(lines: &[String]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < lines.len() {
        if !is_use_line(&lines[i]) {
            i += 1;
            continue;
        }
        let start = i;
        while i < lines.len() && is_use_line(&lines[i]) {
            i += 1;
        }
        let block = &lines[start..i];
        let mut sorted: Vec<&String> = block.iter().collect();
        sorted.sort();
        if sorted.iter().zip(block.iter()).any(|(a, b)| *a != b) {
            out.push((start, i - 1));
        }
    }
    out
}

/// A single-line `use …;` declaration (multi-line groups are left to
/// rustfmt; the repo style keeps imports one per line).
fn is_use_line(line: &str) -> bool {
    let t = line.trim_start();
    (t.starts_with("use ") || t.starts_with("pub use ")) && t.trim_end().ends_with(';')
}

/// See the module docs.
pub struct SortedUses;

impl Lint for SortedUses {
    fn name(&self) -> &'static str {
        "sorted-uses"
    }

    fn description(&self) -> &'static str {
        "import blocks in byte-stable modules are sorted (fixable with --fix)"
    }

    fn check(&self, ws: &Workspace, diags: &mut Diagnostics) {
        for rel in SORTED_FILES {
            let Some(f) = ws.file(rel) else { continue };
            for (start, end) in unsorted_blocks(&f.lines) {
                diags.emit(
                    self.name(),
                    &f.rel,
                    start + 1,
                    format!(
                        "`use` block (lines {}–{}) is not sorted; run `cargo tidy -- --fix`",
                        start + 1,
                        end + 1
                    ),
                );
            }
        }
    }
}
