//! Lint: event/schedule schemas and shipped artifacts stay in sync.
//!
//! Three checks:
//!
//! 1. **Event enum ↔ exporter coverage** — every variant of
//!    `EngineEvent` in `crates/engine/src/events.rs` is doc-commented and
//!    has an arm in both `name()` and `write_json()`, so no event can be
//!    added without a stable JSONL encoding.
//! 2. **Corpus conformance** — every `tests/corpus/*.json` parses with
//!    the real `FaultSchedule` parser and is in canonical `to_json` form
//!    (so reproducers diff cleanly and replay byte-for-byte).
//! 3. **Benchmark-report conformance** — any `BENCH_*.json` in the tree
//!    is a JSON object with a string `"mode"` key, and any
//!    `BENCH_*.jsonl` is valid JSONL whose every line carries the
//!    `t_us`/`server`/`type` envelope the exporter promises.

use recobench_faults::FaultSchedule;

use crate::json::{self, Value};
use crate::source::brace_region;
use crate::{Diagnostics, Lint, Workspace};

/// See the module docs.
pub struct SchemaConformance;

impl Lint for SchemaConformance {
    fn name(&self) -> &'static str {
        "schema-conformance"
    }

    fn description(&self) -> &'static str {
        "event enum matches the JSONL exporter; corpus and BENCH artifacts parse against their schemas"
    }

    fn check(&self, ws: &Workspace, diags: &mut Diagnostics) {
        self.check_event_enum(ws, diags);
        self.check_corpus(ws, diags);
        self.check_bench_artifacts(ws, diags);
    }
}

impl SchemaConformance {
    fn check_event_enum(&self, ws: &Workspace, diags: &mut Diagnostics) {
        let Some(f) = ws.file("crates/engine/src/events.rs") else { return };
        // The enum body.
        let Some(enum_start) = f.lines.iter().position(|l| l.contains("pub enum EngineEvent"))
        else {
            diags.emit(
                self.name(),
                &f.rel,
                1,
                "events.rs no longer declares `pub enum EngineEvent`".into(),
            );
            return;
        };
        let enum_end = brace_region(&f.code, enum_start);

        // Variants: lines at one indent level starting with a capital.
        let mut variants: Vec<(usize, String)> = Vec::new();
        let mut depth = 0i64;
        for k in enum_start..=enum_end {
            let line = &f.code[k];
            let trimmed = f.lines[k].trim_start();
            if depth == 1
                && trimmed.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                && !trimmed.starts_with("///")
            {
                let name: String =
                    trimmed.chars().take_while(|c| c.is_ascii_alphanumeric()).collect();
                if !name.is_empty() {
                    variants.push((k, name));
                }
            }
            for ch in line.chars() {
                match ch {
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    _ => {}
                }
            }
        }

        // Doc-comment check: the nearest non-attribute line above each
        // variant must be a `///` doc comment.
        for (k, name) in &variants {
            let mut j = *k;
            let documented = loop {
                if j == 0 {
                    break false;
                }
                j -= 1;
                let t = f.lines[j].trim_start();
                if t.starts_with("#[") {
                    continue;
                }
                break t.starts_with("///");
            };
            if !documented {
                diags.emit(
                    self.name(),
                    &f.rel,
                    k + 1,
                    format!("EngineEvent::{name} has no doc comment describing the event"),
                );
            }
        }

        // Exporter coverage: each variant appears in `name()` and
        // `write_json()` inside `impl EngineEvent`.
        let Some(impl_start) = f.lines.iter().position(|l| l.starts_with("impl EngineEvent"))
        else {
            diags.emit(self.name(), &f.rel, 1, "no `impl EngineEvent` block found".into());
            return;
        };
        let impl_end = brace_region(&f.code, impl_start);
        for fn_name in ["fn name(", "fn write_json("] {
            let Some(fn_start) = (impl_start..=impl_end)
                .find(|&k| f.lines[k].contains(fn_name))
            else {
                diags.emit(
                    self.name(),
                    &f.rel,
                    impl_start + 1,
                    format!("impl EngineEvent lost its `{fn_name})` exporter method"),
                );
                continue;
            };
            let fn_end = brace_region(&f.code, fn_start);
            for (k, name) in &variants {
                let arm = format!("EngineEvent::{name}");
                if !(fn_start..=fn_end).any(|j| f.lines[j].contains(&arm)) {
                    diags.emit(
                        self.name(),
                        &f.rel,
                        k + 1,
                        format!(
                            "EngineEvent::{name} has no arm in `{fn_name})`; every event must \
                             round-trip through the JSONL exporter"
                        ),
                    );
                }
            }
        }
    }

    fn check_corpus(&self, ws: &Workspace, diags: &mut Diagnostics) {
        for f in ws.under("tests/corpus/") {
            if !f.rel.ends_with(".json") {
                continue;
            }
            let text = f.text();
            match FaultSchedule::from_json(text.trim()) {
                Err(e) => {
                    diags.emit(
                        self.name(),
                        &f.rel,
                        1,
                        format!("does not parse as a FaultSchedule: {e}"),
                    );
                }
                Ok(schedule) => {
                    if schedule.to_json() != text.trim() {
                        diags.emit(
                            self.name(),
                            &f.rel,
                            1,
                            "not in canonical FaultSchedule::to_json form; re-emit with to_json \
                             so corpus entries diff cleanly"
                                .into(),
                        );
                    }
                }
            }
        }
    }

    fn check_bench_artifacts(&self, ws: &Workspace, diags: &mut Diagnostics) {
        for f in &ws.files {
            let base = f.rel.rsplit('/').next().unwrap_or(&f.rel);
            if !base.starts_with("BENCH_") {
                continue;
            }
            if base.ends_with(".json") {
                match json::parse(&f.text()) {
                    Err(e) => {
                        diags.emit(self.name(), &f.rel, 1, format!("invalid JSON: {e}"));
                    }
                    Ok(v) => {
                        let mode_ok = v
                            .as_object()
                            .and_then(|o| o.get("mode"))
                            .is_some_and(|m| matches!(m, Value::String(_)));
                        if !mode_ok {
                            diags.emit(
                                self.name(),
                                &f.rel,
                                1,
                                "benchmark report must be a JSON object with a string \"mode\" \
                                 key (smoke/mini/full)"
                                    .into(),
                            );
                        }
                    }
                }
            } else if base.ends_with(".jsonl") {
                for (i, line) in f.lines.iter().enumerate() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    let problem = match json::parse(line) {
                        Err(e) => Some(format!("invalid JSONL line: {e}")),
                        Ok(v) => {
                            let obj = v.as_object();
                            let has = |k: &str| obj.is_some_and(|o| o.contains_key(k));
                            if !(has("t_us") && has("server") && has("type")) {
                                Some(
                                    "event line missing the t_us/server/type envelope the \
                                     exporter promises"
                                        .to_string(),
                                )
                            } else {
                                None
                            }
                        }
                    };
                    if let Some(msg) = problem {
                        diags.emit(self.name(), &f.rel, i + 1, msg);
                        break; // one diagnostic per malformed file is enough
                    }
                }
            }
        }
    }
}
