//! Lint: recovery paths must not panic.
//!
//! A panic in `recovery.rs`, `redo.rs`, `checkpoint.rs` or `standby.rs`
//! turns a measured "failed recovery" into a crashed experiment — the
//! exact outcome the paper's methodology cannot distinguish from a hung
//! DBMS. Broken invariants on these paths must surface as typed
//! `RecoveryError` values threaded through `DbResult`, so the harness
//! records the run as a recovery failure instead of dying.
//!
//! `#[cfg(test)]` modules are exempt: asserting with `unwrap()` is what
//! tests are for.

use crate::{Diagnostics, Lint, Workspace};

/// The engine's recovery-path modules (workspace-relative).
const RECOVERY_FILES: &[&str] = &[
    "crates/engine/src/recovery.rs",
    "crates/engine/src/redo.rs",
    "crates/engine/src/checkpoint.rs",
    "crates/engine/src/standby.rs",
];

/// Panicking constructs never allowed outside test modules.
const PATTERNS: &[&str] = &[
    ".unwrap()",
    ".unwrap_err()",
    ".expect(",
    ".expect_err(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// See the module docs.
pub struct PanicFreedom;

impl Lint for PanicFreedom {
    fn name(&self) -> &'static str {
        "panic-freedom"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic in engine recovery-path modules (outside #[cfg(test)])"
    }

    fn check(&self, ws: &Workspace, diags: &mut Diagnostics) {
        for rel in RECOVERY_FILES {
            let Some(f) = ws.file(rel) else { continue };
            for (i, code) in f.code.iter().enumerate() {
                if f.in_test_region(i + 1) {
                    continue;
                }
                if let Some(pat) = PATTERNS.iter().find(|p| code.contains(*p)) {
                    diags.emit(
                        self.name(),
                        &f.rel,
                        i + 1,
                        format!(
                            "`{pat}` on a recovery path; return a typed RecoveryError through \
                             DbResult instead of panicking"
                        ),
                    );
                }
            }
        }
    }
}
