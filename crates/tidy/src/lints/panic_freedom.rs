//! Lint: nothing reachable from a recovery entry point may panic.
//!
//! A panic anywhere on a recovery path turns a measured "failed recovery"
//! into a crashed experiment — the exact outcome the paper's methodology
//! cannot distinguish from a hung DBMS. v1 of this lint pattern-matched
//! four whole files; it could not see `startup → replay → codec helper →
//! unwrap`. v2 walks the approximate call graph from every function
//! marked `// tidy-entry(recovery)` (crash recovery, media recovery,
//! checkpoint, standby, archiver entries) and flags each reachable
//! `unwrap`/`expect`, panicking macro, and unguarded `[]` indexing,
//! reporting the call path that reaches it.
//!
//! Indexing heuristics (documented in DESIGN.md §12) — an index is
//! treated as guarded when:
//!
//! * the index expression contains `%` or `min` (clamped by
//!   construction);
//! * a single index variable (or single-variable range endpoint) is
//!   compared against a `len()` earlier in the same fn;
//! * the index variable was bound from a container lookup (`map.get`,
//!   `map.remove`, `map.values`, `binary_search*`) — the slab-index
//!   idiom, where the map's values are valid indices by invariant;
//! * a literal index is used after the same fn already checked
//!   `is_empty()` / `len()` (header-probing decoders).
//!
//! Everything else must become `.get(…)` with a typed error, or carry a
//! justified waiver.

use crate::callgraph::match_group;
use crate::lex::{Tok, TokKind};
use crate::{Diagnostics, Lint, Workspace};

/// Macro names that panic at runtime.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Method names that panic on the error/None arm.
const PANIC_METHODS: &[&str] = &["unwrap", "unwrap_err", "expect", "expect_err"];

/// See the module docs.
pub struct PanicFreedom;

impl Lint for PanicFreedom {
    fn name(&self) -> &'static str {
        "panic-freedom"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic!/unguarded [] reachable from a tidy-entry(recovery) fn"
    }

    fn check(&self, ws: &Workspace, diags: &mut Diagnostics) {
        let m = &ws.model;
        let entries = m.entries("recovery");
        if entries.is_empty() {
            // A tree with an engine but no declared entry points would
            // silently disable the whole lint — make that loud.
            if ws.under("crates/engine/src/").next().is_some() {
                diags.emit(
                    self.name(),
                    "crates/engine/src/recovery.rs",
                    0,
                    "no `// tidy-entry(recovery)` markers found in the workspace; \
                     the transitive panic-freedom lint has nothing to anchor on"
                        .to_string(),
                );
            }
            return;
        }
        let reach = m.reachable(&entries);
        for &fn_idx in reach.keys() {
            let node = &m.fns[fn_idx];
            if node.item.is_test || node.item.body.is_empty() {
                continue;
            }
            let rel = m.rel_of(fn_idx).to_string();
            let toks = m.toks_of(fn_idx);
            let body = node.item.body.clone();
            let via = m.trace(&reach, fn_idx);
            for i in body.clone() {
                let t = &toks[i];
                if t.kind == TokKind::Ident
                    && PANIC_MACROS.contains(&t.text.as_str())
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
                {
                    diags.emit(
                        self.name(),
                        &rel,
                        t.line,
                        format!(
                            "`{}!` on a recovery path (via {via}); return a typed \
                             RecoveryError through DbResult instead of panicking",
                            t.text
                        ),
                    );
                } else if t.kind == TokKind::Ident
                    && PANIC_METHODS.contains(&t.text.as_str())
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                {
                    diags.emit(
                        self.name(),
                        &rel,
                        t.line,
                        format!(
                            "`.{}()` on a recovery path (via {via}); return a typed \
                             RecoveryError through DbResult instead of panicking",
                            t.text
                        ),
                    );
                } else if t.is_punct('[')
                    && i > body.start
                    && is_index_base(&toks[i - 1])
                    && !index_is_guarded(toks, &body, i)
                {
                    diags.emit(
                        self.name(),
                        &rel,
                        t.line,
                        format!(
                            "unguarded `[]` indexing on a recovery path (via {via}); \
                             use `.get(…)` with a typed error, bound the index, or waive \
                             with a justification"
                        ),
                    );
                }
            }
        }
    }
}

/// Whether the token before a `[` makes it an index expression (rather
/// than an array literal, attribute, or pattern).
fn is_index_base(prev: &Tok) -> bool {
    (prev.kind == TokKind::Ident && !is_keyword(&prev.text))
        || prev.is_punct(')')
        || prev.is_punct(']')
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "match"
            | "return"
            | "in"
            | "else"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "for"
            | "loop"
            | "break"
            | "continue"
            | "as"
            | "where"
            | "impl"
            | "dyn"
    )
}

/// Heuristic bounds-safety for the index expression opening at `open`.
fn index_is_guarded(toks: &[Tok], body: &std::ops::Range<usize>, open: usize) -> bool {
    let Some(close) = match_group(toks, open) else { return false };
    let idx = &toks[open + 1..close];
    // `a[x % n]`, `a[x.min(n)]`, `a[n - 1].min`-style clamps.
    if idx.iter().any(|t| t.is_punct('%') || t.is_ident("min")) {
        return true;
    }
    // A single index variable — or a range with one variable endpoint
    // (`buf[k..]`, `buf[..k]`) — compared against a `len()` earlier in
    // the fn body (`i < xs.len()`, `for i in 0..xs.len()`,
    // `if old.len() > k {…}`) is treated as guarded.
    let single_var = match idx {
        [v] if v.kind == TokKind::Ident => Some(v.text.as_str()),
        [v, a, b] | [a, b, v]
            if v.kind == TokKind::Ident && a.is_punct('.') && b.is_punct('.') =>
        {
            Some(v.text.as_str())
        }
        _ => None,
    };
    if let Some(var) = single_var {
        let mut saw_len = false;
        for k in body.start..open {
            let t = &toks[k];
            if t.is_ident("len") {
                saw_len = true;
            }
            let cmp_after = t.is_ident(var)
                && toks.get(k + 1).is_some_and(|n| n.is_punct('<') || n.is_punct('>'));
            let cmp_before = t.is_ident(var)
                && k > body.start
                && (toks[k - 1].is_punct('<') || toks[k - 1].is_punct('>'));
            if (cmp_after || cmp_before) && (saw_len || scan_len_ahead(toks, k, close)) {
                return true;
            }
        }
        // Binding-site idiom: the variable was bound from a container
        // lookup whose values are valid indices by invariant —
        // `let &i = self.map.get(&k)…`, `Some(i) = map.remove(&k)`,
        // `.map(|&i| slots[i])` over `map.values()`, a `binary_search`
        // hit — or clamped by modulo at its binding
        // (`let ng = (g + 1) % ngroups`). Checked around the variable's
        // first occurrence in the body (its binding site).
        if let Some(first) = (body.start..open).find(|&k| toks[k].is_ident(var)) {
            // 25 tokens back reaches past a `binary_search_by_key` key
            // closure; 15 forward covers `let ng = (g + 1) % n;`.
            let lo = first.saturating_sub(25).max(body.start);
            let hi = (first + 15).min(open);
            if toks[lo..hi].iter().any(|t| is_lookup_ident(t) || t.is_punct('%')) {
                return true;
            }
        }
    }
    // A literal index after the fn already probed emptiness or length
    // (`if buf.is_empty() { return … }` then `buf[0]` — the
    // header-probing decoder idiom).
    if matches!(idx, [n] if n.kind == TokKind::Num)
        && toks[body.start..open].iter().any(|t| t.is_ident("is_empty") || t.is_ident("len"))
    {
        return true;
    }
    false
}

/// Container lookups whose yielded values are valid indices by the
/// container's own invariant (slab maps, sorted-vec searches).
fn is_lookup_ident(t: &Tok) -> bool {
    t.is_ident("get")
        || t.is_ident("remove")
        || t.is_ident("values")
        || (t.kind == TokKind::Ident && t.text.starts_with("binary_search"))
}

/// `len` within a few tokens after a comparison (`i < xs.len()`).
fn scan_len_ahead(toks: &[Tok], from: usize, limit: usize) -> bool {
    toks[from..limit.min(from + 10).min(toks.len())].iter().any(|t| t.is_ident("len"))
}
