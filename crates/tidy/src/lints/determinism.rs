//! Lint: no wall-clock time or environment-seeded randomness outside
//! `crates/bench`.
//!
//! Every experiment runs on the simulated clock (`recobench_sim`); a
//! single `Instant::now()` or env-seeded hasher in the engine, simulator,
//! workload, harness or oracle silently breaks bit-for-bit reproducibility
//! of the paper's measures. Only the bench binaries may touch the real
//! clock — that is what they measure.

use crate::{Diagnostics, Lint, Workspace};

/// Path prefixes where real time is the measurand and therefore legal.
const EXEMPT_PREFIXES: &[&str] = &["crates/bench/"];

/// Forbidden tokens, with the reason they break determinism.
const PATTERNS: &[(&str, &str)] = &[
    ("std::time::Instant", "wall-clock time; use the simulated clock (recobench_sim::SimClock)"),
    ("std::time::SystemTime", "wall-clock time; use the simulated clock (recobench_sim::SimClock)"),
    ("Instant::now(", "wall-clock time; use the simulated clock (recobench_sim::SimClock)"),
    ("SystemTime::now(", "wall-clock time; use the simulated clock (recobench_sim::SimClock)"),
    ("thread::sleep", "real sleeping; advance the simulated clock instead"),
    ("RandomState", "env-seeded hashing gives run-dependent iteration order; use BTreeMap or fasthash"),
    ("thread_rng", "env-seeded randomness; use recobench_sim::SimRng with an explicit seed"),
    ("from_entropy", "env-seeded randomness; use recobench_sim::SimRng with an explicit seed"),
    ("getrandom", "env-seeded randomness; use recobench_sim::SimRng with an explicit seed"),
];

/// See the module docs.
pub struct Determinism;

impl Lint for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn description(&self) -> &'static str {
        "no wall-clock time or env-seeded randomness outside crates/bench"
    }

    fn check(&self, ws: &Workspace, diags: &mut Diagnostics) {
        for f in &ws.files {
            if !f.is_rust() || EXEMPT_PREFIXES.iter().any(|p| f.rel.starts_with(p)) {
                continue;
            }
            for (i, code) in f.code.iter().enumerate() {
                if let Some((pat, why)) = PATTERNS.iter().find(|(p, _)| code.contains(p)) {
                    diags.emit(self.name(), &f.rel, i + 1, format!("`{pat}`: {why}"));
                }
            }
        }
        // Alias-aware pass: `use std::time::Instant as Clock; Clock::now()`
        // evades the textual patterns; resolve bindings through the use
        // table (including one level of workspace re-exports).
        let m = &ws.model;
        for (fi, fm) in m.files.iter().enumerate() {
            if EXEMPT_PREFIXES.iter().any(|p| fm.rel.starts_with(p)) {
                continue;
            }
            let aliased: Vec<(String, &'static str)> = fm
                .items
                .uses
                .iter()
                .filter_map(|u| {
                    let resolved = m.resolve_use(fi, &u.binding)?;
                    let why = forbidden_clock_path(&resolved)?;
                    // Only the *aliased* form needs this pass — the direct
                    // name is already caught textually above.
                    (!resolved.ends_with(&u.binding)).then(|| (u.binding.clone(), why))
                })
                .collect();
            if aliased.is_empty() {
                continue;
            }
            for t in &fm.items.toks {
                if let Some((_, why)) =
                    aliased.iter().find(|(b, _)| t.is_ident(b))
                {
                    diags.emit(
                        self.name(),
                        &fm.rel,
                        t.line,
                        format!("aliased import of a forbidden source: {why}"),
                    );
                }
            }
        }
    }
}

/// Why a resolved import path is forbidden, if it is.
fn forbidden_clock_path(path: &str) -> Option<&'static str> {
    if path.ends_with("time::Instant") || path.ends_with("time::SystemTime") {
        Some("wall-clock time; use the simulated clock (recobench_sim::SimClock)")
    } else if path.ends_with("hash_map::RandomState") || path.ends_with("RandomState") {
        Some("env-seeded hashing gives run-dependent iteration order; use BTreeMap or fasthash")
    } else if path.ends_with("thread_rng") || path.ends_with("ThreadRng") {
        Some("env-seeded randomness; use recobench_sim::SimRng with an explicit seed")
    } else {
        None
    }
}
