//! Lint: test-only sabotage hooks stay compiled out of production builds.
//!
//! `DbServer::sabotage_skip_redo_records` and friends deliberately break
//! redo apply so the differential oracle can prove it catches real
//! corruption. Shipping that capability reachable in a default build
//! would be indefensible, so every `sabotage_*` identifier in the engine
//! and oracle sources must sit inside an item or statement gated by
//! `#[cfg(any(test, feature = "sabotage"))]` (or inside a `#[cfg(test)]`
//! module).

use crate::{Diagnostics, Lint, Workspace};

/// Crates whose sources may define or call the hooks only behind the
/// gate. `crates/bench` is the sanctioned opt-in consumer: it enables the
/// `sabotage` feature explicitly in its manifest for the torture
/// binary's oracle self-test.
const GUARDED_PREFIXES: &[&str] = &["crates/engine/src/", "crates/oracle/src/"];

/// See the module docs.
pub struct SabotageIsolation;

impl Lint for SabotageIsolation {
    fn name(&self) -> &'static str {
        "sabotage-isolation"
    }

    fn description(&self) -> &'static str {
        "sabotage_* hooks unreachable without cfg(any(test, feature = \"sabotage\"))"
    }

    fn check(&self, ws: &Workspace, diags: &mut Diagnostics) {
        for f in &ws.files {
            if !f.is_rust() || !GUARDED_PREFIXES.iter().any(|p| f.rel.starts_with(p)) {
                continue;
            }
            for (i, code) in f.code.iter().enumerate() {
                if !has_identifier(code, "sabotage_") {
                    continue;
                }
                let line = i + 1;
                if f.in_test_region(line) || f.in_sabotage_region(line) {
                    continue;
                }
                diags.emit(
                    self.name(),
                    &f.rel,
                    line,
                    "sabotage_* hook outside cfg(any(test, feature = \"sabotage\")); gate the \
                     item (or the enclosing statement) so production builds compile it out"
                        .into(),
                );
            }
        }
    }
}

/// Whether `code` contains `needle` starting at an identifier boundary.
fn has_identifier(code: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(needle) {
        let abs = from + pos;
        let boundary = abs == 0
            || !code[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        if boundary {
            return true;
        }
        from = abs + needle.len();
    }
    false
}
