//! Lint: every engine write site is exercised by the crash sweep.
//!
//! PR 7's write-point sweep crashes the engine at every counted VFS write
//! and proves recovery from each — but only for the write sites that
//! existed when the sweep ran. This lint closes the loop ResBench-style:
//! tidy *statically* enumerates every counted write call site in
//! `crates/engine` (calls to `SimFs::write_block` / `append` /
//! `append_padded`, resolved through the dataflow-lite pass), and
//! cross-checks the set against the coverage manifest the sweep records
//! at `crates/oracle/tests/write_site_coverage.json`. A newly added write
//! site fails CI until the sweep observes it (regenerate with
//! `UPDATE_WRITE_SITES=1 cargo test -p recobench-oracle --test
//! write_point_sweep`) or a waiver documents why the sweep cannot reach
//! it (e.g. standby-only paths). Stale manifest entries are flagged too.
//!
//! `tidy --write-sites FILE` emits the static enumeration as JSON; CI
//! uploads it and diffs it against the sweep's manifest.

use crate::callgraph::CallStyle;
use crate::{json, Diagnostics, Lint, Workspace};

/// The manifest the sweep maintains.
pub const MANIFEST_REL: &str = "crates/oracle/tests/write_site_coverage.json";

/// The counted write surface of `SimFs` (the methods that advance
/// `writes_observed`, i.e. the crash sweep's probe points).
const COUNTED_METHODS: &[&str] = &["write_block", "append", "append_padded"];

/// One statically-found write call site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct WriteSite {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the call.
    pub line: usize,
    /// The `SimFs` method called.
    pub method: String,
    /// The enclosing fn, for the manifest reader.
    pub in_fn: String,
}

/// Statically enumerates every counted write call site in `crates/engine`
/// non-test code. The second list is call sites that *look* like counted
/// writes but whose receiver the dataflow pass could not resolve —
/// under-enumerating silently would void the coverage claim, so the lint
/// reports those as violations.
pub fn engine_write_sites(ws: &Workspace) -> (Vec<WriteSite>, Vec<WriteSite>) {
    let m = &ws.model;
    let mut sites = Vec::new();
    let mut unresolved = Vec::new();
    for fn_idx in 0..m.fns.len() {
        let node = &m.fns[fn_idx];
        let rel = m.rel_of(fn_idx);
        if node.item.is_test || !rel.starts_with("crates/engine/src/") {
            continue;
        }
        for site in &m.sites[fn_idx] {
            if site.style != CallStyle::Method || !COUNTED_METHODS.contains(&site.name.as_str()) {
                continue;
            }
            let ws_site = WriteSite {
                file: rel.to_string(),
                line: site.line,
                method: site.name.clone(),
                in_fn: m.display_name(fn_idx),
            };
            match site.recv_type.as_deref() {
                Some("SimFs") => sites.push(ws_site),
                // `append`/`write_block` on a resolved non-fs receiver
                // (Vec::append, DbServer::write_block wrappers): not a
                // VFS write.
                Some(_) => {}
                // Unresolved receiver: `append_padded`/`write_block` are
                // unique to SimFs in this workspace, so treat as a write
                // site; a bare `.append(` could be Vec::append — report
                // it for manual resolution instead of guessing.
                None if site.name != "append" => sites.push(ws_site),
                None => unresolved.push(ws_site),
            }
        }
    }
    sites.sort();
    sites.dedup();
    unresolved.sort();
    (sites, unresolved)
}

/// Renders the static enumeration as the `--write-sites` JSON manifest.
pub fn manifest_json(sites: &[WriteSite]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n  \"tool\": \"recobench-tidy --write-sites\",\n  \"sites\": [");
    for (i, s) in sites.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        let _ = write!(
            out,
            "{{\"file\": {:?}, \"line\": {}, \"method\": {:?}, \"fn\": {:?}}}",
            s.file, s.line, s.method, s.in_fn
        );
    }
    if !sites.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// See the module docs.
pub struct WriteSiteCoverage;

impl Lint for WriteSiteCoverage {
    fn name(&self) -> &'static str {
        "write-site-coverage"
    }

    fn description(&self) -> &'static str {
        "every static engine VFS write site appears in the crash sweep's coverage manifest"
    }

    fn check(&self, ws: &Workspace, diags: &mut Diagnostics) {
        if ws.under("crates/engine/src/").next().is_none() {
            return;
        }
        let (sites, unresolved) = engine_write_sites(ws);
        for u in &unresolved {
            diags.emit(
                self.name(),
                &u.file,
                u.line,
                format!(
                    "cannot resolve the receiver of `.{}(…)` in `{}`; make the receiver's \
                     SimFs type inferable (or waive if it is not a VFS write)",
                    u.method, u.in_fn
                ),
            );
        }
        let Some(manifest) = ws.file(MANIFEST_REL) else {
            diags.emit(
                self.name(),
                MANIFEST_REL,
                0,
                format!(
                    "coverage manifest missing; run `UPDATE_WRITE_SITES=1 cargo test -p \
                     recobench-oracle --test write_point_sweep` to record the {} static \
                     write site(s)",
                    sites.len()
                ),
            );
            return;
        };
        let covered: Vec<(String, usize)> = match parse_manifest(&manifest.text()) {
            Ok(v) => v,
            Err(e) => {
                diags.emit(self.name(), MANIFEST_REL, 0, format!("manifest unreadable: {e}"));
                return;
            }
        };
        for s in &sites {
            if !covered.iter().any(|(f, l)| f == &s.file && *l == s.line) {
                diags.emit(
                    self.name(),
                    &s.file,
                    s.line,
                    format!(
                        "write site `SimFs::{}` in `{}` is not covered by the crash sweep's \
                         manifest; rerun `UPDATE_WRITE_SITES=1 cargo test -p recobench-oracle \
                         --test write_point_sweep`, or waive with the reason the sweep cannot \
                         reach it",
                        s.method, s.in_fn
                    ),
                );
            }
        }
        // Stale manifest entries (the site moved or disappeared): anchor
        // the diagnostic on the manifest so the fix is to regenerate it.
        for (f, l) in &covered {
            if f.starts_with("crates/engine/")
                && !sites.iter().any(|s| &s.file == f && s.line == *l)
            {
                diags.emit(
                    self.name(),
                    MANIFEST_REL,
                    0,
                    format!(
                        "manifest entry {f}:{l} matches no current write site; regenerate \
                         with UPDATE_WRITE_SITES=1"
                    ),
                );
            }
        }
    }
}

/// Reads the sweep manifest: `{"sites": [{"file": …, "line": …}, …]}`.
fn parse_manifest(text: &str) -> Result<Vec<(String, usize)>, String> {
    let v = json::parse(text)?;
    let sites = v
        .get("sites")
        .and_then(json::Value::as_array)
        .ok_or_else(|| "no `sites` array".to_string())?;
    let mut out = Vec::new();
    for s in sites {
        let file = s
            .get("file")
            .and_then(json::Value::as_str)
            .ok_or_else(|| "site without `file`".to_string())?;
        let line = s
            .get("line")
            .and_then(json::Value::as_u64)
            .ok_or_else(|| "site without `line`".to_string())?;
        out.push((file.to_string(), line as usize));
    }
    Ok(out)
}
