//! Lint: engine/oracle code may not silently discard typed errors.
//!
//! The benchmark's measures depend on every failure reaching the harness:
//! a `DbError`/`VfsError`/`RecoveryError` dropped on the floor converts a
//! detectable outage into silent corruption of the measures. This lint
//! flags, in `crates/engine` and `crates/oracle` non-test code:
//!
//! * `let _ = fallible();` — unless the expression propagates with `?`;
//! * statement-position `fallible().ok();` — the error is erased;
//! * a bare `fallible();` statement whose `#[must_use]` result is
//!   discarded (rustc warns too, but tidy also sees it in fixtures).
//!
//! "Fallible" means the callee's return type carries `DbResult`,
//! `VfsResult`, or a `Result`/`Option` naming one of the repo's error
//! types — resolved through the call graph, not by name-matching.

use crate::callgraph::Model;
use crate::lex::{Tok, TokKind};
use crate::{Diagnostics, Lint, Workspace};

/// Crates whose non-test code is held to the no-swallowing rule.
const SCOPED_PREFIXES: &[&str] = &["crates/engine/src/", "crates/oracle/src/"];

/// See the module docs.
pub struct ErrorSwallow;

impl Lint for ErrorSwallow {
    fn name(&self) -> &'static str {
        "error-swallow"
    }

    fn description(&self) -> &'static str {
        "no `let _ =`/`.ok();`/ignored results discarding DbError/VfsError/RecoveryError"
    }

    fn check(&self, ws: &Workspace, diags: &mut Diagnostics) {
        let m = &ws.model;
        for fn_idx in 0..m.fns.len() {
            let node = &m.fns[fn_idx];
            let rel = m.rel_of(fn_idx).to_string();
            if node.item.is_test
                || node.item.body.is_empty()
                || !SCOPED_PREFIXES.iter().any(|p| rel.starts_with(p))
            {
                continue;
            }
            let toks = m.toks_of(fn_idx);
            let body = node.item.body.clone();
            for i in body.clone() {
                // `let _ = EXPR ;` where EXPR calls something fallible and
                // does not itself propagate with `?`.
                if toks[i].is_ident("let")
                    && toks.get(i + 1).is_some_and(|t| t.is_ident("_"))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct('='))
                {
                    let end = stmt_end(toks, i + 3, body.end);
                    let has_question = toks[i + 3..end].iter().any(|t| t.is_punct('?'));
                    if has_question {
                        continue;
                    }
                    if let Some(callee) = first_fallible_call(m, fn_idx, i + 3, end) {
                        diags.emit(
                            self.name(),
                            &rel,
                            toks[i].line,
                            format!(
                                "`let _ =` discards the {} result of `{callee}`; handle it, \
                                 propagate with `?`, or waive with a justification",
                                "fallible"
                            ),
                        );
                    }
                }
                // Statement-position `….ok();` erasing a fallible result.
                if toks[i].is_ident("ok")
                    && i > body.start
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
                    && toks.get(i + 3).is_some_and(|t| t.is_punct(';'))
                {
                    let stmt_start = stmt_start(toks, i, body.start);
                    if first_fallible_call(m, fn_idx, stmt_start, i).is_some() {
                        diags.emit(
                            self.name(),
                            &rel,
                            toks[i].line,
                            "`.ok();` in statement position erases a typed error; handle it, \
                             propagate with `?`, or waive with a justification"
                                .to_string(),
                        );
                    }
                }
            }
            // Bare `fallible(…);` statements: the whole statement is one
            // call whose must-use result is dropped.
            for site in &m.sites[fn_idx] {
                if site.targets.iter().any(|&t| m.returns_fallible(t)) {
                    let open = site.tok + 1;
                    let Some(close) = crate::callgraph::match_group(toks, open) else { continue };
                    if !toks.get(close + 1).is_some_and(|t| t.is_punct(';')) {
                        continue;
                    }
                    let start = stmt_start(toks, site.tok, body.start);
                    // The statement must consist only of the call chain
                    // (receiver + call), i.e. start..close is the site.
                    let leading_ok = toks[start..site.tok].iter().all(|t| {
                        t.kind == TokKind::Ident && !t.is_ident("let") || t.is_punct('.')
                            || t.is_punct(':')
                            || t.is_punct('&')
                            || t.is_punct('*')
                    });
                    if leading_ok && !toks[start..site.tok].iter().any(|t| t.is_punct('=')) {
                        let callee = site
                            .targets
                            .first()
                            .map(|&t| m.display_name(t))
                            .unwrap_or_else(|| site.name.clone());
                        diags.emit(
                            self.name(),
                            &rel,
                            site.line,
                            format!(
                                "result of fallible `{callee}` is discarded; handle it or \
                                 propagate with `?`"
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Token index one past the end of the statement starting at `from`
/// (the `;` at nesting depth zero, or `end`).
fn stmt_end(toks: &[Tok], from: usize, end: usize) -> usize {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().take(end).skip(from) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return k;
        }
    }
    end
}

/// Token index where the statement containing `at` starts (just after the
/// previous top-level `;`, `{` or `}`).
fn stmt_start(toks: &[Tok], at: usize, floor: usize) -> usize {
    let mut k = at;
    let mut depth = 0i64;
    while k > floor {
        let t = &toks[k - 1];
        if t.is_punct(')') || t.is_punct(']') {
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') {
            if depth == 0 {
                return k;
            }
            depth -= 1;
        } else if depth == 0 && (t.is_punct(';') || t.is_punct('{') || t.is_punct('}')) {
            return k;
        }
        k -= 1;
    }
    floor
}

/// The display name of the first call in `start..end` whose resolved
/// target returns a repo error type.
fn first_fallible_call(m: &Model, fn_idx: usize, start: usize, end: usize) -> Option<String> {
    for site in &m.sites[fn_idx] {
        if site.tok < start || site.tok >= end {
            continue;
        }
        if let Some(&t) = site.targets.iter().find(|&&t| m.returns_fallible(t)) {
            return Some(m.display_name(t));
        }
    }
    None
}
