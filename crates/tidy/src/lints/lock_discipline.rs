//! Lint: session paths follow the engine's declared lock discipline.
//!
//! PR 6's session manager made `server.rs` a concurrent surface: multiple
//! terminals interleave DML while `LockTable` row locks are held until
//! commit. The WAL protocol only stays deadlock- and corruption-free if
//! three rules hold, and this lint checks all three over the call graph:
//!
//! 1. **Chokepoint** — `LockTable::lock_row` is called only from the
//!    `lock_for_dml` chokepoint (the lock manager's own crate is exempt).
//!    Scattered acquisition sites are how lock-order cycles get written.
//! 2. **Declared order** — in any fn that both acquires row locks and
//!    appends WAL (`lock_for_dml` + `append_record`), acquisition comes
//!    first: redo is never written for a row the session does not own.
//! 3. **Sanctioned writers** — fns reachable from the session entry
//!    points (`connect`, DML, `commit`, `rollback`) may touch the VFS
//!    write surface only inside the declared writer fns (redo append,
//!    log switch, checkpoint block flush). Any new direct write while row
//!    locks may be held must be routed through those or explicitly waived.

use crate::callgraph::CallStyle;
use crate::{Diagnostics, Lint, Workspace};

/// The session-facing entry points in `server.rs`.
const SESSION_ENTRIES: &[&str] =
    &["connect", "disconnect", "insert", "insert_batch", "update", "delete", "commit", "rollback"];

/// The single sanctioned acquisition chokepoint.
const CHOKEPOINT: &str = "lock_for_dml";

/// Fns allowed to perform direct VFS writes on session paths: the WAL
/// writers and the checkpoint/log-switch machinery they trigger
/// (`archive_seq` runs synchronously inside `log_switch`, as the paper's
/// DBMS does when the archiver falls behind).
const SANCTIONED_WRITERS: &[&str] =
    &["flush_redo", "log_switch", "full_checkpoint", "write_dirty", "write_block", "archive_seq"];

/// The VFS write surface (methods of `SimFs`).
const VFS_WRITE_METHODS: &[&str] =
    &["write_block", "append", "append_padded", "truncate", "copy_file", "restore_into"];

/// See the module docs.
pub struct LockDiscipline;

impl Lint for LockDiscipline {
    fn name(&self) -> &'static str {
        "lock-discipline"
    }

    fn description(&self) -> &'static str {
        "lock_row only via lock_for_dml, locks before WAL append, writes via sanctioned fns"
    }

    fn check(&self, ws: &Workspace, diags: &mut Diagnostics) {
        let m = &ws.model;
        let server_rel = "crates/engine/src/server.rs";
        if ws.file(server_rel).is_none() {
            return;
        }

        // Rule 1: chokepoint.
        for fn_idx in 0..m.fns.len() {
            let node = &m.fns[fn_idx];
            let rel = m.rel_of(fn_idx);
            if node.item.is_test
                || !rel.starts_with("crates/engine/")
                || rel.ends_with("/txn.rs")
                || node.item.name == CHOKEPOINT
            {
                continue;
            }
            for site in &m.sites[fn_idx] {
                if site.name == "lock_row" && site.style == CallStyle::Method {
                    diags.emit(
                        self.name(),
                        rel,
                        site.line,
                        format!(
                            "`lock_row` called outside the `{CHOKEPOINT}` chokepoint \
                             (in `{}`); all row-lock acquisition goes through one site \
                             so the lock order stays auditable",
                            m.display_name(fn_idx)
                        ),
                    );
                }
            }
        }

        // Rule 2: declared order — lock acquisition precedes WAL append
        // within any fn doing both.
        for fn_idx in 0..m.fns.len() {
            let node = &m.fns[fn_idx];
            if node.item.is_test || m.rel_of(fn_idx) != server_rel {
                continue;
            }
            let first_lock =
                m.sites[fn_idx].iter().find(|s| s.name == CHOKEPOINT).map(|s| s.tok);
            let first_append = m.sites[fn_idx]
                .iter()
                .find(|s| s.name == "append_record" || s.name == "try_append_record")
                .map(|s| (s.tok, s.line));
            if let (Some(lock_tok), Some((append_tok, append_line))) = (first_lock, first_append)
            {
                if append_tok < lock_tok {
                    diags.emit(
                        self.name(),
                        server_rel,
                        append_line,
                        format!(
                            "`{}` appends WAL before acquiring row locks via \
                             `{CHOKEPOINT}`; the declared order is lock first, then redo",
                            m.display_name(fn_idx)
                        ),
                    );
                }
            }
        }

        // Rule 3: sanctioned writers on session paths.
        let entries: Vec<usize> = (0..m.fns.len())
            .filter(|&i| {
                m.rel_of(i) == server_rel
                    && !m.fns[i].item.is_test
                    && m.fns[i].item.impl_type.is_some()
                    && SESSION_ENTRIES.contains(&m.fns[i].item.name.as_str())
            })
            .collect();
        let reach = m.reachable(&entries);
        for &fn_idx in reach.keys() {
            let node = &m.fns[fn_idx];
            let rel = m.rel_of(fn_idx);
            if node.item.is_test
                || !rel.starts_with("crates/engine/")
                || SANCTIONED_WRITERS.contains(&node.item.name.as_str())
            {
                continue;
            }
            for site in &m.sites[fn_idx] {
                let is_vfs_write = site.style == CallStyle::Method
                    && VFS_WRITE_METHODS.contains(&site.name.as_str())
                    && site.recv_type.as_deref() == Some("SimFs");
                if is_vfs_write {
                    diags.emit(
                        self.name(),
                        rel,
                        site.line,
                        format!(
                            "direct `SimFs::{}` on a session path (via {}) outside the \
                             sanctioned writers [{}]; row locks may be held here — route \
                             the write or waive with a justification",
                            site.name,
                            m.trace(&reach, fn_idx),
                            SANCTIONED_WRITERS.join(", ")
                        ),
                    );
                }
            }
        }
    }
}
