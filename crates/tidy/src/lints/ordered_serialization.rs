//! Lint: modules whose output must be byte-stable may not use
//! `HashMap`/`HashSet`.
//!
//! The JSONL event exporter, the report renderers, the schedule codec and
//! the differential-diff module all promise byte-identical output for
//! identical runs — the determinism regression tests compare their output
//! verbatim. Iterating a `std::collections` hash container leaks the
//! (env-seeded) hasher's order into that output. Use `BTreeMap`/`BTreeSet`
//! or a `Vec`; the engine-internal fasthash cache and scratch maps live in
//! other modules and are unaffected.

use crate::{Diagnostics, Lint, Workspace};

/// Modules with byte-stable output contracts (workspace-relative).
const ORDERED_FILES: &[&str] = &[
    "crates/engine/src/codec.rs",
    "crates/engine/src/events.rs",
    "crates/core/src/report.rs",
    "crates/core/src/measures.rs",
    "crates/core/src/experiment.rs",
    "crates/faults/src/schedule.rs",
    "crates/oracle/src/diff.rs",
    // Snapshot manifests hash to the template identity; hash-order
    // iteration would make equal disk images disagree on their id.
    "crates/vfs/src/snapshot.rs",
];

/// See the module docs.
pub struct OrderedSerialization;

impl Lint for OrderedSerialization {
    fn name(&self) -> &'static str {
        "ordered-serialization"
    }

    fn description(&self) -> &'static str {
        "no HashMap/HashSet in codec, event-export and report modules"
    }

    fn check(&self, ws: &Workspace, diags: &mut Diagnostics) {
        for rel in ORDERED_FILES {
            let Some(f) = ws.file(rel) else { continue };
            for (i, code) in f.code.iter().enumerate() {
                if let Some(pat) = ["HashMap", "HashSet"].iter().find(|p| code.contains(*p)) {
                    diags.emit(
                        self.name(),
                        &f.rel,
                        i + 1,
                        format!(
                            "`{pat}` in a byte-stable-output module; iteration order is \
                             env-seeded — use BTreeMap/BTreeSet or a Vec"
                        ),
                    );
                }
            }
        }
    }
}
