//! Lint: modules whose output must be byte-stable may not use
//! `HashMap`/`HashSet`.
//!
//! The JSONL event exporter, the report renderers, the schedule codec and
//! the differential-diff module all promise byte-identical output for
//! identical runs — the determinism regression tests compare their output
//! verbatim. Iterating a `std::collections` hash container leaks the
//! (env-seeded) hasher's order into that output. Use `BTreeMap`/`BTreeSet`
//! or a `Vec`; the engine-internal fasthash cache and scratch maps live in
//! other modules and are unaffected.

use crate::{Diagnostics, Lint, Workspace};

/// Modules with byte-stable output contracts (workspace-relative).
const ORDERED_FILES: &[&str] = &[
    "crates/engine/src/codec.rs",
    "crates/engine/src/events.rs",
    "crates/core/src/report.rs",
    "crates/core/src/measures.rs",
    "crates/core/src/experiment.rs",
    "crates/faults/src/schedule.rs",
    "crates/oracle/src/diff.rs",
    // Snapshot manifests hash to the template identity; hash-order
    // iteration would make equal disk images disagree on their id.
    "crates/vfs/src/snapshot.rs",
];

/// See the module docs.
pub struct OrderedSerialization;

impl Lint for OrderedSerialization {
    fn name(&self) -> &'static str {
        "ordered-serialization"
    }

    fn description(&self) -> &'static str {
        "no HashMap/HashSet in codec, event-export and report modules"
    }

    fn check(&self, ws: &Workspace, diags: &mut Diagnostics) {
        for rel in ORDERED_FILES {
            let Some(f) = ws.file(rel) else { continue };
            for (i, code) in f.code.iter().enumerate() {
                if let Some(pat) = ["HashMap", "HashSet"].iter().find(|p| code.contains(*p)) {
                    diags.emit(
                        self.name(),
                        &f.rel,
                        i + 1,
                        format!(
                            "`{pat}` in a byte-stable-output module; iteration order is \
                             env-seeded — use BTreeMap/BTreeSet or a Vec"
                        ),
                    );
                }
            }
        }
        // Alias-aware pass: a hash container smuggled in as
        // `use std::collections::HashMap as Map` (possibly through a
        // workspace `pub use` re-export) or a `type Fast = HashMap<…>`
        // alias defined elsewhere evades the name match above; resolve
        // bindings through the use table and the workspace alias table.
        let m = &ws.model;
        for (fi, fm) in m.files.iter().enumerate() {
            if !ORDERED_FILES.contains(&fm.rel.as_str()) {
                continue;
            }
            let mut hashy: Vec<String> = fm
                .items
                .uses
                .iter()
                .filter_map(|u| {
                    let resolved = m.resolve_use(fi, &u.binding)?;
                    (is_hash_container(&resolved) && !resolved.ends_with(&u.binding))
                        .then(|| u.binding.clone())
                })
                .collect();
            // Workspace type aliases whose target is a hash container
            // (e.g. `pub type FastMap<K, V> = HashMap<K, V, FastState>`).
            for fm2 in &m.files {
                for a in &fm2.items.aliases {
                    if is_hash_container(&a.target) && !hashy.contains(&a.name) {
                        hashy.push(a.name.clone());
                    }
                }
            }
            for t in &fm.items.toks {
                if hashy.iter().any(|b| t.is_ident(b)) {
                    diags.emit(
                        self.name(),
                        &fm.rel,
                        t.line,
                        format!(
                            "`{}` resolves to a std hash container; iteration order is \
                             env-seeded — use BTreeMap/BTreeSet or a Vec",
                            t.text
                        ),
                    );
                }
            }
        }
    }
}

/// Whether a resolved path or alias target names a std hash container.
fn is_hash_container(path_or_target: &str) -> bool {
    ["HashMap", "HashSet"].iter().any(|h| {
        path_or_target.ends_with(h)
            || path_or_target.contains(&format!("{h} <"))
            || path_or_target.contains(&format!("{h}<"))
    })
}
