//! The lint registry. Adding a lint: write a module with a unit struct
//! implementing [`Lint`](crate::Lint), push it in [`all`], document it in
//! `DESIGN.md` §12, and add a violation fixture under
//! `tests/fixtures/violations/` so the framework tests pin its
//! `file:line` behaviour.

use crate::Lint;

pub mod determinism;
pub mod error_swallow;
pub mod lock_discipline;
pub mod ordered_serialization;
pub mod panic_freedom;
pub mod sabotage_isolation;
pub mod schema_conformance;
pub mod sorted_uses;
pub mod write_site_coverage;

/// Every registered lint, in the order they run and are listed.
pub fn all() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(determinism::Determinism),
        Box::new(panic_freedom::PanicFreedom),
        Box::new(error_swallow::ErrorSwallow),
        Box::new(lock_discipline::LockDiscipline),
        Box::new(write_site_coverage::WriteSiteCoverage),
        Box::new(ordered_serialization::OrderedSerialization),
        Box::new(sorted_uses::SortedUses),
        Box::new(schema_conformance::SchemaConformance),
        Box::new(sabotage_isolation::SabotageIsolation),
    ]
}
