//! Item-level parser over the token stream: `use` declarations (with
//! aliases and nested groups), `struct` fields, `type` aliases, `impl`
//! blocks and `fn` items with parameter and return types.
//!
//! This is the layer the call graph and the use-resolution lints build
//! on. It is deliberately approximate — no generics instantiation, no
//! type inference — but it is *syntax*-aware where the old tidy was
//! line-oriented: an aliased `use std::collections::HashMap as Map`
//! resolves, a fn body is a token range, and `impl T { fn m }` methods
//! know their `Self` type.

use crate::lex::{lex, Tok, TokKind};

/// One `use` declaration leaf: the full path and the name it binds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    /// 1-based line of the leaf.
    pub line: usize,
    /// Full `::`-joined path, e.g. `std::collections::HashMap`.
    pub path: String,
    /// The name visible in this file (`Map` for `… as Map`, otherwise the
    /// last path segment; `*` for glob imports).
    pub binding: String,
    /// Whether the declaration is `pub use` (a re-export).
    pub is_pub: bool,
}

/// A `struct` definition with its named fields (tuple structs keep an
/// empty field list — no lint needs their positional types).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructItem {
    /// Type name.
    pub name: String,
    /// `(field, type)` pairs; the type is the raw token text joined.
    pub fields: Vec<(String, String)>,
}

/// A `type Alias = Target;` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeAlias {
    /// Alias name.
    pub name: String,
    /// Raw target type text.
    pub target: String,
}

/// One `fn` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// `Self` type when defined inside `impl Type` / `impl Trait for Type`.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// `(name, type)` pairs for named parameters; a `self` receiver is
    /// recorded as `("self", <impl type>)`.
    pub params: Vec<(String, String)>,
    /// Raw return-type text (empty for `()` / none).
    pub ret: String,
    /// Token index range of the body (exclusive of the braces); empty for
    /// bodyless trait-method declarations.
    pub body: std::ops::Range<usize>,
    /// Whether the fn sits in a `#[cfg(test)]` region or carries a
    /// `#[test]`-like attribute.
    pub is_test: bool,
    /// Entry-point roles declared by `// tidy-entry(<role>)` marker
    /// comments directly above the fn (e.g. `recovery`).
    pub entry_roles: Vec<String>,
}

/// Everything parsed out of one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Token stream (comment-free).
    pub toks: Vec<Tok>,
    /// `use` declarations.
    pub uses: Vec<UseDecl>,
    /// Struct definitions.
    pub structs: Vec<StructItem>,
    /// Type aliases.
    pub aliases: Vec<TypeAlias>,
    /// Function items, in source order.
    pub fns: Vec<FnItem>,
}

/// Parses one file. `lines` is the raw line table (for marker comments);
/// `in_test_region` reports whether a 1-based line sits under
/// `#[cfg(test)]`.
pub fn parse(text: &str, lines: &[String], in_test_region: &dyn Fn(usize) -> bool) -> FileItems {
    let toks = lex(text);
    let mut out = FileItems { toks, ..FileItems::default() };
    let mut p = Parser {
        toks: &out.toks,
        i: 0,
        lines,
        in_test_region,
        uses: &mut out.uses,
        structs: &mut out.structs,
        aliases: &mut out.aliases,
        fns: &mut out.fns,
    };
    p.items(None);
    out
}

struct Parser<'a> {
    toks: &'a [Tok],
    i: usize,
    lines: &'a [String],
    in_test_region: &'a dyn Fn(usize) -> bool,
    uses: &'a mut Vec<UseDecl>,
    structs: &'a mut Vec<StructItem>,
    aliases: &'a mut Vec<TypeAlias>,
    fns: &'a mut Vec<FnItem>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i)
    }

    fn bump(&mut self) -> Option<&Tok> {
        let t = self.toks.get(self.i);
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    /// Skips one attribute `#[…]` / `#![…]`, returning its joined text.
    fn attr_text(&mut self) -> String {
        // Caller saw `#`; consume it, optional `!`, then the bracket group.
        let mut text = String::new();
        self.i += 1;
        if self.peek().is_some_and(|t| t.is_punct('!')) {
            self.i += 1;
        }
        if self.peek().is_some_and(|t| t.is_punct('[')) {
            let mut depth = 0usize;
            while let Some(t) = self.toks.get(self.i) {
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        self.i += 1;
                        break;
                    }
                }
                if !text.is_empty() {
                    text.push(' ');
                }
                text.push_str(&t.text);
                self.i += 1;
            }
        }
        text
    }

    /// Skips a balanced `<…>` generics group if one starts here. Handles
    /// nested angles; `->` inside generics does not occur at item level.
    fn skip_generics(&mut self) {
        if !self.peek().is_some_and(|t| t.is_punct('<')) {
            return;
        }
        let mut depth = 0i64;
        while let Some(t) = self.toks.get(self.i) {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
                if depth <= 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// Consumes a balanced brace block starting at the current `{`,
    /// recursing for nested items. Returns the body token range
    /// (exclusive of both braces).
    fn brace_block(&mut self, impl_type: Option<&str>, descend: bool) -> std::ops::Range<usize> {
        debug_assert!(self.peek().is_some_and(|t| t.is_punct('{')));
        self.i += 1;
        let start = self.i;
        if descend {
            self.items(impl_type);
        } else {
            let mut depth = 1i64;
            while let Some(t) = self.toks.get(self.i) {
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                self.i += 1;
            }
        }
        let end = self.i;
        self.i += 1; // past the closing `}`
        start..end
    }

    /// Parses items until end of stream or an unmatched `}` (the caller's
    /// closing brace).
    fn items(&mut self, impl_type: Option<&str>) {
        let mut pending_attrs: Vec<String> = Vec::new();
        while let Some(t) = self.peek() {
            if t.is_punct('}') {
                return;
            }
            if t.is_punct('#') {
                pending_attrs.push(self.attr_text());
                continue;
            }
            let attrs = std::mem::take(&mut pending_attrs);
            match t.text.as_str() {
                "use" => self.use_decl(false),
                "pub" => {
                    // `pub`, `pub(crate)`, … then re-dispatch on the next
                    // keyword with attributes preserved.
                    self.i += 1;
                    if self.peek().is_some_and(|t| t.is_punct('(')) {
                        self.paren_group();
                    }
                    match self.peek().map(|t| t.text.clone()).unwrap_or_default().as_str() {
                        "use" => self.use_decl(true),
                        "fn" => self.fn_item(impl_type, &attrs),
                        "struct" => self.struct_item(),
                        "type" => self.type_alias(),
                        _ => self.i += 1,
                    }
                }
                "fn" => self.fn_item(impl_type, &attrs),
                "struct" => self.struct_item(),
                "type" => self.type_alias(),
                "impl" => self.impl_block(),
                "mod" | "trait" => {
                    // `mod name { … }` / `trait Name { … }`: descend (trait
                    // method decls become bodyless FnItems).
                    self.i += 1;
                    while let Some(t) = self.peek() {
                        if t.is_punct('{') || t.is_punct(';') {
                            break;
                        }
                        self.i += 1;
                    }
                    if self.peek().is_some_and(|t| t.is_punct('{')) {
                        self.brace_block(None, true);
                    } else {
                        self.i += 1;
                    }
                }
                _ => {
                    // Not an item head (enum/const/static/macro/…): skip to
                    // the next `;` or balanced `{}` at this level.
                    self.skip_item_like();
                }
            }
        }
    }

    /// Skips a non-fn item: everything to the first `;` or through the
    /// first balanced brace block.
    fn skip_item_like(&mut self) {
        while let Some(t) = self.peek() {
            if t.is_punct(';') {
                self.i += 1;
                return;
            }
            if t.is_punct('{') {
                self.brace_block(None, false);
                return;
            }
            if t.is_punct('}') {
                return;
            }
            self.i += 1;
        }
    }

    /// Skips a balanced `(…)` group.
    fn paren_group(&mut self) -> std::ops::Range<usize> {
        let mut depth = 0i64;
        let start = self.i + 1;
        while let Some(t) = self.toks.get(self.i) {
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return start..self.i - 1;
                }
            }
            self.i += 1;
        }
        start..self.i
    }

    fn use_decl(&mut self, is_pub: bool) {
        let line = self.peek().map_or(0, |t| t.line);
        self.i += 1; // `use`
        let mut prefix: Vec<String> = Vec::new();
        self.use_tree(&mut prefix, line, is_pub);
        if self.peek().is_some_and(|t| t.is_punct(';')) {
            self.i += 1;
        }
    }

    /// Recursive `use` tree: `a::b::{c, d as e, f::*}`.
    fn use_tree(&mut self, prefix: &mut Vec<String>, line: usize, is_pub: bool) {
        let depth_at_entry = prefix.len();
        let mut segs: Vec<String> = Vec::new();
        loop {
            match self.peek() {
                Some(t) if t.kind == TokKind::Ident => {
                    segs.push(t.text.clone());
                    self.i += 1;
                }
                Some(t) if t.is_punct('*') => {
                    segs.push("*".to_string());
                    self.i += 1;
                }
                Some(t) if t.is_punct('{') => {
                    self.i += 1;
                    prefix.append(&mut segs);
                    loop {
                        self.use_tree(prefix, line, is_pub);
                        match self.peek() {
                            Some(t) if t.is_punct(',') => self.i += 1,
                            _ => break,
                        }
                    }
                    if self.peek().is_some_and(|t| t.is_punct('}')) {
                        self.i += 1;
                    }
                    prefix.truncate(depth_at_entry);
                    return;
                }
                _ => break,
            }
            // `::` continues the path; `as` renames; anything else ends it.
            match self.peek() {
                Some(t) if t.is_punct(':') => {
                    self.i += 1;
                    if self.peek().is_some_and(|t| t.is_punct(':')) {
                        self.i += 1;
                    }
                }
                Some(t) if t.is_ident("as") => {
                    self.i += 1;
                    let alias =
                        self.bump().map(|t| t.text.clone()).unwrap_or_default();
                    self.push_use(prefix, &segs, Some(alias), line, is_pub);
                    return;
                }
                _ => break,
            }
        }
        if !segs.is_empty() {
            self.push_use(prefix, &segs, None, line, is_pub);
        }
    }

    fn push_use(
        &mut self,
        prefix: &[String],
        segs: &[String],
        alias: Option<String>,
        line: usize,
        is_pub: bool,
    ) {
        let full: Vec<&str> =
            prefix.iter().map(String::as_str).chain(segs.iter().map(String::as_str)).collect();
        let binding = alias.unwrap_or_else(|| (*full.last().unwrap_or(&"")).to_string());
        self.uses.push(UseDecl { line, path: full.join("::"), binding, is_pub });
    }

    fn struct_item(&mut self) {
        self.i += 1; // `struct`
        let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
        self.skip_generics();
        // Tuple struct or unit struct: skip to `;`.
        if !self.peek().is_some_and(|t| t.is_punct('{')) {
            self.skip_item_like();
            if !name.is_empty() {
                self.structs.push(StructItem { name, fields: Vec::new() });
            }
            return;
        }
        let body = self.brace_block(None, false);
        let mut fields = Vec::new();
        let mut j = body.start;
        let mut depth = 0i64;
        while j < body.end {
            let t = &self.toks[j];
            if t.is_punct('(') || t.is_punct('<') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct('>') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0
                && t.kind == TokKind::Ident
                && self.toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
                && !self.toks.get(j + 2).is_some_and(|n| n.is_punct(':'))
            {
                // `name: Type` at field level — collect the type text up to
                // the field-separating comma.
                let fname = t.text.clone();
                let mut ty = String::new();
                let mut k = j + 2;
                let mut tdepth = 0i64;
                while k < body.end {
                    let tt = &self.toks[k];
                    if tt.is_punct('<') || tt.is_punct('(') || tt.is_punct('[') {
                        tdepth += 1;
                    } else if tt.is_punct('>') || tt.is_punct(')') || tt.is_punct(']') {
                        tdepth -= 1;
                    } else if tt.is_punct(',') && tdepth <= 0 {
                        break;
                    }
                    if !ty.is_empty() && tt.kind == TokKind::Ident {
                        ty.push(' ');
                    }
                    ty.push_str(&tt.text);
                    k += 1;
                }
                fields.push((fname, ty));
                j = k;
                continue;
            }
            j += 1;
        }
        self.structs.push(StructItem { name, fields });
    }

    fn type_alias(&mut self) {
        self.i += 1; // `type`
        let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
        self.skip_generics();
        if !self.peek().is_some_and(|t| t.is_punct('=')) {
            self.skip_item_like();
            return;
        }
        self.i += 1;
        let mut target = String::new();
        while let Some(t) = self.peek() {
            if t.is_punct(';') {
                self.i += 1;
                break;
            }
            if !target.is_empty() && t.kind == TokKind::Ident {
                target.push(' ');
            }
            target.push_str(&t.text);
            self.i += 1;
        }
        if !name.is_empty() {
            self.aliases.push(TypeAlias { name, target });
        }
    }

    fn impl_block(&mut self) {
        self.i += 1; // `impl`
        self.skip_generics();
        // Path until `for`, `{` or `where`.
        let mut first = String::new();
        let mut second: Option<String> = None;
        let mut current = &mut first;
        while let Some(t) = self.peek() {
            if t.is_punct('{') || t.is_ident("where") {
                break;
            }
            if t.is_ident("for") {
                self.i += 1;
                second = Some(String::new());
                current = second.as_mut().unwrap_or(&mut first);
                continue;
            }
            if t.kind == TokKind::Ident {
                // Keep only the last path segment (`crate::x::T` → `T`).
                *current = t.text.clone();
            }
            if t.is_punct('<') {
                self.skip_generics();
                continue;
            }
            self.i += 1;
        }
        // `impl T { }` → T; `impl Trait for T { }` → T.
        let self_ty = second.unwrap_or(first);
        while let Some(t) = self.peek() {
            if t.is_punct('{') {
                break;
            }
            self.i += 1; // `where` clauses
        }
        if self.peek().is_some_and(|t| t.is_punct('{')) {
            self.i += 1;
            self.items(Some(&self_ty));
            if self.peek().is_some_and(|t| t.is_punct('}')) {
                self.i += 1;
            }
        }
    }

    fn fn_item(&mut self, impl_type: Option<&str>, attrs: &[String]) {
        let line = self.peek().map_or(0, |t| t.line);
        self.i += 1; // `fn`
        let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
        self.skip_generics();
        let params_range = if self.peek().is_some_and(|t| t.is_punct('(')) {
            self.paren_group()
        } else {
            self.i..self.i
        };
        let params = self.parse_params(params_range, impl_type);
        // Return type: tokens between `->` and `{` / `where` / `;`.
        let mut ret = String::new();
        if self.peek().is_some_and(|t| t.is_punct('-'))
            && self.toks.get(self.i + 1).is_some_and(|t| t.is_punct('>'))
        {
            self.i += 2;
            let mut depth = 0i64;
            while let Some(t) = self.peek() {
                if depth == 0 && (t.is_punct('{') || t.is_punct(';') || t.is_ident("where")) {
                    break;
                }
                if t.is_punct('<') || t.is_punct('(') {
                    depth += 1;
                } else if t.is_punct('>') || t.is_punct(')') {
                    depth -= 1;
                }
                if !ret.is_empty() && t.kind == TokKind::Ident {
                    ret.push(' ');
                }
                ret.push_str(&t.text);
                self.i += 1;
            }
        }
        while let Some(t) = self.peek() {
            if t.is_punct('{') || t.is_punct(';') {
                break;
            }
            self.i += 1; // `where` clause
        }
        let body = if self.peek().is_some_and(|t| t.is_punct('{')) {
            self.brace_block(None, false)
        } else {
            self.i += 1; // bodyless trait declaration
            self.i..self.i
        };
        let is_test = (self.in_test_region)(line)
            || attrs.iter().any(|a| a == "test" || a.contains("cfg ( test") || a.contains("cfg(test"));
        self.fns.push(FnItem {
            entry_roles: entry_markers(self.lines, line),
            name,
            impl_type: impl_type.map(str::to_string),
            line,
            params,
            ret,
            body,
            is_test,
        });
    }

    fn parse_params(
        &self,
        range: std::ops::Range<usize>,
        impl_type: Option<&str>,
    ) -> Vec<(String, String)> {
        let mut params = Vec::new();
        let toks = &self.toks[range.clone()];
        // Split on top-level commas.
        let mut depth = 0i64;
        let mut start = 0usize;
        let mut groups: Vec<&[Tok]> = Vec::new();
        for (k, t) in toks.iter().enumerate() {
            if t.is_punct('(') || t.is_punct('<') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct('>') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct(',') && depth == 0 {
                groups.push(&toks[start..k]);
                start = k + 1;
            }
        }
        if start < toks.len() {
            groups.push(&toks[start..]);
        }
        for g in groups {
            if g.iter().any(|t| t.is_ident("self")) && !g.iter().any(|t| t.is_punct(':')) {
                params.push(("self".to_string(), impl_type.unwrap_or("").to_string()));
                continue;
            }
            let Some(colon) = g.iter().position(|t| t.is_punct(':')) else { continue };
            let Some(name_tok) = g[..colon].iter().rev().find(|t| t.kind == TokKind::Ident)
            else {
                continue;
            };
            let ty: String = g[colon + 1..]
                .iter()
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            params.push((name_tok.text.clone(), ty));
        }
        params
    }
}

/// Parses `// tidy-entry(<role>)` markers on the comment/attribute lines
/// directly above 1-based line `fn_line`.
fn entry_markers(lines: &[String], fn_line: usize) -> Vec<String> {
    let mut roles = Vec::new();
    let mut j = fn_line.saturating_sub(1); // 0-based index of the line above
    while j > 0 {
        j -= 1;
        let t = lines.get(j).map(|l| l.trim_start()).unwrap_or("");
        if t.starts_with("#[") || t.starts_with("///") || t.starts_with("//!") {
            continue;
        }
        if let Some(rest) = t.strip_prefix("//") {
            let rest = rest.trim();
            if let Some(inner) =
                rest.strip_prefix("tidy-entry(").and_then(|r| r.strip_suffix(')'))
            {
                roles.push(inner.trim().to_string());
            }
            continue;
        }
        break;
    }
    roles.reverse();
    roles
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_src(src: &str) -> FileItems {
        let lines: Vec<String> = src.lines().map(str::to_string).collect();
        parse(src, &lines, &|_| false)
    }

    #[test]
    fn parses_use_trees_with_aliases_and_groups() {
        let items = parse_src(
            "use std::collections::{HashMap as Map, BTreeMap, hash_map::Entry};\n\
             pub use crate::fs::SimFs;\n\
             use super::*;\n",
        );
        let got: Vec<(&str, &str, bool)> = items
            .uses
            .iter()
            .map(|u| (u.path.as_str(), u.binding.as_str(), u.is_pub))
            .collect();
        assert_eq!(
            got,
            vec![
                ("std::collections::HashMap", "Map", false),
                ("std::collections::BTreeMap", "BTreeMap", false),
                ("std::collections::hash_map::Entry", "Entry", false),
                ("crate::fs::SimFs", "SimFs", true),
                ("super::*", "*", false),
            ]
        );
    }

    #[test]
    fn parses_fns_methods_and_return_types() {
        let items = parse_src(
            "fn free(a: u64, fs: &mut SimFs) -> DbResult<RowId> { body(); }\n\
             impl DbServer {\n\
                 pub fn method(&mut self, s: SessionId) -> DbResult<()> { self.free(); }\n\
                 fn no_ret(&self) {}\n\
             }\n\
             impl Lint for PanicFreedom {\n\
                 fn name(&self) -> &'static str { \"x\" }\n\
             }\n",
        );
        let names: Vec<(&str, Option<&str>)> = items
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None),
                ("method", Some("DbServer")),
                ("no_ret", Some("DbServer")),
                ("name", Some("PanicFreedom")),
            ]
        );
        assert_eq!(items.fns[0].ret, "DbResult< RowId>");
        assert_eq!(items.fns[0].params[1], ("fs".to_string(), "& mut SimFs".to_string()));
        assert_eq!(items.fns[1].params[0], ("self".to_string(), "DbServer".to_string()));
        assert!(!items.fns[1].body.is_empty());
    }

    #[test]
    fn parses_struct_fields_and_type_aliases() {
        let items = parse_src(
            "pub struct Instance { pub catalog: Catalog, pub locks: LockTable, n: u64 }\n\
             pub type SharedFs = Arc<Mutex<SimFs>>;\n",
        );
        assert_eq!(items.structs.len(), 1);
        let f: Vec<(&str, &str)> = items.structs[0]
            .fields
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        assert_eq!(f, vec![("catalog", "Catalog"), ("locks", "LockTable"), ("n", "u64")]);
        assert_eq!(items.aliases[0].name, "SharedFs");
        assert!(items.aliases[0].target.contains("SimFs"));
    }

    #[test]
    fn entry_markers_attach_to_the_fn_below() {
        let src = "\
/// Docs.
// tidy-entry(recovery)
#[allow(dead_code)]
pub fn startup() -> DbResult<()> { Ok(()) }
fn unmarked() {}";
        let items = parse_src(src);
        assert_eq!(items.fns[0].entry_roles, vec!["recovery".to_string()]);
        assert!(items.fns[1].entry_roles.is_empty());
    }

    #[test]
    fn nested_mods_and_match_blocks_do_not_confuse_fn_bodies() {
        let src = "\
mod inner {
    pub fn a() { match x { Some(_) => {} None => {} } }
}
fn after() { if t { u(); } }";
        let items = parse_src(src);
        let names: Vec<&str> = items.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "after"]);
    }
}
