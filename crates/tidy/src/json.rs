//! A minimal JSON reader for artifact-shape checks.
//!
//! The workspace deliberately has no JSON dependency; the benchmark
//! binaries hand-write their reports and the schedule corpus has its own
//! bespoke parser in `recobench-faults`. Tidy only needs to *validate*
//! shapes — is this a JSON object, which keys does it have — so a small
//! recursive-descent reader is enough.

use std::collections::BTreeMap;

/// A parsed JSON value. Object keys are ordered so diagnostics are
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as f64 (shape checks never need exactness).
    Number(f64),
    /// A string (escape sequences decoded minimally).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Parses one complete JSON document.
///
/// # Errors
///
/// Returns a byte-offset description of the first syntax error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { b: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.b.get(self.pos).is_some_and(u8::is_ascii_whitespace) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.pos).copied()
    }

    fn eat(&mut self, ch: u8) -> Result<(), String> {
        if self.peek() == Some(ch) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", ch as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            map.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        while let Some(&c) = self.b.get(self.pos) {
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.b.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            // Shape checks never care about the exact
                            // code point; skip the four hex digits.
                            self.pos += 4;
                            out.push('?');
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => out.push(c as char),
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while self
            .b
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.b[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_report_like_documents() {
        let v = parse(r#"{"mode":"smoke","cells":[{"fault":"x","n":1.5}],"ok":true,"none":null}"#)
            .unwrap();
        let obj = v.as_object().unwrap();
        assert!(obj.contains_key("mode"));
        assert_eq!(obj["cells"].as_array().unwrap().len(), 1);
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "{\"a\":1} x", "nul"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn decodes_escapes() {
        let v = parse(r#""a\nb\"c""#).unwrap();
        assert_eq!(v, Value::String("a\nb\"c".into()));
    }
}
