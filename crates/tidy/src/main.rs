//! `recobench-tidy` — the repo's static-analysis wall.
//!
//! ```text
//! cargo run -p recobench-tidy               # lint the workspace, exit 1 on findings
//! cargo run -p recobench-tidy -- --list     # list registered lints
//! cargo run -p recobench-tidy -- --json tidy-report.json
//! cargo run -p recobench-tidy -- --root some/tree
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use recobench_tidy::{json_report, lints, run, Workspace};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                for lint in lints::all() {
                    println!("{:<24} {}", lint.name(), lint.description());
                }
                return ExitCode::SUCCESS;
            }
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json_out = args.next().map(PathBuf::from),
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "usage: recobench-tidy [--root DIR] [--json REPORT.json] [--list] [--quiet]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("recobench-tidy: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!(
                    "recobench-tidy: no workspace root found above the current directory \
                     (looked for Cargo.toml + crates/); pass --root"
                );
                return ExitCode::from(2);
            }
        },
    };

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("recobench-tidy: {e}");
            return ExitCode::from(2);
        }
    };
    let diagnostics = run(&ws);

    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, json_report(&ws, &diagnostics)) {
            eprintln!("recobench-tidy: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if diagnostics.is_empty() {
        if !quiet {
            println!(
                "tidy: {} files clean across {} lints",
                ws.files.len(),
                lints::all().len()
            );
        }
        ExitCode::SUCCESS
    } else {
        for d in &diagnostics {
            println!("{d}");
        }
        println!("tidy: {} violation(s)", diagnostics.len());
        ExitCode::FAILURE
    }
}

/// Walks upward from the current directory to the first directory that
/// looks like the workspace root (`Cargo.toml` next to `crates/`), so the
/// binary works from any subdirectory.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !pop(&mut dir) {
            return None;
        }
    }
}

fn pop(dir: &mut PathBuf) -> bool {
    let parent: Option<&Path> = dir.parent();
    match parent {
        Some(p) => {
            let p = p.to_path_buf();
            *dir = p;
            true
        }
        None => false,
    }
}
