//! `recobench-tidy` — the repo's static-analysis wall.
//!
//! ```text
//! cargo run -p recobench-tidy               # lint the workspace, exit 1 on findings
//! cargo run -p recobench-tidy -- --list     # list registered lints
//! cargo run -p recobench-tidy -- --json tidy-report.json
//! cargo run -p recobench-tidy -- --write-sites write-sites.json
//! cargo run -p recobench-tidy -- --fix --dry-run
//! cargo run -p recobench-tidy -- --root some/tree
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use recobench_tidy::lints::write_site_coverage;
use recobench_tidy::{fix, json_report, lints, run, RunStats, Workspace};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut write_sites_out: Option<PathBuf> = None;
    let mut quiet = false;
    let mut do_fix = false;
    let mut dry_run = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                for lint in lints::all() {
                    println!("{:<24} {}", lint.name(), lint.description());
                }
                return ExitCode::SUCCESS;
            }
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json_out = args.next().map(PathBuf::from),
            "--write-sites" => write_sites_out = args.next().map(PathBuf::from),
            "--fix" => do_fix = true,
            "--dry-run" => dry_run = true,
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "usage: recobench-tidy [--root DIR] [--json REPORT.json] \
                     [--write-sites SITES.json] [--fix [--dry-run]] [--list] [--quiet]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("recobench-tidy: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    if dry_run && !do_fix {
        eprintln!("recobench-tidy: --dry-run only makes sense with --fix");
        return ExitCode::from(2);
    }

    let root = match root {
        Some(r) => r,
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!(
                    "recobench-tidy: no workspace root found above the current directory \
                     (looked for Cargo.toml + crates/); pass --root"
                );
                return ExitCode::from(2);
            }
        },
    };

    #[allow(clippy::disallowed_methods)]
    // tidy-allow(determinism): tidy measures its own analysis cost for the --json report
    let started = std::time::Instant::now();
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("recobench-tidy: {e}");
            return ExitCode::from(2);
        }
    };
    let diagnostics = run(&ws);
    let stats = RunStats::for_workspace(&ws, started.elapsed().as_millis());

    if let Some(path) = &write_sites_out {
        let (sites, _) = write_site_coverage::engine_write_sites(&ws);
        let manifest = write_site_coverage::manifest_json(&sites);
        let write_res = if path.as_os_str() == "-" {
            print!("{manifest}");
            Ok(())
        } else {
            std::fs::write(path, manifest)
        };
        if let Err(e) = write_res {
            eprintln!("recobench-tidy: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, json_report(&ws, &diagnostics, &stats)) {
            eprintln!("recobench-tidy: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if do_fix {
        match fix::run(&ws, &diagnostics, dry_run) {
            Ok((diff, changed)) => {
                if !diff.is_empty() {
                    print!("{diff}");
                }
                println!(
                    "tidy --fix{}: {changed} file(s) {}",
                    if dry_run { " --dry-run" } else { "" },
                    if dry_run { "would change" } else { "changed" }
                );
                if !dry_run && changed > 0 {
                    println!("re-run tidy: inserted waivers carry FIXME reasons and stay red");
                }
            }
            Err(e) => {
                eprintln!("recobench-tidy: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if diagnostics.is_empty() {
        if !quiet {
            println!(
                "tidy: {} files clean across {} lints ({} fns, {} call edges, {} ms)",
                ws.files.len(),
                lints::all().len(),
                stats.fns,
                stats.edges,
                stats.millis
            );
        }
        ExitCode::SUCCESS
    } else {
        for d in &diagnostics {
            println!("{d}");
        }
        println!("tidy: {} violation(s)", diagnostics.len());
        ExitCode::FAILURE
    }
}

/// Walks upward from the current directory to the first directory that
/// looks like the workspace root (`Cargo.toml` next to `crates/`), so the
/// binary works from any subdirectory.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !pop(&mut dir) {
            return None;
        }
    }
}

fn pop(dir: &mut PathBuf) -> bool {
    let parent: Option<&Path> = dir.parent();
    match parent {
        Some(p) => {
            let p = p.to_path_buf();
            *dir = p;
            true
        }
        None => false,
    }
}
