//! `tidy --fix`: mechanical rewrites for the diagnostics that have one.
//!
//! Three fix classes, all line-based so `--dry-run` can show an honest
//! diff:
//!
//! * **sorted-uses** — re-sort the offending `use` block in place;
//! * **unused-allow** (stale) — delete the dead waiver comment (the whole
//!   line when the line is only the comment, otherwise the comment tail);
//! * **everything else waivable** — insert a `// tidy-allow(<lint>):
//!   FIXME — justify this waiver` template above the offending line. The
//!   FIXME reason keeps the tree red (the waiver-hygiene check flags
//!   placeholder justifications), so `--fix` never silently launders a
//!   real finding; it only drafts the waiver for a human to justify.
//!
//! `--fix --dry-run` prints the per-file diffs and writes nothing.

use std::collections::BTreeMap;

use crate::lints::sorted_uses;
use crate::{Diagnostic, Workspace};

/// One planned line edit (0-based line indexes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Edit {
    /// Insert `text` as a new line *above* line `line`.
    Insert {
        /// 0-based insertion point.
        line: usize,
        /// The full new line.
        text: String,
    },
    /// Delete line `line` entirely.
    Delete {
        /// 0-based line to remove.
        line: usize,
    },
    /// Replace line `line` with `text` (used to strip a trailing comment).
    Replace {
        /// 0-based line.
        line: usize,
        /// Replacement content.
        text: String,
    },
    /// Replace the inclusive 0-based block `start..=end` with `lines`.
    ReplaceBlock {
        /// First line of the block.
        start: usize,
        /// Last line of the block.
        end: usize,
        /// Replacement lines.
        lines: Vec<String>,
    },
}

/// The fix plan: per-file ordered edits.
pub type Plan = BTreeMap<String, Vec<Edit>>;

/// Lints whose only mechanical fix is a waiver template. `unused-allow`
/// and `sorted-uses` have real fixes; schema findings are data bugs a
/// waiver must not paper over.
fn template_waivable(lint: &str) -> bool {
    !matches!(lint, "unused-allow" | "sorted-uses" | "schema-conformance")
}

/// Builds the fix plan for `diagnostics`.
pub fn plan(ws: &Workspace, diagnostics: &[Diagnostic]) -> Plan {
    let mut plan: Plan = BTreeMap::new();
    for d in diagnostics {
        let Some(f) = ws.file(&d.file) else { continue };
        match d.lint {
            "sorted-uses" => {
                for (start, end) in sorted_uses::unsorted_blocks(&f.lines) {
                    if start + 1 != d.line {
                        continue;
                    }
                    let mut sorted: Vec<String> = f.lines[start..=end].to_vec();
                    sorted.sort();
                    plan.entry(d.file.clone()).or_default().push(Edit::ReplaceBlock {
                        start,
                        end,
                        lines: sorted,
                    });
                }
            }
            "unused-allow" => {
                if d.message.contains("FIXME") {
                    continue; // a placeholder justification needs a human
                }
                let Some(line) = f.lines.get(d.line.saturating_sub(1)) else { continue };
                let Some(pos) = line.find("// tidy-allow(") else { continue };
                let edit = if line[..pos].trim().is_empty() {
                    Edit::Delete { line: d.line - 1 }
                } else {
                    Edit::Replace { line: d.line - 1, text: line[..pos].trim_end().to_string() }
                };
                plan.entry(d.file.clone()).or_default().push(edit);
            }
            lint if template_waivable(lint) && d.line > 0 => {
                let indent: String = f
                    .lines
                    .get(d.line - 1)
                    .map(|l| l.chars().take_while(|c| c.is_whitespace()).collect())
                    .unwrap_or_default();
                plan.entry(d.file.clone()).or_default().push(Edit::Insert {
                    line: d.line - 1,
                    text: format!("{indent}// tidy-allow({}): FIXME — justify this waiver", lint),
                });
            }
            _ => {}
        }
    }
    for edits in plan.values_mut() {
        edits.sort_by_key(|e| std::cmp::Reverse(edit_line(e)));
        edits.dedup();
    }
    plan
}

fn edit_line(e: &Edit) -> usize {
    match e {
        Edit::Insert { line, .. } | Edit::Delete { line } | Edit::Replace { line, .. } => *line,
        Edit::ReplaceBlock { start, .. } => *start,
    }
}

/// Applies one file's edits (already sorted bottom-up) to its lines.
pub fn apply_edits(lines: &[String], edits: &[Edit]) -> Vec<String> {
    let mut out: Vec<String> = lines.to_vec();
    for e in edits {
        match e {
            Edit::Insert { line, text } => {
                let at = (*line).min(out.len());
                out.insert(at, text.clone());
            }
            Edit::Delete { line } => {
                if *line < out.len() {
                    out.remove(*line);
                }
            }
            Edit::Replace { line, text } => {
                if *line < out.len() {
                    out[*line] = text.clone();
                }
            }
            Edit::ReplaceBlock { start, end, lines: repl } => {
                if *start < out.len() && *end < out.len() && start <= end {
                    out.splice(*start..=*end, repl.iter().cloned());
                }
            }
        }
    }
    out
}

/// Renders a minimal unified-style diff of one file's planned edits.
pub fn render_diff(rel: &str, before: &[String], after: &[String]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "--- a/{rel}\n+++ b/{rel}");
    // Simple line-sync diff: good enough for insert/delete/replace plans.
    let mut i = 0usize;
    let mut j = 0usize;
    while i < before.len() || j < after.len() {
        match (before.get(i), after.get(j)) {
            (Some(b), Some(a)) if b == a => {
                i += 1;
                j += 1;
            }
            (b, a) => {
                // Find the next resync point.
                let resync = before[i..]
                    .iter()
                    .enumerate()
                    .find_map(|(di, bl)| after[j..].iter().position(|al| al == bl).map(|dj| (di, dj)));
                let (di, dj) = resync.unwrap_or((before.len() - i, after.len() - j));
                for k in 0..di {
                    let _ = writeln!(out, "-{}:{}: {}", rel, i + k + 1, before[i + k]);
                }
                for k in 0..dj {
                    let _ = writeln!(out, "+{}:{}: {}", rel, j + k + 1, after[j + k]);
                }
                i += di.max(usize::from(b.is_some() && a.is_some() && di == 0 && dj == 0));
                j += dj;
                if di == 0 && dj == 0 {
                    break;
                }
            }
        }
    }
    out
}

/// Executes the plan: writes files (or, with `dry_run`, returns the diffs
/// without touching disk). Returns the rendered diff text and the number
/// of files changed.
///
/// # Errors
///
/// Fails if a file cannot be written.
pub fn run(ws: &Workspace, diagnostics: &[Diagnostic], dry_run: bool) -> Result<(String, usize), String> {
    let plan = plan(ws, diagnostics);
    let mut diff = String::new();
    let mut changed = 0usize;
    for (rel, edits) in &plan {
        let Some(f) = ws.file(rel) else { continue };
        let after = apply_edits(&f.lines, edits);
        if after == f.lines {
            continue;
        }
        diff.push_str(&render_diff(rel, &f.lines, &after));
        changed += 1;
        if !dry_run {
            let text = after.join("\n") + "\n";
            std::fs::write(&f.abs, text)
                .map_err(|e| format!("cannot write {}: {e}", f.abs.display()))?;
        }
    }
    Ok((diff, changed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(src: &str) -> Vec<String> {
        src.lines().map(str::to_string).collect()
    }

    #[test]
    fn edits_apply_bottom_up() {
        let before = lines("a\nb\nc\nd");
        let edits = vec![
            Edit::Delete { line: 3 },
            Edit::Replace { line: 2, text: "C".into() },
            Edit::Insert { line: 1, text: "x".into() },
        ];
        assert_eq!(apply_edits(&before, &edits), lines("a\nx\nb\nC"));
    }

    #[test]
    fn block_replace_sorts_a_use_block() {
        let before = lines("use b;\nuse a;\nfn f() {}");
        let edits = vec![Edit::ReplaceBlock {
            start: 0,
            end: 1,
            lines: vec!["use a;".into(), "use b;".into()],
        }];
        assert_eq!(apply_edits(&before, &edits), lines("use a;\nuse b;\nfn f() {}"));
    }

    #[test]
    fn diff_shows_insertions_and_deletions() {
        let before = lines("one\ntwo\nthree");
        let after = lines("one\nTWO\nthree");
        let d = render_diff("f.rs", &before, &after);
        assert!(d.contains("-f.rs:2: two"), "{d}");
        assert!(d.contains("+f.rs:2: TWO"), "{d}");
    }
}
