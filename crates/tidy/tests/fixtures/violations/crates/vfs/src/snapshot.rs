//! Fixture: violations in the snapshot-manifest module — hash-order
//! iteration and wall-clock identity both corrupt template ids.

use std::collections::HashMap;

pub fn manifest_of(files: &HashMap<u64, String>) -> String {
    let stamp = std::time::SystemTime::now();
    format!("{files:?} at {stamp:?}")
}
