//! Fixture: violations in the snapshot-manifest module — hash-order
//! iteration, wall-clock identity, and an unsorted import block.

use std::collections::HashMap;
use std::cmp::Ordering;

pub fn manifest_of(files: &HashMap<u64, String>, _o: Ordering) -> String {
    let stamp = std::time::SystemTime::now();
    format!("{files:?} at {stamp:?}")
}
