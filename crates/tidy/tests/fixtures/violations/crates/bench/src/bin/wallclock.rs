//! Fixture: crates/bench is exempt from the determinism lint — real
//! elapsed time is what the bench binaries measure. No finding expected.

pub fn elapsed_us() -> u128 {
    std::time::Instant::now().elapsed().as_micros()
}
