//! Fixture: seeded panic-freedom and sabotage-isolation violations.

pub struct Srv;

impl Srv {
    #[cfg(any(test, feature = "sabotage"))]
    pub fn sabotage_skip_redo_records(&mut self, _n: u32) {}
}

pub fn redo_apply(x: Option<u32>) -> u32 {
    let v = x.unwrap();
    if v == 0 {
        panic!("zero rows recovered");
    }
    v
}

pub fn waived(x: Option<u32>) -> u32 {
    // tidy-allow(panic-freedom): fixture proves a justified waiver suppresses
    x.expect("covered by the waiver on the line above")
}

pub fn ungated(server: &mut Srv) {
    server.sabotage_skip_redo_records(1);
}

#[cfg(any(test, feature = "sabotage"))]
pub fn gated(server: &mut Srv) {
    server.sabotage_skip_redo_records(1);
}

// tidy-allow(determinism): stale waiver; nothing below touches the clock
pub fn quiet() {}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1).unwrap();
    }
}
