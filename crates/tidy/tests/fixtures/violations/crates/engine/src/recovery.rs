//! Fixture: transitive panic-freedom over the call graph, plus the
//! sabotage-isolation and stale-waiver seeds.

pub struct Srv;

impl Srv {
    #[cfg(any(test, feature = "sabotage"))]
    pub fn sabotage_skip_redo_records(&mut self, _n: u32) {}
}

// tidy-entry(recovery)
pub fn startup(x: Option<u32>, buf: &[u8], i: usize) -> u32 {
    let v = redo_apply(x);
    let b = u32::from(buf[i]);
    v + b + clamped(buf, i) + decode_header(x) + waived(x) + drafted(x)
}

pub fn redo_apply(x: Option<u32>) -> u32 {
    let v = x.unwrap();
    if v == 0 {
        panic!("zero rows recovered");
    }
    v
}

pub fn clamped(buf: &[u8], i: usize) -> u32 {
    u32::from(buf[i % buf.len()])
}

pub fn waived(x: Option<u32>) -> u32 {
    // tidy-allow(panic-freedom): fixture proves a justified waiver suppresses
    x.expect("covered by the waiver on the line above")
}

pub fn drafted(x: Option<u32>) -> u32 {
    // tidy-allow(panic-freedom): FIXME — justify this waiver
    x.expect("suppressed, but the placeholder reason is itself flagged")
}

pub fn dead_code_helper(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn ungated(server: &mut Srv) {
    server.sabotage_skip_redo_records(1);
}

#[cfg(any(test, feature = "sabotage"))]
pub fn gated(server: &mut Srv) {
    server.sabotage_skip_redo_records(1);
}

// tidy-allow(determinism): stale waiver; nothing below touches the clock
pub fn quiet() {}

pub type FastMap = std::collections::HashMap<u32, u32>;

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1).unwrap();
    }
}
