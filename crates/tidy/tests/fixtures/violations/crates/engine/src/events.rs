//! Fixture: schema-conformance violations (enum/exporter drift).

pub enum EngineEvent {
    /// An instance started.
    Started,
    Undocumented,
}

impl EngineEvent {
    pub fn name(&self) -> &'static str {
        match self {
            EngineEvent::Started => "started",
            EngineEvent::Undocumented => "undocumented",
        }
    }

    pub fn write_json(&self, out: &mut String) {
        match self {
            EngineEvent::Started => out.push_str("{\"type\": \"started\"}"),
            _ => {}
        }
    }
}
