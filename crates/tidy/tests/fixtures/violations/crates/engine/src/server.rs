//! Fixture: lock-discipline, error-swallow and write-site-coverage
//! violations on the session surface.

pub enum DbError {
    Boom,
}

pub type DbResult<T> = Result<T, DbError>;

pub struct SimFs;

impl SimFs {
    pub fn write_block(&mut self, _blk: u64) -> DbResult<()> {
        Ok(())
    }

    pub fn append(&mut self, _bytes: u32) -> DbResult<()> {
        Ok(())
    }
}

pub struct LockTable;

impl LockTable {
    pub fn lock_row(&mut self, _rid: u64) -> DbResult<()> {
        Ok(())
    }
}

pub struct DbServer {
    locks: LockTable,
    fs: SimFs,
}

impl DbServer {
    fn lock_for_dml(&mut self, rid: u64) -> DbResult<()> {
        self.locks.lock_row(rid)
    }

    fn append_record(&mut self) -> DbResult<()> {
        self.flush_redo()
    }

    fn flush_redo(&mut self) -> DbResult<()> {
        self.fs.append(12)
    }

    fn stash_block(&mut self) -> DbResult<()> {
        self.fs.write_block(7)
    }

    pub fn insert(&mut self, rid: u64) -> DbResult<()> {
        self.locks.lock_row(rid)?;
        self.append_record()?;
        self.lock_for_dml(rid)?;
        self.stash_block()?;
        let _ = self.append_record();
        self.append_record().ok();
        self.append_record()
    }
}
