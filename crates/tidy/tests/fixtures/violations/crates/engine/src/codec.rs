//! Fixture: ordered-serialization violations in a byte-stable module,
//! plus a helper whose panic is reached transitively from recovery.

use std::collections::HashMap;

pub fn size(m: &HashMap<u32, u32>) -> usize {
    m.len()
}

pub fn waived_inline(m: &std::collections::HashMap<u32, u32>) -> usize { // tidy-allow(ordered-serialization): len() leaks no iteration order
    m.len()
}

pub fn decode_header(x: Option<u32>) -> u32 {
    x.expect("fixture: panics on a path reached from recovery::startup")
}

pub fn lookup(m: &crate::recovery::FastMap, k: u32) -> u32 {
    *m.get(&k).unwrap_or(&0)
}
