//! Fixture: ordered-serialization violations in a byte-stable module.

use std::collections::HashMap;

pub fn size(m: &HashMap<u32, u32>) -> usize {
    m.len()
}

pub fn waived_inline(m: &std::collections::HashMap<u32, u32>) -> usize { // tidy-allow(ordered-serialization): len() leaks no iteration order
    m.len()
}
