//! Fixture: determinism violations — textual and alias-smuggled.

use std::time::{Instant as Tick};

pub fn wall_us() -> u128 {
    std::time::Instant::now().elapsed().as_micros()
}

pub fn tick_us() -> u128 {
    Tick::now().elapsed().as_micros()
}
