//! Fixture: determinism violation in a simulated-clock module.

pub fn wall_us() -> u128 {
    std::time::Instant::now().elapsed().as_micros()
}
