//! End-to-end tests over the seeded fixture tree: every violation is
//! reported at its exact `file:line`, each lint is proven live by at
//! least one fixture finding, justified waivers suppress, stale and
//! FIXME-placeholder waivers are themselves findings, `--fix --dry-run`
//! renders diffs without writing, and the real repository tree is clean
//! (the CI contract).

use std::path::Path;

use recobench_tidy::{json_report, run, RunStats, Workspace};

fn fixture_ws() -> Workspace {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/violations");
    Workspace::load(&root).expect("fixture tree loads")
}

#[test]
fn fixtures_produce_exact_diagnostics() {
    let ws = fixture_ws();
    let diags = run(&ws);
    let got: Vec<(&str, usize, &str)> =
        diags.iter().map(|d| (d.file.as_str(), d.line, d.lint)).collect();
    let want: Vec<(&str, usize, &str)> = vec![
        ("BENCH_campaign.json", 1, "schema-conformance"),
        ("BENCH_events.jsonl", 2, "schema-conformance"),
        ("crates/engine/src/codec.rs", 4, "ordered-serialization"),
        ("crates/engine/src/codec.rs", 6, "ordered-serialization"),
        // Reached transitively: startup (recovery.rs) → decode_header.
        ("crates/engine/src/codec.rs", 15, "panic-freedom"),
        // `FastMap` is a type alias (defined in recovery.rs) for HashMap;
        // the alias-aware pass resolves it across files.
        ("crates/engine/src/codec.rs", 18, "ordered-serialization"),
        // Two findings on the same line: the variant is undocumented AND
        // missing from the exporter.
        ("crates/engine/src/events.rs", 6, "schema-conformance"),
        ("crates/engine/src/events.rs", 6, "schema-conformance"),
        ("crates/engine/src/recovery.rs", 14, "panic-freedom"),
        ("crates/engine/src/recovery.rs", 19, "panic-freedom"),
        ("crates/engine/src/recovery.rs", 21, "panic-freedom"),
        // The waiver suppresses, but its FIXME reason is flagged.
        ("crates/engine/src/recovery.rs", 36, "unused-allow"),
        ("crates/engine/src/recovery.rs", 45, "sabotage-isolation"),
        ("crates/engine/src/recovery.rs", 53, "unused-allow"),
        // Same line, two lints: an unsanctioned write on a session path
        // that the crash sweep also does not cover.
        ("crates/engine/src/server.rs", 49, "lock-discipline"),
        ("crates/engine/src/server.rs", 49, "write-site-coverage"),
        ("crates/engine/src/server.rs", 53, "lock-discipline"),
        ("crates/engine/src/server.rs", 54, "lock-discipline"),
        ("crates/engine/src/server.rs", 57, "error-swallow"),
        ("crates/engine/src/server.rs", 58, "error-swallow"),
        // Stale manifest entries anchor on the manifest itself.
        ("crates/oracle/tests/write_site_coverage.json", 0, "write-site-coverage"),
        ("crates/sim/src/clock.rs", 3, "determinism"),
        ("crates/sim/src/clock.rs", 6, "determinism"),
        ("crates/sim/src/clock.rs", 10, "determinism"),
        ("crates/vfs/src/snapshot.rs", 4, "ordered-serialization"),
        ("crates/vfs/src/snapshot.rs", 4, "sorted-uses"),
        ("crates/vfs/src/snapshot.rs", 7, "ordered-serialization"),
        ("crates/vfs/src/snapshot.rs", 8, "determinism"),
        ("tests/corpus/bad.json", 1, "schema-conformance"),
        ("tests/corpus/noncanonical.json", 1, "schema-conformance"),
    ];
    assert_eq!(
        got,
        want,
        "full diagnostics:\n{}",
        diags.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn messages_name_the_offending_construct() {
    let diags = run(&fixture_ws());
    let msg = |file: &str, line: usize| {
        diags
            .iter()
            .find(|d| d.file == file && d.line == line)
            .unwrap_or_else(|| panic!("no diagnostic at {file}:{line}"))
            .message
            .clone()
    };
    // Panic-freedom findings carry the call path from the entry point.
    assert!(msg("crates/engine/src/recovery.rs", 14).contains("unguarded `[]`"));
    assert!(msg("crates/engine/src/recovery.rs", 14).contains("via startup"));
    assert!(msg("crates/engine/src/recovery.rs", 19).contains(".unwrap()"));
    assert!(msg("crates/engine/src/recovery.rs", 19).contains("startup → redo_apply"));
    assert!(msg("crates/engine/src/recovery.rs", 21).contains("panic!"));
    assert!(msg("crates/engine/src/codec.rs", 15).contains("startup → decode_header"));
    // Waiver hygiene distinguishes stale from placeholder-justified.
    assert!(msg("crates/engine/src/recovery.rs", 36).contains("FIXME placeholder"));
    assert!(msg("crates/engine/src/recovery.rs", 53).contains("suppresses nothing"));
    // Lock discipline names the rule that broke.
    assert!(msg("crates/engine/src/server.rs", 53).contains("outside the `lock_for_dml` chokepoint"));
    assert!(msg("crates/engine/src/server.rs", 54).contains("appends WAL before acquiring row locks"));
    let rule3: Vec<_> = diags
        .iter()
        .filter(|d| d.file == "crates/engine/src/server.rs" && d.line == 49)
        .collect();
    assert!(rule3.iter().any(|d| {
        d.lint == "lock-discipline"
            && d.message.contains("DbServer::insert → DbServer::stash_block")
    }));
    assert!(rule3
        .iter()
        .any(|d| d.lint == "write-site-coverage" && d.message.contains("UPDATE_WRITE_SITES=1")));
    // Error swallowing names the discarded fallible callee.
    assert!(msg("crates/engine/src/server.rs", 57).contains("DbServer::append_record"));
    assert!(msg("crates/engine/src/server.rs", 58).contains("`.ok();`"));
    // The stale manifest entry points at the regeneration command.
    assert!(msg("crates/oracle/tests/write_site_coverage.json", 0)
        .contains("server.rs:999 matches no current write site"));
    // Determinism catches both the literal token and the alias smuggle.
    assert!(msg("crates/sim/src/clock.rs", 6).contains("std::time::Instant"));
    assert!(msg("crates/sim/src/clock.rs", 10).contains("aliased import"));
    assert!(msg("crates/vfs/src/snapshot.rs", 8).contains("SystemTime"));
    // Ordered serialization: textual in ORDERED_FILES, alias across files.
    assert!(msg("crates/engine/src/codec.rs", 4).contains("HashMap"));
    assert!(msg("crates/engine/src/codec.rs", 18).contains("`FastMap` resolves to a std hash container"));
    assert!(msg("crates/vfs/src/snapshot.rs", 7).contains("HashMap"));
    assert!(msg("tests/corpus/bad.json", 1).contains("does not parse"));
    assert!(msg("tests/corpus/noncanonical.json", 1).contains("canonical"));
    let events: Vec<_> =
        diags.iter().filter(|d| d.file == "crates/engine/src/events.rs").collect();
    assert!(events.iter().any(|d| d.message.contains("no doc comment")));
    assert!(events.iter().any(|d| d.message.contains("no arm in `fn write_json(")));
}

#[test]
fn waivers_suppress_and_exemptions_hold() {
    let diags = run(&fixture_ws());
    let silent = |file: &str, line: usize| {
        assert!(
            !diags.iter().any(|d| d.file == file && d.line == line),
            "expected no diagnostic at {file}:{line}"
        );
    };
    // recovery.rs:32 carries `.expect(` under a justified waiver on the
    // line above; codec.rs:10 a same-line waiver; both stay silent.
    silent("crates/engine/src/recovery.rs", 32);
    silent("crates/engine/src/codec.rs", 10);
    // The FIXME-justified waiver still suppresses the `.expect(` it
    // covers (recovery.rs:37) — only the placeholder reason is flagged.
    silent("crates/engine/src/recovery.rs", 37);
    // `buf[i % buf.len()]` is guarded by construction (recovery.rs:27).
    silent("crates/engine/src/recovery.rs", 27);
    // dead_code_helper's unwrap (recovery.rs:41) is unreachable from any
    // tidy-entry fn — the lint is reachability-based, not textual.
    silent("crates/engine/src/recovery.rs", 41);
    // The gated sabotage call (recovery.rs:50) and the test-module
    // unwrap (recovery.rs:62) are out of scope by design.
    silent("crates/engine/src/recovery.rs", 50);
    silent("crates/engine/src/recovery.rs", 62);
    // flush_redo (server.rs:45) is a sanctioned writer AND its write
    // site is covered by the sweep manifest: silent on both lints.
    silent("crates/engine/src/server.rs", 45);
    // A fallible call in final-expression position is the fn's return
    // value, not a swallowed error (server.rs:59).
    silent("crates/engine/src/server.rs", 59);
    // crates/bench may use the real clock.
    assert!(!diags.iter().any(|d| d.file.starts_with("crates/bench/")));
}

#[test]
fn fix_dry_run_renders_diffs_without_writing() {
    let ws = fixture_ws();
    let diags = run(&ws);
    let snapshot_abs = ws.root.join("crates/vfs/src/snapshot.rs");
    let before = std::fs::read_to_string(&snapshot_abs).expect("fixture readable");
    let (diff, changed) = recobench_tidy::fix::run(&ws, &diags, true).expect("dry run plans");
    assert!(changed >= 1, "dry run planned no files:\n{diff}");
    // The unsorted use block gets a real fix...
    assert!(diff.contains("use std::cmp::Ordering;"), "no use-sort diff:\n{diff}");
    // ...while waivable findings get a FIXME template drafted above them.
    assert!(
        diff.contains("// tidy-allow(determinism): FIXME"),
        "no waiver template in diff:\n{diff}"
    );
    let after = std::fs::read_to_string(&snapshot_abs).expect("fixture readable");
    assert_eq!(before, after, "--dry-run must not write");
}

#[test]
fn static_write_site_enumeration_matches_the_fixture() {
    let ws = fixture_ws();
    let (sites, unresolved) = recobench_tidy::lints::write_site_coverage::engine_write_sites(&ws);
    let got: Vec<(&str, usize, &str, &str)> = sites
        .iter()
        .map(|s| (s.file.as_str(), s.line, s.method.as_str(), s.in_fn.as_str()))
        .collect();
    assert_eq!(
        got,
        vec![
            ("crates/engine/src/server.rs", 45, "append", "DbServer::flush_redo"),
            ("crates/engine/src/server.rs", 49, "write_block", "DbServer::stash_block"),
        ]
    );
    assert!(unresolved.is_empty(), "unresolved receivers: {unresolved:?}");
    let json = recobench_tidy::lints::write_site_coverage::manifest_json(&sites);
    let v = recobench_tidy::json::parse(&json).expect("manifest JSON parses");
    let arr = v.get("sites").and_then(recobench_tidy::json::Value::as_array).unwrap();
    assert_eq!(arr.len(), 2);
}

#[test]
fn shipped_tree_is_clean() {
    // The repo root is two levels above this crate's manifest dir.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::load(&root).expect("repo tree loads");
    let diags = run(&ws);
    assert!(
        diags.is_empty(),
        "shipped tree must be tidy-clean:\n{}",
        diags.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn json_report_is_machine_readable() {
    let ws = fixture_ws();
    let diags = run(&ws);
    let stats = RunStats::for_workspace(&ws, 7);
    let report = json_report(&ws, &diags, &stats);
    // The report parses with tidy's own JSON reader and carries the
    // violation count, runtime block, and stable keys the CI artifact
    // consumers rely on.
    let v = recobench_tidy::json::parse(&report).expect("report is valid JSON");
    let obj = v.as_object().expect("report is an object");
    assert!(matches!(
        obj.get("tool"),
        Some(recobench_tidy::json::Value::String(s)) if s == "recobench-tidy"
    ));
    let runtime = obj
        .get("runtime")
        .and_then(recobench_tidy::json::Value::as_object)
        .expect("runtime object");
    for key in ["millis", "files", "fns", "call_graph_edges"] {
        assert!(runtime.contains_key(key), "runtime missing {key:?}");
    }
    assert!(matches!(
        runtime.get("millis"),
        Some(recobench_tidy::json::Value::Number(n)) if *n == 7.0
    ));
    let violations = match obj.get("violations") {
        Some(recobench_tidy::json::Value::Array(a)) => a,
        other => panic!("violations is not an array: {other:?}"),
    };
    assert_eq!(violations.len(), diags.len());
    let first = violations[0].as_object().expect("violation objects");
    for key in ["lint", "file", "line", "message"] {
        assert!(first.contains_key(key), "violation missing {key:?}");
    }
}
