//! End-to-end tests over the seeded fixture tree: every violation is
//! reported at its exact `file:line`, justified waivers suppress, stale
//! waivers are themselves findings, and the real repository tree is
//! clean (the CI contract).

use std::path::Path;

use recobench_tidy::{json_report, run, Workspace};

fn fixture_ws() -> Workspace {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/violations");
    Workspace::load(&root).expect("fixture tree loads")
}

#[test]
fn fixtures_produce_exact_diagnostics() {
    let ws = fixture_ws();
    let diags = run(&ws);
    let got: Vec<(&str, usize, &str)> =
        diags.iter().map(|d| (d.file.as_str(), d.line, d.lint)).collect();
    let want: Vec<(&str, usize, &str)> = vec![
        ("BENCH_campaign.json", 1, "schema-conformance"),
        ("BENCH_events.jsonl", 2, "schema-conformance"),
        ("crates/engine/src/codec.rs", 3, "ordered-serialization"),
        ("crates/engine/src/codec.rs", 5, "ordered-serialization"),
        // Two findings on the same line: the variant is undocumented AND
        // missing from the exporter.
        ("crates/engine/src/events.rs", 6, "schema-conformance"),
        ("crates/engine/src/events.rs", 6, "schema-conformance"),
        ("crates/engine/src/recovery.rs", 11, "panic-freedom"),
        ("crates/engine/src/recovery.rs", 13, "panic-freedom"),
        ("crates/engine/src/recovery.rs", 24, "sabotage-isolation"),
        ("crates/engine/src/recovery.rs", 32, "unused-allow"),
        ("crates/sim/src/clock.rs", 4, "determinism"),
        ("crates/vfs/src/snapshot.rs", 4, "ordered-serialization"),
        ("crates/vfs/src/snapshot.rs", 6, "ordered-serialization"),
        ("crates/vfs/src/snapshot.rs", 7, "determinism"),
        ("tests/corpus/bad.json", 1, "schema-conformance"),
        ("tests/corpus/noncanonical.json", 1, "schema-conformance"),
    ];
    assert_eq!(
        got,
        want,
        "full diagnostics:\n{}",
        diags.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn messages_name_the_offending_construct() {
    let diags = run(&fixture_ws());
    let msg = |file: &str, line: usize| {
        diags
            .iter()
            .find(|d| d.file == file && d.line == line)
            .unwrap_or_else(|| panic!("no diagnostic at {file}:{line}"))
            .message
            .clone()
    };
    assert!(msg("crates/engine/src/recovery.rs", 11).contains(".unwrap()"));
    assert!(msg("crates/engine/src/recovery.rs", 13).contains("panic!("));
    assert!(msg("crates/sim/src/clock.rs", 4).contains("std::time::Instant"));
    assert!(msg("crates/engine/src/codec.rs", 3).contains("HashMap"));
    assert!(msg("crates/vfs/src/snapshot.rs", 4).contains("HashMap"));
    assert!(msg("crates/vfs/src/snapshot.rs", 7).contains("SystemTime"));
    assert!(msg("tests/corpus/bad.json", 1).contains("does not parse"));
    assert!(msg("tests/corpus/noncanonical.json", 1).contains("canonical"));
    assert!(msg("crates/engine/src/recovery.rs", 32).contains("suppresses nothing"));
    let events: Vec<_> =
        diags.iter().filter(|d| d.file == "crates/engine/src/events.rs").collect();
    assert!(events.iter().any(|d| d.message.contains("no doc comment")));
    assert!(events.iter().any(|d| d.message.contains("no arm in `fn write_json(")));
}

#[test]
fn waivers_suppress_and_exemptions_hold() {
    let diags = run(&fixture_ws());
    // recovery.rs:20 carries `.expect(` under a justified waiver on the
    // line above; codec.rs:9 a same-line waiver; both stay silent.
    assert!(!diags.iter().any(|d| d.file == "crates/engine/src/recovery.rs" && d.line == 20));
    assert!(!diags.iter().any(|d| d.file == "crates/engine/src/codec.rs" && d.line == 9));
    // The gated sabotage call (recovery.rs:29) and the test-module
    // unwrap (recovery.rs:39) are out of scope by design.
    assert!(!diags.iter().any(|d| d.file == "crates/engine/src/recovery.rs" && d.line == 29));
    assert!(!diags.iter().any(|d| d.file == "crates/engine/src/recovery.rs" && d.line == 39));
    // crates/bench may use the real clock.
    assert!(!diags.iter().any(|d| d.file.starts_with("crates/bench/")));
}

#[test]
fn shipped_tree_is_clean() {
    // The repo root is two levels above this crate's manifest dir.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::load(&root).expect("repo tree loads");
    let diags = run(&ws);
    assert!(
        diags.is_empty(),
        "shipped tree must be tidy-clean:\n{}",
        diags.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn json_report_is_machine_readable() {
    let ws = fixture_ws();
    let diags = run(&ws);
    let report = json_report(&ws, &diags);
    // The report parses with tidy's own JSON reader and carries the
    // violation count and stable keys the CI artifact consumers rely on.
    let v = recobench_tidy::json::parse(&report).expect("report is valid JSON");
    let obj = v.as_object().expect("report is an object");
    assert!(matches!(
        obj.get("tool"),
        Some(recobench_tidy::json::Value::String(s)) if s == "recobench-tidy"
    ));
    let violations = match obj.get("violations") {
        Some(recobench_tidy::json::Value::Array(a)) => a,
        other => panic!("violations is not an array: {other:?}"),
    };
    assert_eq!(violations.len(), diags.len());
    let first = violations[0].as_object().expect("violation objects");
    for key in ["lint", "file", "line", "message"] {
        assert!(first.contains_key(key), "violation missing {key:?}");
    }
}
