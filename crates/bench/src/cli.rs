//! The one command-line surface shared by every regenerator binary.
//!
//! All twelve binaries accept the same flags, parsed here and only here:
//!
//! * `--quick` — shrink durations and configuration sets so the binary
//!   finishes in seconds (CI smoke mode); paper-faithful runs are the
//!   default;
//! * `--threads N` — campaign worker threads (default: all cores);
//! * `--seed N` — base RNG seed (default 42);
//! * `--out PATH` — destination for binaries that write a JSON artifact;
//! * `--smoke` / `--full` — the extra modes of the self-measurement
//!   binaries (`campaign_wallclock`, `recovery_breakdown`);
//! * `--sweep-seconds N` / `--runs N` / `--replay PATH` / `--sabotage N`
//!   — the torture binary's sweep budget, exact run count, single-schedule
//!   replay mode and self-test sabotage (see `src/bin/torture.rs`);
//! * `--faultload NAME` — the torture sweep's fault pool: `standard`
//!   (the seven operator faults, the default), `storage` (the five
//!   storage-hardware faults: torn/partial/corrupt/full/slow I/O),
//!   `replica` (the four replica-set faults), or `extended` (every pool
//!   together);
//! * `--max-wall-secs N` — fail the run (exit 1) if the campaign takes
//!   longer than `N` seconds of wall clock; CI's perf-regression ceiling.
//!
//! [`CampaignSpec`] collects the experiments a binary builds from these
//! options and runs them as one [`Campaign`] with a stderr progress line.

use recobench_core::{Campaign, CampaignReport, Experiment, RecoveryConfig};
use recobench_faults::FaultType;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct BenchCli {
    /// Shrunk smoke-test mode.
    pub quick: bool,
    /// Campaign worker threads (0 = all cores).
    pub threads: usize,
    /// Base seed.
    pub seed: u64,
    /// `--smoke`: the smallest self-measurement campaign.
    pub smoke: bool,
    /// `--full`: the paper-shaped self-measurement campaign.
    pub full: bool,
    /// `--out PATH`: artifact destination override.
    pub out: Option<String>,
    /// `--sweep-seconds N`: wall-clock budget for the torture sweep.
    pub sweep_seconds: Option<u64>,
    /// `--runs N`: exact torture-run count (overrides the time budget).
    pub runs: Option<usize>,
    /// `--replay PATH`: replay one schedule JSON instead of sweeping.
    pub replay: Option<String>,
    /// `--sabotage N`: arm the test-only redo-skip sabotage (the torture
    /// binary's self-test mode: the oracle must catch the divergence).
    pub sabotage: u32,
    /// `--faultload NAME`: the torture sweep's fault pool (`standard`,
    /// `storage`, `replica`, or `extended`; default `standard`).
    pub faultload: Option<String>,
    /// `--max-wall-secs N`: wall-clock ceiling; exceeding it is a failure.
    pub max_wall_secs: Option<u64>,
}

impl Default for BenchCli {
    fn default() -> Self {
        BenchCli {
            quick: false,
            threads: 0,
            seed: 42,
            smoke: false,
            full: false,
            out: None,
            sweep_seconds: None,
            runs: None,
            replay: None,
            sabotage: 0,
            faultload: None,
            max_wall_secs: None,
        }
    }
}

impl BenchCli {
    /// Parses `std::env::args`, ignoring unknown flags.
    pub fn parse() -> BenchCli {
        let args: Vec<String> = std::env::args().collect();
        Self::from_args(&args[1..])
    }

    /// Parses an explicit argument list (tests).
    pub fn from_args(args: &[String]) -> BenchCli {
        let mut cli = BenchCli::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => cli.quick = true,
                "--smoke" => cli.smoke = true,
                "--full" => cli.full = true,
                "--threads" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        cli.threads = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        cli.seed = v;
                        i += 1;
                    }
                }
                "--out" => {
                    if let Some(v) = args.get(i + 1) {
                        cli.out = Some(v.clone());
                        i += 1;
                    }
                }
                "--sweep-seconds" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        cli.sweep_seconds = Some(v);
                        i += 1;
                    }
                }
                "--runs" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        cli.runs = Some(v);
                        i += 1;
                    }
                }
                "--replay" => {
                    if let Some(v) = args.get(i + 1) {
                        cli.replay = Some(v.clone());
                        i += 1;
                    }
                }
                "--sabotage" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        cli.sabotage = v;
                        i += 1;
                    }
                }
                "--faultload" => {
                    if let Some(v) = args.get(i + 1) {
                        cli.faultload = Some(v.clone());
                        i += 1;
                    }
                }
                "--max-wall-secs" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        cli.max_wall_secs = Some(v);
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        cli
    }

    /// Experiment duration in seconds: the paper's 1 200, or 300 in quick
    /// mode.
    pub fn duration(&self) -> u64 {
        if self.quick {
            300
        } else {
            1_200
        }
    }

    /// The fault trigger offsets: the paper's 150/300/600 s, or a single
    /// early trigger in quick mode.
    pub fn triggers(&self) -> Vec<u64> {
        if self.quick {
            vec![100]
        } else {
            vec![150, 300, 600]
        }
    }

    /// A single trigger instant: `full` normally, 100 s in quick mode.
    pub fn single_trigger(&self, full: u64) -> u64 {
        if self.quick {
            100
        } else {
            full
        }
    }

    /// `n` seeds spread out from the base seed — one (the base) in quick
    /// mode.
    pub fn seeds(&self, n: usize) -> Vec<u64> {
        if self.quick {
            vec![self.seed]
        } else {
            (0..n as u64).map(|i| self.seed + 101 * i).collect()
        }
    }

    /// The artifact destination: `--out` if given, else `default`.
    pub fn out_path(&self, default: &str) -> String {
        self.out.clone().unwrap_or_else(|| default.to_string())
    }

    /// Picks the quick or the full variant of any option set.
    pub fn pick<T: Clone>(&self, quick: &[T], full: &[T]) -> Vec<T> {
        if self.quick {
            quick.to_vec()
        } else {
            full.to_vec()
        }
    }

    /// The archive-mode configuration subset (paper §5.2), possibly
    /// shrunk.
    pub fn archive_configs(&self) -> Vec<RecoveryConfig> {
        let all = RecoveryConfig::archive_subset();
        if self.quick {
            all.into_iter().filter(|c| matches!(c.name.as_str(), "F40G3T10" | "F1G3T1")).collect()
        } else {
            all
        }
    }

    /// All sixteen Table 3 configurations, or the named subset in quick
    /// mode.
    pub fn table3_or(&self, quick_names: &[&str]) -> Vec<RecoveryConfig> {
        if self.quick {
            self.named_configs(quick_names)
        } else {
            RecoveryConfig::table3()
        }
    }

    /// Looks up configurations by their paper names, panicking on a typo.
    pub fn named_configs(&self, names: &[&str]) -> Vec<RecoveryConfig> {
        names
            .iter()
            .map(|n| RecoveryConfig::named(n).unwrap_or_else(|| panic!("unknown configuration {n}")))
            .collect()
    }

    /// A fault-free experiment at full duration on `config`.
    pub fn baseline(&self, config: &RecoveryConfig, archive: bool) -> Experiment {
        Experiment::builder(config.clone())
            .archive_logs(archive)
            .duration_secs(self.duration())
            .seed(self.seed)
            .build()
    }

    /// A faulted experiment truncated `tail` seconds after its trigger
    /// (recovery completes well within the tail; the full 20 minutes add
    /// nothing to the measures).
    pub fn fault_run(
        &self,
        config: &RecoveryConfig,
        fault: FaultType,
        trigger: u64,
        tail: u64,
    ) -> Experiment {
        Experiment::builder(config.clone())
            .archive_logs(true)
            .duration_secs((trigger + tail).min(self.duration() + trigger))
            .fault(fault, trigger)
            .seed(self.seed)
            .build()
    }

    /// Starts collecting a campaign under these options.
    pub fn campaign(&self) -> CampaignSpec {
        CampaignSpec { threads: self.threads, experiments: Vec::new() }
    }

    /// Runs `f(0..n)` across the campaign worker pool and returns the
    /// results in index order. For bench work that is not an
    /// [`Experiment`] (torture runs, double-fault cells) but should still
    /// honor `--threads` instead of running single-threaded.
    pub fn parallel<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = if self.threads == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
        } else {
            self.threads
        };
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots: Vec<std::sync::Mutex<Option<T>>> =
            (0..n).map(|_| std::sync::Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers.min(n.max(1)) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    *slots[i].lock().unwrap() = Some(f(i));
                });
            }
        });
        slots.into_iter().map(|s| s.into_inner().unwrap().expect("every slot filled")).collect()
    }
}

/// The experiments one binary wants to run, collected in table order and
/// executed as a single parallel [`Campaign`] with progress on stderr.
#[derive(Debug)]
pub struct CampaignSpec {
    threads: usize,
    experiments: Vec<Experiment>,
}

impl CampaignSpec {
    /// Appends one experiment; returns its input-order index.
    pub fn push(&mut self, experiment: Experiment) -> usize {
        self.experiments.push(experiment);
        self.experiments.len() - 1
    }

    /// Experiments collected so far.
    pub fn len(&self) -> usize {
        self.experiments.len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.experiments.is_empty()
    }

    /// Runs the campaign; results come back in push order.
    pub fn run(self) -> CampaignReport {
        let total = self.experiments.len();
        let report = Campaign::new(self.experiments)
            .threads(self.threads)
            .on_progress(move |p| {
                eprint!("\r  {}/{} experiments", p.completed, p.total);
                if p.completed == p.total {
                    eprintln!();
                }
            })
            .run();
        debug_assert_eq!(report.len(), total);
        report
    }

    /// Runs the campaign and unwraps every outcome (a setup failure in a
    /// regenerator is a bug, not a result).
    pub fn run_all(self) -> Vec<recobench_core::ExperimentOutcome> {
        self.run().expect_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn defaults_are_paper_faithful() {
        let cli = BenchCli::from_args(&[]);
        assert!(!cli.quick && !cli.smoke && !cli.full);
        assert_eq!(cli.duration(), 1_200);
        assert_eq!(cli.triggers(), vec![150, 300, 600]);
        assert_eq!(cli.single_trigger(600), 600);
        assert_eq!(cli.seeds(3), vec![42, 143, 244]);
        assert_eq!(cli.archive_configs().len(), 8);
        assert_eq!(cli.out_path("X.json"), "X.json");
    }

    #[test]
    fn quick_mode_shrinks_everything() {
        let cli = BenchCli::from_args(&args(&["--quick", "--threads", "2", "--seed", "7"]));
        assert_eq!((cli.threads, cli.seed), (2, 7));
        assert_eq!(cli.duration(), 300);
        assert_eq!(cli.triggers(), vec![100]);
        assert_eq!(cli.single_trigger(600), 100);
        assert_eq!(cli.seeds(5), vec![7]);
        assert_eq!(cli.archive_configs().len(), 2);
        assert_eq!(cli.pick(&[1], &[1, 2, 3]), vec![1]);
        assert_eq!(cli.table3_or(&["F1G3T1"]).len(), 1);
    }

    #[test]
    fn artifact_flags_parse() {
        let cli = BenchCli::from_args(&args(&["--smoke", "--out", "custom.json"]));
        assert!(cli.smoke && !cli.full);
        assert_eq!(cli.out_path("default.json"), "custom.json");
    }

    #[test]
    fn torture_flags_parse() {
        let cli = BenchCli::from_args(&args(&[
            "--sweep-seconds",
            "45",
            "--runs",
            "3",
            "--sabotage",
            "2",
            "--replay",
            "tests/corpus/a.json",
            "--faultload",
            "storage",
        ]));
        assert_eq!(cli.sweep_seconds, Some(45));
        assert_eq!(cli.runs, Some(3));
        assert_eq!(cli.sabotage, 2);
        assert_eq!(cli.replay.as_deref(), Some("tests/corpus/a.json"));
        assert_eq!(cli.faultload.as_deref(), Some("storage"));
        let none = BenchCli::from_args(&[]);
        assert_eq!((none.sweep_seconds, none.runs, none.sabotage), (None, None, 0));
        assert!(none.replay.is_none());
        assert!(none.faultload.is_none());
        assert!(none.max_wall_secs.is_none());
    }

    #[test]
    fn wall_clock_ceiling_parses() {
        let cli = BenchCli::from_args(&args(&["--max-wall-secs", "120"]));
        assert_eq!(cli.max_wall_secs, Some(120));
    }

    #[test]
    fn parallel_preserves_index_order() {
        let cli = BenchCli::from_args(&args(&["--threads", "3"]));
        let out = cli.parallel(17, |i| i * i);
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn fault_runs_truncate_after_the_tail() {
        let cli = BenchCli::from_args(&[]);
        let cfg = RecoveryConfig::named("F10G3T5").unwrap();
        let mut spec = cli.campaign();
        assert!(spec.is_empty());
        assert_eq!(spec.push(cli.fault_run(&cfg, FaultType::ShutdownAbort, 150, 240)), 0);
        assert_eq!(spec.push(cli.baseline(&cfg, true)), 1);
        assert_eq!(spec.len(), 2);
    }
}
