//! Shared plumbing for the table/figure regenerator binaries.
//!
//! All option parsing, quick-mode shrinking, and campaign execution for
//! the `src/bin/*` binaries lives in [`cli`] — a binary builds its
//! experiment list through [`BenchCli`] and [`CampaignSpec`] and renders
//! tables from the outcomes; none of them parses `std::env::args`
//! itself.

pub mod cli;

pub use cli::{BenchCli, CampaignSpec};
