//! Shared plumbing for the table/figure regenerator binaries.
//!
//! Every binary accepts:
//!
//! * `--quick` — shrink experiment durations and the configuration set so
//!   the binary finishes in seconds (CI smoke mode). The paper-faithful
//!   full runs are the default.
//! * `--threads N` — worker threads for the campaign (default: all cores).
//! * `--seed N` — base RNG seed (default 42).

use recobench_core::{Experiment, ExperimentOutcome, RecoveryConfig};

/// Common command-line options.
#[derive(Debug, Clone, Copy)]
pub struct Cli {
    /// Shrunk smoke-test mode.
    pub quick: bool,
    /// Campaign worker threads (0 = all cores).
    pub threads: usize,
    /// Base seed.
    pub seed: u64,
}

impl Cli {
    /// Parses `std::env::args`, ignoring unknown flags.
    pub fn parse() -> Cli {
        let mut cli = Cli { quick: false, threads: 0, seed: 42 };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => cli.quick = true,
                "--threads" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        cli.threads = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        cli.seed = v;
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        cli
    }

    /// Experiment duration in seconds: the paper's 1 200, or 300 in quick
    /// mode.
    pub fn duration(&self) -> u64 {
        if self.quick {
            300
        } else {
            1_200
        }
    }

    /// The fault trigger offsets: the paper's 150/300/600 s, or a single
    /// early trigger in quick mode.
    pub fn triggers(&self) -> Vec<u64> {
        if self.quick {
            vec![100]
        } else {
            vec![150, 300, 600]
        }
    }

    /// The archive-mode configuration subset (paper §5.2), possibly
    /// shrunk.
    pub fn archive_configs(&self) -> Vec<RecoveryConfig> {
        let all = RecoveryConfig::archive_subset();
        if self.quick {
            all.into_iter().filter(|c| matches!(c.name.as_str(), "F40G3T10" | "F1G3T1")).collect()
        } else {
            all
        }
    }
}

/// Prints a campaign result row or the setup error.
pub fn unwrap_outcome(r: Result<ExperimentOutcome, String>) -> ExperimentOutcome {
    match r {
        Ok(o) => o,
        Err(e) => panic!("experiment setup failed: {e}"),
    }
}

/// Builds a fault-free experiment at full paper duration.
pub fn perf_experiment(cli: &Cli, config: &RecoveryConfig, archive: bool) -> Experiment {
    Experiment::builder(config.clone())
        .archive_logs(archive)
        .duration_secs(cli.duration())
        .seed(cli.seed)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_defaults() {
        let cli = Cli { quick: false, threads: 0, seed: 42 };
        assert_eq!(cli.duration(), 1_200);
        assert_eq!(cli.triggers(), vec![150, 300, 600]);
        assert_eq!(cli.archive_configs().len(), 8);
    }

    #[test]
    fn quick_mode_shrinks() {
        let cli = Cli { quick: true, threads: 2, seed: 1 };
        assert_eq!(cli.duration(), 300);
        assert_eq!(cli.triggers(), vec![100]);
        assert_eq!(cli.archive_configs().len(), 2);
    }
}
