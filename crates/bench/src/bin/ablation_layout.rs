//! Ablation: the "incorrect distribution of files through disks" operator
//! fault class (paper Table 2, storage administration) as a standing
//! misconfiguration.
//!
//! The paper's testbed spreads data, redo, and archive/backup over four
//! disks. This ablation re-runs the baseline with everything on one
//! spindle: log flushes now seek against data reads and checkpoint
//! writes, which costs throughput — and recovery gets slower too, because
//! restore and redo-apply compete with themselves.

use recobench_bench::BenchCli;
use recobench_core::report::Table;
use recobench_core::Experiment;
use recobench_engine::DiskLayout;
use recobench_faults::FaultType;

fn main() {
    let cli = BenchCli::parse();
    let configs = if cli.quick {
        cli.named_configs(&["F10G3T5"])
    } else {
        cli.named_configs(&["F40G3T10", "F10G3T5", "F1G3T1"])
    };
    let duration = if cli.quick { 240 } else { 600 };
    let trigger = duration / 2;

    let mut spec = cli.campaign();
    for c in &configs {
        for layout in [DiskLayout::four_disk(), DiskLayout::single_disk()] {
            spec.push(
                Experiment::builder(c.clone())
                    .duration_secs(duration)
                    .layout(layout.clone())
                    .seed(cli.seed)
                    .build(),
            );
            spec.push(
                Experiment::builder(c.clone())
                    .duration_secs(duration)
                    .layout(layout)
                    .fault(FaultType::ShutdownAbort, trigger)
                    .seed(cli.seed)
                    .build(),
            );
        }
    }
    let results = spec.run_all();

    let mut table = Table::new(vec![
        "Config",
        "tpmC 4-disk",
        "tpmC 1-disk",
        "tpmC loss %",
        "recovery 4-disk (s)",
        "recovery 1-disk (s)",
    ])
    .title("Ablation — correct vs. collapsed disk layout");
    for (i, c) in configs.iter().enumerate() {
        let chunk = &results[i * 4..(i + 1) * 4];
        let (perf4, rec4, perf1, rec1) = (&chunk[0], &chunk[1], &chunk[2], &chunk[3]);
        let loss =
            100.0 * (perf4.measures.tpmc - perf1.measures.tpmc) / perf4.measures.tpmc.max(1.0);
        table.row(vec![
            c.name.clone(),
            format!("{:.0}", perf4.measures.tpmc),
            format!("{:.0}", perf1.measures.tpmc),
            format!("{loss:.1}"),
            rec4.measures.recovery_cell(duration - trigger),
            rec1.measures.recovery_cell(duration - trigger),
        ]);
    }
    println!("{}", table.render());
    println!(
        "A bad file layout is a *latent* operator fault: it costs performance every\n\
         day and recovery time on the worst day."
    );
}
