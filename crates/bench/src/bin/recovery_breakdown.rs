//! Decomposes the paper's recovery-time cells (Figure 4 / Table 5) by
//! engine phase: where do the seconds go — detection, instance restart,
//! media restore, redo scan, redo apply, rollback, stand-by activation,
//! or waiting for the first transaction to commit again?
//!
//! The paper reports a single number per cell; the phase breakdown is the
//! observability extension that explains it (why 1 MB logs recover a
//! crash fast but a 600 s media recovery slowly: the time moves from
//! redo apply into per-archive restore overhead).
//!
//! Modes: default — Table 5's four complete-recovery faults across the
//! archive configurations at one trigger per paper instant; `--smoke` —
//! two faults x two configurations for CI. Writes `BENCH_breakdown.json`
//! (override with `--out`) plus, next to it, the full engine event
//! stream of the first cell as JSONL.

use std::fmt::Write as _;

use recobench_bench::BenchCli;
use recobench_core::report::breakdown_table;
use recobench_core::{Experiment, ExperimentOutcome, RecoveryBreakdown};
use recobench_faults::FaultType;
use recobench_tpcc::TpccScale;

struct Cell {
    fault: FaultType,
    config: String,
    trigger: u64,
    standby: bool,
}

fn main() {
    let cli = BenchCli::parse();
    let smoke = cli.smoke || cli.quick;
    let mode = if smoke { "smoke" } else { "full" };
    let out_path = cli.out_path("BENCH_breakdown.json");
    let events_path = out_path.replace(".json", "_events.jsonl");

    let faults: Vec<FaultType> = if smoke {
        vec![FaultType::ShutdownAbort, FaultType::DeleteDatafile]
    } else {
        vec![
            FaultType::ShutdownAbort,
            FaultType::DeleteDatafile,
            FaultType::SetDatafileOffline,
            FaultType::SetTablespaceOffline,
        ]
    };
    let configs = if smoke {
        cli.named_configs(&["F40G3T10", "F1G3T1"])
    } else {
        cli.archive_configs()
    };
    let triggers: Vec<u64> = if smoke { vec![60] } else { cli.triggers() };
    let (tail, scale) = if smoke { (240, TpccScale::tiny()) } else { (420, TpccScale::mini()) };

    let mut cells: Vec<Cell> = Vec::new();
    let mut spec = cli.campaign();
    for f in &faults {
        for c in &configs {
            for &t in &triggers {
                let capture = cells.is_empty(); // JSONL sample: first cell only
                spec.push(
                    Experiment::builder(c.clone())
                        .archive_logs(true)
                        .duration_secs(t + tail)
                        .scale(scale)
                        .fault(*f, t)
                        .seed(cli.seed)
                        .capture_events(capture)
                        .build(),
                );
                cells.push(Cell { fault: *f, config: c.name.clone(), trigger: t, standby: false });
            }
        }
    }
    // One fail-over cell so the stand-by activation phase shows up too.
    let t = triggers[0];
    spec.push(
        Experiment::builder(configs[0].clone())
            .archive_logs(true)
            .standby(true)
            .duration_secs(t + tail)
            .scale(scale)
            .fault(FaultType::ShutdownAbort, t)
            .seed(cli.seed)
            .build(),
    );
    cells.push(Cell {
        fault: FaultType::ShutdownAbort,
        config: configs[0].name.clone(),
        trigger: t,
        standby: true,
    });

    eprintln!("recovery_breakdown: mode={mode} cells={}", cells.len());
    let outcomes = spec.run_all();

    let mut rows: Vec<(String, RecoveryBreakdown)> = Vec::new();
    for (cell, o) in cells.iter().zip(&outcomes) {
        check_sum_identity(cell, o);
        if let Some(b) = o.breakdown {
            rows.push((label(cell), b));
        }
    }
    println!(
        "{}",
        breakdown_table("Recovery time decomposed by phase (seconds)", &rows).render()
    );

    let json = render_json(mode, &cells, &outcomes);
    std::fs::write(&out_path, &json).expect("write breakdown JSON");
    let sample =
        outcomes.iter().find_map(|o| o.events_jsonl.clone()).expect("first cell captured events");
    std::fs::write(&events_path, &sample).expect("write sample event stream");
    eprintln!(
        "recovery_breakdown: {} cells -> {out_path}, sample events ({} lines) -> {events_path}",
        cells.len(),
        sample.lines().count()
    );
}

fn label(cell: &Cell) -> String {
    let sb = if cell.standby { " +standby" } else { "" };
    format!("{} @{}s {}{sb}", cell.fault, cell.trigger, cell.config)
}

/// The breakdown is only trustworthy if it reproduces the headline
/// number: phases must sum to the reported recovery time within one
/// simulator tick (1 µs).
fn check_sum_identity(cell: &Cell, o: &ExperimentOutcome) {
    if let (Some(b), Some(rt)) = (o.breakdown, o.measures.recovery_time_secs) {
        let rt_us = (rt * 1e6).round() as u64;
        assert!(
            b.total_us().abs_diff(rt_us) <= 1,
            "{}: breakdown {}µs != recovery {}µs",
            label(cell),
            b.total_us(),
            rt_us
        );
    }
}

fn render_json(mode: &str, cells: &[Cell], outcomes: &[ExperimentOutcome]) -> String {
    let mut json = String::new();
    let _ = writeln!(json, "{{\n  \"mode\": \"{mode}\",\n  \"cells\": [");
    for (i, (cell, o)) in cells.iter().zip(outcomes).enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        let rt = o
            .measures
            .recovery_time_secs
            .map_or("null".to_string(), |v| format!("{v:.6}"));
        let _ = write!(
            json,
            "    {{\"fault\": \"{}\", \"config\": \"{}\", \"trigger_secs\": {}, \
             \"standby\": {}, \"recovery_secs\": {rt}",
            cell.fault, cell.config, cell.trigger, cell.standby
        );
        if let Some(b) = o.breakdown {
            let _ = write!(
                json,
                ", \"breakdown_us\": {{\"detection\": {}, \"instance_startup\": {}, \
                 \"media_restore\": {}, \"redo_scan\": {}, \"redo_apply\": {}, \
                 \"txn_rollback\": {}, \"standby_activation\": {}, \"other\": {}, \
                 \"service_resume\": {}, \"total\": {}}}",
                b.detection_us,
                b.instance_startup_us,
                b.media_restore_us,
                b.redo_scan_us,
                b.redo_apply_us,
                b.txn_rollback_us,
                b.standby_activation_us,
                b.other_us,
                b.service_resume_us,
                b.total_us()
            );
        }
        let _ = writeln!(json, "}}{sep}");
    }
    json.push_str("  ]\n}\n");
    json
}
