//! Regenerates **Figure 7** of the paper: committed transactions lost on
//! stand-by fail-over, as a function of the online redo log file size and
//! the number of groups.
//!
//! The stand-by can only apply redo that was *archived*; whatever sits in
//! the primary's current (unfinished) online group at the moment of the
//! crash never ships. The loss therefore equals the current group's fill
//! level — a quantity that is uniform over `[0, file size)` depending on
//! where the crash lands in the switch cycle. A single deterministic run
//! samples one phase point, and seeds alone barely move it (per-seed
//! throughput varies ~1 %, so `total redo mod file size` clusters), so
//! each seed also staggers the crash instant by 17 s to walk the switch
//! cycle; the paper's trend — losses grow with the redo file size, and
//! only weakly with the group count — is a statement about that average.

use recobench_bench::BenchCli;
use recobench_core::report::{bar, Table};
use recobench_core::{Experiment, RecoveryConfig};
use recobench_faults::FaultType;

fn main() {
    let cli = BenchCli::parse();
    let sizes: Vec<u64> = cli.pick(&[1, 10], &[1, 10, 40]);
    let groups: Vec<u32> = cli.pick(&[3], &[2, 3, 6]);
    let trigger = cli.single_trigger(600);
    let seeds = cli.seeds(5);

    let mut configs = Vec::new();
    for &f in &sizes {
        for &g in &groups {
            configs.push(RecoveryConfig::new(f, g, 60));
        }
    }
    let mut spec = cli.campaign();
    for c in &configs {
        for (k, &seed) in seeds.iter().enumerate() {
            // Stagger the crash across the switch cycle (~85 s for 40 MB
            // files at the calibrated redo rate) so the fill phase is
            // genuinely sampled rather than aliased to one point.
            let at = trigger + 17 * k as u64;
            spec.push(
                Experiment::builder(c.clone())
                    .archive_logs(true)
                    .standby(true)
                    .duration_secs(at + 240)
                    .fault(FaultType::ShutdownAbort, at)
                    .seed(seed)
                    .build(),
            );
        }
    }
    let results = spec.run_all();

    struct RowData {
        mean: f64,
        min: u64,
        max: u64,
        recovery: f64,
    }
    let mut rows = Vec::new();
    for (i, _c) in configs.iter().enumerate() {
        let chunk = &results[i * seeds.len()..(i + 1) * seeds.len()];
        let losts: Vec<u64> = chunk.iter().map(|o| o.measures.lost_transactions).collect();
        let recovery = chunk.iter().filter_map(|o| o.measures.recovery_time_secs).sum::<f64>()
            / seeds.len() as f64;
        rows.push(RowData {
            mean: losts.iter().sum::<u64>() as f64 / losts.len() as f64,
            min: *losts.iter().min().unwrap(),
            max: *losts.iter().max().unwrap(),
            recovery,
        });
    }
    let max_mean = rows.iter().map(|r| r.mean).fold(1.0_f64, f64::max);
    let mut table = Table::new(vec![
        "File size",
        "Groups",
        "Lost txns (mean)",
        "min..max",
        "Recovery (s)",
        "lost bar",
    ])
    .title(format!(
        "Figure 7 — lost transactions in the stand-by database ({} seeds per cell)",
        seeds.len()
    ));
    for (c, r) in configs.iter().zip(&rows) {
        table.row(vec![
            format!("{} MB", c.redo_file_mb),
            c.redo_groups.to_string(),
            format!("{:.0}", r.mean),
            format!("{}..{}", r.min, r.max),
            format!("{:.0}", r.recovery),
            bar(r.mean, max_mean, 24),
        ]);
    }
    println!("{}", table.render());
}
