//! Regenerates **Table 3** of the paper: the sixteen recovery
//! configurations and the *measured* number of log-switch checkpoints per
//! 20-minute experiment (an emergent quantity — it falls out of the redo
//! generation rate and the log-switch stall feedback, not a formula).

use recobench_bench::{perf_experiment, unwrap_outcome, Cli};
use recobench_core::report::Table;
use recobench_core::{run_campaign, RecoveryConfig};

fn main() {
    let cli = Cli::parse();
    let configs = if cli.quick {
        vec![
            RecoveryConfig::named("F400G3T20").unwrap(),
            RecoveryConfig::named("F100G3T10").unwrap(),
            RecoveryConfig::named("F40G3T10").unwrap(),
            RecoveryConfig::named("F10G3T5").unwrap(),
            RecoveryConfig::named("F1G3T1").unwrap(),
        ]
    } else {
        RecoveryConfig::table3()
    };
    let experiments = configs.iter().map(|c| perf_experiment(&cli, c, false)).collect();
    let results = run_campaign(experiments, cli.threads);

    let scale = 1_200.0 / cli.duration() as f64; // quick runs extrapolate
    let mut table = Table::new(vec![
        "Config.",
        "File Size",
        "Redo Log Groups",
        "Checkpoint Timeout",
        "# CKPT (measured)",
        "# CKPT (paper)",
    ])
    .title("Table 3 — recovery configurations and checkpoints per 20-min experiment");
    for (c, r) in configs.iter().zip(results) {
        let o = unwrap_outcome(r);
        table.row(vec![
            c.name.clone(),
            format!("{} MB", c.redo_file_mb),
            c.redo_groups.to_string(),
            format!("{} sec.", c.checkpoint_timeout_secs),
            format!("{:.0}", o.measures.log_switches as f64 * scale),
            c.paper_checkpoints().map_or("-".into(), |v| v.to_string()),
        ]);
    }
    println!("{}", table.render());
    if cli.quick {
        println!("(quick mode: measured counts extrapolated from {} s runs)", cli.duration());
    }
    println!(
        "Note: the paper counts log-switch checkpoints; its F400 rows read 1 where a\n\
         full 400 MB log never fills (we report the raw switch count)."
    );
}
