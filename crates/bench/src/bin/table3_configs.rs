//! Regenerates **Table 3** of the paper: the sixteen recovery
//! configurations and the *measured* number of log-switch checkpoints per
//! 20-minute experiment (an emergent quantity — it falls out of the redo
//! generation rate and the log-switch stall feedback, not a formula).

use recobench_bench::BenchCli;
use recobench_core::report::Table;

fn main() {
    let cli = BenchCli::parse();
    let configs = cli.table3_or(&["F400G3T20", "F100G3T10", "F40G3T10", "F10G3T5", "F1G3T1"]);
    let mut spec = cli.campaign();
    for c in &configs {
        spec.push(cli.baseline(c, false));
    }
    let results = spec.run_all();

    let scale = 1_200.0 / cli.duration() as f64; // quick runs extrapolate
    let mut table = Table::new(vec![
        "Config.",
        "File Size",
        "Redo Log Groups",
        "Checkpoint Timeout",
        "# CKPT (measured)",
        "# CKPT (paper)",
    ])
    .title("Table 3 — recovery configurations and checkpoints per 20-min experiment");
    for (c, o) in configs.iter().zip(&results) {
        table.row(vec![
            c.name.clone(),
            format!("{} MB", c.redo_file_mb),
            c.redo_groups.to_string(),
            format!("{} sec.", c.checkpoint_timeout_secs),
            format!("{:.0}", o.measures.log_switches as f64 * scale),
            c.paper_checkpoints().map_or("-".into(), |v| v.to_string()),
        ]);
    }
    println!("{}", table.render());
    if cli.quick {
        println!("(quick mode: measured counts extrapolated from {} s runs)", cli.duration());
    }
    println!(
        "Note: the paper counts log-switch checkpoints; its F400 rows read 1 where a\n\
         full 400 MB log never fills (we report the raw switch count)."
    );
}
