//! Regenerates **Table 2** of the paper: the concrete operator fault
//! types for the (simulated) Oracle-8i-class DBMS, with their class and
//! portability rating, plus which of the six injected types represents
//! each in the experiments.

use recobench_core::report::Table;
use recobench_faults::{FaultClass, FaultType, OperatorFaultType};

fn main() {
    let mut table =
        Table::new(vec!["Class", "Type of operator fault", "Other DBMS", "Injected as"])
            .title("Table 2 — concrete types of DBMS operator faults");
    for class in FaultClass::all() {
        for t in OperatorFaultType::all().into_iter().filter(|t| t.class() == class) {
            table.row(vec![
                class.to_string(),
                t.description().to_string(),
                t.portability().to_string(),
                t.representative().map_or("-".to_string(), |f| f.to_string()),
            ]);
        }
    }
    println!("{}", table.render());

    let mut summary = Table::new(vec!["Injected fault type", "Class", "Recovery kind"])
        .title("The six injected fault types (paper section 4)");
    for f in FaultType::all() {
        summary.row(vec![f.to_string(), f.class().to_string(), format!("{:?}", f.recovery_kind())]);
    }
    println!("{}", summary.render());
}
