//! Extension experiment: the paper's §4 footnote made runnable.
//!
//! The paper excluded the "recovery mechanisms administration" fault class
//! because those mistakes only become visible after a *second* fault
//! forces a recovery. This binary runs that two-fault matrix: sabotage
//! the recovery apparatus (delete archives, discard backups), keep the
//! workload running, then inject each of the ordinary faults — and report
//! which combinations leave the database unrecoverable.

use recobench_bench::BenchCli;
use recobench_core::report::Table;
use recobench_core::RecoveryConfig;
use recobench_engine::{DbServer, DiskLayout};
use recobench_faults::{DoubleFaultPlan, FaultPlan, FaultType, Sabotage};
use recobench_sim::{SimClock, SimRng};
use recobench_tpcc::{create_schema, load_database, DriverConfig, TpccDriver, TpccScale};
use std::sync::Arc;

fn prepared_server(seed: u64) -> (DbServer, TpccDriver) {
    let clock = SimClock::shared();
    let cfg = RecoveryConfig::named("F10G3T5").unwrap().to_instance_config(true);
    let mut srv =
        DbServer::on_fresh_disks("DOUBLE", Arc::clone(&clock), DiskLayout::four_disk(), cfg);
    srv.create_database().expect("fresh disks");
    let schema = create_schema(&mut srv, TpccScale::mini(), 8, 768).expect("schema");
    let mut rng = SimRng::seed_from(seed);
    load_database(&mut srv, &schema, &mut rng).expect("load");
    srv.take_cold_backup().expect("backup");
    let t0 = clock.now();
    let mut driver = TpccDriver::new(schema, DriverConfig::default(), rng.fork(9), t0);
    // 180 s of workload so several archives exist before the sabotage.
    let end = t0 + recobench_sim::SimDuration::from_secs(180);
    while clock.now() < end {
        driver.step(&mut srv);
    }
    (srv, driver)
}

fn main() {
    let cli = BenchCli::parse();
    let faults = [
        FaultType::ShutdownAbort,
        FaultType::DeleteDatafile,
        FaultType::SetDatafileOffline,
        FaultType::DeleteUsersObject,
    ];
    let mut cells = Vec::new();
    for sabotage in Sabotage::all() {
        for fault in faults {
            cells.push((sabotage, fault));
        }
    }
    // Every cell prepares its own server from the same seed, so the matrix
    // parallelizes across the worker pool without coupling cells.
    let rows = cli.parallel(cells.len(), |i| {
        let (sabotage, fault) = cells[i];
        let (mut srv, _driver) = prepared_server(cli.seed);
        let plan = DoubleFaultPlan { sabotage, fault: FaultPlan::new(fault, 0) };
        let outcome = plan.execute(&mut srv).expect("injection is valid");
        vec![
            sabotage.to_string(),
            fault.to_string(),
            if outcome.recovery.is_some() { "yes".into() } else { "NO".into() },
            outcome.recovery_error.unwrap_or_else(|| "-".into()),
        ]
    });
    let mut table = Table::new(vec![
        "First fault (silent)",
        "Second fault",
        "Recovered?",
        "Recovery error",
    ])
    .title("Extension — recovery-mechanism faults exposed by a second fault (F10G3T5)");
    for row in rows {
        table.row(row);
    }
    println!("{}", table.render());
    println!(
        "Shutdown abort always survives (crash recovery needs only the online logs);\n\
         everything that needs the backup or the archived redo does not. A sabotage\n\
         is a latent outage: invisible until the day it matters."
    );
}
