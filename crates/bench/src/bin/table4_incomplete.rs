//! Regenerates **Table 4** of the paper: recovery time for the operator
//! faults that cause *incomplete* recovery — "delete user's object" and
//! "delete tablespace" — across the archive-mode configurations and the
//! three injection instants. These recover by restoring the whole
//! database from the cold backup and rolling forward to just before the
//! fault, so:
//!
//! * time grows with the injection instant (more redo to re-apply);
//! * small archive files add a large per-file overhead — the 1 MB
//!   configurations exceed the remaining experiment window at the 600 s
//!   injection (the paper's "> 600" cells);
//! * a small number of committed transactions is lost (the stop point
//!   sits a moment before the fault), but integrity is never violated.

use recobench_bench::BenchCli;
use recobench_core::report::Table;
use recobench_faults::FaultType;

fn main() {
    let cli = BenchCli::parse();
    let configs = cli.archive_configs();
    let triggers = cli.triggers();
    let faults = [FaultType::DeleteUsersObject, FaultType::DeleteTablespace];

    // Incomplete recovery can run long (the "> 600" cells), so these
    // keep the full experiment duration rather than a truncated tail.
    let mut spec = cli.campaign();
    for f in faults {
        for c in &configs {
            for &t in &triggers {
                spec.push(cli.fault_run(c, f, t, cli.duration()));
            }
        }
    }
    let results = spec.run_all();

    let mut header = vec!["Fault".to_string(), "Configuration".to_string()];
    for t in &triggers {
        header.push(format!("Injection {t} Sec"));
    }
    header.push("lost txns".to_string());
    header.push("integrity".to_string());
    let mut table =
        Table::new(header).title("Table 4 — recovery time (s) for faults with incomplete recovery");

    let mut idx = 0;
    for f in faults {
        for c in &configs {
            let mut row = vec![f.to_string(), c.name.clone()];
            let mut lost = 0u64;
            let mut viol = 0u64;
            for &t in &triggers {
                let o = &results[idx];
                idx += 1;
                row.push(o.measures.recovery_cell(cli.duration() - t));
                lost += o.measures.lost_transactions;
                viol += o.measures.integrity_violations;
            }
            row.push(lost.to_string());
            row.push(viol.to_string());
            table.row(row);
        }
    }
    println!("{}", table.render());
}
