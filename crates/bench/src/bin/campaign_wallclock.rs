//! Measures how fast RecoBench itself runs: wall-clock time and
//! throughput of a fault-injection campaign, plus inline micro-timings of
//! the engine hot paths, written to `BENCH_campaign.json`.
//!
//! Unlike the table/figure binaries this one says nothing about the
//! *simulated* DBMS — it benchmarks the simulator, so before/after numbers
//! from it are the evidence for host-side performance work.
//!
//! Modes:
//!
//! * default — the "mini campaign": every fault type crossed with the
//!   eight archive-mode configurations at one trigger, plus two fault-free
//!   baseline runs, at tiny TPC-C scale (50 experiments).
//! * `--full` — the paper-shaped campaign: faults x configurations x the
//!   three injection instants plus the two baselines (146 experiments).
//! * `--smoke` — two faults x two configurations for CI (4 experiments).
//!
//! `--threads N` and `--seed N` behave as in the other binaries;
//! `--out PATH` overrides the JSON destination.

use std::time::Instant;

use recobench_bench::BenchCli;
use recobench_core::{Campaign, Experiment, RecoveryConfig};
use recobench_engine::codec::Writer;
use recobench_engine::redo::{RedoOp, RedoRecord};
use recobench_engine::row::{encode_key, encode_key_into, Row, Value};
use recobench_engine::txn::LockTable;
use recobench_engine::types::{FileNo, ObjectId, RowId, Scn, TxnId};
use recobench_faults::{FaultSchedule, FaultType, ScheduledFault, StorageFaultType, TortureFaultKind};
use recobench_oracle::TortureRunner;
use recobench_sim::{SimDuration, SimTime};
use recobench_tpcc::{DriverConfig, TpccScale};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Smoke,
    Mini,
    Full,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Smoke => "smoke",
            Mode::Mini => "mini",
            Mode::Full => "full",
        }
    }
}

fn main() {
    let cli = BenchCli::parse();
    let mode = if cli.smoke {
        Mode::Smoke
    } else if cli.full {
        Mode::Full
    } else {
        Mode::Mini
    };
    let out_path = cli.out_path("BENCH_campaign.json");

    let experiments = build_campaign(mode, cli.seed);
    let n = experiments.len();
    let threads = if cli.threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
    } else {
        cli.threads
    };
    eprintln!("campaign_wallclock: mode={} experiments={n} threads={threads}", mode.name());

    #[allow(clippy::disallowed_methods)] // measuring real elapsed time is this binary’s purpose
    let start = Instant::now();
    let report = Campaign::new(experiments).threads(threads).run();
    let wall = start.elapsed().as_secs_f64();
    let failures = report.failures().count();
    assert_eq!(failures, 0, "campaign had setup failures");

    let micro = micro_timings();
    let storage = storage_fault_cell();
    let rss = peak_rss_bytes();
    // The terminal counts exercised, plus the campaign-wide lock traffic
    // — evidence that the contended cell actually contended.
    let mut terminals: Vec<usize> = report.outcomes().map(|o| o.terminals).collect();
    terminals.sort_unstable();
    terminals.dedup();
    let terminals =
        terminals.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", ");
    let lock_waits: u64 = report.outcomes().map(|o| o.lock_waits).sum();
    let deadlocks: u64 = report.outcomes().map(|o| o.deadlocks).sum();

    let json = format!(
        "{{\n  \"mode\": \"{}\",\n  \"experiments\": {},\n  \"threads\": {},\n  \
         \"terminals\": [{}],\n  \"lock_waits\": {},\n  \"deadlocks\": {},\n  \
         \"wall_clock_secs\": {:.3},\n  \"experiments_per_sec\": {:.3},\n  \
         \"template_hits\": {},\n  \"templates_built\": {},\n  \
         \"peak_rss_bytes\": {},\n  \"storage_faults\": {},\n  \
         \"micro_ns\": {{\n    \"row_encode\": {:.1},\n    \
         \"row_encode_into\": {:.1},\n    \"key_encode\": {:.1},\n    \
         \"key_encode_into\": {:.1},\n    \"redo_record_encode\": {:.1},\n    \
         \"redo_record_encode_into\": {:.1},\n    \
         \"block_encode_20rows\": {:.1},\n    \
         \"block_encode_into_20rows\": {:.1},\n    \
         \"lock_wait_grant_cycle\": {:.1},\n    \
         \"deadlock_detect_refuse\": {:.1}\n  }}\n}}\n",
        mode.name(),
        n,
        threads,
        terminals,
        lock_waits,
        deadlocks,
        wall,
        n as f64 / wall,
        report.template_hits(),
        report.templates_built(),
        rss.map_or("null".to_string(), |b| b.to_string()),
        storage,
        micro.row_encode,
        micro.row_encode_into,
        micro.key_encode,
        micro.key_encode_into,
        micro.redo_record_encode,
        micro.redo_record_encode_into,
        micro.block_encode,
        micro.block_encode_into,
        micro.lock_wait_grant_cycle,
        micro.deadlock_detect_refuse,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_campaign.json");
    print!("{json}");
    eprintln!("campaign_wallclock: {n} experiments in {wall:.2}s -> {out_path}");
    if let Some(ceiling) = cli.max_wall_secs {
        if wall > ceiling as f64 {
            eprintln!(
                "campaign_wallclock: FAIL — {wall:.2}s exceeds the --max-wall-secs {ceiling}s ceiling"
            );
            std::process::exit(1);
        }
    }
}

fn build_campaign(mode: Mode, seed: u64) -> Vec<Experiment> {
    let configs = RecoveryConfig::archive_subset();
    let (faults, configs, triggers, duration): (Vec<FaultType>, Vec<RecoveryConfig>, Vec<u64>, u64) =
        match mode {
            Mode::Smoke => (
                vec![FaultType::ShutdownAbort, FaultType::DeleteDatafile],
                configs
                    .into_iter()
                    .filter(|c| matches!(c.name.as_str(), "F40G3T10" | "F1G3T1"))
                    .collect(),
                vec![60],
                150,
            ),
            Mode::Mini => (FaultType::all().to_vec(), configs, vec![100], 280),
            Mode::Full => (FaultType::all().to_vec(), configs, vec![150, 300, 600], 900),
        };

    let mut experiments = Vec::new();
    for f in &faults {
        for c in &configs {
            for &t in &triggers {
                experiments.push(
                    Experiment::builder(c.clone())
                        .archive_logs(true)
                        .duration_secs(duration + t)
                        .scale(TpccScale::tiny())
                        .fault(*f, t)
                        .seed(seed)
                        .build(),
                );
            }
        }
    }
    // Two fault-free baseline runs round the full campaign out to the
    // paper's 146 experiments.
    if mode != Mode::Smoke {
        for (i, c) in configs.iter().take(2).enumerate() {
            experiments.push(
                Experiment::builder(c.clone())
                    .archive_logs(true)
                    .duration_secs(duration)
                    .scale(TpccScale::tiny())
                    .seed(seed + i as u64)
                    .build(),
            );
        }
    }
    // One contended multi-terminal cell in every mode: eight terminals
    // with near-zero think times, so the lock manager's wait queues and
    // deadlock detector are on the measured path too.
    experiments.push(
        Experiment::builder(configs[0].clone())
            .archive_logs(true)
            .duration_secs(2)
            .scale(TpccScale::tiny())
            .driver(DriverConfig {
                terminals: 8,
                mean_think: SimDuration::from_micros(200),
                mean_keying: SimDuration::from_micros(50),
                retry_interval: SimDuration::from_millis(100),
            })
            .seed(seed)
            .build(),
    );
    experiments
}

/// The storage-faultload cell: one fixed five-fault schedule (torn write,
/// partial append, bit rot, disk full, slow I/O) against the differential
/// oracle, reporting per-fault-class recovery time in simulated µs (for
/// slow I/O, which degrades service without an outage, the window of
/// degraded operation). The cell fails hard on any divergence — it
/// doubles as a smoke check of the storage fault layer.
fn storage_fault_cell() -> String {
    let classes = [
        (StorageFaultType::SlowIo, 60),
        (StorageFaultType::TornWrite, 120),
        (StorageFaultType::BitRot, 200),
        (StorageFaultType::DiskFull, 300),
        (StorageFaultType::PartialAppend, 400),
    ];
    let schedule = FaultSchedule {
        seed: 29,
        duration_secs: 600,
        faults: classes
            .iter()
            .map(|&(s, at_secs)| ScheduledFault {
                kind: TortureFaultKind::Storage(s),
                at_secs,
            })
            .collect(),
    };
    let outcome = TortureRunner::default().run(&schedule).expect("storage cell setup");
    assert!(
        !outcome.diverged() && !outcome.unrecoverable,
        "storage-fault cell diverged: {:?}",
        outcome.divergences
    );
    let per_class = outcome
        .faults
        .iter()
        .map(|f| {
            let us = match (f.injected_at, f.ready_at) {
                (Some(i), Some(r)) if r > i => (r.as_micros() - i.as_micros()).to_string(),
                _ => "null".to_string(),
            };
            format!("\"{}_recovery_us\": {us}", f.scheduled.kind)
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    format!(
        "{{\n    {per_class},\n    \"commits\": {},\n    \"divergences\": {}\n  }}",
        outcome.commits,
        outcome.divergences.len()
    )
}

struct MicroTimings {
    row_encode: f64,
    row_encode_into: f64,
    key_encode: f64,
    key_encode_into: f64,
    redo_record_encode: f64,
    redo_record_encode_into: f64,
    block_encode: f64,
    block_encode_into: f64,
    lock_wait_grant_cycle: f64,
    deadlock_detect_refuse: f64,
}

/// Per-call times (ns) of the codec hot paths, measured with plain
/// `Instant` loops so the JSON is self-contained evidence.
fn micro_timings() -> MicroTimings {
    let row = Row::new(vec![
        Value::U64(42),
        Value::U64(7),
        Value::I64(-1234),
        Value::from("CUSTOMERLASTNAME"),
        Value::from("some-filler-data-some-filler-data-some-filler-data"),
    ]);
    let rec = RedoRecord {
        scn: Scn(99),
        txn: Some(TxnId(7)),
        op: RedoOp::Update {
            obj: ObjectId(3),
            rid: RowId { file: FileNo(1), block: 9, slot: 4 },
            before: row.clone(),
            after: row.clone(),
        },
    };
    let mut img = recobench_engine::page::BlockImage::empty();
    for slot in 0..20 {
        img.put(slot, row.clone(), Scn(slot as u64));
    }
    let key_vals = [Value::U64(1), Value::U64(2), Value::U64(3)];

    // The `_into` variants reuse one buffer across calls — the steady
    // state of the log buffer, checkpoint writer and index scratch.
    let mut w = Writer::new();
    let mut w2 = Writer::new();
    let mut key_buf: Vec<u8> = Vec::with_capacity(32);
    MicroTimings {
        row_encode: time_ns(200_000, || std::hint::black_box(row.encode())),
        row_encode_into: time_ns(200_000, || {
            w.truncate(0);
            row.encode_into(&mut w);
            std::hint::black_box(w.len())
        }),
        key_encode: time_ns(500_000, || std::hint::black_box(encode_key(&key_vals))),
        key_encode_into: time_ns(500_000, || {
            key_buf.clear();
            encode_key_into(&key_vals, &mut key_buf);
            std::hint::black_box(key_buf.len())
        }),
        redo_record_encode: time_ns(100_000, || std::hint::black_box(rec.encode())),
        redo_record_encode_into: time_ns(100_000, || {
            w2.truncate(0);
            rec.encode_into(&mut w2);
            std::hint::black_box(w2.len())
        }),
        block_encode: time_ns(20_000, || std::hint::black_box(img.encode())),
        block_encode_into: {
            let mut bw = Writer::new();
            time_ns(20_000, || {
                bw.truncate(0);
                img.encode_into(&mut bw);
                std::hint::black_box(bw.len())
            })
        },
        lock_wait_grant_cycle: {
            // Hold → contended wait → release granting the waiter →
            // final release: the lock manager's full hand-off path.
            let mut lt = LockTable::new();
            let (a, b) = (TxnId(1), TxnId(2));
            let obj = ObjectId(1);
            let rid = RowId { file: FileNo(1), block: 1, slot: 0 };
            let locks = [(obj, rid)];
            time_ns(200_000, || {
                lt.lock_row(a, obj, rid, SimTime::ZERO);
                lt.lock_row(b, obj, rid, SimTime::from_micros(5));
                let grants = lt.release_all(a, &locks, SimTime::from_micros(9));
                lt.release_all(b, &locks, SimTime::from_micros(12));
                std::hint::black_box(grants.len())
            })
        },
        deadlock_detect_refuse: {
            // Two crossed holders: the closing request walks the
            // waits-for chain and is refused as the victim.
            let mut lt = LockTable::new();
            let (a, b) = (TxnId(1), TxnId(2));
            let obj = ObjectId(1);
            let r0 = RowId { file: FileNo(1), block: 1, slot: 0 };
            let r1 = RowId { file: FileNo(1), block: 1, slot: 1 };
            time_ns(200_000, || {
                lt.lock_row(a, obj, r0, SimTime::ZERO);
                lt.lock_row(b, obj, r1, SimTime::ZERO);
                lt.lock_row(a, obj, r1, SimTime::from_micros(3));
                let refused = lt.lock_row(b, obj, r0, SimTime::from_micros(5));
                lt.release_all(b, &[(obj, r1)], SimTime::from_micros(8));
                lt.release_all(a, &[(obj, r0), (obj, r1)], SimTime::from_micros(9));
                std::hint::black_box(matches!(refused, recobench_engine::LockOutcome::Deadlock { .. }))
            })
        },
    }
}

fn time_ns<R>(iters: u64, mut f: impl FnMut() -> R) -> f64 {
    // Short warm-up, then one timed run.
    for _ in 0..iters / 10 {
        std::hint::black_box(f());
    }
    #[allow(clippy::disallowed_methods)] // measuring real elapsed time is this binary’s purpose
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Peak resident set size from `/proc/self/status` (Linux only).
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}
