//! The replica-set scenario matrix the paper could not measure: recovery
//! and availability per **topology** (single stand-by, two-node fan-out,
//! two-deep cascade) and per **failover policy** (manual, auto-quorum,
//! auto-with-fencing), including the double-fault cell where the freshly
//! promoted node is killed too.
//!
//! Every cell runs the same contended 8-terminal TPC-C workload and kills
//! the primary at the same instant; the availability integral (fraction
//! of wall seconds with at least one commit), the RTO and the lost
//! transactions then isolate what the topology and the policy each buy.
//! A final differential-oracle cell replays the double fault under the
//! torture harness and reports its divergence count — the "zero oracle
//! divergences" acceptance gate.
//!
//! Results land in `BENCH_campaign.json` (override with `--out PATH`).

use std::fmt::Write as _;

use recobench_bench::BenchCli;
use recobench_core::report::Table;
use recobench_core::{Experiment, ExperimentOutcome, RecoveryConfig};
use recobench_engine::{FailoverPolicy, ReplicaTopology};
use recobench_faults::{
    FaultSchedule, FaultType, ReplicaFaultType, ScheduledFault, TortureFaultKind,
};
use recobench_oracle::{TortureOptions, TortureRunner};
use recobench_tpcc::{AvailabilityTimeline, DriverConfig};

/// One cell of the matrix: a topology, a policy, and whether the promoted
/// node is killed too.
struct Cell {
    topology: ReplicaTopology,
    policy: FailoverPolicy,
    double_fault: bool,
}

/// Fraction of the run's seconds with at least one committed transaction.
fn availability_integral(tl: &AvailabilityTimeline) -> f64 {
    if tl.buckets.is_empty() {
        return 0.0;
    }
    let up = tl.buckets.len() as u64 - tl.zero_seconds();
    up as f64 / tl.buckets.len() as f64
}

fn cell_json(out: &mut String, o: &ExperimentOutcome, double_fault: bool) {
    let rto_us = o.measures.recovery_time_secs.map(|s| (s * 1e6) as u64);
    let _ = write!(
        out,
        "    {{ \"topology\": \"{}\", \"policy\": \"{}\", \"double_fault\": {}, \
         \"failovers\": {}, \"rto_us\": {}, \"availability_integral\": {:.4}, \
         \"lost_transactions\": {}, \"tpmc\": {:.1}, \"unrecoverable\": {} }}",
        o.topology,
        o.policy,
        double_fault,
        o.failovers,
        rto_us.map_or("null".to_string(), |v| v.to_string()),
        availability_integral(&o.timeline),
        o.measures.lost_transactions,
        o.measures.tpmc,
        o.unrecoverable,
    );
}

fn main() {
    let cli = BenchCli::parse();
    let config = RecoveryConfig::named("F10G3T5").expect("known configuration");
    let trigger = cli.single_trigger(120);
    let second = trigger + 60;
    let duration = second + 180;
    let driver = DriverConfig { terminals: 8, ..DriverConfig::default() };

    let cells = vec![
        Cell {
            topology: ReplicaTopology::single(),
            policy: FailoverPolicy::Manual,
            double_fault: false,
        },
        Cell {
            topology: ReplicaTopology::fan_out(2),
            policy: FailoverPolicy::AutoQuorum,
            double_fault: false,
        },
        Cell {
            topology: ReplicaTopology::fan_out(2),
            policy: FailoverPolicy::AutoWithFencing,
            double_fault: false,
        },
        Cell {
            topology: ReplicaTopology::fan_out(2),
            policy: FailoverPolicy::AutoQuorum,
            double_fault: true,
        },
        Cell {
            topology: ReplicaTopology::cascade(2),
            policy: FailoverPolicy::AutoQuorum,
            double_fault: false,
        },
    ];

    let mut spec = cli.campaign();
    for cell in &cells {
        let mut b = Experiment::builder(config.clone())
            .archive_logs(true)
            .topology(cell.topology.clone())
            .failover_policy(cell.policy)
            .driver(driver)
            .duration_secs(duration)
            .fault(FaultType::ShutdownAbort, trigger)
            .seed(cli.seed);
        if cell.double_fault {
            b = b.second_fault_secs(second);
        }
        spec.push(b.build());
    }
    let results = spec.run_all();

    // The oracle gate: the same double fault under the torture harness,
    // diffed against the reference model after every failover.
    let oracle = TortureRunner::new(TortureOptions {
        config: config.clone(),
        driver,
        topology: ReplicaTopology::fan_out(2),
        policy: FailoverPolicy::AutoQuorum,
        ..TortureOptions::default()
    })
    .run(&FaultSchedule {
        seed: cli.seed,
        duration_secs: duration,
        faults: vec![
            ScheduledFault {
                kind: TortureFaultKind::Replica(ReplicaFaultType::KillPrimary),
                at_secs: trigger,
            },
            ScheduledFault {
                kind: TortureFaultKind::Replica(ReplicaFaultType::KillPromoted),
                at_secs: second,
            },
        ],
    })
    .expect("oracle setup");

    let mut table = Table::new(vec![
        "Topology",
        "Policy",
        "Faults",
        "Failovers",
        "RTO (s)",
        "Availability",
        "Lost txns",
        "tpmC",
    ])
    .title("Figure 6ext — replica topologies and failover policies under primary kill");
    for (cell, o) in cells.iter().zip(&results) {
        table.row(vec![
            o.topology.clone(),
            o.policy.clone(),
            if cell.double_fault { "kill+kill".into() } else { "kill".into() },
            o.failovers.to_string(),
            o.measures
                .recovery_time_secs
                .map_or("—".to_string(), |s| format!("{s:.1}")),
            format!("{:.1}%", availability_integral(&o.timeline) * 100.0),
            o.measures.lost_transactions.to_string(),
            format!("{:.0}", o.measures.tpmc),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Oracle double-fault gate: failovers={} divergences={} lost_commits={} commits={}",
        oracle.failovers,
        oracle.divergences.len(),
        oracle.lost_commits,
        oracle.commits,
    );

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"fig6_topologies\",\n  \"cells\": [\n");
    for (i, (cell, o)) in cells.iter().zip(&results).enumerate() {
        cell_json(&mut json, o, cell.double_fault);
        json.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
    }
    let _ = write!(
        json,
        "  ],\n  \"oracle_double_fault\": {{ \"topology\": \"fanout2\", \
         \"policy\": \"auto_quorum\", \"failovers\": {}, \"divergences\": {}, \
         \"lost_commits\": {}, \"commits\": {}, \"unrecoverable\": {} }}\n}}\n",
        oracle.failovers,
        oracle.divergences.len(),
        oracle.lost_commits,
        oracle.commits,
        oracle.unrecoverable,
    );
    let out_path = cli.out_path("BENCH_campaign.json");
    std::fs::write(&out_path, &json).expect("write BENCH_campaign.json");
    eprintln!("fig6_topologies: wrote {out_path}");
}
