//! Regenerates **Table 5** of the paper: recovery time for the operator
//! faults with *complete* recovery (no committed work lost) — shutdown
//! abort, delete datafile, set datafile offline, set tablespace offline —
//! across the archive-mode configurations and the three injection
//! instants.
//!
//! Expected shape (paper §5.2):
//!
//! * **shutdown abort** — tens of seconds, decreasing with checkpoint
//!   frequency, nearly independent of the injection instant;
//! * **delete datafile** — restore one file + filtered redo apply: grows
//!   with injection instant, and small archive files cost a per-file
//!   overhead (the 1 MB rows are the slowest at 600 s);
//! * **set datafile offline** — a few seconds, checkpoint dependent;
//! * **set tablespace offline** — "always close to 1 second".

use recobench_bench::BenchCli;
use recobench_core::report::Table;
use recobench_faults::FaultType;

fn main() {
    let cli = BenchCli::parse();
    let configs = cli.archive_configs();
    let triggers = cli.triggers();
    let faults = [
        FaultType::ShutdownAbort,
        FaultType::DeleteDatafile,
        FaultType::SetDatafileOffline,
        FaultType::SetTablespaceOffline,
    ];

    // These all recover well within a few hundred seconds; the runs are
    // truncated after the recovery window instead of the full 20 minutes.
    let tail = 420;
    let mut spec = cli.campaign();
    for f in faults {
        for c in &configs {
            for &t in &triggers {
                spec.push(cli.fault_run(c, f, t, tail));
            }
        }
    }
    let results = spec.run_all();

    let mut header = vec!["Fault".to_string(), "Configuration".to_string()];
    for t in &triggers {
        header.push(format!("Injection {t} Sec"));
    }
    header.push("lost txns".to_string());
    header.push("integrity".to_string());
    let mut table =
        Table::new(header).title("Table 5 — recovery time (s) for faults with complete recovery");

    let mut idx = 0;
    for f in faults {
        for c in &configs {
            let mut row = vec![f.to_string(), c.name.clone()];
            let mut lost = 0u64;
            let mut viol = 0u64;
            for _ in &triggers {
                let o = &results[idx];
                idx += 1;
                row.push(o.measures.recovery_cell(tail));
                lost += o.measures.lost_transactions;
                viol += o.measures.integrity_violations;
            }
            row.push(lost.to_string());
            row.push(viol.to_string());
            table.row(row);
        }
    }
    println!("{}", table.render());
    println!("Complete recovery: every lost-txns cell above should read 0.");
}
