//! The torture sweep: randomized multi-fault schedules against the
//! differential oracle, with shrinking.
//!
//! Three modes, selected by the shared [`BenchCli`] flags:
//!
//! * **sweep** (default) — generate seeded random [`FaultSchedule`]s and
//!   run them until the wall-clock budget (`--sweep-seconds`, default 60)
//!   or the exact run count (`--runs N`) is exhausted. On the first
//!   divergence the schedule is shrunk to a minimal reproducer, written
//!   as JSON to `--out` (default `torture_minimized.json`), and the
//!   process exits non-zero — CI uploads the artifact and the schedule
//!   goes into `tests/corpus/` once the bug is fixed.
//! * **replay** (`--replay PATH`) — run one schedule JSON and report.
//! * **self-test** (`--sabotage N`, combinable with either mode) — arm
//!   the engine's test-only redo-skip sabotage so the oracle *must*
//!   diverge; this is how the harness proves the oracle catches real
//!   corruption, and how corpus reproducers were first harvested.
//!
//! `--faultload storage` swaps the sweep's pool for the five
//! storage-hardware fault kinds (torn/partial/corrupt/full/slow I/O);
//! `--faultload replica` draws from the four replica-set kinds (the
//! runner auto-provisions a two-node fan-out for them); `--faultload
//! extended` draws from every pool together.
//!
//! Every schedule is derived from `--seed`, so a failing sweep is
//! reproducible by rerunning with the same seed.

use std::process::ExitCode;
use std::time::Instant;

use recobench_bench::BenchCli;
use recobench_faults::{FaultSchedule, TortureFaultKind};
use recobench_oracle::{shrink_schedule, TortureOptions, TortureOutcome, TortureRunner};
use recobench_sim::SimRng;

fn main() -> ExitCode {
    let cli = BenchCli::parse();
    let pool = match cli.faultload.as_deref() {
        None | Some("standard") => TortureFaultKind::all().to_vec(),
        Some("storage") => TortureFaultKind::storage().to_vec(),
        Some("replica") => TortureFaultKind::replica().to_vec(),
        Some("extended") => TortureFaultKind::all_extended().to_vec(),
        Some(other) => {
            eprintln!("torture: unknown --faultload {other} (standard, storage, replica, extended)");
            return ExitCode::FAILURE;
        }
    };
    let opts = TortureOptions { sabotage_skip_redo: cli.sabotage, ..TortureOptions::default() };
    let runner = TortureRunner::new(opts);
    match &cli.replay {
        Some(path) => replay(&runner, path),
        None => sweep(&runner, &cli, &pool),
    }
}

fn replay(runner: &TortureRunner, path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("torture: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let schedule = match FaultSchedule::from_json(text.trim()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("torture: {path} is not a schedule: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match runner.run(&schedule) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("torture: replay setup failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_outcome(path, &outcome);
    if outcome.diverged() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn sweep(runner: &TortureRunner, cli: &BenchCli, pool: &[TortureFaultKind]) -> ExitCode {
    let budget_secs = cli.sweep_seconds.unwrap_or(60);
    #[allow(clippy::disallowed_methods)] // wall-clock sweep budget is this binary’s purpose
    let started = Instant::now();
    let mut runs = 0usize;
    let mut attempted = 0u64;
    let mut commits = 0u64;
    let mut injected = 0usize;
    loop {
        let batch = match cli.runs {
            Some(n) if runs >= n => break,
            Some(n) => (n - runs).min(32),
            None if started.elapsed().as_secs() >= budget_secs => break,
            None => 32,
        };
        // One independent schedule per run index: 1–4 faults over a 300 s
        // window, nothing before 30 s (the driver needs a little history
        // for the faults to have something to destroy). Each schedule is a
        // pure function of `(--seed, index)`, so running a batch across
        // the worker pool changes neither the schedules nor which run a
        // divergence is attributed to.
        let results = cli.parallel(batch, |i| {
            let idx = runs + i;
            let mut rng = SimRng::seed_from(cli.seed.wrapping_add(idx as u64));
            let n_faults = 1 + idx % 4;
            let schedule = FaultSchedule::random_from(&mut rng, pool, n_faults, 300, 30);
            let outcome = runner.run(&schedule);
            (schedule, outcome)
        });
        for (schedule, outcome) in results {
            let outcome = match outcome {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("torture: run {runs} setup failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            runs += 1;
            attempted += outcome.attempted;
            commits += outcome.commits;
            injected += outcome.faults.iter().filter(|f| f.injected_at.is_some()).count();
            if outcome.diverged() {
                eprintln!();
                return report_divergence(runner, &schedule, &outcome, cli);
            }
        }
        eprint!("\r  torture: {runs} runs, {injected} faults, {attempted} txns");
    }
    eprintln!();
    println!(
        "torture sweep: {runs} runs, {injected} faults injected, {attempted} transactions \
         attempted, {commits} commits observed, 0 divergences"
    );
    ExitCode::SUCCESS
}

fn report_divergence(
    runner: &TortureRunner,
    schedule: &FaultSchedule,
    outcome: &TortureOutcome,
    cli: &BenchCli,
) -> ExitCode {
    println!("torture: DIVERGENCE on schedule {}", schedule.to_json());
    for d in &outcome.divergences {
        println!("  {d}");
    }
    println!("torture: shrinking...");
    let minimal = shrink_schedule(schedule, |s| {
        runner.run(s).map(|o| o.diverged()).unwrap_or(false)
    });
    let json = minimal.to_json();
    println!("torture: minimal reproducer ({} faults): {json}", minimal.faults.len());
    let out = cli.out_path("torture_minimized.json");
    match std::fs::write(&out, format!("{json}\n")) {
        Ok(()) => println!("torture: wrote {out}"),
        Err(e) => eprintln!("torture: cannot write {out}: {e}"),
    }
    ExitCode::FAILURE
}

fn print_outcome(label: &str, outcome: &TortureOutcome) {
    println!(
        "torture replay {label}: {} txns attempted, {} commits, {} faults injected, \
         {} divergences{}",
        outcome.attempted,
        outcome.commits,
        outcome.faults.iter().filter(|f| f.injected_at.is_some()).count(),
        outcome.divergences.len(),
        if outcome.unrecoverable { " (UNRECOVERABLE)" } else { "" },
    );
    for f in &outcome.faults {
        let status = match (&f.skipped, f.injected_at) {
            (Some(why), _) => format!("skipped: {why}"),
            (None, Some(at)) => format!(
                "injected at {:.1}s{}{}",
                at.as_micros() as f64 / 1e6,
                if f.overtaken { " (during previous recovery)" } else { "" },
                match f.ready_at {
                    Some(r) => format!(", service back at {:.1}s", r.as_micros() as f64 / 1e6),
                    None => ", never recovered".to_string(),
                },
            ),
            (None, None) => "not reached".to_string(),
        };
        println!("  {} @ {}s — {status}", f.scheduled.kind, f.scheduled.at_secs);
    }
    for d in &outcome.divergences {
        println!("  DIVERGENCE: {d}");
    }
}
