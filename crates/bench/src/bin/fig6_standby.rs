//! Regenerates **Figure 6** of the paper: performance and recovery time
//! with the archive-log mechanism alone versus a stand-by database.
//!
//! Lines (tpmC): archive-only versus archive + stand-by shipping — both a
//! moderate cost ("performance penalty is not an excuse").
//! Bars (recovery): stand-by activation after a fault at 600 s is
//! near-constant and much shorter than single-datafile media recovery of
//! the same fault at the same instant.

use recobench_bench::BenchCli;
use recobench_core::report::{bar, Table};
use recobench_core::Experiment;
use recobench_faults::FaultType;

fn main() {
    let cli = BenchCli::parse();
    let configs = cli.archive_configs();
    let trigger = cli.single_trigger(600);
    let tail = 420;

    let mut spec = cli.campaign();
    for c in &configs {
        // tpmC lines: archive only, then archive + stand-by.
        spec.push(cli.baseline(c, true));
        spec.push(
            Experiment::builder(c.clone())
                .archive_logs(true)
                .standby(true)
                .duration_secs(cli.duration())
                .seed(cli.seed)
                .build(),
        );
        // Recovery bars: delete datafile at 600 s — archive media recovery
        // versus stand-by fail-over.
        spec.push(cli.fault_run(c, FaultType::DeleteDatafile, trigger, tail));
        spec.push(
            Experiment::builder(c.clone())
                .archive_logs(true)
                .standby(true)
                .duration_secs(trigger + tail)
                .fault(FaultType::DeleteDatafile, trigger)
                .seed(cli.seed)
                .build(),
        );
    }
    let results = spec.run_all();

    let mut table = Table::new(vec![
        "Config",
        "tpmC archive",
        "tpmC stand-by",
        format!("rec@{trigger}s archive").as_str(),
        format!("rec@{trigger}s stand-by").as_str(),
        "stand-by bar",
    ])
    .title("Figure 6 — performance and recovery time with archive logs and stand-by database");
    for (i, c) in configs.iter().enumerate() {
        let chunk = &results[i * 4..(i + 1) * 4];
        let (perf_arch, perf_sb, rec_arch, rec_sb) = (&chunk[0], &chunk[1], &chunk[2], &chunk[3]);
        table.row(vec![
            c.name.clone(),
            format!("{:.0}", perf_arch.measures.tpmc),
            format!("{:.0}", perf_sb.measures.tpmc),
            rec_arch.measures.recovery_cell(tail),
            rec_sb.measures.recovery_cell(tail),
            bar(rec_sb.measures.recovery_time_secs.unwrap_or(0.0), 200.0, 24),
        ]);
    }
    println!("{}", table.render());
    println!("Stand-by recovery time is near-constant across configurations and fault types.");
}
