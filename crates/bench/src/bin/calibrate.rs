//! Calibration probe: runs fault-free experiments across Table 3 and
//! prints the emergent quantities (tpmC, redo rate, log switches) next to
//! the paper's references, so the cost-model constants can be tuned.

use recobench_bench::{unwrap_outcome, Cli};
use recobench_core::report::Table;
use recobench_core::{run_campaign, Experiment, RecoveryConfig};

fn main() {
    let cli = Cli::parse();
    let configs = if cli.quick {
        vec![
            RecoveryConfig::named("F400G3T20").unwrap(),
            RecoveryConfig::named("F40G3T10").unwrap(),
            RecoveryConfig::named("F1G3T1").unwrap(),
        ]
    } else {
        RecoveryConfig::table3()
    };
    let experiments: Vec<Experiment> = configs
        .iter()
        .map(|c| {
            Experiment::builder(c.clone())
                .archive_logs(false)
                .duration_secs(cli.duration())
                .seed(cli.seed)
                .build()
        })
        .collect();
    let results = run_campaign(experiments, cli.threads);

    let mut table = Table::new(vec![
        "Config",
        "tpmC",
        "redo MB",
        "redo MB/s",
        "switches",
        "paper #CKPT",
        "commits",
        "errors",
    ])
    .title("Calibration: fault-free runs (archive off)");
    for (config, r) in configs.iter().zip(results) {
        let o = unwrap_outcome(r);
        let m = &o.measures;
        let secs = cli.duration() as f64;
        table.row(vec![
            o.config_name.clone(),
            format!("{:.0}", m.tpmc),
            format!("{:.1}", m.redo_mb),
            format!("{:.3}", m.redo_mb / secs),
            format!("{}", m.log_switches),
            config.paper_checkpoints().map_or("-".into(), |v| v.to_string()),
            format!("{}", m.total_commits),
            format!("{}", m.client_errors),
        ]);
    }
    println!("{}", table.render());
}
