//! Calibration probe: runs fault-free experiments across Table 3 and
//! prints the emergent quantities (tpmC, redo rate, log switches) next to
//! the paper's references, so the cost-model constants can be tuned.

use recobench_bench::BenchCli;
use recobench_core::report::Table;

fn main() {
    let cli = BenchCli::parse();
    let configs = cli.table3_or(&["F400G3T20", "F40G3T10", "F1G3T1"]);
    let mut spec = cli.campaign();
    for c in &configs {
        spec.push(cli.baseline(c, false));
    }
    let results = spec.run_all();

    let mut table = Table::new(vec![
        "Config",
        "tpmC",
        "redo MB",
        "redo MB/s",
        "switches",
        "paper #CKPT",
        "commits",
        "errors",
    ])
    .title("Calibration: fault-free runs (archive off)");
    for (config, o) in configs.iter().zip(&results) {
        let m = &o.measures;
        let secs = cli.duration() as f64;
        table.row(vec![
            o.config_name.clone(),
            format!("{:.0}", m.tpmc),
            format!("{:.1}", m.redo_mb),
            format!("{:.3}", m.redo_mb / secs),
            format!("{}", m.log_switches),
            config.paper_checkpoints().map_or("-".into(), |v| v.to_string()),
            format!("{}", m.total_commits),
            format!("{}", m.client_errors),
        ]);
    }
    println!("{}", table.render());
}
