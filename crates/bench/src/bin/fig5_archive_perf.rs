//! Regenerates **Figure 5** of the paper: baseline tpmC with and without
//! the archive-log mechanism, for the configurations that actually start
//! archiving within one experiment (F40G3T10 … F1G2T1).
//!
//! Expected shape (paper §5.2): a *moderate* performance impact — "the
//! archive log option must always be activated".

use recobench_bench::BenchCli;
use recobench_core::report::{bar, Table};

fn main() {
    let cli = BenchCli::parse();
    let configs = cli.archive_configs();
    let mut spec = cli.campaign();
    for c in &configs {
        spec.push(cli.baseline(c, false));
        spec.push(cli.baseline(c, true));
    }
    let results = spec.run_all();

    let mut table = Table::new(vec![
        "Config",
        "tpmC (no archive)",
        "tpmC (archive)",
        "impact %",
        "archive bar",
    ])
    .title("Figure 5 — performance with and without archive logs");
    let mut max_tpmc: f64 = 1.0;
    let pairs: Vec<_> = results.chunks(2).map(|ch| (&ch[0], &ch[1])).collect();
    for (off, _) in &pairs {
        max_tpmc = max_tpmc.max(off.measures.tpmc);
    }
    for (c, &(off, on)) in configs.iter().zip(&pairs) {
        let impact = 100.0 * (off.measures.tpmc - on.measures.tpmc) / off.measures.tpmc.max(1.0);
        table.row(vec![
            c.name.clone(),
            format!("{:.0}", off.measures.tpmc),
            format!("{:.0}", on.measures.tpmc),
            format!("{impact:.1}"),
            bar(on.measures.tpmc, max_tpmc, 24),
        ]);
    }
    println!("{}", table.render());
}
