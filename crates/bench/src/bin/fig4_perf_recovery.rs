//! Regenerates **Figure 4** of the paper: for every Table 3 configuration
//! (basic recovery mechanism — online redo logs only, no archiving), the
//! baseline tpmC and the recovery time after a `SHUTDOWN ABORT` injected
//! 150, 300 and 600 s into the run.
//!
//! Expected shape (paper §5.1): only the high-checkpoint-rate (1 MB)
//! configurations pay a visible tpmC cost; recovery time falls from the
//! mid-thirties of seconds to the low teens as checkpoints get more
//! frequent, and a short checkpoint *timeout* buys short recovery even
//! with big log files (F400G3T1).

use recobench_bench::BenchCli;
use recobench_core::report::{bar, Table};
use recobench_core::Experiment;
use recobench_faults::FaultType;

fn main() {
    let cli = BenchCli::parse();
    let configs = cli.table3_or(&["F400G3T20", "F40G3T10", "F1G3T1"]);
    let triggers = cli.triggers();

    // Baseline throughput runs plus one crash per trigger instant.
    // Crash recovery completes within a couple of minutes, so the fault
    // runs are truncated shortly after the trigger (the measures are
    // complete by then); baselines run the full 20 minutes.
    let mut spec = cli.campaign();
    for c in &configs {
        spec.push(cli.baseline(c, false));
        for &t in &triggers {
            // Figure 4 studies the *basic* mechanism, so archive mode is
            // off — not the `fault_run` default.
            spec.push(
                Experiment::builder(c.clone())
                    .archive_logs(false)
                    .duration_secs((t + 240).min(cli.duration() + t))
                    .fault(FaultType::ShutdownAbort, t)
                    .seed(cli.seed)
                    .build(),
            );
        }
    }
    let results = spec.run_all();

    let per_config = 1 + triggers.len();
    let mut header = vec!["Config".to_string(), "tpmC".to_string()];
    for t in &triggers {
        header.push(format!("rec@{t}s"));
    }
    header.push("tpmC bar".to_string());
    header.push("recovery bar (600s)".to_string());
    let mut table = Table::new(header)
        .title("Figure 4 — performance and recovery time (shutdown abort, online redo only)");

    let mut max_tpmc: f64 = 1.0;
    let mut rows_raw = Vec::new();
    for (i, c) in configs.iter().enumerate() {
        let chunk = &results[i * per_config..(i + 1) * per_config];
        let perf = chunk[0].clone();
        let recs: Vec<_> = chunk[1..].to_vec();
        max_tpmc = max_tpmc.max(perf.measures.tpmc);
        rows_raw.push((c.clone(), perf, recs));
    }
    for (c, perf, recs) in &rows_raw {
        let mut row = vec![c.name.clone(), format!("{:.0}", perf.measures.tpmc)];
        for (r, &t) in recs.iter().zip(&triggers) {
            row.push(r.measures.recovery_cell(240 + t));
        }
        let last_rt = recs.last().and_then(|r| r.measures.recovery_time_secs).unwrap_or(0.0);
        row.push(bar(perf.measures.tpmc, max_tpmc, 24));
        row.push(bar(last_rt, 60.0, 24));
        table.row(row);
    }
    println!("{}", table.render());
    println!(
        "All shutdown-abort runs: lost transactions = {}, integrity violations = {}",
        rows_raw
            .iter()
            .flat_map(|(_, _, recs)| recs.iter())
            .map(|r| r.measures.lost_transactions)
            .sum::<u64>(),
        rows_raw
            .iter()
            .flat_map(|(_, _, recs)| recs.iter())
            .map(|r| r.measures.integrity_violations)
            .sum::<u64>(),
    );
}
