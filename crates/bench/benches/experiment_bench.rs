//! Criterion benchmarks of whole benchmark experiments — one per paper
//! artifact family. Each runs a shortened experiment of the same *kind*
//! as the corresponding table/figure, measuring the simulator's real
//! execution cost per experiment (the campaign budget planner).

use criterion::{criterion_group, criterion_main, Criterion};
use recobench_core::{Experiment, RecoveryConfig};
use recobench_faults::FaultType;
use recobench_tpcc::TpccScale;

fn quick(config: &str) -> recobench_core::ExperimentBuilder {
    Experiment::builder(RecoveryConfig::named(config).unwrap())
        .duration_secs(120)
        .scale(TpccScale::tiny())
        .seed(42)
}

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiment");
    g.sample_size(10);

    // Table 3 / Figure 4 baseline: fault-free throughput run.
    g.bench_function("table3_baseline_run", |b| {
        b.iter(|| quick("F10G3T5").archive_logs(false).run().unwrap())
    });
    // Figure 4: crash + recovery.
    g.bench_function("fig4_shutdown_abort_run", |b| {
        b.iter(|| quick("F10G3T5").archive_logs(false).fault(FaultType::ShutdownAbort, 60).run().unwrap())
    });
    // Figure 5: archiving on.
    g.bench_function("fig5_archive_run", |b| b.iter(|| quick("F10G3T5").run().unwrap()));
    // Table 5: media recovery of one datafile.
    g.bench_function("table5_delete_datafile_run", |b| {
        b.iter(|| quick("F10G3T5").fault(FaultType::DeleteDatafile, 60).run().unwrap())
    });
    // Table 4: incomplete (point-in-time) recovery.
    g.bench_function("table4_drop_table_run", |b| {
        b.iter(|| quick("F10G3T5").fault(FaultType::DeleteUsersObject, 60).run().unwrap())
    });
    // Figures 6/7: stand-by fail-over.
    g.bench_function("fig6_fig7_standby_run", |b| {
        b.iter(|| quick("F1G3T1").standby(true).fault(FaultType::ShutdownAbort, 60).run().unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
