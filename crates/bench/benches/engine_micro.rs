//! Criterion micro-benchmarks of the engine's hot paths: these measure
//! the *simulator's real execution cost* (how fast RecoBench runs), which
//! bounds how large a campaign is practical.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use recobench_engine::catalog::IndexDef;
use recobench_engine::codec::Writer;
use recobench_engine::redo::{decode_stream, RedoOp, RedoRecord};
use recobench_engine::row::{encode_key, encode_key_into, Row, Value};
use recobench_engine::page::BlockImage;
use recobench_engine::types::{FileNo, ObjectId, RowId, Scn, TxnId};
use recobench_engine::{DbServer, DiskLayout, InstanceConfig};
use recobench_sim::SimClock;

fn sample_row() -> Row {
    Row::new(vec![
        Value::U64(42),
        Value::U64(7),
        Value::I64(-1234),
        Value::from("CUSTOMERLASTNAME"),
        Value::from("some-filler-data-some-filler-data-some-filler-data"),
    ])
}

fn bench_codecs(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    let row = sample_row();
    let encoded = row.encode();
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("row_encode", |b| b.iter(|| std::hint::black_box(row.encode())));
    g.bench_function("row_decode", |b| {
        b.iter(|| Row::decode(std::hint::black_box(encoded.clone())).unwrap())
    });
    g.bench_function("row_encode_into", |b| {
        // The hot path reuses one buffer across encodes (log buffer,
        // checkpoint writer); this measures that steady state.
        let mut w = recobench_engine::codec::Writer::new();
        b.iter(|| {
            w.truncate(0);
            row.encode_into(&mut w);
            std::hint::black_box(w.len())
        })
    });
    g.bench_function("key_encode", |b| {
        b.iter(|| encode_key(std::hint::black_box(&[Value::U64(1), Value::U64(2), Value::U64(3)])))
    });
    g.bench_function("key_encode_into", |b| {
        // Index probes reuse a scratch buffer (clear + encode + look up).
        let mut buf = Vec::with_capacity(32);
        b.iter(|| {
            buf.clear();
            encode_key_into(
                std::hint::black_box(&[Value::U64(1), Value::U64(2), Value::U64(3)]),
                &mut buf,
            );
            std::hint::black_box(buf.len())
        })
    });

    let rec = RedoRecord {
        scn: Scn(99),
        txn: Some(TxnId(7)),
        op: RedoOp::Update {
            obj: ObjectId(3),
            rid: RowId { file: FileNo(1), block: 9, slot: 4 },
            before: sample_row(),
            after: sample_row(),
        },
    };
    let rec_bytes = rec.encode();
    g.throughput(Throughput::Bytes(rec_bytes.len() as u64));
    g.bench_function("redo_record_encode", |b| b.iter(|| std::hint::black_box(rec.encode())));
    g.bench_function("redo_stream_decode_100", |b| {
        let mut seg = Vec::new();
        for _ in 0..100 {
            seg.extend_from_slice(&rec.encode());
        }
        let segs = vec![bytes_from(seg)];
        b.iter(|| decode_stream(std::hint::black_box(&segs), 640).unwrap())
    });

    let mut img = BlockImage::empty();
    for slot in 0..20 {
        img.put(slot, sample_row(), Scn(slot as u64));
    }
    let img_bytes = img.encode();
    g.throughput(Throughput::Bytes(img_bytes.len() as u64));
    g.bench_function("block_encode_20rows", |b| b.iter(|| std::hint::black_box(img.encode())));
    g.bench_function("block_encode_into_20rows", |b| {
        let mut w = Writer::new();
        b.iter(|| {
            w.truncate(0);
            img.encode_into(&mut w);
            std::hint::black_box(w.len())
        })
    });
    g.bench_function("block_decode_20rows", |b| {
        b.iter(|| BlockImage::decode(std::hint::black_box(img_bytes.clone())).unwrap())
    });
    g.finish();
}

fn bytes_from(v: Vec<u8>) -> bytes::Bytes {
    bytes::Bytes::from(v)
}

fn loaded_server() -> (DbServer, ObjectId) {
    let cfg = InstanceConfig::builder()
        .redo_file_bytes(4 * 1024 * 1024)
        .redo_groups(3)
        .checkpoint_timeout_secs(60)
        .archive_mode(true)
        .cache_blocks(128)
        .build();
    let mut srv = DbServer::on_fresh_disks("BENCH", SimClock::shared(), DiskLayout::four_disk(), cfg);
    srv.create_database().unwrap();
    srv.create_user("b").unwrap();
    srv.create_tablespace("B", 2, 4096).unwrap();
    let t = srv
        .create_table("KV", "b", "B", vec![IndexDef { name: "PK".into(), cols: vec![0], unique: true, ordered: true }])
        .unwrap();
    (srv, t)
}

fn bench_transactions(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.bench_function("insert_commit", |b| {
        let (mut srv, t) = loaded_server();
        let s = srv.connect().unwrap();
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            srv.insert(s, t, Row::new(vec![Value::U64(k), Value::from("payload")])).unwrap();
            srv.commit(s).unwrap();
        })
    });
    g.bench_function("read_by_pk", |b| {
        let (mut srv, t) = loaded_server();
        let s = srv.connect().unwrap();
        for k in 0..500u64 {
            srv.insert(s, t, Row::new(vec![Value::U64(k), Value::from("payload")])).unwrap();
            srv.commit(s).unwrap();
        }
        srv.disconnect(s);
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 17) % 500;
            let rid = srv.lookup(t, 0, &[Value::U64(k)]).unwrap()[0];
            std::hint::black_box(srv.get_row(t, rid).unwrap());
        })
    });
    g.bench_function("lock_wait_grant_cycle", |b| {
        // One full contention round trip: holder locks, waiter queues,
        // holder commits, grant hands over, waiter retries and commits.
        let (mut srv, t) = loaded_server();
        let s1 = srv.connect().unwrap();
        let s2 = srv.connect().unwrap();
        srv.insert(s1, t, Row::new(vec![Value::U64(0), Value::from("payload")])).unwrap();
        srv.commit(s1).unwrap();
        let rid = srv.lookup(t, 0, &[Value::U64(0)]).unwrap()[0];
        b.iter(|| {
            srv.update(s1, t, rid, Row::new(vec![Value::U64(0), Value::from("p1")])).unwrap();
            let wait =
                srv.update(s2, t, rid, Row::new(vec![Value::U64(0), Value::from("p2")])).unwrap_err();
            std::hint::black_box(wait);
            srv.commit(s1).unwrap();
            std::hint::black_box(srv.take_lock_grants());
            srv.update(s2, t, rid, Row::new(vec![Value::U64(0), Value::from("p2")])).unwrap();
            srv.commit(s2).unwrap();
        })
    });
    g.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery");
    g.sample_size(10);
    g.bench_function("crash_recovery_2000_txns", |b| {
        b.iter_batched(
            || {
                let (mut srv, t) = loaded_server();
                let s = srv.connect().unwrap();
                for k in 0..2000u64 {
                    srv.insert(s, t, Row::new(vec![Value::U64(k), Value::from("payload")]))
                        .unwrap();
                    srv.commit(s).unwrap();
                }
                srv.shutdown_abort().unwrap();
                srv
            },
            |mut srv| {
                srv.startup().unwrap();
                srv
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("cold_backup", |b| {
        b.iter_batched(
            || {
                let (mut srv, t) = loaded_server();
                let s = srv.connect().unwrap();
                for k in 0..500u64 {
                    srv.insert(s, t, Row::new(vec![Value::U64(k), Value::from("payload")]))
                        .unwrap();
                    srv.commit(s).unwrap();
                }
                srv
            },
            |mut srv| {
                srv.take_cold_backup().unwrap();
                srv
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_codecs, bench_transactions, bench_recovery);
criterion_main!(benches);
