//! A COTS-architecture relational storage engine on simulated hardware.
//!
//! `recobench-engine` implements the database server that RecoBench puts
//! under test: the same mechanism inventory as the Oracle 8i server the
//! paper benchmarks, built from scratch on the deterministic simulation
//! substrate (`recobench-sim` + `recobench-vfs`):
//!
//! * **Physical structures** — control file, datafiles (block-addressed),
//!   online redo log groups (circular, fixed size), archived logs, backups.
//! * **Logical structures** — tablespaces, users, tables with typed rows,
//!   in-memory indexes maintained through redo.
//! * **Instance** — buffer cache with dirty tracking (DBWR), redo log
//!   buffer and writer (LGWR), checkpointing (CKPT: log-switch-triggered
//!   full checkpoints plus a timeout-driven incremental checkpoint
//!   position), archiver (ARCH), transaction manager with row locks and
//!   rollback via before-images.
//! * **Recovery** — crash recovery (roll-forward from the checkpoint
//!   position, then rollback of in-flight transactions), media recovery of
//!   individual datafiles (restore from backup + archived/online redo),
//!   and incomplete point-in-time recovery (restore whole database,
//!   recover until a stop SCN — losing the tail, as Oracle does after a
//!   `DROP` you need to undo).
//! * **Stand-by database** — a second server kept in permanent recovery by
//!   shipping and applying archived logs, with constant-time activation.
//!
//! The public entry point is [`DbServer`]; see the `quickstart` example in
//! the workspace root for an end-to-end tour.

pub mod archiver;
pub mod backup;
pub mod cache;
pub mod catalog;
pub mod checkpoint;
pub mod codec;
pub mod config;
pub mod controlfile;
pub mod error;
pub mod events;
pub mod fasthash;
pub mod heap;
pub mod index;
pub mod instance;
pub mod layout;
pub mod page;
pub mod recovery;
pub mod redo;
pub mod replica;
pub mod row;
pub mod server;
pub mod snapshot;
pub mod standby;
pub mod stats;
pub mod tap;
pub mod txn;
pub mod types;
pub mod verify;

pub use config::{CostModel, InstanceConfig};
pub use error::{DbError, DbResult, RecoveryError};
pub use events::{EngineEvent, EventSink, RecoveryPhase, RecoveryProcedure};
pub use layout::DiskLayout;
pub use replica::{FailoverPolicy, ReplicaSet, ReplicaSpec, ReplicaStatus, ReplicaTopology};
pub use row::{Row, Value};
pub use server::DbServer;
pub use snapshot::DbSnapshot;
pub use standby::StandbyServer;
pub use tap::{DmlChange, DmlTap};
pub use txn::{LockGrant, LockOutcome};
pub use types::{ObjectId, RowId, Scn, SessionId, TablespaceId, TxnId, UserId};
pub use verify::IntegrityReport;
