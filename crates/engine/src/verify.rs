//! Structural integrity walkers: heap ↔ index ↔ control file ↔ catalog.
//!
//! [`DbServer::verify_integrity`] proves (or disproves) the internal
//! consistency of an *open* database, independently of any workload-level
//! oracle:
//!
//! * **index ↔ heap** — every heap row is reachable through every index of
//!   its table under the right key, and every index entry resolves to a
//!   live heap row (no stale or dangling entries);
//! * **catalog ↔ storage** — every datafile the dictionary knows about is
//!   alive in the filesystem (unless the control file says it is
//!   legitimately offline), and every segment extent lies inside its
//!   datafile;
//! * **control file ↔ catalog** — the current log sequence is registered,
//!   a checkpoint exists, and offline-tablespace entries reference real
//!   tablespaces.
//!
//! The walkers use the zero-cost inspection interfaces, so they never
//! perturb simulated time. The torture oracle (`recobench-oracle`) runs
//! them after every experiment alongside its differential row check.

use crate::error::{DbError, DbResult};
use crate::server::DbServer;

/// Outcome of one integrity walk. `violations` is empty iff the database
/// passed every check; each entry is one human-readable finding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntegrityReport {
    /// Tables walked.
    pub tables_checked: u64,
    /// Heap rows visited.
    pub rows_checked: u64,
    /// Index entries visited.
    pub index_entries_checked: u64,
    /// Datafiles cross-checked against the filesystem.
    pub datafiles_checked: u64,
    /// Written datafile blocks whose stored image was checksum-verified.
    pub blocks_checksummed: u64,
    /// Every violation found, most specific first.
    pub violations: Vec<String>,
}

impl IntegrityReport {
    /// Whether the walk found no violations.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl DbServer {
    /// Walks the heap/index/control-file/catalog invariants of the open
    /// database and reports every violation found.
    ///
    /// # Errors
    ///
    /// Fails only if the instance is down — an unreadable table or file is
    /// a *violation*, not an error, so a damaged database still produces a
    /// report.
    pub fn verify_integrity(&self) -> DbResult<IntegrityReport> {
        let inst = self.inst.as_ref().ok_or(DbError::InstanceDown)?;
        let mut report = IntegrityReport::default();

        // ---- control file ↔ catalog ----------------------------------
        let control = match self.control.as_ref() {
            Some(c) => c,
            None => {
                report.violations.push("instance open without a control file".into());
                return Ok(report);
            }
        };
        if control.checkpoints.is_empty() {
            report.violations.push("control file holds no checkpoint record".into());
        }
        if control.seq(control.current_seq).is_none() {
            report
                .violations
                .push(format!("current log seq {} is not registered", control.current_seq));
        }
        for ts in &control.ts_offline {
            if !inst.catalog.tablespaces.contains_key(ts) {
                report
                    .violations
                    .push(format!("offline entry for unknown tablespace id {}", ts.0));
            }
        }

        // ---- catalog ↔ storage ---------------------------------------
        {
            let fs = self.fs.lock();
            for (no, df) in &inst.catalog.datafiles {
                report.datafiles_checked += 1;
                let offline = control.file_state(*no).offline
                    || control.is_ts_offline(df.tablespace);
                let healthy = match fs.meta(df.vfs_id) {
                    Ok(m) => !m.deleted && !m.corrupt,
                    Err(_) => false,
                };
                if !healthy && !offline {
                    report.violations.push(format!(
                        "datafile {} ({}) is damaged but not offline",
                        no.0, df.path
                    ));
                }
                // Checksum walk: every written block of a readable file
                // must decode with a valid CRC. This is what catches
                // *silent* damage — bit-rot and torn writes leave the vfs
                // metadata pristine; only the per-block checksum knows.
                if healthy && !offline {
                    if let Ok(blocks) = fs.peek_blocks_written(df.vfs_id) {
                        for (block, bytes) in blocks {
                            report.blocks_checksummed += 1;
                            if let Err(e) = crate::page::BlockImage::decode(bytes) {
                                let what = if e.is_checksum_mismatch() {
                                    "checksum mismatch"
                                } else {
                                    "undecodable image"
                                };
                                report.violations.push(format!(
                                    "datafile {} ({}): block {block} fails verification ({what})",
                                    no.0, df.path
                                ));
                            }
                        }
                    }
                }
                if !inst.catalog.tablespaces.contains_key(&df.tablespace) {
                    report.violations.push(format!(
                        "datafile {} belongs to unknown tablespace id {}",
                        no.0, df.tablespace.0
                    ));
                }
            }
        }

        // ---- heap ↔ index, per table ---------------------------------
        for (obj, table) in &inst.catalog.tables {
            report.tables_checked += 1;
            for extent in &table.segment.extents {
                match inst.catalog.datafiles.get(&extent.file) {
                    Some(df) if extent.start as u64 + extent.len as u64 > df.blocks => {
                        report.violations.push(format!(
                            "table {}: extent [{}+{}) overruns datafile {} ({} blocks)",
                            table.name, extent.start, extent.len, extent.file.0, df.blocks
                        ));
                    }
                    Some(_) => {}
                    None => {
                        report.violations.push(format!(
                            "table {}: extent references unknown datafile {}",
                            table.name, extent.file.0
                        ));
                    }
                }
            }
            let skip_scan = control.is_ts_offline(table.tablespace)
                || table.segment.extents.iter().any(|e| control.file_state(e.file).offline);
            if skip_scan {
                // Storage legitimately offline: heap contents unreadable
                // by design, nothing to cross-check.
                continue;
            }
            let rows = match self.peek_scan(*obj) {
                Ok(r) => r,
                Err(e) => {
                    report
                        .violations
                        .push(format!("table {}: heap unreadable: {e}", table.name));
                    continue;
                }
            };
            report.rows_checked += rows.len() as u64;
            let Some(indexes) = inst.indexes.get(obj) else {
                if !table.indexes.is_empty() {
                    report
                        .violations
                        .push(format!("table {}: indexes not instantiated", table.name));
                }
                continue;
            };
            if indexes.len() != table.indexes.len() {
                report.violations.push(format!(
                    "table {}: {} indexes instantiated, {} defined",
                    table.name,
                    indexes.len(),
                    table.indexes.len()
                ));
            }
            for ix in indexes {
                // Every heap row must be reachable under its key.
                for (rid, row) in &rows {
                    if !ix.lookup_row_ref(row).contains(rid) {
                        report.violations.push(format!(
                            "table {}: row {:?} missing from index {}",
                            table.name, rid, ix.def().name
                        ));
                    }
                }
                // Every index entry must resolve to a live row with the
                // same key; entry count equal to row count then rules out
                // duplicates and leftovers wholesale.
                report.index_entries_checked += ix.entry_count() as u64;
                if ix.entry_count() != rows.len() {
                    report.violations.push(format!(
                        "table {}: index {} holds {} entries for {} heap rows",
                        table.name,
                        ix.def().name,
                        ix.entry_count(),
                        rows.len()
                    ));
                }
                for (key, rids) in ix.entries() {
                    for rid in rids {
                        match rows.iter().find(|(r, _)| r == rid) {
                            Some((_, row)) if ix.key_of(row) == key => {}
                            Some(_) => {
                                report.violations.push(format!(
                                    "table {}: index {} entry {:?} keyed under stale key",
                                    table.name,
                                    ix.def().name,
                                    rid
                                ));
                            }
                            None => {
                                report.violations.push(format!(
                                    "table {}: index {} entry {:?} dangles (no heap row)",
                                    table.name,
                                    ix.def().name,
                                    rid
                                ));
                            }
                        }
                    }
                }
            }
        }
        Ok(report)
    }

    /// Paths of online datafiles holding at least one written block that
    /// no longer decodes (bad CRC or structural garbage) — the detection
    /// step of torn-write and bit-rot recovery, cheap enough to run as a
    /// health probe without the full integrity walk.
    ///
    /// # Errors
    ///
    /// Fails only if the instance is down.
    pub fn datafiles_with_bad_checksums(&self) -> DbResult<Vec<String>> {
        let inst = self.inst.as_ref().ok_or(DbError::InstanceDown)?;
        let control = self.control.as_ref().ok_or(DbError::InstanceDown)?;
        let fs = self.fs.lock();
        let mut bad = Vec::new();
        for (no, df) in &inst.catalog.datafiles {
            if control.file_state(*no).offline || control.is_ts_offline(df.tablespace) {
                continue;
            }
            // Loud damage (deletion, whole-file corruption) is the
            // integrity walk's business; this probe hunts silent damage
            // only, so an unreadable file is simply skipped.
            let Ok(blocks) = fs.peek_blocks_written(df.vfs_id) else { continue };
            if blocks.iter().any(|(_, bytes)| crate::page::BlockImage::decode(bytes.clone()).is_err())
            {
                bad.push(df.path.clone());
            }
        }
        Ok(bad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::IndexDef;
    use crate::config::InstanceConfig;
    use crate::layout::DiskLayout;
    use crate::row::{Row, Value};
    use recobench_sim::SimClock;

    fn server() -> DbServer {
        let cfg = InstanceConfig::builder()
            .redo_file_bytes(64 * 1024)
            .redo_groups(3)
            .checkpoint_timeout_secs(60)
            .archive_mode(true)
            .cache_blocks(64)
            .build();
        let mut srv = DbServer::on_fresh_disks("VFY", SimClock::shared(), DiskLayout::four_disk(), cfg);
        srv.create_database().unwrap();
        srv.create_user("app").unwrap();
        srv.create_tablespace("DATA", 2, 512).unwrap();
        srv.create_table(
            "T",
            "app",
            "DATA",
            vec![IndexDef { name: "PK".into(), cols: vec![0], unique: true, ordered: true }],
        )
        .unwrap();
        srv
    }

    #[test]
    fn healthy_database_verifies_clean() {
        let mut srv = server();
        let t = srv.table_id("T").unwrap();
        let s = srv.connect().unwrap();
        for i in 0..25u64 {
            srv.insert(s, t, Row::new(vec![Value::U64(i), Value::from("v")])).unwrap();
            srv.commit(s).unwrap();
        }
        let report = srv.verify_integrity().unwrap();
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.rows_checked, 25);
        assert!(report.index_entries_checked >= 25);
        assert!(report.datafiles_checked >= 2);
    }

    #[test]
    fn verify_survives_recovery_round_trip() {
        let mut srv = server();
        let t = srv.table_id("T").unwrap();
        let s = srv.connect().unwrap();
        for i in 0..30u64 {
            srv.insert(s, t, Row::new(vec![Value::U64(i), Value::from("v")])).unwrap();
            srv.commit(s).unwrap();
        }
        srv.shutdown_abort().unwrap();
        srv.startup().unwrap();
        let report = srv.verify_integrity().unwrap();
        assert!(report.is_clean(), "violations: {:?}", report.violations);
    }

    #[test]
    fn damaged_datafile_is_reported_when_not_offline() {
        let mut srv = server();
        let victim = srv.datafile_paths("DATA").unwrap()[0].clone();
        srv.os_delete_file(&victim).unwrap();
        let report = srv.verify_integrity().unwrap();
        assert!(
            report.violations.iter().any(|v| v.contains("damaged but not offline")),
            "violations: {:?}",
            report.violations
        );
    }

    #[test]
    fn offline_tablespace_is_not_a_violation() {
        let mut srv = server();
        srv.offline_tablespace("DATA").unwrap();
        let report = srv.verify_integrity().unwrap();
        assert!(report.is_clean(), "violations: {:?}", report.violations);
    }

    #[test]
    fn bit_rot_is_caught_by_the_checksum_walk() {
        let mut srv = server();
        let t = srv.table_id("T").unwrap();
        let s = srv.connect().unwrap();
        for i in 0..25u64 {
            srv.insert(s, t, Row::new(vec![Value::U64(i), Value::from("v")])).unwrap();
            srv.commit(s).unwrap();
        }
        // Push every image to disk, then rot one bit behind the engine's back.
        srv.checkpoint_now().unwrap();
        let clean = srv.verify_integrity().unwrap();
        assert!(clean.is_clean());
        assert!(clean.blocks_checksummed > 0, "the walk must actually visit blocks");
        // Rot whichever DATA file actually holds written blocks.
        let paths = srv.datafile_paths("DATA").unwrap();
        let rotted = paths.iter().any(|p| srv.sabotage_bit_rot(p, 7).is_ok());
        assert!(rotted, "no datafile had written blocks to rot");
        let report = srv.verify_integrity().unwrap();
        assert!(
            report.violations.iter().any(|v| v.contains("fails verification")),
            "a flipped bit must fail the checksum walk; violations: {:?}",
            report.violations
        );
        // The cheap health probe agrees with the full walk.
        let bad = srv.datafiles_with_bad_checksums().unwrap();
        assert_eq!(bad.len(), 1, "exactly one datafile was rotted: {bad:?}");
    }

    #[test]
    fn stale_index_entry_is_detected() {
        let mut srv = server();
        let t = srv.table_id("T").unwrap();
        let s = srv.connect().unwrap();
        let rid = srv.insert(s, t, Row::new(vec![Value::U64(1), Value::from("v")])).unwrap();
        srv.commit(s).unwrap();
        // Corrupt the index directly: remove the entry behind the heap's back.
        let inst = srv.inst.as_mut().unwrap();
        let row = Row::new(vec![Value::U64(1), Value::from("v")]);
        inst.indexes.get_mut(&t).unwrap()[0].remove(&row, rid);
        let report = srv.verify_integrity().unwrap();
        assert!(!report.is_clean());
        assert!(report.violations.iter().any(|v| v.contains("missing from index")));
    }
}
