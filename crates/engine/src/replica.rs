//! Replica sets: N warm stand-bys in configurable topologies with a
//! deterministic quorum-based failover controller.
//!
//! The paper's §5.3 measures exactly one stand-by and one manual
//! activation. Real COTS deployments survive operator faults through
//! replica *topologies* — several stand-bys fanning out from the primary,
//! or cascaded chains where each stand-by ships from the one above it —
//! governed by a failover *policy*: who decides the primary is dead, and
//! what happens to the survivors afterwards.
//!
//! Everything here is deterministic: votes are counted over a fixed node
//! order, the promotion candidate is the most-advanced `applied_seq` with
//! ties broken by the lowest replica id, and every delay (heartbeat
//! timeout, fencing round-trip) is a fixed simulated duration. Two runs
//! with the same seed take byte-identical failover decisions.

use std::sync::Arc;

use recobench_sim::{SimClock, SimDuration, SimTime};

use crate::config::InstanceConfig;
use crate::error::{DbError, DbResult, RecoveryError};
use crate::events::EngineEvent;
use crate::layout::DiskLayout;
use crate::server::DbServer;
use crate::standby::StandbyServer;
use crate::types::Scn;

/// Heartbeat timeout charged before an automatic policy declares the
/// primary dead.
const HEARTBEAT_TIMEOUT: SimDuration = SimDuration::from_secs(1);

/// STONITH round-trip charged by [`FailoverPolicy::AutoWithFencing`] to
/// force the old primary down before promoting.
const FENCE_ROUND_TRIP: SimDuration = SimDuration::from_millis(500);

/// Who decides the primary is dead, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailoverPolicy {
    /// An operator activates a stand-by by hand (the paper's §5.3
    /// procedure). No quorum is required — the operator is the authority —
    /// and no detection delay is charged here (the harness models operator
    /// reaction separately).
    Manual,
    /// Automatic: a majority of enrolled stand-bys must observe the
    /// primary dead before the most advanced one is promoted. Charges one
    /// heartbeat timeout of detection delay.
    AutoQuorum,
    /// [`FailoverPolicy::AutoQuorum`] plus STONITH fencing: before
    /// promotion the controller force-kills the old primary if it still
    /// answers, so a merely partitioned primary cannot cause split-brain.
    AutoWithFencing,
}

impl FailoverPolicy {
    /// Stable snake_case name used in reports and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            FailoverPolicy::Manual => "manual",
            FailoverPolicy::AutoQuorum => "auto_quorum",
            FailoverPolicy::AutoWithFencing => "auto_fencing",
        }
    }
}

/// One stand-by's place in the topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaSpec {
    /// `None`: ships from the primary. `Some(i)`: ships from replica `i`
    /// (cascaded; must be an earlier index).
    pub upstream: Option<usize>,
    /// Extra network lag added to every archive ship to this replica.
    pub ship_lag: SimDuration,
    /// Extra delay before each shipped archive's background apply begins.
    pub apply_delay: SimDuration,
}

/// A replica-set shape: how many stand-bys and who ships from whom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaTopology {
    name: String,
    specs: Vec<ReplicaSpec>,
}

impl ReplicaTopology {
    /// No replicas at all (the paper's unprotected baseline).
    pub fn none() -> ReplicaTopology {
        ReplicaTopology { name: "none".into(), specs: Vec::new() }
    }

    /// The paper's configuration: one stand-by shipping from the primary.
    pub fn single() -> ReplicaTopology {
        let mut t = Self::fan_out(1);
        t.name = "single".into();
        t
    }

    /// `n` stand-bys, each shipping directly from the primary.
    pub fn fan_out(n: usize) -> ReplicaTopology {
        ReplicaTopology {
            name: format!("fanout{n}"),
            specs: (0..n)
                .map(|_| ReplicaSpec {
                    upstream: None,
                    ship_lag: SimDuration::ZERO,
                    apply_delay: SimDuration::ZERO,
                })
                .collect(),
        }
    }

    /// A chain `depth` deep: replica 0 ships from the primary, replica 1
    /// from replica 0, and so on. Only the head loads the primary's
    /// archive disk.
    pub fn cascade(depth: usize) -> ReplicaTopology {
        ReplicaTopology {
            name: format!("cascade{depth}"),
            specs: (0..depth)
                .map(|i| ReplicaSpec {
                    upstream: i.checked_sub(1),
                    ship_lag: SimDuration::ZERO,
                    apply_delay: SimDuration::ZERO,
                })
                .collect(),
        }
    }

    /// Sets replica `i`'s ship lag and apply delay (builder-style). Out of
    /// range indexes are ignored.
    pub fn lag(mut self, i: usize, ship_lag: SimDuration, apply_delay: SimDuration) -> Self {
        if let Some(spec) = self.specs.get_mut(i) {
            spec.ship_lag = ship_lag;
            spec.apply_delay = apply_delay;
        }
        self
    }

    /// The topology's stable name (`none`, `single`, `fanout2`,
    /// `cascade3`, …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the topology has no replicas.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The per-replica specs.
    pub fn specs(&self) -> &[ReplicaSpec] {
        &self.specs
    }
}

/// What a replica is currently doing (reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaStatus {
    /// In managed recovery, applying shipped archives.
    Following,
    /// Promoted: this node is the current primary.
    Promoted,
    /// Isolated by a network partition: cannot vote, ship, or be promoted.
    Partitioned,
    /// Shipping broke (corrupt copy or redo gap); frozen until resynced.
    Broken,
    /// The machine is down.
    Dead,
}

/// Callback invoked whenever the set creates a stand-by server
/// (instantiation, resync, failback) so harnesses can attach span
/// collectors and JSONL writers to it.
pub type ReplicaObserver = Box<dyn FnMut(&mut DbServer, &str) + Send>;

struct ReplicaNode {
    standby: StandbyServer,
    name: String,
    upstream: Option<usize>,
    ship_lag: SimDuration,
    apply_delay: SimDuration,
    partitioned: bool,
    dead: bool,
    broken: Option<RecoveryError>,
}

/// N stand-bys plus the deterministic failover controller that governs
/// them.
pub struct ReplicaSet {
    nodes: Vec<ReplicaNode>,
    policy: FailoverPolicy,
    topology_name: String,
    promoted: Option<usize>,
    failovers: u64,
    clock: Arc<SimClock>,
    layout: DiskLayout,
    config: InstanceConfig,
    next_name: usize,
    observer: Option<ReplicaObserver>,
}

impl std::fmt::Debug for ReplicaSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaSet")
            .field("topology", &self.topology_name)
            .field("policy", &self.policy.name())
            .field("nodes", &self.nodes.len())
            .field("promoted", &self.promoted)
            .field("failovers", &self.failovers)
            .finish()
    }
}

impl ReplicaSet {
    /// Instantiates every replica in `topology` from the primary's most
    /// recent cold backup. Nodes are named `STANDBY1`, `STANDBY2`, … in
    /// topology order.
    ///
    /// # Errors
    ///
    /// Fails if the primary has no backup or a stand-by machine cannot be
    /// built.
    pub fn instantiate(
        primary: &DbServer,
        topology: &ReplicaTopology,
        policy: FailoverPolicy,
        clock: Arc<SimClock>,
        layout: DiskLayout,
        config: InstanceConfig,
    ) -> DbResult<ReplicaSet> {
        let mut nodes = Vec::with_capacity(topology.len());
        for (i, spec) in topology.specs().iter().enumerate() {
            let name = format!("STANDBY{}", i + 1);
            let mut standby = StandbyServer::instantiate(
                primary,
                &name,
                Arc::clone(&clock),
                layout.clone(),
                config.clone(),
            )?;
            standby.set_lags(spec.ship_lag, spec.apply_delay);
            nodes.push(ReplicaNode {
                standby,
                name,
                upstream: spec.upstream,
                ship_lag: spec.ship_lag,
                apply_delay: spec.apply_delay,
                partitioned: false,
                dead: false,
                broken: None,
            });
        }
        Ok(ReplicaSet {
            nodes,
            policy,
            topology_name: topology.name().to_string(),
            promoted: None,
            failovers: 0,
            clock,
            layout,
            config,
            next_name: topology.len() + 1,
            observer: None,
        })
    }

    /// Registers the observer called for every stand-by server the set
    /// creates, and immediately invokes it on the existing nodes.
    pub fn set_observer(&mut self, mut observer: ReplicaObserver) {
        for node in &mut self.nodes {
            observer(node.standby.server_mut(), &node.name);
        }
        self.observer = Some(observer);
    }

    /// Number of enrolled replicas (including dead and partitioned ones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the set has no replicas.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The governing policy.
    pub fn policy(&self) -> FailoverPolicy {
        self.policy
    }

    /// The topology's stable name.
    pub fn topology_name(&self) -> &str {
        &self.topology_name
    }

    /// Index of the currently promoted replica, if a failover happened.
    pub fn promoted(&self) -> Option<usize> {
        self.promoted
    }

    /// Failovers completed so far.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Replica `i`'s stand-by (reporting/tests).
    pub fn node(&self, i: usize) -> Option<&StandbyServer> {
        self.nodes.get(i).map(|n| &n.standby)
    }

    /// What replica `i` is currently doing.
    pub fn status(&self, i: usize) -> Option<ReplicaStatus> {
        let node = self.nodes.get(i)?;
        Some(if node.dead {
            ReplicaStatus::Dead
        } else if self.promoted == Some(i) {
            ReplicaStatus::Promoted
        } else if node.partitioned {
            ReplicaStatus::Partitioned
        } else if node.broken.is_some() {
            ReplicaStatus::Broken
        } else {
            ReplicaStatus::Following
        })
    }

    /// The promoted replica's server (the current primary after a
    /// failover), for the workload driver.
    pub fn active_mut(&mut self) -> Option<&mut DbServer> {
        let k = self.promoted?;
        Some(self.nodes.get_mut(k)?.standby.server_mut())
    }

    /// The highest commit SCN the promoted replica had applied when it
    /// activated: the differential oracle truncates its reference model to
    /// this boundary after a failover.
    pub fn promoted_last_commit_scn(&self) -> Option<Scn> {
        let k = self.promoted?;
        Some(self.nodes.get(k)?.standby.last_commit_scn())
    }

    /// Isolates replica `i` behind a network partition: it stops shipping
    /// and can neither vote nor be promoted.
    pub fn partition(&mut self, i: usize) {
        if let Some(node) = self.nodes.get_mut(i) {
            node.partitioned = true;
        }
    }

    /// Arms a media fault on replica `i`: its next shipped archive copy
    /// lands corrupted (see [`StandbyServer::arm_ship_corruption`]).
    pub fn arm_ship_corruption(&mut self, i: usize) {
        if let Some(node) = self.nodes.get_mut(i) {
            node.standby.arm_ship_corruption();
        }
    }

    /// The first replica that is following normally (not promoted, dead,
    /// partitioned, or broken) — the deterministic target for
    /// replica-directed faults.
    pub fn first_followable(&self) -> Option<usize> {
        (0..self.nodes.len()).find(|&i| {
            self.promoted != Some(i)
                && !self.nodes[i].dead
                && !self.nodes[i].partitioned
                && self.nodes[i].broken.is_none()
        })
    }

    /// Ships and applies along the topology: fan-out nodes pull from
    /// `primary` (or from the promoted replica after a failover), cascaded
    /// nodes pull from their upstream's retained copies. A node whose
    /// shipping breaks (corrupt copy, redo gap) is frozen — it keeps
    /// voting with whatever it has applied — rather than failing the run.
    ///
    /// # Errors
    ///
    /// Fails only on stand-by storage errors; broken shipping is recorded
    /// per node, not propagated.
    // tidy-entry(recovery)
    pub fn sync_all(&mut self, primary: &DbServer) -> DbResult<()> {
        self.sync_all_inner(Some(primary))
    }

    /// Ships and applies archives on every follower after a promotion:
    /// the promoted node is the shipping source, so no external primary
    /// is involved. Same failure handling as [`ReplicaSet::sync_all`].
    ///
    /// # Errors
    ///
    /// Fails only on stand-by storage errors.
    // tidy-entry(recovery)
    pub fn sync_followers(&mut self) -> DbResult<()> {
        self.sync_all_inner(None)
    }

    fn sync_all_inner(&mut self, primary: Option<&DbServer>) -> DbResult<()> {
        for i in 0..self.nodes.len() {
            let Some(node) = self.nodes.get(i) else { continue };
            if self.promoted == Some(i) || node.dead || node.partitioned || node.broken.is_some()
            {
                continue;
            }
            let result = match node.upstream {
                Some(j) if j != i && self.promoted == Some(j) => {
                    let (node, upstream) = pair_mut(&mut self.nodes, i, j);
                    node.standby.sync(upstream.standby.server())
                }
                Some(j) if j != i => {
                    let (node, upstream) = pair_mut(&mut self.nodes, i, j);
                    node.standby.sync_from_standby(&upstream.standby)
                }
                _ => match primary {
                    Some(p) => match self.nodes.get_mut(i) {
                        Some(n) => n.standby.sync(p),
                        None => continue,
                    },
                    None => continue,
                },
            };
            match result {
                Ok(()) => {}
                Err(DbError::Recovery(
                    reason @ (RecoveryError::ShippedArchiveCorrupt { .. }
                    | RecoveryError::ArchiveGap { .. }),
                )) => {
                    // The node cannot advance until re-instantiated; it
                    // stays enrolled (and voting) with a frozen
                    // applied_seq, so quorum math still counts it.
                    if let Some(n) = self.nodes.get_mut(i) {
                        n.broken = Some(reason);
                    }
                }
                Err(other) => return Err(other),
            }
        }
        Ok(())
    }

    /// Shipping-failure reason for replica `i`, if its shipping broke:
    /// distinguishes a redo gap from media corruption in reports.
    pub fn broken_reason(&self, i: usize) -> Option<&RecoveryError> {
        self.nodes.get(i).and_then(|n| n.broken.as_ref())
    }

    /// Kills the promoted replica's machine (the double-fault scenario:
    /// the newly promoted node dies too). Follow with
    /// [`ReplicaSet::fail_over`]`(None)` to promote a survivor.
    ///
    /// # Errors
    ///
    /// Fails when no replica is promoted.
    pub fn kill_promoted(&mut self) -> DbResult<SimTime> {
        let Some(k) = self.promoted else {
            return Err(DbError::BadAdminCommand("no promoted replica to kill".into()));
        };
        let node = self
            .nodes
            .get_mut(k)
            .ok_or_else(|| DbError::Unrecoverable(format!("replica {k} vanished from the set")))?;
        node.standby.server_mut().shutdown_abort()?;
        node.dead = true;
        Ok(self.clock.now())
    }

    /// Runs the failover controller after the primary is suspected dead.
    ///
    /// `old_primary` is the external primary (first failover) or `None`
    /// when the dead primary is the set's own promoted replica (double
    /// fault). The controller ships the dead primary's surviving archives
    /// one final time, counts votes — every live, unpartitioned stand-by
    /// observes the failure; the quorum denominator is every enrolled
    /// stand-by, partitioned or not — and, if the policy's quorum rule
    /// passes, promotes the most-advanced `applied_seq` (ties broken by
    /// the lowest replica id). [`FailoverPolicy::AutoWithFencing`]
    /// force-kills a still-open old primary first. Survivors are
    /// re-instantiated from a fresh backup of the new primary.
    ///
    /// Returns `Ok(None)` when no quorum or no candidate exists (the
    /// service stays down), otherwise the instant the new primary accepts
    /// work.
    ///
    /// # Errors
    ///
    /// Fails on storage errors while promoting or resyncing.
    // tidy-entry(recovery)
    pub fn fail_over(&mut self, mut old_primary: Option<&mut DbServer>) -> DbResult<Option<SimTime>> {
        if old_primary.is_none() && self.promoted.is_none() {
            return Err(DbError::BadAdminCommand("no primary to fail over from".into()));
        }
        // Final ship: whatever the dead primary archived before dying is
        // still on its (surviving) archive disks; the current online group
        // is the redo gap and is lost.
        self.sync_all_inner(old_primary.as_deref())?;
        // Votes and quorum. Enrolled stand-bys = not promoted, not dead.
        let standbys: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|&(i, n)| self.promoted != Some(i) && !n.dead)
            .map(|(i, _)| i)
            .collect();
        let votes = standbys
            .iter()
            .filter(|&&i| self.nodes.get(i).is_some_and(|n| !n.partitioned))
            .count();
        let total = standbys.len();
        let quorum_ok = match self.policy {
            FailoverPolicy::Manual => votes > 0,
            FailoverPolicy::AutoQuorum | FailoverPolicy::AutoWithFencing => votes * 2 > total,
        };
        if !quorum_ok {
            return Ok(None);
        }
        // Detection delay and (for the fencing policy) STONITH.
        match self.policy {
            FailoverPolicy::Manual => {}
            FailoverPolicy::AutoQuorum => self.clock.advance(HEARTBEAT_TIMEOUT),
            FailoverPolicy::AutoWithFencing => {
                self.clock.advance(HEARTBEAT_TIMEOUT);
                if let Some(p) = old_primary.take() {
                    if p.is_open() {
                        p.shutdown_abort()?;
                    }
                }
                self.clock.advance(FENCE_ROUND_TRIP);
            }
        }
        // Candidate: most-advanced applied_seq, ties to the lowest id.
        let mut candidate: Option<usize> = None;
        for &i in &standbys {
            let Some(n) = self.nodes.get(i) else { continue };
            if n.partitioned {
                continue;
            }
            let better = match candidate.and_then(|c| self.nodes.get(c)) {
                None => true,
                Some(c) => n.standby.applied_seq() > c.standby.applied_seq(),
            };
            if better {
                candidate = Some(i);
            }
        }
        let Some(k) = candidate else { return Ok(None) };
        let now = self.clock.now();
        let promoted_node = self
            .nodes
            .get_mut(k)
            .ok_or_else(|| DbError::Unrecoverable(format!("replica {k} vanished from the set")))?;
        promoted_node.standby.server_mut().events.record(
            now,
            EngineEvent::FailoverStarted { votes: votes as u64, replicas: total as u64 },
        );
        let ready = promoted_node.standby.activate()?;
        let applied = promoted_node.standby.applied_seq();
        promoted_node
            .standby
            .server_mut()
            .events
            .record(ready, EngineEvent::ReplicaPromoted { replica: k as u64, applied_seq: applied });
        self.promoted = Some(k);
        self.failovers += 1;
        // Survivors to re-enroll behind the new primary.
        let survivors: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|&(i, n)| i != k && !n.dead && !n.partitioned)
            .map(|(i, _)| i)
            .collect();
        if !survivors.is_empty() {
            // A fresh backup of the new primary: survivors re-instantiate
            // from it. Backgrounded — the new primary serves clients from
            // `ready`; re-protecting the set only keeps the disks busy.
            let source = self
                .nodes
                .get_mut(k)
                .ok_or_else(|| DbError::Unrecoverable(format!("replica {k} vanished from the set")))?;
            source.standby.server_mut().take_cold_backup_in_background()?;
            for i in survivors {
                self.resync_node(i, k)?;
            }
        }
        Ok(Some(ready))
    }

    /// Re-enrolls the repaired old primary's machine as a fresh stand-by
    /// of the current primary (re-imaged from a new backup — the copy it
    /// diverged from is discarded, exactly what a DBA does after fencing).
    /// Returns the new replica's index.
    ///
    /// # Errors
    ///
    /// Fails when no replica is promoted, or on storage errors.
    // tidy-entry(recovery)
    pub fn failback(&mut self) -> DbResult<usize> {
        let Some(k) = self.promoted else {
            return Err(DbError::BadAdminCommand("failback requires a promoted primary".into()));
        };
        {
            let node = self
                .nodes
                .get_mut(k)
                .ok_or_else(|| DbError::Unrecoverable(format!("replica {k} vanished from the set")))?;
            node.standby.server_mut().take_cold_backup()?;
        }
        let idx = self.nodes.len();
        let name = format!("STANDBY{}", self.next_name);
        self.next_name += 1;
        let source = self
            .nodes
            .get(k)
            .ok_or_else(|| DbError::Unrecoverable(format!("replica {k} vanished from the set")))?
            .standby
            .server();
        let mut standby = StandbyServer::instantiate(
            source,
            &name,
            Arc::clone(&self.clock),
            self.layout.clone(),
            self.config.clone(),
        )?;
        standby
            .server_mut()
            .events
            .record(self.clock.now(), EngineEvent::FailbackComplete { replica: idx as u64 });
        if let Some(observer) = self.observer.as_mut() {
            observer(standby.server_mut(), &name);
        }
        self.nodes.push(ReplicaNode {
            standby,
            name,
            upstream: Some(k),
            ship_lag: SimDuration::ZERO,
            apply_delay: SimDuration::ZERO,
            partitioned: false,
            dead: false,
            broken: None,
        });
        Ok(idx)
    }

    /// Re-instantiates survivor `i` from the promoted replica `k`'s fresh
    /// backup and points its shipping at the new primary.
    fn resync_node(&mut self, i: usize, k: usize) -> DbResult<()> {
        if i == k {
            return Ok(());
        }
        let name = self
            .nodes
            .get(i)
            .ok_or_else(|| DbError::Unrecoverable(format!("replica {i} vanished from the set")))?
            .name
            .clone();
        let source = self
            .nodes
            .get(k)
            .ok_or_else(|| DbError::Unrecoverable(format!("replica {k} vanished from the set")))?
            .standby
            .server();
        let mut standby = StandbyServer::instantiate_in_background(
            source,
            &name,
            Arc::clone(&self.clock),
            self.layout.clone(),
            self.config.clone(),
        )?;
        let node = self
            .nodes
            .get_mut(i)
            .ok_or_else(|| DbError::Unrecoverable(format!("replica {i} vanished from the set")))?;
        standby.set_lags(node.ship_lag, node.apply_delay);
        let applied = standby.applied_seq();
        standby
            .server_mut()
            .events
            .record(self.clock.now(), EngineEvent::ReplicaResync { replica: i as u64, applied_seq: applied });
        if let Some(observer) = self.observer.as_mut() {
            observer(standby.server_mut(), &name);
        }
        node.standby = standby;
        node.upstream = Some(k);
        node.broken = None;
        Ok(())
    }
}

/// Disjoint mutable/shared access to two different nodes.
fn pair_mut(nodes: &mut [ReplicaNode], i: usize, j: usize) -> (&mut ReplicaNode, &ReplicaNode) {
    if i < j {
        let (lo, hi) = nodes.split_at_mut(j);
        // tidy-allow(panic-freedom): i < j = lo.len() and hi is non-empty because j indexes nodes
        (&mut lo[i], &hi[0])
    } else {
        let (lo, hi) = nodes.split_at_mut(i);
        // tidy-allow(panic-freedom): j < i = lo.len() (callers never pass i == j) and hi is non-empty because i indexes nodes
        (&mut hi[0], &lo[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::IndexDef;
    use crate::row::{Row, Value};
    use crate::types::ObjectId;

    fn cfg(redo_kb: u64) -> InstanceConfig {
        InstanceConfig::builder()
            .redo_file_bytes(redo_kb * 1024)
            .redo_groups(3)
            .checkpoint_timeout_secs(60)
            .archive_mode(true)
            .cache_blocks(64)
            .build()
    }

    fn primary_with_data() -> (DbServer, ObjectId) {
        let clock = SimClock::shared();
        let mut p = DbServer::on_fresh_disks("PRIM", clock, DiskLayout::four_disk(), cfg(64));
        p.create_database().unwrap();
        p.create_user("tpcc").unwrap();
        p.create_tablespace("TPCC", 2, 512).unwrap();
        let t = p
            .create_table(
                "T",
                "tpcc",
                "TPCC",
                vec![IndexDef { name: "PK".into(), cols: vec![0], unique: true, ordered: true }],
            )
            .unwrap();
        let s = p.connect().unwrap();
        for i in 0..10 {
            p.insert(s, t, Row::new(vec![Value::U64(i), Value::from("seed")])).unwrap();
            p.commit(s).unwrap();
        }
        p.take_cold_backup().unwrap();
        (p, t)
    }

    fn replica_set(p: &DbServer, topology: &ReplicaTopology, policy: FailoverPolicy) -> ReplicaSet {
        ReplicaSet::instantiate(
            p,
            topology,
            policy,
            Arc::clone(p.clock()),
            DiskLayout::four_disk(),
            cfg(64),
        )
        .unwrap()
    }

    fn run_workload(p: &mut DbServer, t: ObjectId, rs: &mut ReplicaSet, from: u64, to: u64) {
        let s = p.connect().unwrap();
        for i in from..to {
            p.insert(s, t, Row::new(vec![Value::U64(i), Value::from("workload-row-payload")]))
                .unwrap();
            p.commit(s).unwrap();
            rs.sync_all(p).unwrap();
        }
    }

    #[test]
    fn quorum_failover_promotes_most_advanced_and_resyncs_survivor() {
        let (mut p, t) = primary_with_data();
        let mut rs = replica_set(&p, &ReplicaTopology::fan_out(2), FailoverPolicy::AutoQuorum);
        run_workload(&mut p, t, &mut rs, 100, 300);
        assert!(rs.node(0).unwrap().archives_shipped > 0);
        p.shutdown_abort().unwrap();
        let ready = rs.fail_over(Some(&mut p)).unwrap().expect("quorum of 2/2 must promote");
        assert_eq!(rs.promoted(), Some(0), "equal applied_seq ties break to the lowest id");
        assert_eq!(rs.failovers(), 1);
        assert_eq!(rs.status(1), Some(ReplicaStatus::Following), "survivor follows the new primary");
        // The survivor was re-instantiated and its counters show it.
        let promoted_stats = rs.node(0).unwrap().server().events().derived();
        assert_eq!(promoted_stats.failovers, 1);
        assert_eq!(promoted_stats.promotions, 1);
        let survivor_stats = rs.node(1).unwrap().server().events().derived();
        assert_eq!(survivor_stats.replica_resyncs, 1);
        // The new primary accepts work from `ready` on.
        assert!(ready >= SimTime::ZERO);
        let srv = rs.active_mut().unwrap();
        let s = srv.connect().unwrap();
        srv.insert(s, t, Row::new(vec![Value::U64(9_000), Value::from("after")])).unwrap();
        srv.commit(s).unwrap();
    }

    #[test]
    fn double_fault_promotes_the_survivor() {
        let (mut p, t) = primary_with_data();
        let mut rs = replica_set(&p, &ReplicaTopology::fan_out(2), FailoverPolicy::AutoQuorum);
        run_workload(&mut p, t, &mut rs, 100, 300);
        p.shutdown_abort().unwrap();
        rs.fail_over(Some(&mut p)).unwrap().expect("first failover");
        let first = rs.promoted().unwrap();
        // Drive some work on the new primary so the survivor follows it.
        {
            let srv = rs.active_mut().unwrap();
            let s = srv.connect().unwrap();
            for i in 1_000..1_050 {
                srv.insert(s, t, Row::new(vec![Value::U64(i), Value::from("second-epoch")])).unwrap();
                srv.commit(s).unwrap();
            }
        }
        rs.sync_all_inner(None).unwrap();
        // The promoted node dies too.
        rs.kill_promoted().unwrap();
        let ready = rs.fail_over(None).unwrap().expect("1/1 survivor quorum must promote");
        assert_ne!(rs.promoted(), Some(first));
        assert_eq!(rs.failovers(), 2);
        assert!(ready >= SimTime::ZERO);
        let srv = rs.active_mut().unwrap();
        let s = srv.connect().unwrap();
        srv.insert(s, t, Row::new(vec![Value::U64(9_001), Value::from("third-epoch")])).unwrap();
        srv.commit(s).unwrap();
    }

    #[test]
    fn partitioned_replica_denies_quorum_but_not_a_manual_operator() {
        let (mut p, t) = primary_with_data();
        let mut rs = replica_set(&p, &ReplicaTopology::fan_out(2), FailoverPolicy::AutoQuorum);
        run_workload(&mut p, t, &mut rs, 100, 200);
        rs.partition(1);
        p.shutdown_abort().unwrap();
        assert!(
            rs.fail_over(Some(&mut p)).unwrap().is_none(),
            "1 vote of 2 enrolled stand-bys is not a majority"
        );
        assert_eq!(rs.failovers(), 0);

        // Same scenario under a manual operator: the operator promotes the
        // reachable stand-by regardless of quorum.
        let (mut p2, t2) = primary_with_data();
        let mut rs2 = replica_set(&p2, &ReplicaTopology::fan_out(2), FailoverPolicy::Manual);
        run_workload(&mut p2, t2, &mut rs2, 100, 200);
        rs2.partition(1);
        p2.shutdown_abort().unwrap();
        assert!(rs2.fail_over(Some(&mut p2)).unwrap().is_some());
        assert_eq!(rs2.status(1), Some(ReplicaStatus::Partitioned), "isolated node is left behind");
    }

    #[test]
    fn cascaded_chain_follows_and_fails_over() {
        let (mut p, t) = primary_with_data();
        let mut rs = replica_set(&p, &ReplicaTopology::cascade(2), FailoverPolicy::AutoQuorum);
        run_workload(&mut p, t, &mut rs, 100, 300);
        // The tail ships a copy only once the head's copy has landed on the
        // head's archive disk (charged ship latency), so let the simulated
        // transfer drain before inspecting the chain.
        p.clock().advance(SimDuration::from_secs(5));
        rs.sync_all(&p).unwrap();
        assert!(rs.node(0).unwrap().archives_shipped > 0, "chain head ships from the primary");
        assert!(rs.node(1).unwrap().archives_shipped > 0, "chain tail ships from the head");
        assert!(
            rs.node(1).unwrap().applied_seq() <= rs.node(0).unwrap().applied_seq(),
            "the tail can never be ahead of its upstream"
        );
        p.shutdown_abort().unwrap();
        rs.fail_over(Some(&mut p)).unwrap().expect("cascade promotes its most advanced node");
        assert_eq!(rs.promoted(), Some(0), "the chain head is most advanced");
        assert_eq!(rs.status(1), Some(ReplicaStatus::Following));
    }

    #[test]
    fn corrupt_shipped_archive_freezes_the_node_and_quorum_picks_the_healthy_one() {
        let (mut p, t) = primary_with_data();
        let mut rs = replica_set(&p, &ReplicaTopology::fan_out(2), FailoverPolicy::AutoQuorum);
        run_workload(&mut p, t, &mut rs, 100, 200);
        rs.arm_ship_corruption(0);
        run_workload(&mut p, t, &mut rs, 200, 400);
        assert_eq!(rs.status(0), Some(ReplicaStatus::Broken));
        assert!(matches!(
            rs.broken_reason(0),
            Some(RecoveryError::ShippedArchiveCorrupt { .. })
        ));
        assert!(
            rs.node(0).unwrap().applied_seq() < rs.node(1).unwrap().applied_seq(),
            "the broken node froze while the healthy one advanced"
        );
        p.shutdown_abort().unwrap();
        rs.fail_over(Some(&mut p)).unwrap().expect("2 votes of 2: broken nodes still vote");
        assert_eq!(rs.promoted(), Some(1), "most-advanced applied_seq beats the lower id");
        assert_eq!(rs.status(0), Some(ReplicaStatus::Following), "resync heals the broken node");
    }

    #[test]
    fn fencing_policy_kills_a_still_open_primary_before_promoting() {
        let (mut p, t) = primary_with_data();
        let mut rs = replica_set(&p, &ReplicaTopology::fan_out(2), FailoverPolicy::AutoWithFencing);
        run_workload(&mut p, t, &mut rs, 100, 200);
        // The primary is only *suspected* dead (e.g. partitioned away from
        // the clients) — it is still running.
        assert!(p.is_open());
        rs.fail_over(Some(&mut p)).unwrap().expect("fencing failover");
        assert!(!p.is_open(), "STONITH must have force-killed the old primary");
    }

    #[test]
    fn failback_enrolls_a_new_standby_behind_the_promoted_primary() {
        let (mut p, t) = primary_with_data();
        let mut rs = replica_set(&p, &ReplicaTopology::fan_out(1), FailoverPolicy::Manual);
        run_workload(&mut p, t, &mut rs, 100, 300);
        p.shutdown_abort().unwrap();
        rs.fail_over(Some(&mut p)).unwrap().expect("manual failover");
        let idx = rs.failback().unwrap();
        assert_eq!(idx, 1);
        assert_eq!(rs.status(idx), Some(ReplicaStatus::Following));
        assert_eq!(rs.node(idx).unwrap().server().events().derived().failbacks, 1);
        // The failback node follows the new primary's redo.
        {
            let srv = rs.active_mut().unwrap();
            let s = srv.connect().unwrap();
            for i in 2_000..2_200 {
                srv.insert(s, t, Row::new(vec![Value::U64(i), Value::from("post-failback-load")]))
                    .unwrap();
                srv.commit(s).unwrap();
            }
        }
        rs.sync_all_inner(None).unwrap();
        assert!(rs.node(idx).unwrap().archives_shipped > 0, "failback node ships from the promoted");
        // And it can itself be promoted when the new primary dies.
        rs.kill_promoted().unwrap();
        rs.fail_over(None).unwrap().expect("failback node takes over");
        assert_eq!(rs.promoted(), Some(idx));
    }

    #[test]
    fn topology_constructors_and_names() {
        assert!(ReplicaTopology::none().is_empty());
        assert_eq!(ReplicaTopology::single().len(), 1);
        assert_eq!(ReplicaTopology::single().name(), "single");
        let f = ReplicaTopology::fan_out(3);
        assert_eq!(f.name(), "fanout3");
        assert!(f.specs().iter().all(|s| s.upstream.is_none()));
        let c = ReplicaTopology::cascade(3);
        assert_eq!(c.name(), "cascade3");
        assert_eq!(
            c.specs().iter().map(|s| s.upstream).collect::<Vec<_>>(),
            vec![None, Some(0), Some(1)]
        );
        let lagged = ReplicaTopology::fan_out(2).lag(
            1,
            SimDuration::from_millis(50),
            SimDuration::from_secs(2),
        );
        assert_eq!(lagged.specs()[1].ship_lag, SimDuration::from_millis(50));
        assert_eq!(FailoverPolicy::AutoWithFencing.name(), "auto_fencing");
    }

    #[test]
    fn lagged_replica_trails_its_unlagged_peer() {
        let (mut p, t) = primary_with_data();
        let topo = ReplicaTopology::fan_out(2).lag(
            1,
            SimDuration::from_secs(30),
            SimDuration::from_secs(30),
        );
        let mut rs = replica_set(&p, &topo, FailoverPolicy::AutoQuorum);
        run_workload(&mut p, t, &mut rs, 100, 300);
        assert!(
            rs.node(1).unwrap().applied_seq() <= rs.node(0).unwrap().applied_seq(),
            "a heavily lagged replica can never be ahead"
        );
        p.shutdown_abort().unwrap();
        rs.fail_over(Some(&mut p)).unwrap().expect("quorum");
        assert_eq!(rs.promoted(), Some(0), "the unlagged replica wins promotion");
    }
}
