//! The control file: the database's persistent metadata root.
//!
//! In the simulation the control file survives instance crashes because it
//! belongs to the [`DbServer`](crate::server::DbServer) (the *machine*),
//! while everything volatile belongs to the
//! [`Instance`](crate::instance::Instance) that a crash destroys.
//!
//! State transitions that complete asynchronously (checkpoints, archiving)
//! are stored as *timestamped facts*: a checkpoint record carries the
//! instant its writes finished, and a crash at time `T` only honours
//! records completed by `T`. This is how the simulation gets crash
//! semantics right without replaying I/O.

use std::collections::BTreeMap;
use std::sync::Arc;

use recobench_sim::SimTime;
use recobench_vfs::FileId;

use crate::catalog::Catalog;
use crate::types::{FileNo, RedoAddr, Scn, TablespaceId};

/// One online redo log group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogGroup {
    /// Path of the group's (single-member) log file.
    pub path: String,
    /// Filesystem handle.
    pub vfs_id: FileId,
}

/// Where a log sequence lives and when it stops being needed.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqLocation {
    /// Online group still holding this sequence, if not yet overwritten.
    pub group: Option<usize>,
    /// Archive file holding a copy, if archived.
    pub archive: Option<FileId>,
    /// When the archive copy completed.
    pub archive_done_at: Option<SimTime>,
    /// When the checkpoint triggered by switching *out* of this sequence
    /// completed (after which the sequence's redo is no longer needed for
    /// crash recovery).
    pub released_at: Option<SimTime>,
    /// Size of the sequence when it was closed (padding included); `None`
    /// while it is still being written.
    pub end_offset: Option<u64>,
}

/// A completed (or completing) checkpoint.
#[derive(Debug, Clone)]
pub struct CkptRecord {
    /// Redo address recovery may start from once this checkpoint holds.
    pub position: RedoAddr,
    /// SCN at the time the checkpoint was taken.
    pub scn: Scn,
    /// Instant the checkpoint's datafile writes completed.
    pub complete_at: SimTime,
    /// Dictionary snapshot consistent with `position`.
    pub catalog: Arc<Catalog>,
}

/// Runtime (non-dictionary) state of a datafile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FileRuntime {
    /// Whether the file is offline (operator action or damage).
    pub offline: bool,
    /// If media recovery is needed to bring the file online, the redo
    /// address to recover from.
    pub recover_from: Option<RedoAddr>,
}

/// The control file.
#[derive(Debug, Clone)]
pub struct ControlFile {
    /// Database name.
    pub db_name: String,
    /// Online redo log groups, in order.
    pub groups: Vec<LogGroup>,
    /// Group currently being written.
    pub current_group: usize,
    /// Sequence currently being written.
    pub current_seq: u64,
    /// Bytes flushed into the current sequence (padding included).
    pub current_flushed: u64,
    /// Location and lifecycle of every known sequence.
    pub seqs: BTreeMap<u64, SeqLocation>,
    /// Checkpoint history, oldest first.
    pub checkpoints: Vec<CkptRecord>,
    /// Per-datafile runtime state (offline flags).
    pub file_states: BTreeMap<FileNo, FileRuntime>,
    /// Offline tablespaces.
    pub ts_offline: Vec<TablespaceId>,
    /// Whether the last shutdown was clean.
    pub clean_shutdown: bool,
    /// Instant the last instance terminated (crash or shutdown).
    pub stopped_at: Option<SimTime>,
    /// Highest SCN known durable (updated at checkpoints and shutdown).
    pub last_scn: Scn,
    /// Incarnation number; bumped by every `open resetlogs`.
    pub incarnation: u32,
}

impl ControlFile {
    /// Creates the control file for a fresh database.
    pub fn new(db_name: &str, groups: Vec<LogGroup>, initial_catalog: Arc<Catalog>) -> Self {
        let mut seqs = BTreeMap::new();
        seqs.insert(
            1,
            SeqLocation {
                group: Some(0),
                archive: None,
                archive_done_at: None,
                released_at: None,
                end_offset: None,
            },
        );
        ControlFile {
            db_name: db_name.to_string(),
            groups,
            current_group: 0,
            current_seq: 1,
            current_flushed: 0,
            seqs,
            checkpoints: vec![CkptRecord {
                position: RedoAddr::start_of(1),
                scn: Scn::ZERO,
                complete_at: SimTime::ZERO,
                catalog: initial_catalog,
            }],
            file_states: BTreeMap::new(),
            ts_offline: Vec::new(),
            clean_shutdown: true,
            stopped_at: None,
            last_scn: Scn::ZERO,
            incarnation: 1,
        }
    }

    /// The checkpoint in force at instant `at`: the completed record with
    /// the greatest position.
    ///
    /// # Panics
    ///
    /// Panics if no checkpoint has completed by `at` (impossible: database
    /// creation seeds one at time zero).
    pub fn effective_checkpoint(&self, at: SimTime) -> &CkptRecord {
        self.checkpoints
            .iter()
            .filter(|c| c.complete_at <= at)
            .max_by_key(|c| c.position)
            // tidy-allow(panic-freedom): database creation seeds a checkpoint at time zero, so the filter is never empty
            .expect("database creation seeds a checkpoint at time zero")
    }

    /// Records a checkpoint and prunes history that can never be effective
    /// again (dominated records older than the newest completed one).
    pub fn add_checkpoint(&mut self, rec: CkptRecord) {
        self.checkpoints.push(rec);
        // Keep records that could still be the effective one for some
        // crash instant: the latest fully-completed record plus anything
        // newer or still in flight. A generous bound keeps this simple.
        if self.checkpoints.len() > 64 {
            let keep_from = self.checkpoints.len() - 32;
            self.checkpoints.drain(..keep_from);
        }
    }

    /// Runtime state of a datafile (default: online).
    pub fn file_state(&self, file: FileNo) -> FileRuntime {
        self.file_states.get(&file).copied().unwrap_or_default()
    }

    /// Mutable runtime state of a datafile.
    pub fn file_state_mut(&mut self, file: FileNo) -> &mut FileRuntime {
        self.file_states.entry(file).or_default()
    }

    /// Whether a tablespace is offline.
    pub fn is_ts_offline(&self, ts: TablespaceId) -> bool {
        self.ts_offline.contains(&ts)
    }

    /// Whether any file or tablespace carries runtime (offline/recovery)
    /// state. False in fault-free operation, letting block access skip the
    /// per-file availability checks. Conservative: a `file_states` entry
    /// that was reset back to online still reports true.
    pub fn has_runtime_state(&self) -> bool {
        !self.file_states.is_empty() || !self.ts_offline.is_empty()
    }

    /// The location entry for sequence `seq`.
    pub fn seq(&self, seq: u64) -> Option<&SeqLocation> {
        self.seqs.get(&seq)
    }

    /// Whether the redo for `seq` is readable at time `at` (still online,
    /// or archived by then).
    pub fn seq_available(&self, seq: u64, at: SimTime) -> bool {
        match self.seqs.get(&seq) {
            None => false,
            Some(loc) => {
                loc.group.is_some()
                    || matches!(loc.archive_done_at, Some(t) if t <= at && loc.archive.is_some())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cf() -> ControlFile {
        ControlFile::new(
            "TEST",
            vec![
                LogGroup { path: "/u03/redo01.log".into(), vfs_id: FileId(1) },
                LogGroup { path: "/u03/redo02.log".into(), vfs_id: FileId(2) },
            ],
            Arc::new(Catalog::new()),
        )
    }

    fn ckpt(seq: u64, complete_secs: u64) -> CkptRecord {
        CkptRecord {
            position: RedoAddr::start_of(seq),
            scn: Scn(seq * 100),
            complete_at: SimTime::from_secs(complete_secs),
            catalog: Arc::new(Catalog::new()),
        }
    }

    #[test]
    fn new_controlfile_seeds_seq_and_checkpoint() {
        let c = cf();
        assert_eq!(c.current_seq, 1);
        assert!(c.seqs.contains_key(&1));
        assert_eq!(c.effective_checkpoint(SimTime::ZERO).position, RedoAddr::start_of(1));
    }

    #[test]
    fn effective_checkpoint_honours_completion_time() {
        let mut c = cf();
        c.add_checkpoint(ckpt(2, 100));
        c.add_checkpoint(ckpt(3, 200));
        // A crash at t=150 only sees the checkpoint completed at t=100.
        assert_eq!(c.effective_checkpoint(SimTime::from_secs(150)).position, RedoAddr::start_of(2));
        assert_eq!(c.effective_checkpoint(SimTime::from_secs(250)).position, RedoAddr::start_of(3));
    }

    #[test]
    fn effective_checkpoint_takes_max_position_not_latest_time() {
        let mut c = cf();
        c.add_checkpoint(ckpt(5, 100));
        // An incremental record with an older position completes later.
        c.add_checkpoint(ckpt(4, 120));
        assert_eq!(c.effective_checkpoint(SimTime::from_secs(130)).position, RedoAddr::start_of(5));
    }

    #[test]
    fn seq_availability() {
        let mut c = cf();
        // Seq 1 is online.
        assert!(c.seq_available(1, SimTime::ZERO));
        // Unknown seq is not available.
        assert!(!c.seq_available(9, SimTime::ZERO));
        // An archived-but-overwritten seq is available only after the
        // archive copy completes.
        c.seqs.insert(
            2,
            SeqLocation {
                group: None,
                archive: Some(FileId(7)),
                archive_done_at: Some(SimTime::from_secs(50)),
                released_at: None,
                end_offset: Some(1000),
            },
        );
        assert!(!c.seq_available(2, SimTime::from_secs(49)));
        assert!(c.seq_available(2, SimTime::from_secs(50)));
    }

    #[test]
    fn file_state_defaults_online() {
        let mut c = cf();
        assert!(!c.file_state(FileNo(3)).offline);
        c.file_state_mut(FileNo(3)).offline = true;
        assert!(c.file_state(FileNo(3)).offline);
    }

    #[test]
    fn checkpoint_history_is_pruned() {
        let mut c = cf();
        for i in 0..200 {
            c.add_checkpoint(ckpt(i + 2, i));
        }
        assert!(c.checkpoints.len() <= 64);
        // The newest record survives pruning.
        assert_eq!(
            c.effective_checkpoint(SimTime::from_secs(10_000)).position,
            RedoAddr::start_of(201)
        );
    }
}
