//! The archive writer (ARCH): copying filled online log groups to the
//! archive destination.
//!
//! Archiving is submitted at log-switch time and completes asynchronously:
//! the copy occupies the redo disk (read) and the archive disk (write),
//! which is the "moderate performance impact" of ARCHIVELOG mode the
//! paper's Figure 5 shows. A group cannot be reused until its sequence has
//! been archived.

use recobench_sim::SimTime;
use recobench_vfs::{DiskId, FileKind, SimFs};

use crate::controlfile::ControlFile;
use crate::error::{DbError, DbResult, RecoveryError};
use crate::events::{EngineEvent, EventSink};

/// Archives sequence `seq` (which must still reside in an online group):
/// submits the copy at `now`, records the archive location and completion
/// time in the control file, emits [`EngineEvent::Archived`] on `events`,
/// and returns the completion instant.
///
/// # Errors
///
/// Fails if the sequence is unknown, no longer online, or the copy fails.
// tidy-entry(recovery)
pub(crate) fn archive_seq(
    fs: &mut SimFs,
    control: &mut ControlFile,
    archive_disk: DiskId,
    seq: u64,
    now: SimTime,
    events: &mut EventSink,
) -> DbResult<SimTime> {
    let group_idx = control
        .seqs
        .get(&seq)
        .and_then(|loc| loc.group)
        .ok_or_else(|| DbError::BadAdminCommand(format!("log seq {seq} is not online")))?;
    let group_file =
        control.groups.get(group_idx).ok_or(RecoveryError::SeqLocationLost(seq))?.vfs_id;
    let path = format!("/arch/{}_{:06}.arc", control.db_name, seq);
    let (done, archive_id) = fs.copy_file(group_file, &path, archive_disk, FileKind::Archive, now)?;
    let loc = control.seqs.get_mut(&seq).ok_or(RecoveryError::SeqLocationLost(seq))?;
    loc.archive = Some(archive_id);
    loc.archive_done_at = Some(done);
    events.record(now, EngineEvent::Archived { seq, complete_at: done });
    Ok(done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::controlfile::LogGroup;
    use bytes::Bytes;
    use recobench_sim::DiskProfile;
    use std::sync::Arc;

    fn setup() -> (SimFs, ControlFile) {
        let mut fs = SimFs::new(vec![DiskProfile::server_2000(); 2]);
        let g1 = fs.create_append_file("/u03/redo01.log", DiskId(0), FileKind::Redo).unwrap();
        let control = ControlFile::new(
            "TEST",
            vec![LogGroup { path: "/u03/redo01.log".into(), vfs_id: g1 }],
            Arc::new(Catalog::new()),
        );
        (fs, control)
    }

    #[test]
    fn archive_copies_and_records_completion() {
        let (mut fs, mut control) = setup();
        let g = control.groups[0].vfs_id;
        fs.append(g, Bytes::from(vec![1u8; 4096]), SimTime::ZERO).unwrap();
        let mut events = EventSink::new(16);
        let done =
            archive_seq(&mut fs, &mut control, DiskId(1), 1, SimTime::from_secs(1), &mut events)
                .unwrap();
        assert!(done > SimTime::from_secs(1));
        assert_eq!(
            events.events(),
            &[(SimTime::from_secs(1), EngineEvent::Archived { seq: 1, complete_at: done })]
        );
        assert_eq!(events.derived().archives_created, 1);
        let loc = control.seq(1).unwrap();
        assert_eq!(loc.archive_done_at, Some(done));
        let archive = loc.archive.unwrap();
        let segs = fs.peek_all(archive).unwrap();
        assert_eq!(segs[0].len(), 4096, "archive holds the group contents");
        assert!(control.seq_available(1, done));
    }

    #[test]
    fn archiving_unknown_seq_fails() {
        let (mut fs, mut control) = setup();
        let mut events = EventSink::new(16);
        let err = archive_seq(&mut fs, &mut control, DiskId(1), 42, SimTime::ZERO, &mut events)
            .unwrap_err();
        assert!(matches!(err, DbError::BadAdminCommand(_)));
        assert!(events.events().is_empty(), "no event on failure");
    }

    #[test]
    fn archiving_overwritten_seq_fails() {
        let (mut fs, mut control) = setup();
        control.seqs.get_mut(&1).unwrap().group = None;
        let mut events = EventSink::new(16);
        assert!(archive_seq(&mut fs, &mut control, DiskId(1), 1, SimTime::ZERO, &mut events).is_err());
    }
}
