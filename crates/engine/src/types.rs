//! Identifier newtypes used across the engine.

use std::fmt;

use serde::{Deserialize, Serialize};

/// System change number: the engine's logical clock.
///
/// Every redo record is stamped with a fresh SCN; block images remember the
/// SCN of the last change applied to them, which makes redo application
/// idempotent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Scn(pub u64);

impl Scn {
    /// The SCN before any change.
    pub const ZERO: Scn = Scn(0);

    /// The next SCN.
    pub fn next(self) -> Scn {
        Scn(self.0 + 1)
    }
}

impl fmt::Display for Scn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scn#{}", self.0)
    }
}

/// Transaction identifier, unique within one incarnation of the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn#{}", self.0)
    }
}

/// Session identifier: one connected client of a [`crate::DbServer`].
///
/// Sessions are volatile — an instance crash disconnects every session —
/// and are never reused within one server's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sess#{}", self.0)
    }
}

/// Identifier of a user (schema owner).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(pub u32);

/// Identifier of a database object (table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u32);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// Identifier of a tablespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TablespaceId(pub u32);

/// Engine-level datafile number (stable across restore; maps to a vfs file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileNo(pub u32);

impl fmt::Display for FileNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file#{}", self.0)
    }
}

/// Physical row address: datafile number, block within the file, slot
/// within the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RowId {
    /// Datafile number.
    pub file: FileNo,
    /// Block index within the datafile.
    pub block: u32,
    /// Slot within the block.
    pub slot: u16,
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.file.0, self.block, self.slot)
    }
}

/// Address of a byte position in the redo stream: log sequence number plus
/// byte offset within that log. Totally ordered; later positions are
/// strictly greater.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct RedoAddr {
    /// Log sequence number (increments at every log switch).
    pub seq: u64,
    /// Byte offset within the log with this sequence number.
    pub offset: u64,
}

impl RedoAddr {
    /// The start of the redo stream.
    pub const ZERO: RedoAddr = RedoAddr { seq: 0, offset: 0 };

    /// The start of log sequence `seq`.
    pub fn start_of(seq: u64) -> RedoAddr {
        RedoAddr { seq, offset: 0 }
    }
}

impl fmt::Display for RedoAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "redo@{}/{}", self.seq, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scn_is_ordered_and_advances() {
        let a = Scn::ZERO;
        let b = a.next();
        assert!(b > a);
        assert_eq!(b, Scn(1));
    }

    #[test]
    fn redo_addr_orders_by_seq_then_offset() {
        let a = RedoAddr { seq: 1, offset: 500 };
        let b = RedoAddr { seq: 2, offset: 0 };
        let c = RedoAddr { seq: 2, offset: 10 };
        assert!(a < b && b < c);
        assert_eq!(RedoAddr::start_of(2), b);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Scn(7).to_string(), "scn#7");
        assert_eq!(SessionId(5).to_string(), "sess#5");
        assert_eq!(
            RowId { file: FileNo(3), block: 9, slot: 2 }.to_string(),
            "3:9:2"
        );
        assert_eq!(RedoAddr { seq: 4, offset: 16 }.to_string(), "redo@4/16");
    }
}
