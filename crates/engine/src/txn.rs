//! Transactions, undo and row locks.

use std::collections::{BTreeMap, VecDeque};

use recobench_sim::SimTime;

use crate::error::{DbError, DbResult};
use crate::fasthash::FastMap;
use crate::row::Row;
use crate::types::{ObjectId, RowId, TxnId};

/// The logical inverse of one change, retained until commit.
#[derive(Debug, Clone, PartialEq)]
pub enum UndoOp {
    /// Undo an insert by deleting the row.
    UndoInsert {
        /// Table changed.
        obj: ObjectId,
        /// Row inserted.
        rid: RowId,
    },
    /// Undo an update by restoring the before-image.
    UndoUpdate {
        /// Table changed.
        obj: ObjectId,
        /// Row updated.
        rid: RowId,
        /// Image to restore.
        before: Row,
    },
    /// Undo a delete by re-inserting the before-image.
    UndoDelete {
        /// Table changed.
        obj: ObjectId,
        /// Row deleted.
        rid: RowId,
        /// Image to restore.
        before: Row,
    },
}

/// Per-transaction state.
#[derive(Debug, Default, Clone)]
pub struct TxnState {
    /// Undo records in application order (rolled back in reverse).
    pub undo: Vec<UndoOp>,
    /// Row locks held.
    pub locks: Vec<(ObjectId, RowId)>,
}

/// The table of active transactions.
#[derive(Debug, Default, Clone)]
pub struct TxnTable {
    active: BTreeMap<TxnId, TxnState>,
    next: u64,
}

impl TxnTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        TxnTable::default()
    }

    /// Starts a transaction.
    pub fn begin(&mut self) -> TxnId {
        self.next += 1;
        let id = TxnId(self.next);
        self.active.insert(id, TxnState::default());
        id
    }

    /// Mutable state of an active transaction.
    ///
    /// # Errors
    ///
    /// Fails if the transaction is not active.
    pub fn get_mut(&mut self, txn: TxnId) -> DbResult<&mut TxnState> {
        self.active.get_mut(&txn).ok_or(DbError::TxnNotActive(txn))
    }

    /// Whether the transaction is active.
    pub fn is_active(&self, txn: TxnId) -> bool {
        self.active.contains_key(&txn)
    }

    /// Ends a transaction, returning its state (for lock release or undo).
    ///
    /// # Errors
    ///
    /// Fails if the transaction is not active.
    pub fn finish(&mut self, txn: TxnId) -> DbResult<TxnState> {
        self.active.remove(&txn).ok_or(DbError::TxnNotActive(txn))
    }

    /// Number of active transactions.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Ids of all active transactions, ascending, without allocating.
    pub fn active_ids(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.active.keys().copied()
    }

    /// Advances the id allocator past `floor` (used after recovery so new
    /// transactions never reuse a replayed id).
    pub fn bump_past(&mut self, floor: u64) {
        self.next = self.next.max(floor);
    }

    /// Finds a live transaction other than `txn` whose undo log holds a
    /// before-image of a row of `obj` matching `pred` — a transaction that
    /// deleted that row or moved it away, and would resurrect the image if
    /// it rolled back. Returns the transaction and the row it still holds
    /// locked, so the caller can queue behind it.
    pub fn vacated_by_other<F>(&self, txn: TxnId, obj: ObjectId, pred: F) -> Option<(TxnId, RowId)>
    where
        F: Fn(&Row) -> bool,
    {
        self.active.iter().filter(|&(&id, _)| id != txn).find_map(|(&id, st)| {
            st.undo.iter().find_map(|op| match op {
                UndoOp::UndoDelete { obj: o, rid, before }
                | UndoOp::UndoUpdate { obj: o, rid, before }
                    if *o == obj && pred(before) =>
                {
                    Some((id, *rid))
                }
                _ => None,
            })
        })
    }
}

/// Result of one lock acquisition attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock was free and is now held by the requester.
    Acquired,
    /// The requester already holds the lock (re-acquisition).
    AlreadyHeld,
    /// Another transaction holds the lock; the requester is queued FIFO
    /// behind it and must retry the statement once granted.
    Waiting {
        /// The current lock holder.
        holder: TxnId,
    },
    /// Queuing the requester would close a cycle in the waits-for graph.
    /// The requester is NOT enqueued; it is the deterministic victim and
    /// must abort. The cycle starts with the victim.
    Deadlock {
        /// Transactions on the waits-for cycle, victim first.
        cycle: Vec<TxnId>,
    },
}

/// A lock handed to a queued waiter when the previous holder released it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockGrant {
    /// The transaction that now holds the lock.
    pub txn: TxnId,
    /// The row it waited for.
    pub obj: ObjectId,
    /// Row granted.
    pub rid: RowId,
    /// How long it waited, in simulated microseconds.
    pub wait_us: u64,
}

/// One locked row: the holder plus a FIFO queue of waiters (with the
/// instant each began waiting, for wait-time accounting).
#[derive(Debug, Clone)]
struct LockEntry {
    holder: TxnId,
    waiters: VecDeque<(TxnId, SimTime)>,
}

/// Exclusive row locks with FIFO wait queues and deadlock detection.
///
/// Each transaction waits on at most one row at a time (a statement blocks
/// on its first contended lock), so the waits-for graph is functional:
/// cycle detection is a walk along holder → awaited row → holder until the
/// chain ends or returns to the requester. The transaction whose request
/// would close the cycle is always the victim — the same deterministic
/// policy Oracle applies to the session that detects ORA-00060.
#[derive(Debug, Default, Clone)]
pub struct LockTable {
    rows: FastMap<(ObjectId, RowId), LockEntry>,
    /// The row each blocked transaction is queued on (the waits-for edge).
    waiting: FastMap<TxnId, (ObjectId, RowId)>,
}

impl LockTable {
    /// Creates an empty lock table.
    pub fn new() -> Self {
        LockTable::default()
    }

    /// Attempts to acquire an exclusive lock on `(obj, rid)` for `txn` at
    /// instant `now`. Never blocks the caller: contention yields
    /// [`LockOutcome::Waiting`] (requester queued) or
    /// [`LockOutcome::Deadlock`] (requester refused and chosen as victim).
    pub fn lock_row(&mut self, txn: TxnId, obj: ObjectId, rid: RowId, now: SimTime) -> LockOutcome {
        let Some(entry) = self.rows.get_mut(&(obj, rid)) else {
            self.rows.insert((obj, rid), LockEntry { holder: txn, waiters: VecDeque::new() });
            return LockOutcome::Acquired;
        };
        if entry.holder == txn {
            return LockOutcome::AlreadyHeld;
        }
        let holder = entry.holder;
        if entry.waiters.iter().any(|&(w, _)| w == txn) {
            // Already queued on this row (a retried statement): keep the
            // original queue position and wait-start instant.
            return LockOutcome::Waiting { holder };
        }
        if let Some(cycle) = self.would_deadlock(txn, holder) {
            return LockOutcome::Deadlock { cycle };
        }
        // Re-borrow: `would_deadlock` needed `&self`.
        if let Some(entry) = self.rows.get_mut(&(obj, rid)) {
            entry.waiters.push_back((txn, now));
        }
        self.waiting.insert(txn, (obj, rid));
        LockOutcome::Waiting { holder }
    }

    /// Walks the waits-for chain from `holder`; if it leads back to
    /// `requester`, returns the cycle (requester first).
    fn would_deadlock(&self, requester: TxnId, holder: TxnId) -> Option<Vec<TxnId>> {
        let mut cycle = vec![requester];
        let mut at = holder;
        // The graph is functional, so the walk is linear; the bound guards
        // against a corrupted table rather than any legal state.
        for _ in 0..=self.waiting.len() {
            if at == requester {
                return Some(cycle);
            }
            cycle.push(at);
            let next_row = self.waiting.get(&at)?;
            at = self.rows.get(next_row)?.holder;
        }
        None
    }

    /// Releases every lock in `locks` held by `txn` and removes `txn` from
    /// any wait queue it sits in (a victim abort releases while queued).
    /// Rows with waiters pass to the front waiter FIFO; the grants are
    /// returned so the caller can wake the new holders. Locks in `locks`
    /// not held by `txn` are ignored, so double release is harmless.
    pub fn release_all(
        &mut self,
        txn: TxnId,
        locks: &[(ObjectId, RowId)],
        now: SimTime,
    ) -> Vec<LockGrant> {
        self.cancel_wait(txn);
        let mut grants = Vec::new();
        for &(obj, rid) in locks {
            let Some(entry) = self.rows.get_mut(&(obj, rid)) else { continue };
            if entry.holder != txn {
                continue;
            }
            match entry.waiters.pop_front() {
                Some((next, since)) => {
                    entry.holder = next;
                    self.waiting.remove(&next);
                    let wait_us = now.as_micros().saturating_sub(since.as_micros());
                    grants.push(LockGrant { txn: next, obj, rid, wait_us });
                }
                None => {
                    self.rows.remove(&(obj, rid));
                }
            }
        }
        grants
    }

    /// Removes `txn` from the wait queue it is blocked on, if any.
    pub fn cancel_wait(&mut self, txn: TxnId) {
        if let Some(key) = self.waiting.remove(&txn) {
            if let Some(entry) = self.rows.get_mut(&key) {
                entry.waiters.retain(|&(w, _)| w != txn);
            }
        }
    }

    /// Number of locked rows.
    pub fn held(&self) -> usize {
        self.rows.len()
    }

    /// Number of transactions blocked in wait queues.
    pub fn waiting_count(&self) -> usize {
        self.waiting.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FileNo;

    fn rid(b: u32) -> RowId {
        RowId { file: FileNo(1), block: b, slot: 0 }
    }

    #[test]
    fn begin_finish_lifecycle() {
        let mut t = TxnTable::new();
        let a = t.begin();
        let b = t.begin();
        assert_ne!(a, b);
        assert_eq!(t.active_count(), 2);
        assert!(t.is_active(a));
        t.finish(a).unwrap();
        assert!(!t.is_active(a));
        assert!(matches!(t.finish(a), Err(DbError::TxnNotActive(_))));
    }

    #[test]
    fn undo_accumulates_in_order() {
        let mut t = TxnTable::new();
        let a = t.begin();
        t.get_mut(a).unwrap().undo.push(UndoOp::UndoInsert { obj: ObjectId(1), rid: rid(0) });
        t.get_mut(a)
            .unwrap()
            .undo
            .push(UndoOp::UndoDelete { obj: ObjectId(1), rid: rid(1), before: Row::new(vec![]) });
        let st = t.finish(a).unwrap();
        assert_eq!(st.undo.len(), 2);
        assert!(matches!(st.undo[0], UndoOp::UndoInsert { .. }));
    }

    const OBJ: ObjectId = ObjectId(1);

    fn t0() -> SimTime {
        SimTime::ZERO
    }

    #[test]
    fn lock_contention_queues_and_reentrancy_succeeds() {
        let mut locks = LockTable::new();
        let mut t = TxnTable::new();
        let a = t.begin();
        let b = t.begin();
        assert_eq!(locks.lock_row(a, OBJ, rid(0), t0()), LockOutcome::Acquired);
        assert_eq!(locks.lock_row(a, OBJ, rid(0), t0()), LockOutcome::AlreadyHeld);
        assert_eq!(locks.lock_row(b, OBJ, rid(0), t0()), LockOutcome::Waiting { holder: a });
        // Retrying the blocked request keeps the queue position.
        assert_eq!(locks.lock_row(b, OBJ, rid(0), t0()), LockOutcome::Waiting { holder: a });
        assert_eq!(locks.waiting_count(), 1);
    }

    #[test]
    fn release_grants_fifo_with_wait_times() {
        let mut locks = LockTable::new();
        let mut t = TxnTable::new();
        let a = t.begin();
        let b = t.begin();
        let c = t.begin();
        locks.lock_row(a, OBJ, rid(0), t0());
        locks.lock_row(b, OBJ, rid(0), SimTime::from_micros(100));
        locks.lock_row(c, OBJ, rid(0), SimTime::from_micros(250));
        let grants =
            locks.release_all(a, &[(OBJ, rid(0))], SimTime::from_micros(400));
        // First waiter wins; the second keeps waiting behind the new holder.
        assert_eq!(
            grants,
            vec![LockGrant { txn: b, obj: OBJ, rid: rid(0), wait_us: 300 }]
        );
        assert_eq!(locks.waiting_count(), 1);
        let grants = locks.release_all(b, &[(OBJ, rid(0))], SimTime::from_micros(500));
        assert_eq!(grants, vec![LockGrant { txn: c, obj: OBJ, rid: rid(0), wait_us: 250 }]);
        let grants = locks.release_all(c, &[(OBJ, rid(0))], SimTime::from_micros(600));
        assert!(grants.is_empty());
        assert_eq!(locks.held(), 0);
    }

    #[test]
    fn release_frees_only_own_locks_and_tolerates_double_release() {
        let mut locks = LockTable::new();
        let mut t = TxnTable::new();
        let a = t.begin();
        let b = t.begin();
        locks.lock_row(a, OBJ, rid(0), t0());
        locks.lock_row(b, OBJ, rid(1), t0());
        // Releasing a's view of both rows must not free b's lock, and a
        // second release of the same set is a no-op.
        let shared = [(OBJ, rid(0)), (OBJ, rid(1))];
        assert!(locks.release_all(a, &shared, t0()).is_empty());
        assert!(locks.release_all(a, &shared, t0()).is_empty());
        assert_eq!(locks.held(), 1);
        assert_eq!(locks.lock_row(a, OBJ, rid(0), t0()), LockOutcome::Acquired);
        assert!(matches!(locks.lock_row(a, OBJ, rid(1), t0()), LockOutcome::Waiting { .. }));
    }

    #[test]
    fn two_cycle_deadlock_names_the_requester_as_victim() {
        let mut locks = LockTable::new();
        let mut t = TxnTable::new();
        let a = t.begin();
        let b = t.begin();
        locks.lock_row(a, OBJ, rid(0), t0());
        locks.lock_row(b, OBJ, rid(1), t0());
        assert!(matches!(locks.lock_row(a, OBJ, rid(1), t0()), LockOutcome::Waiting { .. }));
        // b's request for rid(0) closes the cycle: b is the victim.
        assert_eq!(
            locks.lock_row(b, OBJ, rid(0), t0()),
            LockOutcome::Deadlock { cycle: vec![b, a] }
        );
        // The victim was never enqueued; after it aborts, a's wait resolves.
        assert_eq!(locks.waiting_count(), 1);
        let grants = locks.release_all(b, &[(OBJ, rid(1))], t0());
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].txn, a);
    }

    #[test]
    fn three_cycle_deadlock_is_detected_with_full_cycle() {
        let mut locks = LockTable::new();
        let mut t = TxnTable::new();
        let a = t.begin();
        let b = t.begin();
        let c = t.begin();
        locks.lock_row(a, OBJ, rid(0), t0());
        locks.lock_row(b, OBJ, rid(1), t0());
        locks.lock_row(c, OBJ, rid(2), t0());
        assert!(matches!(locks.lock_row(a, OBJ, rid(1), t0()), LockOutcome::Waiting { .. }));
        assert!(matches!(locks.lock_row(b, OBJ, rid(2), t0()), LockOutcome::Waiting { .. }));
        assert_eq!(
            locks.lock_row(c, OBJ, rid(0), t0()),
            LockOutcome::Deadlock { cycle: vec![c, a, b] }
        );
        // Waiting on a row outside the chain is still fine.
        let d = t.begin();
        assert!(matches!(locks.lock_row(d, OBJ, rid(2), t0()), LockOutcome::Waiting { .. }));
    }

    #[test]
    fn cancel_wait_removes_a_queued_transaction() {
        let mut locks = LockTable::new();
        let mut t = TxnTable::new();
        let a = t.begin();
        let b = t.begin();
        let c = t.begin();
        locks.lock_row(a, OBJ, rid(0), t0());
        locks.lock_row(b, OBJ, rid(0), t0());
        locks.lock_row(c, OBJ, rid(0), t0());
        locks.cancel_wait(b);
        assert_eq!(locks.waiting_count(), 1);
        let grants = locks.release_all(a, &[(OBJ, rid(0))], t0());
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].txn, c, "cancelled waiter is skipped");
    }

    #[test]
    fn bump_past_prevents_id_reuse() {
        let mut t = TxnTable::new();
        t.bump_past(100);
        assert_eq!(t.begin(), TxnId(101));
    }
}
