//! Transactions, undo and row locks.

use std::collections::BTreeMap;

use crate::error::{DbError, DbResult};
use crate::fasthash::FastMap;
use crate::row::Row;
use crate::types::{ObjectId, RowId, TxnId};

/// The logical inverse of one change, retained until commit.
#[derive(Debug, Clone, PartialEq)]
pub enum UndoOp {
    /// Undo an insert by deleting the row.
    UndoInsert {
        /// Table changed.
        obj: ObjectId,
        /// Row inserted.
        rid: RowId,
    },
    /// Undo an update by restoring the before-image.
    UndoUpdate {
        /// Table changed.
        obj: ObjectId,
        /// Row updated.
        rid: RowId,
        /// Image to restore.
        before: Row,
    },
    /// Undo a delete by re-inserting the before-image.
    UndoDelete {
        /// Table changed.
        obj: ObjectId,
        /// Row deleted.
        rid: RowId,
        /// Image to restore.
        before: Row,
    },
}

/// Per-transaction state.
#[derive(Debug, Default, Clone)]
pub struct TxnState {
    /// Undo records in application order (rolled back in reverse).
    pub undo: Vec<UndoOp>,
    /// Row locks held.
    pub locks: Vec<(ObjectId, RowId)>,
}

/// The table of active transactions.
#[derive(Debug, Default, Clone)]
pub struct TxnTable {
    active: BTreeMap<TxnId, TxnState>,
    next: u64,
}

impl TxnTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        TxnTable::default()
    }

    /// Starts a transaction.
    pub fn begin(&mut self) -> TxnId {
        self.next += 1;
        let id = TxnId(self.next);
        self.active.insert(id, TxnState::default());
        id
    }

    /// Mutable state of an active transaction.
    ///
    /// # Errors
    ///
    /// Fails if the transaction is not active.
    pub fn get_mut(&mut self, txn: TxnId) -> DbResult<&mut TxnState> {
        self.active.get_mut(&txn).ok_or(DbError::TxnNotActive(txn))
    }

    /// Whether the transaction is active.
    pub fn is_active(&self, txn: TxnId) -> bool {
        self.active.contains_key(&txn)
    }

    /// Ends a transaction, returning its state (for lock release or undo).
    ///
    /// # Errors
    ///
    /// Fails if the transaction is not active.
    pub fn finish(&mut self, txn: TxnId) -> DbResult<TxnState> {
        self.active.remove(&txn).ok_or(DbError::TxnNotActive(txn))
    }

    /// Number of active transactions.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Ids of all active transactions.
    pub fn active_ids(&self) -> Vec<TxnId> {
        self.active.keys().copied().collect()
    }

    /// Advances the id allocator past `floor` (used after recovery so new
    /// transactions never reuse a replayed id).
    pub fn bump_past(&mut self, floor: u64) {
        self.next = self.next.max(floor);
    }
}

/// Exclusive row locks.
#[derive(Debug, Default, Clone)]
pub struct LockTable {
    rows: FastMap<(ObjectId, RowId), TxnId>,
}

impl LockTable {
    /// Creates an empty lock table.
    pub fn new() -> Self {
        LockTable::default()
    }

    /// Acquires an exclusive lock on `(obj, rid)` for `txn`. Re-acquiring
    /// one's own lock succeeds.
    ///
    /// # Errors
    ///
    /// Fails with [`DbError::LockConflict`] if another transaction holds it.
    pub fn lock_row(&mut self, txn: TxnId, obj: ObjectId, rid: RowId) -> DbResult<bool> {
        match self.rows.get(&(obj, rid)) {
            Some(&holder) if holder == txn => Ok(false),
            Some(&holder) => Err(DbError::LockConflict { holder }),
            None => {
                self.rows.insert((obj, rid), txn);
                Ok(true)
            }
        }
    }

    /// Releases every lock in `locks` held by `txn`.
    pub fn release_all(&mut self, txn: TxnId, locks: &[(ObjectId, RowId)]) {
        for &(obj, rid) in locks {
            if self.rows.get(&(obj, rid)) == Some(&txn) {
                self.rows.remove(&(obj, rid));
            }
        }
    }

    /// Number of held locks.
    pub fn held(&self) -> usize {
        self.rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FileNo;

    fn rid(b: u32) -> RowId {
        RowId { file: FileNo(1), block: b, slot: 0 }
    }

    #[test]
    fn begin_finish_lifecycle() {
        let mut t = TxnTable::new();
        let a = t.begin();
        let b = t.begin();
        assert_ne!(a, b);
        assert_eq!(t.active_count(), 2);
        assert!(t.is_active(a));
        t.finish(a).unwrap();
        assert!(!t.is_active(a));
        assert!(matches!(t.finish(a), Err(DbError::TxnNotActive(_))));
    }

    #[test]
    fn undo_accumulates_in_order() {
        let mut t = TxnTable::new();
        let a = t.begin();
        t.get_mut(a).unwrap().undo.push(UndoOp::UndoInsert { obj: ObjectId(1), rid: rid(0) });
        t.get_mut(a)
            .unwrap()
            .undo
            .push(UndoOp::UndoDelete { obj: ObjectId(1), rid: rid(1), before: Row::new(vec![]) });
        let st = t.finish(a).unwrap();
        assert_eq!(st.undo.len(), 2);
        assert!(matches!(st.undo[0], UndoOp::UndoInsert { .. }));
    }

    #[test]
    fn lock_conflict_and_reentrancy() {
        let mut locks = LockTable::new();
        let mut t = TxnTable::new();
        let a = t.begin();
        let b = t.begin();
        assert!(locks.lock_row(a, ObjectId(1), rid(0)).unwrap());
        // Re-acquire by the same transaction: ok, not newly acquired.
        assert!(!locks.lock_row(a, ObjectId(1), rid(0)).unwrap());
        let err = locks.lock_row(b, ObjectId(1), rid(0)).unwrap_err();
        assert_eq!(err, DbError::LockConflict { holder: a });
    }

    #[test]
    fn release_frees_only_own_locks() {
        let mut locks = LockTable::new();
        let mut t = TxnTable::new();
        let a = t.begin();
        let b = t.begin();
        locks.lock_row(a, ObjectId(1), rid(0)).unwrap();
        locks.lock_row(b, ObjectId(1), rid(1)).unwrap();
        // Releasing a's view of both rows must not free b's lock.
        locks.release_all(a, &[(ObjectId(1), rid(0)), (ObjectId(1), rid(1))]);
        assert_eq!(locks.held(), 1);
        assert!(locks.lock_row(a, ObjectId(1), rid(0)).is_ok());
        assert!(locks.lock_row(a, ObjectId(1), rid(1)).is_err());
    }

    #[test]
    fn bump_past_prevents_id_reuse() {
        let mut t = TxnTable::new();
        t.bump_past(100);
        assert_eq!(t.begin(), TxnId(101));
    }
}
