//! Engine event tracing: a timestamped record of the mechanisms at work.
//!
//! The benchmark's headline numbers are aggregates; the trace shows *why*
//! they came out that way — when the log switched, how long the switch
//! stalled, when checkpoints completed, what recovery did. The report
//! binaries and tests read it; it costs a few hundred bytes per event.

use recobench_sim::SimTime;

/// One traced engine event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// The log switched to a new sequence in `group`.
    LogSwitch {
        /// New sequence number.
        seq: u64,
        /// Group now being written.
        group: usize,
    },
    /// A log switch stalled waiting for the next group to become reusable.
    SwitchStall {
        /// Sequence that could not start immediately.
        seq: u64,
        /// Stall length in microseconds.
        micros: u64,
    },
    /// A full checkpoint completed.
    Checkpoint {
        /// Blocks written.
        blocks: u64,
        /// Completion instant.
        complete_at: SimTime,
    },
    /// The incremental checkpoint position advanced (DBWR tick).
    IncrementalAdvance {
        /// Blocks written by the tick.
        blocks: u64,
    },
    /// A filled sequence was archived.
    Archived {
        /// Sequence number.
        seq: u64,
        /// Copy completion instant.
        complete_at: SimTime,
    },
    /// The instance terminated (cleanly or not).
    InstanceStopped {
        /// Whether it was a clean shutdown.
        clean: bool,
    },
    /// The instance opened (with or without crash recovery).
    InstanceOpened {
        /// Redo records applied during crash recovery (0 for clean opens).
        recovered_records: u64,
    },
}

/// A bounded in-memory trace.
#[derive(Debug, Default)]
pub struct Trace {
    events: Vec<(SimTime, TraceEvent)>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace bounded to `capacity` events (oldest dropped first).
    pub fn new(capacity: usize) -> Self {
        Trace { events: Vec::new(), capacity, dropped: 0 }
    }

    /// Records an event at instant `at`.
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.remove(0);
            self.dropped += 1;
        }
        self.events.push((at, event));
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> &[(SimTime, TraceEvent)] {
        &self.events
    }

    /// Events dropped because of the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events in `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> Vec<&(SimTime, TraceEvent)> {
        self.events.iter().filter(|(t, _)| *t >= from && *t < to).collect()
    }

    /// Count of retained events matching `pred`.
    pub fn count<F: Fn(&TraceEvent) -> bool>(&self, pred: F) -> usize {
        self.events.iter().filter(|(_, e)| pred(e)).count()
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent::LogSwitch { seq, group: 0 }
    }

    #[test]
    fn records_in_order_within_capacity() {
        let mut t = Trace::new(8);
        for i in 0..5 {
            t.record(SimTime::from_secs(i), ev(i));
        }
        assert_eq!(t.events().len(), 5);
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.events()[0].1, ev(0));
        assert_eq!(t.events()[4].1, ev(4));
    }

    #[test]
    fn capacity_bound_drops_oldest() {
        let mut t = Trace::new(3);
        for i in 0..10 {
            t.record(SimTime::from_secs(i), ev(i));
        }
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.dropped(), 7);
        assert_eq!(t.events()[0].1, ev(7), "oldest retained is #7");
    }

    #[test]
    fn window_and_count_filter() {
        let mut t = Trace::new(16);
        t.record(SimTime::from_secs(1), ev(1));
        t.record(SimTime::from_secs(5), TraceEvent::Checkpoint { blocks: 3, complete_at: SimTime::from_secs(6) });
        t.record(SimTime::from_secs(9), ev(2));
        assert_eq!(t.window(SimTime::from_secs(2), SimTime::from_secs(9)).len(), 1);
        assert_eq!(t.count(|e| matches!(e, TraceEvent::LogSwitch { .. })), 2);
    }

    #[test]
    fn zero_capacity_counts_everything_as_dropped() {
        let mut t = Trace::new(0);
        t.record(SimTime::ZERO, ev(1));
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut t = Trace::new(4);
        t.record(SimTime::ZERO, ev(1));
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }
}
