//! The database server: one machine running (at most) one instance.
//!
//! [`DbServer`] owns the persistent world — the simulated filesystem, the
//! control file, backups — and the volatile [`Instance`]. Its methods are
//! the union of the interfaces the paper's experiment needs:
//!
//! * the **client** surface (transactions and DML) used by the TPC-C
//!   driver;
//! * the **administrator** surface (DDL, startup/shutdown, online/offline,
//!   backup, recovery) used both for legitimate administration and — via
//!   the fault injector — for reproducing operator mistakes;
//! * the **OS** surface (deleting files by path) for mistakes made outside
//!   the DBMS.
//!
//! Every operation advances the shared simulated clock by the CPU and I/O
//! it costs, so the workload driver measures throughput and recovery time
//! simply by reading the clock.

use std::collections::BTreeMap;
use std::sync::Arc;

use recobench_sim::{SimClock, SimTime};
use recobench_vfs::{FileKind, SharedFs, VfsError};

use crate::backup::BackupSet;
use crate::cache::BufferCache;
use crate::catalog::{Catalog, CatalogChange, DatafileDef, IndexDef};
use crate::checkpoint;
use crate::config::InstanceConfig;
use crate::controlfile::{CkptRecord, ControlFile, LogGroup, SeqLocation};
use crate::error::{DbError, DbResult, RecoveryError};
use crate::heap::{plan_extent, PlacementCursor};
use crate::instance::Instance;
use crate::layout::DiskLayout;
use crate::page::BlockImage;
use crate::redo::{RedoOp, RedoRecord, RedoState};
use crate::row::{Row, Value};
use crate::events::{EngineEvent, EventSink};
use crate::stats::EngineStats;
use crate::tap::{DmlChange, DmlTap};
use crate::txn::{LockGrant, LockOutcome, TxnTable, UndoOp};
use crate::types::{FileNo, ObjectId, RedoAddr, RowId, Scn, SessionId, TablespaceId, TxnId, UserId};

/// Cache key alias re-used across the engine.
pub(crate) type BlockKey = (FileNo, u32);

/// Per-session state: the transaction the session currently has open, if
/// any (transactions begin implicitly on the first DML statement).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SessionState {
    txn: Option<TxnId>,
}

/// A database server (one simulated machine).
#[derive(Debug)]
pub struct DbServer {
    pub(crate) name: String,
    pub(crate) clock: Arc<SimClock>,
    pub(crate) fs: SharedFs,
    pub(crate) layout: DiskLayout,
    pub(crate) config: InstanceConfig,
    pub(crate) control: Option<ControlFile>,
    pub(crate) inst: Option<Instance>,
    pub(crate) backup: Option<BackupSet>,
    pub(crate) stats: EngineStats,
    pub(crate) next_dbwr_tick: SimTime,
    /// True while this server is a stand-by in managed recovery: DML is
    /// rejected and redo arrives only through archive application.
    pub(crate) managed_recovery: bool,
    pub(crate) datafile_total: usize,
    /// Highest transaction id ever issued, so restarts never reuse one
    /// (reuse would confuse replay-time transaction tracking).
    pub(crate) txn_floor: u64,
    pub(crate) backups_taken: u32,
    /// Connected sessions (volatile: an instance crash severs them all).
    /// BTreeMap so drain/abort sweeps run in deterministic id order.
    pub(crate) sessions: BTreeMap<SessionId, SessionState>,
    /// Session id allocator; never reused within a server's lifetime.
    pub(crate) next_session: u64,
    /// Sessions whose pending lock was granted since the last
    /// [`DbServer::take_lock_grants`], with the grant instant — the
    /// workload driver's wake-up list.
    pub(crate) lock_grants: Vec<(SessionId, SimTime)>,
    /// Undo that could not be applied at rollback because its storage was
    /// offline or damaged (per transaction, in original undo order). The
    /// owning transactions have **no** terminal record in the redo stream
    /// yet, so replay still rolls them back; when the storage comes back
    /// without a replay (ONLINE tablespace), the deferred undo is applied
    /// and the transaction resolved then — the engine's version of
    /// Oracle's deferred rollback segments.
    pub(crate) deferred_undo: Vec<(TxnId, Vec<UndoOp>)>,
    pub(crate) events: EventSink,
    /// Observer of the acknowledged operation stream (differential
    /// oracles). `None` in normal operation — the write path pays one
    /// branch.
    pub(crate) dml_tap: Option<DmlTap>,
    /// Test-only sabotage: how many more applicable redo records replay
    /// may silently drop. Always zero outside broken-engine tests, and
    /// compiled out entirely unless testing or the `sabotage` feature is
    /// enabled (enforced by the tidy sabotage-isolation lint).
    #[cfg(any(test, feature = "sabotage"))]
    pub(crate) sabotage_skip_redo: u32,
}

impl DbServer {
    /// Creates a server on `fs` with no database yet.
    pub fn new(
        name: &str,
        clock: Arc<SimClock>,
        fs: SharedFs,
        layout: DiskLayout,
        config: InstanceConfig,
    ) -> Self {
        DbServer {
            name: name.to_string(),
            clock,
            fs,
            layout,
            config,
            control: None,
            inst: None,
            backup: None,
            stats: EngineStats::default(),
            next_dbwr_tick: SimTime::MAX,
            managed_recovery: false,
            datafile_total: 0,
            txn_floor: 0,
            backups_taken: 0,
            sessions: BTreeMap::new(),
            next_session: 0,
            lock_grants: Vec::new(),
            deferred_undo: Vec::new(),
            events: EventSink::new(4096),
            dml_tap: None,
            #[cfg(any(test, feature = "sabotage"))]
            sabotage_skip_redo: 0,
        }
    }

    /// Convenience constructor: builds the filesystem from the layout.
    pub fn on_fresh_disks(
        name: &str,
        clock: Arc<SimClock>,
        layout: DiskLayout,
        config: InstanceConfig,
    ) -> Self {
        let fs = recobench_vfs::fs::shared(layout.build_fs(recobench_sim::DiskProfile::server_2000()));
        Self::new(name, clock, fs, layout, config)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The shared simulation clock.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// The shared filesystem.
    pub fn fs(&self) -> &SharedFs {
        &self.fs
    }

    /// The instance configuration.
    pub fn config(&self) -> &InstanceConfig {
        &self.config
    }

    /// Whether the instance is open for work.
    pub fn is_open(&self) -> bool {
        self.inst.is_some() && !self.managed_recovery
    }

    /// Cumulative engine counters. The hot-path counters (commits, redo,
    /// flushes, block writes) are maintained directly; everything related
    /// to checkpoints, archiving and recovery is **derived from the event
    /// stream**, so these numbers can never disagree with the events.
    pub fn stats(&self) -> EngineStats {
        let mut s = self.stats;
        let d = self.events.derived();
        s.log_switches = d.log_switches;
        s.full_checkpoints = d.full_checkpoints;
        s.incremental_advances = d.incremental_advances;
        s.switch_stall_micros = d.switch_stall_micros;
        s.archives_created = d.archives_created;
        s.recovery_records_applied = d.recovery_records_applied;
        s.recovery_records_skipped = d.recovery_records_skipped;
        s.recovery_archives_processed = d.recovery_archives_processed;
        s.crash_recoveries = d.crash_recoveries;
        s.media_recoveries = d.media_recoveries;
        s.incomplete_recoveries = d.incomplete_recoveries;
        s.lock_waits = d.lock_waits;
        s.lock_grants = d.lock_grants;
        s.lock_wait_micros = d.lock_wait_micros;
        s.deadlocks = d.deadlocks;
        s
    }

    /// The current SCN (zero when the instance is down).
    pub fn current_scn(&self) -> Scn {
        self.inst.as_ref().map_or(Scn::ZERO, |i| i.scn)
    }

    /// Installs an observer of the acknowledged operation stream: every
    /// successful insert/update/delete (keyed by transaction), every
    /// commit (with its SCN) and rollback, and committed drops. Recovery
    /// replay never fires the tap — that is the point: a differential
    /// oracle rebuilds expected state from the tap and checks the
    /// recovered engine against it. Replaces any previous tap.
    pub fn set_dml_tap<F: FnMut(&DmlChange) + Send + 'static>(&mut self, f: F) {
        self.dml_tap = Some(DmlTap(Box::new(f)));
    }

    /// Removes the installed tap, if any.
    pub fn clear_dml_tap(&mut self) {
        self.dml_tap = None;
    }

    pub(crate) fn emit_dml(&mut self, change: DmlChange) {
        if let Some(tap) = self.dml_tap.as_mut() {
            (tap.0)(&change);
        }
    }

    /// Test-only sabotage: arms replay to silently drop the next `n`
    /// applicable row-change redo records it would otherwise apply. This
    /// models a subtly broken recovery implementation; the torture
    /// harness's acceptance test proves the differential oracle catches
    /// it. Never use outside tests.
    #[cfg(any(test, feature = "sabotage"))]
    #[doc(hidden)]
    pub fn sabotage_skip_redo_records(&mut self, n: u32) {
        self.sabotage_skip_redo = n;
    }

    /// Armed sabotage skips not yet consumed by a replay (tests use this
    /// to prove the sabotage actually fired).
    #[cfg(any(test, feature = "sabotage"))]
    #[doc(hidden)]
    pub fn sabotage_skips_left(&self) -> u32 {
        self.sabotage_skip_redo
    }

    /// Test-only sabotage: flips one bit in one written block of the file
    /// at `path` via the vfs bit-rot fault — silent on-disk corruption the
    /// per-block checksum layer must catch. Clean cached frames for the
    /// file are dropped so the next engine read sees the rotted disk image
    /// rather than a stale in-memory copy. Never use outside tests.
    ///
    /// # Errors
    ///
    /// Fails if no live file has this path.
    #[cfg(any(test, feature = "sabotage"))]
    #[doc(hidden)]
    pub fn sabotage_bit_rot(&mut self, path: &str, seed: u64) -> DbResult<()> {
        self.fs.lock().arm_fault(recobench_vfs::FaultArm::BitRot {
            target: recobench_vfs::FileMatch::Path(path.to_string()),
            seed,
        })?;
        if let Some(file_no) =
            self.inst.as_ref().and_then(|i| i.catalog.datafile_by_path(path).ok())
        {
            if let Some(inst) = self.inst.as_mut() {
                inst.cache.invalidate_file(file_no);
            }
        }
        Ok(())
    }

    /// The most recent backup, if one was taken.
    pub fn backup(&self) -> Option<&BackupSet> {
        self.backup.as_ref()
    }

    /// The engine event sink (log switches, stalls, checkpoints,
    /// archiving, instance lifecycle, recovery phases).
    pub fn events(&self) -> &EventSink {
        &self.events
    }

    /// Mutable access to the event sink — for registering subscribers,
    /// raising the retention bound, or clearing the buffer at the start of
    /// a measurement window.
    pub fn events_mut(&mut self) -> &mut EventSink {
        &mut self.events
    }

    /// Records `event` on this server's sink at the current sim instant.
    /// Used by out-of-crate actors (the fault injector, tests) that act on
    /// the server's behalf.
    pub fn emit(&mut self, event: EngineEvent) {
        self.events.record(self.clock.now(), event);
    }

    fn inst_ref(&self) -> DbResult<&Instance> {
        if self.managed_recovery {
            return Err(DbError::InstanceDown);
        }
        self.inst.as_ref().ok_or(DbError::InstanceDown)
    }

    fn inst_mut(&mut self) -> DbResult<&mut Instance> {
        if self.managed_recovery {
            return Err(DbError::InstanceDown);
        }
        self.inst.as_mut().ok_or(DbError::InstanceDown)
    }

    pub(crate) fn control_ref(&self) -> DbResult<&ControlFile> {
        self.control.as_ref().ok_or_else(|| DbError::NotFound("database".into()))
    }

    pub(crate) fn control_mut(&mut self) -> DbResult<&mut ControlFile> {
        self.control.as_mut().ok_or_else(|| DbError::NotFound("database".into()))
    }

    // ------------------------------------------------------------------
    // Database creation and lifecycle
    // ------------------------------------------------------------------

    /// Creates a brand-new database (control file, online redo log groups)
    /// and opens a fresh instance over an empty dictionary.
    ///
    /// # Errors
    ///
    /// Fails if a database already exists on this server.
    pub fn create_database(&mut self) -> DbResult<()> {
        if self.control.is_some() {
            return Err(DbError::AlreadyExists(format!("database {}", self.name)));
        }
        let mut groups = Vec::new();
        {
            let mut fs = self.fs.lock();
            for i in 0..self.config.redo_groups {
                let path = format!("/u03/{}_redo{:02}.log", self.name, i + 1);
                let id = fs.create_append_file(&path, self.layout.redo_disk, FileKind::Redo)?;
                groups.push(LogGroup { path, vfs_id: id });
            }
        }
        let catalog = Catalog::new();
        let mut control = ControlFile::new(&self.name, groups, Arc::new(catalog.clone()));
        control.clean_shutdown = false;
        self.control = Some(control);
        self.inst = Some(self.fresh_instance(catalog, Scn::ZERO, 0, 1, 0));
        self.clock.advance(self.config.costs.mount_open);
        self.next_dbwr_tick = self.clock.now() + self.config.dbwr_tick;
        Ok(())
    }

    pub(crate) fn fresh_instance(
        &self,
        catalog: Catalog,
        scn: Scn,
        group: usize,
        seq: u64,
        flushed: u64,
    ) -> Instance {
        let mut txns = TxnTable::new();
        txns.bump_past(self.txn_floor);
        Instance {
            catalog,
            cache: BufferCache::new(self.config.cache_blocks),
            txns,
            locks: crate::txn::LockTable::new(),
            indexes: crate::fasthash::FastMap::default(),
            redo: RedoState::new(group, seq, flushed, self.config.costs.redo_overhead_bytes),
            cursors: crate::fasthash::FastMap::default(),
            scn,
            opened_at: self.clock.now(),
        }
    }

    /// `SHUTDOWN ABORT` / instance kill: drop everything volatile without
    /// writing a byte. Committed work is protected by the flushed redo.
    ///
    /// # Errors
    ///
    /// Fails if the instance is already down.
    pub fn shutdown_abort(&mut self) -> DbResult<()> {
        if self.inst.is_none() {
            return Err(DbError::InstanceDown);
        }
        let now = self.clock.now();
        let control = self.control_mut()?;
        control.stopped_at = Some(now);
        control.clean_shutdown = false;
        self.inst = None;
        self.managed_recovery = false;
        self.next_dbwr_tick = SimTime::MAX;
        // Sessions die with the instance; crash recovery rolls their
        // in-flight transactions back from redo, so pending deferred undo
        // is void too.
        self.sessions.clear();
        self.lock_grants.clear();
        self.deferred_undo.clear();
        self.events.record(now, EngineEvent::InstanceStopped { clean: false });
        Ok(())
    }

    /// Orderly shutdown: flush redo, take a full checkpoint, mark the
    /// database clean.
    ///
    /// # Errors
    ///
    /// Fails if the instance is down.
    pub fn shutdown_normal(&mut self) -> DbResult<()> {
        self.inst_ref()?;
        // Drain clients first: in-flight work is rolled back so the clean
        // checkpoint below captures only committed state.
        self.kill_all_sessions();
        self.flush_redo()?;
        let done = self.full_checkpoint()?;
        self.clock.advance_to(done);
        let now = self.clock.now();
        let scn = self.current_scn();
        let control = self.control_mut()?;
        control.stopped_at = Some(now);
        control.clean_shutdown = true;
        control.last_scn = scn;
        self.inst = None;
        self.next_dbwr_tick = SimTime::MAX;
        self.events.record(now, EngineEvent::InstanceStopped { clean: true });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Background work (DBWR incremental checkpointing)
    // ------------------------------------------------------------------

    /// Runs any background work due by the current clock. Called
    /// automatically at the start of every foreground operation; the
    /// workload driver also calls it across think-time gaps.
    pub fn poll(&mut self) {
        while self.inst.is_some() && !self.managed_recovery && self.next_dbwr_tick <= self.clock.now()
        {
            let t = self.next_dbwr_tick;
            self.next_dbwr_tick = t + self.config.dbwr_tick;
            // Incremental checkpointing failures are impossible in normal
            // operation; if storage is damaged the write helper skips the
            // affected blocks.
            // tidy-allow(error-swallow): background DBWR tick is best-effort; damaged blocks are retried next tick
            let _ = self.incremental_eval(t);
        }
    }

    fn incremental_eval(&mut self, tick: SimTime) -> DbResult<()> {
        let timeout = self.config.checkpoint_timeout;
        if tick.as_micros() < timeout.as_micros() {
            return Ok(());
        }
        let cutoff = SimTime::from_micros(tick.as_micros() - timeout.as_micros());
        // The oldest-dirty bound is conservative (clears only raise the
        // true minimum), so a tick whose bound is newer than the cutoff
        // can return without scanning or flushing anything.
        let has_old = {
            let inst = match self.inst.as_ref() {
                Some(i) => i,
                None => return Ok(()),
            };
            inst.cache.oldest_dirty_time().is_some_and(|t| t <= cutoff)
        };
        let mut complete_at = tick;
        let mut wrote = false;
        if has_old {
            self.flush_redo()?;
            let mut fs = self.fs.lock();
            let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
            let out = checkpoint::write_dirty(&mut fs, &inst.catalog, &mut inst.cache, tick, |_, d| {
                d.first_time <= cutoff
            });
            inst.cache.refresh_dirty_bound();
            if out.blocks > 0 {
                wrote = true;
                complete_at = out.complete_at;
                self.stats.blocks_written += out.blocks;
            }
        }
        if !wrote {
            return Ok(());
        }
        let inst = self.inst.as_ref().ok_or(DbError::InstanceDown)?;
        let position = inst.cache.min_dirty_addr().unwrap_or(inst.redo.tail());
        let scn = inst.scn;
        let snapshot = Arc::new(inst.catalog.clone());
        let control = self.control_mut()?;
        let best = control
            .checkpoints
            .iter()
            .map(|c| c.position)
            .max()
            .unwrap_or(RedoAddr::ZERO);
        if position > best {
            control.add_checkpoint(CkptRecord { position, scn, complete_at, catalog: snapshot });
            self.events.record(tick, EngineEvent::IncrementalAdvance { blocks: 0 });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Redo plumbing
    // ------------------------------------------------------------------

    pub(crate) fn append_record(&mut self, rec: &RedoRecord) -> DbResult<RedoAddr> {
        // Optimistic append: encode straight into the log buffer and only
        // fall back to a log switch when the record did not fit (rare).
        if let Some(addr) = self.try_append_record(rec)? {
            return Ok(addr);
        }
        self.log_switch()?;
        let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
        let (addr, cost) = inst.redo.buffer_encode(rec);
        self.stats.redo_records += 1;
        self.stats.redo_bytes += cost;
        Ok(addr)
    }

    /// Appends `rec` only if it fits in the current log group; returns
    /// `None` when the append would force a log switch, so callers with
    /// changes staged but not yet applied to their block image can apply
    /// them before the switch checkpoint writes that image out.
    pub(crate) fn try_append_record(&mut self, rec: &RedoRecord) -> DbResult<Option<RedoAddr>> {
        let group_bytes = self.config.redo_file_bytes;
        let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
        match inst.redo.buffer_encode_checked(rec, group_bytes) {
            Some((addr, cost)) => {
                self.stats.redo_records += 1;
                self.stats.redo_bytes += cost;
                Ok(Some(addr))
            }
            None => Ok(None),
        }
    }

    /// Flushes the redo log buffer to the current online log (LGWR). The
    /// calling foreground operation waits for the write — this is the
    /// commit latency.
    pub(crate) fn flush_redo(&mut self) -> DbResult<()> {
        let now = self.clock.now();
        let (payload, pad, flushed, group_vfs) = {
            let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
            if !inst.redo.has_unflushed() {
                return Ok(());
            }
            let group = inst.redo.current_group;
            let (payload, pad, flushed) = inst.redo.take_buffer();
            let control = self.control.as_ref().ok_or_else(|| DbError::NotFound("database".into()))?;
            let group_vfs = control
                .groups
                .get(group)
                .ok_or_else(|| DbError::Unrecoverable(format!("redo group {group} missing")))?
                .vfs_id;
            (payload, pad, flushed, group_vfs)
        };
        let done = {
            let mut fs = self.fs.lock();
            match fs.append_padded(group_vfs, payload, pad, now) {
                Ok((done, ())) => done,
                Err(e) => {
                    drop(fs);
                    // The buffer was already consumed, so the durable log
                    // and the in-memory stream can no longer agree — the
                    // same bind Oracle's LGWR is in when a log write
                    // fails, and the answer is the same: the instance
                    // dies on the spot and crash recovery re-derives the
                    // truth from the durable prefix of the log.
                    // tidy-allow(error-swallow): already aborting; the original log-write error is what propagates
                    let _ = self.shutdown_abort();
                    return Err(DbError::from(e));
                }
            }
        };
        self.clock.advance_to(done);
        let control = self.control_mut()?;
        control.current_flushed = flushed;
        self.stats.log_flushes += 1;
        Ok(())
    }

    /// Performs a log switch: archive the filled sequence, move to the
    /// next group (stalling until it is reusable), and trigger the
    /// switch checkpoint.
    pub(crate) fn log_switch(&mut self) -> DbResult<()> {
        self.flush_redo()?;
        let now = self.clock.now();
        let (old_seq, old_group, old_offset) = {
            let inst = self.inst.as_ref().ok_or(DbError::InstanceDown)?;
            (inst.redo.current_seq, inst.redo.current_group, inst.redo.current_offset)
        };
        let archive_mode = self.config.archive_mode;
        // Close the old sequence and archive it.
        {
            let archive_disk = self.layout.archive_disk;
            if let Some(loc) = self.control_mut()?.seqs.get_mut(&old_seq) {
                loc.end_offset = Some(old_offset);
            }
            if archive_mode {
                let fs = Arc::clone(&self.fs);
                let mut fs = fs.lock();
                let control =
                    self.control.as_mut().ok_or_else(|| DbError::NotFound("database".into()))?;
                crate::archiver::archive_seq(
                    &mut fs,
                    control,
                    archive_disk,
                    old_seq,
                    now,
                    &mut self.events,
                )?;
            }
        }
        // Find the next group and stall until it is reusable.
        let ngroups = self.control_ref()?.groups.len();
        let ng = (old_group + 1) % ngroups;
        let prev_in_ng: Option<(u64, SimTime)> = {
            let control = self.control_ref()?;
            control
                .seqs
                .iter()
                .filter(|(seq, loc)| loc.group == Some(ng) && **seq != old_seq)
                .map(|(seq, loc)| {
                    let mut ready = loc.released_at.unwrap_or(now);
                    if archive_mode {
                        ready = ready.max(loc.archive_done_at.unwrap_or(now));
                    }
                    (*seq, ready)
                })
                .next_back()
        };
        if let Some((prev_seq, ready)) = prev_in_ng {
            if ready > now {
                let stall = ready.saturating_since(now).as_micros();
                self.events.record(now, EngineEvent::SwitchStall { seq: old_seq + 1, micros: stall });
                self.clock.advance_to(ready);
            }
            let control = self.control_mut()?;
            if let Some(loc) = control.seqs.get_mut(&prev_seq) {
                loc.group = None;
            }
        }
        // Reuse the group for the new sequence.
        let new_seq = old_seq + 1;
        {
            let vfs_id = self.control_ref()?.groups[ng].vfs_id;
            self.fs.lock().truncate(vfs_id)?;
            let control = self.control_mut()?;
            control.current_group = ng;
            control.current_seq = new_seq;
            control.current_flushed = 0;
            control.seqs.insert(
                new_seq,
                SeqLocation {
                    group: Some(ng),
                    archive: None,
                    archive_done_at: None,
                    released_at: None,
                    end_offset: None,
                },
            );
        }
        {
            let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
            inst.redo.switch_to(ng, new_seq);
        }
        self.events.record(self.clock.now(), EngineEvent::LogSwitch { seq: new_seq, group: ng });
        // Switch checkpoint: write every dirty block; once it completes the
        // old sequence is released for reuse.
        let done = self.full_checkpoint()?;
        let control = self.control_mut()?;
        if let Some(loc) = control.seqs.get_mut(&old_seq) {
            loc.released_at = Some(done);
        }
        Ok(())
    }

    /// Writes all dirty blocks and records a checkpoint at the current log
    /// position. Returns the completion instant (the caller decides whether
    /// to wait on it).
    // tidy-entry(recovery)
    pub(crate) fn full_checkpoint(&mut self) -> DbResult<SimTime> {
        self.flush_redo()?;
        let now = self.clock.now();
        let (out, position, scn, snapshot, crashed) = {
            let mut fs = self.fs.lock();
            let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
            let out = checkpoint::write_dirty(&mut fs, &inst.catalog, &mut inst.cache, now, |_, _| true);
            let position = RedoAddr { seq: inst.redo.current_seq, offset: 0 };
            let crashed = fs.crash_write_fired();
            (out, position, inst.scn, Arc::new(inst.catalog.clone()), crashed)
        };
        self.stats.blocks_written += out.blocks;
        if crashed {
            // The machine died mid-write-out: some blocks never reached
            // disk. Recording this checkpoint would claim they did, so the
            // instance dies instead and crash recovery replays from the
            // previous record.
            // tidy-allow(error-swallow): already aborting; the checkpoint interruption is what propagates
            let _ = self.shutdown_abort();
            return Err(DbError::Media(VfsError::Interrupted("checkpoint write-out".into())));
        }
        if let Some(disk) = out.disk_full {
            // Some dirty blocks never reached disk (ENOSPC) and were kept
            // dirty; advancing the checkpoint past their redo would lose
            // them at the next crash. Keep the old position and surface
            // the condition to the operator.
            return Err(DbError::DiskFull { disk: disk.0 });
        }
        self.events.record(now, out.checkpoint_event());
        let control = self.control_mut()?;
        control.add_checkpoint(CkptRecord {
            position,
            scn,
            complete_at: out.complete_at,
            catalog: snapshot,
        });
        control.last_scn = scn;
        Ok(out.complete_at)
    }

    /// `ALTER SYSTEM CHECKPOINT`: full checkpoint, waiting for completion.
    ///
    /// # Errors
    ///
    /// Fails if the instance is down.
    // tidy-entry(recovery)
    pub fn checkpoint_now(&mut self) -> DbResult<()> {
        self.poll();
        let done = self.full_checkpoint()?;
        self.clock.advance_to(done);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Block access
    // ------------------------------------------------------------------

    fn datafile_info(&self, file: FileNo) -> DbResult<(recobench_vfs::FileId, TablespaceId)> {
        let inst = self.inst.as_ref().ok_or(DbError::InstanceDown)?;
        let df = inst
            .catalog
            .datafiles
            .get(&file)
            .ok_or_else(|| DbError::NotFound(format!("datafile {}", file.0)))?;
        Ok((df.vfs_id, df.tablespace))
    }

    /// The datafile's path, for error messages (cold paths only — this
    /// clones the string).
    fn datafile_path(&self, file: FileNo) -> String {
        self.inst
            .as_ref()
            .and_then(|i| i.catalog.datafiles.get(&file))
            .map_or_else(String::new, |df| df.path.clone())
    }

    /// Brings a block into the cache (charging the read on a miss) after
    /// checking availability.
    pub(crate) fn ensure_resident(&mut self, key: BlockKey) -> DbResult<()> {
        // Fast path: the block is resident and no file or tablespace has
        // offline/recovery state (true until an operator fault, which is
        // when `invalidate_file` also drops affected blocks). One cache
        // probe instead of the full availability walk; a miss counts no
        // stat here — the full path below records it.
        if !self.control.as_ref().is_some_and(ControlFile::has_runtime_state) {
            let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
            if inst.cache.probe_mut(key).is_some() {
                return Ok(());
            }
        }
        let (_, ts) = self.datafile_info(key.0)?;
        {
            let control = self.control_ref()?;
            if control.file_state(key.0).offline {
                return Err(DbError::DatafileOffline(key.0 .0));
            }
            if control.is_ts_offline(ts) {
                let inst = self.inst.as_ref().ok_or(DbError::InstanceDown)?;
                let name =
                    inst.catalog.tablespaces.get(&ts).map_or_else(String::new, |t| t.name.clone());
                return Err(DbError::TablespaceOffline(name));
            }
        }
        self.ensure_resident_raw(key)
    }

    /// Residency without online/offline checks — recovery applies redo to
    /// files that are administratively offline.
    pub(crate) fn ensure_resident_raw(&mut self, key: BlockKey) -> DbResult<()> {
        let (vfs_id, _) = self.datafile_info(key.0)?;
        {
            let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
            if inst.cache.get(key).is_some() {
                return Ok(());
            }
        }
        // Miss: read from disk.
        let now = self.clock.now();
        let bytes = {
            let mut fs = self.fs.lock();
            let (done, bytes) = fs.read_block(vfs_id, key.1 as u64, now)?;
            drop(fs);
            self.clock.advance_to(done);
            bytes
        };
        let img = match BlockImage::decode(bytes) {
            Ok(img) => img,
            Err(e) => return Err(self.block_decode_failed(key, &e)),
        };
        let evicted = {
            let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
            inst.cache.insert(key, img)
        };
        if let Some(ev) = evicted {
            if ev.dirty.is_some() {
                self.flush_redo()?;
                if let Ok((ev_vfs, _)) = self.datafile_info(ev.key.0) {
                    let now = self.clock.now();
                    let mut fs = self.fs.lock();
                    // tidy-allow(lock-discipline): eviction write-back of a clean-ordered dirty frame; its redo was flushed above
                    match fs.write_block(ev_vfs, ev.key.1 as u64, ev.img.encode(), now) {
                        Ok((done, ())) => {
                            drop(fs);
                            self.clock.advance_to(done);
                            self.stats.blocks_written += 1;
                        }
                        Err(VfsError::DiskFull { disk, .. }) => {
                            // The evicted image exists nowhere once it
                            // leaves the cache; swallowing ENOSPC here
                            // would lose the update. Fail the operation
                            // that forced the eviction instead.
                            return Err(DbError::DiskFull { disk });
                        }
                        Err(_) => {
                            // File gone (operator fault): redo survives,
                            // media recovery replays the change.
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Classifies a block decode failure: a CRC failure surfaces as the
    /// typed [`DbError::ChecksumMismatch`] with an event and a counter
    /// bump; structural garbage keeps the media-corruption shape.
    fn block_decode_failed(&mut self, key: BlockKey, e: &crate::codec::DecodeError) -> DbError {
        let path = self.datafile_path(key.0);
        if e.is_checksum_mismatch() {
            let block = key.1 as u64;
            self.stats.checksum_mismatches += 1;
            self.events.record(
                self.clock.now(),
                EngineEvent::ChecksumMismatch { path: path.clone(), block },
            );
            DbError::ChecksumMismatch { path, block }
        } else {
            DbError::Media(VfsError::Corrupt(path))
        }
    }

    pub(crate) fn with_block<R>(
        &mut self,
        key: BlockKey,
        f: impl FnOnce(&mut BlockImage) -> R,
    ) -> DbResult<R> {
        // Hot path: resident frame, no offline state anywhere — a single
        // cache probe instead of availability checks plus a second lookup.
        if !self.control.as_ref().is_some_and(ControlFile::has_runtime_state) {
            let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
            if let Some(img) = inst.cache.probe_mut(key) {
                return Ok(f(img));
            }
        }
        self.ensure_resident(key)?;
        let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
        let img = inst
            .cache
            .get_mut(key)
            .ok_or(RecoveryError::BlockNotResident { file: key.0, block: key.1 })?;
        Ok(f(img))
    }

    /// Block access for recovery code paths: ignores offline state.
    pub(crate) fn with_block_for_recovery<R>(
        &mut self,
        key: BlockKey,
        f: impl FnOnce(&mut BlockImage) -> R,
    ) -> DbResult<R> {
        self.ensure_resident_raw(key)?;
        let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
        let img = inst
            .cache
            .get_mut(key)
            .ok_or(RecoveryError::BlockNotResident { file: key.0, block: key.1 })?;
        Ok(f(img))
    }

    // ------------------------------------------------------------------
    // DDL
    // ------------------------------------------------------------------

    pub(crate) fn ddl(&mut self, change: CatalogChange) -> DbResult<()> {
        self.poll();
        let scn = self.inst_mut()?.next_scn();
        let rec = RedoRecord { scn, txn: None, op: RedoOp::Catalog(change.clone()) };
        self.append_record(&rec)?;
        self.inst_mut()?.catalog.apply(&change);
        self.flush_redo()?;
        Ok(())
    }

    /// Creates a user.
    ///
    /// # Errors
    ///
    /// Fails if the name is taken or the instance is down.
    pub fn create_user(&mut self, name: &str) -> DbResult<UserId> {
        if self.inst_ref()?.catalog.user_by_name(name).is_ok() {
            return Err(DbError::AlreadyExists(format!("user {name}")));
        }
        let id = self.inst_mut()?.catalog.next_user_id();
        self.ddl(CatalogChange::CreateUser { id, name: name.to_string() })?;
        Ok(id)
    }

    /// Drops a user (their objects are dropped by the caller first; this
    /// engine does not cascade).
    ///
    /// # Errors
    ///
    /// Fails if the user does not exist.
    pub fn drop_user(&mut self, name: &str) -> DbResult<()> {
        let id = self.inst_ref()?.catalog.user_by_name(name)?;
        self.ddl(CatalogChange::DropUser { id })
    }

    /// Creates a tablespace with `nfiles` datafiles of `blocks_per_file`
    /// blocks each, placed round-robin over the data disks.
    ///
    /// # Errors
    ///
    /// Fails if the name is taken or file creation fails.
    pub fn create_tablespace(
        &mut self,
        name: &str,
        nfiles: u32,
        blocks_per_file: u64,
    ) -> DbResult<TablespaceId> {
        if self.inst_ref()?.catalog.tablespace_by_name(name).is_ok() {
            return Err(DbError::AlreadyExists(format!("tablespace {name}")));
        }
        let id = self.inst_mut()?.catalog.next_tablespace_id();
        self.ddl(CatalogChange::CreateTablespace { id, name: name.to_string() })?;
        for i in 0..nfiles {
            self.add_datafile_to(id, name, i, blocks_per_file)?;
        }
        Ok(id)
    }

    fn add_datafile_to(
        &mut self,
        ts: TablespaceId,
        ts_name: &str,
        index: u32,
        blocks: u64,
    ) -> DbResult<()> {
        let disk = self.layout.data_disk_for(self.datafile_total);
        let path = format!("/u0{}/{}_{:02}.dbf", disk.0 + 1, ts_name.to_lowercase(), index + 1);
        let block_size = self.config.block_size;
        let vfs_id = {
            let mut fs = self.fs.lock();
            fs.create_block_file(&path, disk, FileKind::Data, block_size, blocks)?
        };
        self.datafile_total += 1;
        let file_no = self.inst_mut()?.catalog.next_file_no();
        self.ddl(CatalogChange::AddDatafile {
            file_no,
            def: DatafileDef { path, vfs_id, tablespace: ts, blocks },
        })
    }

    /// Creates a table with its indexes (index 0 is the primary key).
    ///
    /// # Errors
    ///
    /// Fails if the table name is taken, or the user/tablespace is unknown.
    pub fn create_table(
        &mut self,
        name: &str,
        owner: &str,
        tablespace: &str,
        indexes: Vec<IndexDef>,
    ) -> DbResult<ObjectId> {
        let (owner, ts) = {
            let cat = &self.inst_ref()?.catalog;
            if cat.table_by_name(name).is_ok() {
                return Err(DbError::AlreadyExists(format!("table {name}")));
            }
            (cat.user_by_name(owner)?, cat.tablespace_by_name(tablespace)?)
        };
        let id = self.inst_mut()?.catalog.next_object_id();
        self.ddl(CatalogChange::CreateTable {
            id,
            name: name.to_string(),
            owner,
            tablespace: ts,
            indexes: indexes.clone(),
        })?;
        let inst = self.inst_mut()?;
        inst.indexes.insert(id, indexes.into_iter().map(crate::index::Index::new).collect());
        inst.cursors.insert(id, PlacementCursor::new());
        Ok(id)
    }

    /// Drops a table — the "delete user's database object" operator fault
    /// when issued by mistake.
    ///
    /// # Errors
    ///
    /// Fails if the table does not exist.
    pub fn drop_table(&mut self, name: &str) -> DbResult<ObjectId> {
        let id = self.inst_ref()?.catalog.table_by_name(name)?;
        self.ddl(CatalogChange::DropTable { id })?;
        let inst = self.inst_mut()?;
        inst.indexes.remove(&id);
        inst.cursors.remove(&id);
        if self.dml_tap.is_some() {
            let scn = self.current_scn();
            self.emit_dml(DmlChange::DropTable { obj: id, scn });
        }
        Ok(id)
    }

    /// Drops a tablespace *including contents and datafiles* — the "delete
    /// a tablespace" operator fault when aimed at the wrong target.
    ///
    /// # Errors
    ///
    /// Fails if the tablespace does not exist.
    pub fn drop_tablespace(&mut self, name: &str) -> DbResult<()> {
        let (id, files, tables): (TablespaceId, Vec<(FileNo, String)>, Vec<ObjectId>) = {
            let cat = &self.inst_ref()?.catalog;
            let id = cat.tablespace_by_name(name)?;
            let files = cat
                .datafiles
                .iter()
                .filter(|(_, d)| d.tablespace == id)
                .map(|(no, d)| (*no, d.path.clone()))
                .collect();
            let tables =
                cat.tables.iter().filter(|(_, t)| t.tablespace == id).map(|(o, _)| *o).collect();
            (id, files, tables)
        };
        self.ddl(CatalogChange::DropTablespace { id })?;
        let inst = self.inst_mut()?;
        for t in &tables {
            inst.indexes.remove(t);
            inst.cursors.remove(t);
        }
        for (no, _) in &files {
            inst.cache.invalidate_file(*no);
        }
        {
            let mut fs = self.fs.lock();
            for (_, path) in &files {
                // The files may already be damaged; dropping is best-effort.
                // tidy-allow(error-swallow): dropping a tablespace whose files are already damaged must still succeed
                let _ = fs.delete_path(path);
            }
        }
        if self.dml_tap.is_some() {
            let scn = self.current_scn();
            self.emit_dml(DmlChange::DropTablespace { tables, scn });
        }
        self.clock.advance(self.config.costs.admin_command);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Sessions
    // ------------------------------------------------------------------

    /// Connects a new session. All DML, commit and rollback flow through
    /// it; a transaction begins implicitly on the session's first DML
    /// statement. Sessions are severed by instance crashes and recovery
    /// procedures — a severed id fails subsequent calls with
    /// [`DbError::NoSession`].
    ///
    /// # Errors
    ///
    /// Fails if the instance is not open for work.
    pub fn connect(&mut self) -> DbResult<SessionId> {
        self.poll();
        if !self.is_open() {
            return Err(DbError::InstanceDown);
        }
        self.next_session += 1;
        let sid = SessionId(self.next_session);
        self.sessions.insert(sid, SessionState::default());
        Ok(sid)
    }

    /// Disconnects a session, rolling back any in-flight transaction.
    /// Disconnecting an unknown (already severed) session is a no-op.
    pub fn disconnect(&mut self, s: SessionId) {
        if let Some(sess) = self.sessions.remove(&s) {
            if let Some(txn) = sess.txn {
                // tidy-allow(error-swallow): disconnect is infallible by contract; a failed rollback is redone by crash recovery
                let _ = self.rollback_txn(txn);
            }
        }
    }

    /// Whether `s` is currently connected.
    pub fn session_exists(&self, s: SessionId) -> bool {
        self.sessions.contains_key(&s)
    }

    /// The transaction the session has open, if any (for observability and
    /// tests; clients never need the id).
    pub fn session_txn_id(&self, s: SessionId) -> Option<TxnId> {
        self.sessions.get(&s).and_then(|sess| sess.txn)
    }

    /// Number of connected sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Drains the wake-up list: sessions whose pending lock was granted
    /// (by a holder's commit or rollback) since the last call, with the
    /// grant instants. The workload driver unparks these terminals and
    /// reschedules them at the grant time.
    pub fn take_lock_grants(&mut self) -> Vec<(SessionId, SimTime)> {
        std::mem::take(&mut self.lock_grants)
    }

    /// Disconnects every session, rolling back in-flight transactions:
    /// recovery procedures, cold backups and orderly shutdown drain their
    /// clients first. Deterministic (ascending session id) order.
    pub(crate) fn kill_all_sessions(&mut self) {
        while let Some((&sid, _)) = self.sessions.iter().next() {
            self.disconnect(sid);
        }
        self.lock_grants.clear();
    }

    /// The session's open transaction, starting one if none is open.
    fn txn_for(&mut self, s: SessionId) -> DbResult<TxnId> {
        let sess = self.sessions.get(&s).ok_or(DbError::NoSession(s))?;
        if let Some(txn) = sess.txn {
            return Ok(txn);
        }
        let id = self.inst_mut()?.txns.begin();
        self.txn_floor = self.txn_floor.max(id.0);
        if let Some(sess) = self.sessions.get_mut(&s) {
            sess.txn = Some(id);
        }
        Ok(id)
    }

    /// Records granted locks on their new holders, emits the
    /// `lock_acquired` events, and queues the owning sessions for driver
    /// wake-up. A grant to a transaction that died while queued (possible
    /// only if bookkeeping breaks) is passed on to the next waiter.
    fn apply_lock_grants(&mut self, mut grants: Vec<LockGrant>) {
        let now = self.clock.now();
        while let Some(g) = grants.pop() {
            let Some(inst) = self.inst.as_mut() else { return };
            if inst.txns.get_mut(g.txn).map(|st| st.locks.push((g.obj, g.rid))).is_err() {
                grants.extend(inst.locks.release_all(g.txn, &[(g.obj, g.rid)], now));
                continue;
            }
            self.events.record(now, EngineEvent::LockAcquired { txn: g.txn, wait_us: g.wait_us });
            let owner = self
                .sessions
                .iter()
                .find(|(_, sess)| sess.txn == Some(g.txn))
                .map(|(&sid, _)| sid);
            if let Some(sid) = owner {
                self.lock_grants.push((sid, now));
            }
        }
    }

    // ------------------------------------------------------------------
    // DML
    // ------------------------------------------------------------------

    fn check_unique(&self, obj: ObjectId, row: &Row, exclude: Option<RowId>) -> DbResult<()> {
        let inst = self.inst_ref()?;
        if let Some(indexes) = inst.indexes.get(&obj) {
            for ix in indexes {
                if !ix.def().unique {
                    continue;
                }
                let existing = ix.lookup_row_ref(row);
                if existing.iter().any(|r| Some(*r) != exclude) {
                    return Err(DbError::DuplicateKey { index: ix.def().name.clone() });
                }
            }
        }
        Ok(())
    }

    fn find_insert_slot(&mut self, obj: ObjectId, row_len: usize) -> DbResult<(BlockKey, u16)> {
        let block_size = self.config.block_size;
        loop {
            let cand = {
                let inst = self.inst_ref()?;
                let seg = &inst.catalog.table(obj)?.segment;
                inst.cursors.get(&obj).copied().unwrap_or_default().current(seg)
            };
            match cand {
                Some((file, block)) => {
                    let key = (file, block);
                    // One probe answers both "does it fit" and "which slot".
                    let slot = self.with_block(key, |img| {
                        if img.fits(row_len, block_size) { Some(img.next_free_slot()) } else { None }
                    })?;
                    if let Some(slot) = slot {
                        return Ok((key, slot));
                    }
                    let inst = self.inst_mut()?;
                    let seg = inst.catalog.table(obj)?.segment.clone();
                    inst.cursors.entry(obj).or_default().advance(&seg);
                }
                None => {
                    // Segment exhausted: allocate an extent.
                    let extent = {
                        let inst = self.inst_ref()?;
                        plan_extent(&inst.catalog, obj)?
                    };
                    self.ddl_extent(obj, extent)?;
                    let inst = self.inst_mut()?;
                    let seg = &inst.catalog.table(obj)?.segment;
                    inst.cursors.entry(obj).or_default().seek_last_extent(seg);
                }
            }
        }
    }

    fn ddl_extent(&mut self, obj: ObjectId, extent: crate::catalog::Extent) -> DbResult<()> {
        // Extent allocation is a recursive (auto-committed) dictionary
        // change, logged but not flushed eagerly: the owning transaction's
        // commit flush covers it.
        let scn = self.inst_mut()?.next_scn();
        let change = CatalogChange::AllocExtent { table: obj, extent };
        let rec = RedoRecord { scn, txn: None, op: RedoOp::Catalog(change.clone()) };
        self.append_record(&rec)?;
        self.inst_mut()?.catalog.apply(&change);
        Ok(())
    }

    /// Inserts a row under session `s`, returning its physical address. A
    /// transaction begins implicitly if the session has none open.
    ///
    /// # Errors
    ///
    /// Fails on duplicate keys, storage exhaustion, offline storage, media
    /// damage, or a severed session.
    pub fn insert(&mut self, s: SessionId, obj: ObjectId, row: Row) -> DbResult<RowId> {
        self.poll();
        let txn = self.txn_for(s)?;
        self.inst_ref()?.catalog.table(obj)?;
        self.insert_one(txn, obj, row)
    }

    /// Per-row insert body shared with [`DbServer::insert_batch`]; assumes
    /// the transaction and table were already validated.
    fn insert_one(&mut self, txn: TxnId, obj: ObjectId, row: Row) -> DbResult<RowId> {
        self.wait_on_vacated_unique(txn, obj, &row)?;
        let (key, slot) = self.find_insert_slot(obj, row.encoded_len())?;
        let rid = RowId { file: key.0, block: key.1, slot };
        // Index insertion doubles as the uniqueness check: each tree
        // descends once and rejects a duplicate before any durable state
        // changes. A failure later on the path unwinds the entries so no
        // index points at a row that never reached its block.
        {
            let inst = self.inst_mut()?;
            if let Some(indexes) = inst.indexes.get_mut(&obj) {
                for i in 0..indexes.len() {
                    if let Err(e) = indexes[i].insert(&row, rid) {
                        let (done, _) = indexes.split_at_mut(i);
                        for ix in done {
                            ix.remove(&row, rid);
                        }
                        return Err(e);
                    }
                }
            }
        }
        let locked = self.lock_for_dml(txn, obj, rid).and_then(|newly| {
            let st = self.inst_mut()?.txns.get_mut(txn)?;
            if newly {
                st.locks.push((obj, rid));
            }
            st.undo.push(UndoOp::UndoInsert { obj, rid });
            Ok(())
        });
        if let Err(e) = locked {
            self.unwind_index_insert(obj, &row, rid);
            return Err(e);
        }
        let scn = self.inst_mut()?.next_scn();
        // The record borrows the row for encoding and hands it back
        // afterwards, so the block write is the only clone on this path.
        let rec = RedoRecord { scn, txn: Some(txn), op: RedoOp::Insert { obj, rid, row } };
        let addr = match self.append_record(&rec) {
            Ok(addr) => addr,
            Err(e) => {
                let RedoOp::Insert { row, .. } = rec.op else { unreachable!() };
                self.unwind_index_insert(obj, &row, rid);
                return Err(e);
            }
        };
        let RedoOp::Insert { row, .. } = rec.op else { unreachable!() };
        let now = self.clock.now();
        if let Err(e) = self.with_block(key, |img| {
            img.put(slot, row.clone(), scn);
        }) {
            self.unwind_index_insert(obj, &row, rid);
            return Err(e);
        }
        self.inst_mut()?.cache.mark_dirty(key, addr, now);
        if self.dml_tap.is_some() {
            self.emit_dml(DmlChange::Insert { txn, obj, rid, row });
        }
        self.clock.advance(self.config.costs.cpu_per_dml);
        Ok(rid)
    }

    /// Acquires the row lock a DML statement needs, recording contention
    /// events. `Ok(true)` means newly acquired (the caller records it on
    /// the transaction); a contended lock queues the transaction and
    /// surfaces as [`DbError::LockWait`] **before any state is mutated**,
    /// so the statement can simply be retried once the lock is granted. A
    /// request that would deadlock is refused: the requester is the victim
    /// and must roll back.
    fn lock_for_dml(&mut self, txn: TxnId, obj: ObjectId, rid: RowId) -> DbResult<bool> {
        let now = self.clock.now();
        match self.inst_mut()?.locks.lock_row(txn, obj, rid, now) {
            LockOutcome::Acquired => Ok(true),
            LockOutcome::AlreadyHeld => Ok(false),
            LockOutcome::Waiting { holder } => {
                self.events.record(now, EngineEvent::LockWait { waiter: txn, holder, obj });
                Err(DbError::LockWait { holder })
            }
            LockOutcome::Deadlock { cycle } => {
                self.events.record(
                    now,
                    EngineEvent::DeadlockVictim { victim: txn, cycle_len: cycle.len() as u64 },
                );
                Err(DbError::Deadlock { victim: txn, cycle })
            }
        }
    }

    /// Blocks a writer whose unique key was *vacated* by a live
    /// transaction — an uncommitted delete, or an update that moved the
    /// key away. The key is absent from the index, but the vacating
    /// transaction would resurrect it on rollback, so the key is not
    /// free: the writer queues behind that transaction's row lock (the
    /// TX enqueue Oracle takes on a unique index entry) and retries the
    /// statement once it ends. Keys still present in the index are left
    /// to the ordinary duplicate check.
    fn wait_on_vacated_unique(&mut self, txn: TxnId, obj: ObjectId, row: &Row) -> DbResult<()> {
        let vacated = {
            let inst = self.inst_ref()?;
            if inst.txns.active_count() <= 1 {
                return Ok(());
            }
            let Some(indexes) = inst.indexes.get(&obj) else { return Ok(()) };
            indexes
                .iter()
                .filter(|ix| ix.def().unique && ix.lookup_row_ref(row).is_empty())
                .find_map(|ix| {
                    inst.txns.vacated_by_other(txn, obj, |before| !ix.key_changed(before, row))
                })
        };
        if let Some((_, rid)) = vacated {
            let newly = self.lock_for_dml(txn, obj, rid)?;
            if newly {
                self.inst_mut()?.txns.get_mut(txn)?.locks.push((obj, rid));
            }
        }
        Ok(())
    }

    /// Best-effort removal of `row`'s index entries after a failed insert.
    fn unwind_index_insert(&mut self, obj: ObjectId, row: &Row, rid: RowId) {
        if let Ok(inst) = self.inst_mut() {
            if let Some(indexes) = inst.indexes.get_mut(&obj) {
                for ix in indexes {
                    ix.remove(row, rid);
                }
            }
        }
    }

    /// Inserts several rows into one table under one transaction: the
    /// batched redo-generation fast path. Emits exactly the per-row redo
    /// records, undo entries, index maintenance and clock charges that one
    /// [`DbServer::insert`] per row would — the per-call validation, the
    /// background-event poll, the free-slot search and the buffer-cache
    /// probe are paid once per destination block instead of once per row,
    /// so the simulated timeline is unchanged while the host-side overhead
    /// collapses.
    ///
    /// # Errors
    ///
    /// As [`DbServer::insert`]; on a mid-batch error the earlier rows stay
    /// inserted (under the still-open transaction, so the caller's rollback
    /// removes them — the same contract as a loop of single inserts).
    pub fn insert_batch(&mut self, s: SessionId, obj: ObjectId, rows: Vec<Row>) -> DbResult<Vec<RowId>> {
        self.poll();
        let txn = self.txn_for(s)?;
        self.inst_ref()?.catalog.table(obj)?;
        let block_size = self.config.block_size;
        let mut rids = Vec::with_capacity(rows.len());
        let mut rows = rows.into_iter().peekable();
        while let Some(row) = rows.next() {
            // Place the head row, then greedily extend the run with
            // following rows that also fit: a freshly filling block is
            // dense, so the run occupies consecutive slots and a single
            // cache probe writes all of it.
            let (key, slot) = self.find_insert_slot(obj, row.encoded_len())?;
            let mut staged: Vec<(u16, Row, Scn)> = Vec::new();
            let (dense, mut used) = self.with_block(key, |img| {
                (img.row_count() == slot as usize && img.next_free_slot() == slot, img.used_bytes())
            })?;
            let mut pending = Some(row);
            // Staged rows may be flushed to the block mid-run (see
            // `stage_insert`), so the next slot comes from this counter,
            // not from `staged.len()`.
            let mut placed = 0u16;
            loop {
                let row = match pending.take() {
                    Some(r) => r,
                    None => match rows.peek() {
                        // Same capacity rule as `BlockImage::fits`, using
                        // the used-byte count tracked across the staged
                        // run (8 = the per-row slot/length overhead).
                        Some(next) if dense && used + next.encoded_len() + 8 <= block_size as usize => {
                            rows.next().unwrap()
                        }
                        _ => break,
                    },
                };
                let slot = slot + placed;
                placed += 1;
                let rid = RowId { file: key.0, block: key.1, slot };
                used += row.encoded_len() + 8;
                if let Err(e) = self.stage_insert(txn, obj, key, rid, row, &mut staged) {
                    self.put_staged(key, staged)?;
                    return Err(e);
                }
                rids.push(rid);
                self.clock.advance(self.config.costs.cpu_per_dml);
                if !dense {
                    break;
                }
            }
            self.put_staged(key, staged)?;
        }
        Ok(rids)
    }

    /// Runs the index, lock, undo and redo steps for one batched row,
    /// leaving the block write to [`DbServer::put_staged`].
    fn stage_insert(
        &mut self,
        txn: TxnId,
        obj: ObjectId,
        key: BlockKey,
        rid: RowId,
        row: Row,
        staged: &mut Vec<(u16, Row, Scn)>,
    ) -> DbResult<()> {
        self.wait_on_vacated_unique(txn, obj, &row)?;
        {
            let inst = self.inst_mut()?;
            if let Some(indexes) = inst.indexes.get_mut(&obj) {
                for i in 0..indexes.len() {
                    if let Err(e) = indexes[i].insert(&row, rid) {
                        let (done, _) = indexes.split_at_mut(i);
                        for ix in done {
                            ix.remove(&row, rid);
                        }
                        return Err(e);
                    }
                }
            }
        }
        let locked = self.lock_for_dml(txn, obj, rid).and_then(|newly| {
            let st = self.inst_mut()?.txns.get_mut(txn)?;
            if newly {
                st.locks.push((obj, rid));
            }
            st.undo.push(UndoOp::UndoInsert { obj, rid });
            Ok(())
        });
        if let Err(e) = locked {
            self.unwind_index_insert(obj, &row, rid);
            return Err(e);
        }
        let scn = self.inst_mut()?.next_scn();
        let rec = RedoRecord { scn, txn: Some(txn), op: RedoOp::Insert { obj, rid, row } };
        // The run's earlier rows are marked dirty but live only in
        // `staged` until the batch's single block write. A log switch
        // checkpoints every dirty block from the cache and moves the
        // recovery position past their redo, so if this record forces a
        // switch, the staged rows must reach the block image first —
        // otherwise the checkpoint persists a stale image and crash
        // recovery never replays them.
        let appended = match self.try_append_record(&rec) {
            Ok(Some(addr)) => Ok(addr),
            Ok(None) => {
                self.put_staged(key, std::mem::take(staged))
                    .and_then(|()| self.append_record(&rec))
            }
            Err(e) => Err(e),
        };
        let addr = match appended {
            Ok(addr) => addr,
            Err(e) => {
                let RedoOp::Insert { row, .. } = rec.op else { unreachable!() };
                self.unwind_index_insert(obj, &row, rid);
                return Err(e);
            }
        };
        let RedoOp::Insert { row, .. } = rec.op else { unreachable!() };
        let now = self.clock.now();
        self.inst_mut()?.cache.mark_dirty((rid.file, rid.block), addr, now);
        if self.dml_tap.is_some() {
            self.emit_dml(DmlChange::Insert { txn, obj, rid, row: row.clone() });
        }
        staged.push((rid.slot, row, scn));
        Ok(())
    }

    /// Writes a staged run of rows into its block with one cache probe.
    fn put_staged(&mut self, key: BlockKey, staged: Vec<(u16, Row, Scn)>) -> DbResult<()> {
        if staged.is_empty() {
            return Ok(());
        }
        self.with_block(key, |img| {
            for (slot, row, scn) in staged {
                img.put(slot, row, scn);
            }
        })
    }

    /// Replaces the row at `rid` under session `s`.
    ///
    /// # Errors
    ///
    /// Fails if the row does not exist or storage is unavailable; a
    /// contended row queues the session ([`DbError::LockWait`] — retry the
    /// statement after the grant) or aborts it ([`DbError::Deadlock`]).
    pub fn update(&mut self, s: SessionId, obj: ObjectId, rid: RowId, row: Row) -> DbResult<()> {
        self.poll();
        let txn = self.txn_for(s)?;
        let key = (rid.file, rid.block);
        let before =
            self.with_block(key, |img| img.row(rid.slot).cloned())?.ok_or(DbError::NoSuchRow(rid))?;
        // Work out which index keys the update actually moves, once. The
        // common TPC-C updates (stock, customer balances) move none, so
        // both the uniqueness probe and the per-index replace below can
        // skip their key encodes entirely.
        let changed_mask: u64 = match self.inst_ref()?.indexes.get(&obj) {
            Some(ixs) if ixs.len() <= 64 => ixs
                .iter()
                .enumerate()
                .filter(|(_, ix)| ix.key_changed(&before, &row))
                .fold(0, |m, (i, _)| m | (1 << i)),
            Some(_) => u64::MAX,
            None => 0,
        };
        let moves_unique_key = changed_mask != 0
            && self.inst_ref()?.indexes.get(&obj).is_some_and(|ixs| {
                ixs.iter()
                    .enumerate()
                    .any(|(i, ix)| ix.def().unique && changed_mask & (1 << i.min(63)) != 0)
            });
        if moves_unique_key {
            self.check_unique(obj, &row, Some(rid))?;
            self.wait_on_vacated_unique(txn, obj, &row)?;
        }
        // The lock precedes every mutation: a `LockWait` return leaves no
        // trace, so the retried statement re-reads and re-runs cleanly.
        let newly = self.lock_for_dml(txn, obj, rid)?;
        {
            let inst = self.inst_mut()?;
            if newly {
                inst.txns.get_mut(txn)?.locks.push((obj, rid));
            }
            inst.txns.get_mut(txn)?.undo.push(UndoOp::UndoUpdate { obj, rid, before: before.clone() });
        }
        let scn = self.inst_mut()?.next_scn();
        let rec = RedoRecord {
            scn,
            txn: Some(txn),
            op: RedoOp::Update { obj, rid, before, after: row },
        };
        let addr = self.append_record(&rec)?;
        let RedoOp::Update { before, after: row, .. } = rec.op else { unreachable!() };
        let now = self.clock.now();
        self.with_block(key, |img| {
            img.put(rid.slot, row.clone(), scn);
        })?;
        {
            let inst = self.inst_mut()?;
            inst.cache.mark_dirty(key, addr, now);
            if changed_mask != 0 {
                if let Some(indexes) = inst.indexes.get_mut(&obj) {
                    for (i, ix) in indexes.iter_mut().enumerate() {
                        if changed_mask & (1 << i.min(63)) != 0 {
                            ix.replace(&before, &row, rid)?;
                        }
                    }
                }
            }
        }
        if self.dml_tap.is_some() {
            self.emit_dml(DmlChange::Update { txn, obj, rid, row });
        }
        self.clock.advance(self.config.costs.cpu_per_dml);
        Ok(())
    }

    /// Deletes the row at `rid` under session `s`.
    ///
    /// # Errors
    ///
    /// Fails if the row does not exist or storage is unavailable; a
    /// contended row queues the session ([`DbError::LockWait`]) or aborts
    /// it ([`DbError::Deadlock`]).
    pub fn delete(&mut self, s: SessionId, obj: ObjectId, rid: RowId) -> DbResult<()> {
        self.poll();
        let txn = self.txn_for(s)?;
        let key = (rid.file, rid.block);
        let before =
            self.with_block(key, |img| img.row(rid.slot).cloned())?.ok_or(DbError::NoSuchRow(rid))?;
        let newly = self.lock_for_dml(txn, obj, rid)?;
        {
            let inst = self.inst_mut()?;
            if newly {
                inst.txns.get_mut(txn)?.locks.push((obj, rid));
            }
            inst.txns.get_mut(txn)?.undo.push(UndoOp::UndoDelete { obj, rid, before: before.clone() });
        }
        let scn = self.inst_mut()?.next_scn();
        let rec = RedoRecord { scn, txn: Some(txn), op: RedoOp::Delete { obj, rid, before } };
        let addr = self.append_record(&rec)?;
        let RedoOp::Delete { before, .. } = rec.op else { unreachable!() };
        let now = self.clock.now();
        self.with_block(key, |img| {
            img.remove(rid.slot, scn);
        })?;
        {
            let inst = self.inst_mut()?;
            inst.cache.mark_dirty(key, addr, now);
            if let Some(indexes) = inst.indexes.get_mut(&obj) {
                for ix in indexes {
                    ix.remove(&before, rid);
                }
            }
        }
        if self.dml_tap.is_some() {
            self.emit_dml(DmlChange::Delete { txn, obj, rid });
        }
        self.clock.advance(self.config.costs.cpu_per_dml);
        Ok(())
    }

    /// Reads the row at `rid`.
    ///
    /// # Errors
    ///
    /// Fails if the row does not exist or storage is unavailable.
    pub fn get_row(&mut self, obj: ObjectId, rid: RowId) -> DbResult<Row> {
        self.poll();
        self.inst_ref()?.catalog.table(obj)?;
        let key = (rid.file, rid.block);
        let row =
            self.with_block(key, |img| img.row(rid.slot).cloned())?.ok_or(DbError::NoSuchRow(rid))?;
        self.clock.advance(self.config.costs.cpu_per_read);
        Ok(row)
    }

    /// Exact-match index lookup.
    ///
    /// # Errors
    ///
    /// Fails if the table or index is unknown.
    pub fn lookup(&mut self, obj: ObjectId, index: usize, key: &[Value]) -> DbResult<Vec<RowId>> {
        self.poll();
        self.clock.advance(self.config.costs.cpu_per_read);
        let inst = self.inst_ref()?;
        let ix = inst
            .indexes
            .get(&obj)
            .and_then(|v| v.get(index))
            .ok_or_else(|| DbError::NotFound(format!("index {index} of {obj}")))?;
        Ok(ix.lookup(key))
    }

    /// Exact-match index lookup returning only the first matching row
    /// address (no match-list allocation — the common unique-key probe).
    ///
    /// # Errors
    ///
    /// Fails if the table or index is unknown.
    pub fn lookup_first(
        &mut self,
        obj: ObjectId,
        index: usize,
        key: &[Value],
    ) -> DbResult<Option<RowId>> {
        self.poll();
        self.clock.advance(self.config.costs.cpu_per_read);
        let inst = self.inst_ref()?;
        let ix = inst
            .indexes
            .get(&obj)
            .and_then(|v| v.get(index))
            .ok_or_else(|| DbError::NotFound(format!("index {index} of {obj}")))?;
        Ok(ix.lookup_ref(key).first().copied())
    }

    /// Index prefix scan (ordered).
    ///
    /// # Errors
    ///
    /// Fails if the table or index is unknown.
    pub fn prefix_scan(&mut self, obj: ObjectId, index: usize, prefix: &[Value]) -> DbResult<Vec<RowId>> {
        self.poll();
        self.clock.advance(self.config.costs.cpu_per_read);
        let inst = self.inst_ref()?;
        let ix = inst
            .indexes
            .get(&obj)
            .and_then(|v| v.get(index))
            .ok_or_else(|| DbError::NotFound(format!("index {index} of {obj}")))?;
        Ok(ix.prefix_scan(prefix))
    }

    /// Reads every row whose index key starts with `prefix`, in key
    /// order. Charges the same simulated CPU as a `prefix_scan` followed
    /// by one `get_row` per match, but pays one buffer-cache probe per
    /// distinct *block* instead of per row — index-clustered tables
    /// (order lines of one order) read an order of magnitude cheaper.
    ///
    /// # Errors
    ///
    /// Fails if the table or index is unknown, or an indexed row is
    /// missing from its block.
    pub fn read_rows_prefix(
        &mut self,
        obj: ObjectId,
        index: usize,
        prefix: &[Value],
    ) -> DbResult<Vec<(RowId, Row)>> {
        self.poll();
        let rids = {
            let inst = self.inst_ref()?;
            let ix = inst
                .indexes
                .get(&obj)
                .and_then(|v| v.get(index))
                .ok_or_else(|| DbError::NotFound(format!("index {index} of {obj}")))?;
            ix.prefix_scan(prefix)
        };
        let mut rows = Vec::with_capacity(rids.len());
        let mut i = 0usize;
        while i < rids.len() {
            let key = (rids[i].file, rids[i].block);
            let (next, missing) = self.with_block(key, |img| {
                let mut j = i;
                while j < rids.len() && (rids[j].file, rids[j].block) == key {
                    match img.row(rids[j].slot) {
                        Some(r) => rows.push((rids[j], r.clone())),
                        None => return (j, Some(rids[j])),
                    }
                    j += 1;
                }
                (j, None)
            })?;
            if let Some(rid) = missing {
                return Err(DbError::NoSuchRow(rid));
            }
            i = next;
        }
        self.clock.advance(self.config.costs.cpu_per_read * (1 + rows.len() as u64));
        Ok(rows)
    }


    /// Reads the rows at `rids` with one background poll and one buffer
    /// probe per distinct block run, charging the same batched CPU cost
    /// as [`DbServer::read_rows_prefix`]. Callers that already hold a rid
    /// list (e.g. collected from point-index lookups) use this to skip
    /// the per-row call overhead of [`DbServer::get_row`].
    ///
    /// # Errors
    ///
    /// Fails if any rid does not resolve to a live row or its storage is
    /// unavailable.
    pub fn read_rows(&mut self, rids: &[RowId]) -> DbResult<Vec<Row>> {
        self.poll();
        let mut rows = Vec::with_capacity(rids.len());
        let mut i = 0usize;
        while i < rids.len() {
            let key = (rids[i].file, rids[i].block);
            let (next, missing) = self.with_block(key, |img| {
                let mut j = i;
                while j < rids.len() && (rids[j].file, rids[j].block) == key {
                    match img.row(rids[j].slot) {
                        Some(r) => rows.push(r.clone()),
                        None => return (j, Some(rids[j])),
                    }
                    j += 1;
                }
                (j, None)
            })?;
            if let Some(rid) = missing {
                return Err(DbError::NoSuchRow(rid));
            }
            i = next;
        }
        self.clock.advance(self.config.costs.cpu_per_read * (1 + rows.len() as u64));
        Ok(rows)
    }

    /// Rows under the greatest key with the given prefix (e.g. a
    /// customer's most recent order).
    ///
    /// # Errors
    ///
    /// Fails if the table or index is unknown.
    pub fn last_under_prefix(
        &mut self,
        obj: ObjectId,
        index: usize,
        prefix: &[Value],
    ) -> DbResult<Vec<RowId>> {
        self.poll();
        self.clock.advance(self.config.costs.cpu_per_read);
        let inst = self.inst_ref()?;
        let ix = inst
            .indexes
            .get(&obj)
            .and_then(|v| v.get(index))
            .ok_or_else(|| DbError::NotFound(format!("index {index} of {obj}")))?;
        Ok(ix.last_under_prefix(prefix).map(|(_, rids)| rids.to_vec()).unwrap_or_default())
    }

    /// Rows under the smallest key with the given prefix (e.g. the oldest
    /// undelivered order of a district). O(log n) regardless of how many
    /// keys share the prefix, where [`DbServer::prefix_scan`] collects
    /// them all.
    ///
    /// # Errors
    ///
    /// Fails if the table or index is unknown.
    pub fn first_under_prefix(
        &mut self,
        obj: ObjectId,
        index: usize,
        prefix: &[Value],
    ) -> DbResult<Vec<RowId>> {
        self.poll();
        self.clock.advance(self.config.costs.cpu_per_read);
        let inst = self.inst_ref()?;
        let ix = inst
            .indexes
            .get(&obj)
            .and_then(|v| v.get(index))
            .ok_or_else(|| DbError::NotFound(format!("index {index} of {obj}")))?;
        Ok(ix.first_under_prefix(prefix).map(|(_, rids)| rids.to_vec()).unwrap_or_default())
    }

    /// Commits session `s`'s open transaction: the commit record is
    /// written and the log buffer flushed — the caller waits out the log
    /// write, which is the durability guarantee. A session with no open
    /// transaction commits trivially.
    ///
    /// # Errors
    ///
    /// Fails if the session is severed or the log write fails (the
    /// transaction is then still open; roll it back).
    pub fn commit(&mut self, s: SessionId) -> DbResult<()> {
        self.poll();
        let sess = self.sessions.get(&s).ok_or(DbError::NoSession(s))?;
        let Some(txn) = sess.txn else { return Ok(()) };
        self.commit_txn(txn)?;
        if let Some(sess) = self.sessions.get_mut(&s) {
            sess.txn = None;
        }
        Ok(())
    }

    /// Rolls back session `s`'s open transaction (a no-op if none is
    /// open): undoes its changes (writing compensating redo) and releases
    /// its locks. Changes to storage that has since become unreadable are
    /// deferred — recovery or onlining of that storage discards them.
    ///
    /// # Errors
    ///
    /// Fails if the session is severed.
    pub fn rollback(&mut self, s: SessionId) -> DbResult<()> {
        self.poll();
        let sess = self.sessions.get(&s).ok_or(DbError::NoSession(s))?;
        let Some(txn) = sess.txn else { return Ok(()) };
        if let Some(sess) = self.sessions.get_mut(&s) {
            sess.txn = None;
        }
        self.rollback_txn(txn)
    }

    fn commit_txn(&mut self, txn: TxnId) -> DbResult<()> {
        let scn = self.inst_mut()?.next_scn();
        let rec = RedoRecord { scn, txn: Some(txn), op: RedoOp::Commit };
        self.append_record(&rec)?;
        self.flush_redo()?;
        let now = self.clock.now();
        let inst = self.inst_mut()?;
        let st = inst.txns.finish(txn)?;
        let grants = inst.locks.release_all(txn, &st.locks, now);
        self.stats.commits += 1;
        if self.dml_tap.is_some() {
            self.emit_dml(DmlChange::Commit { txn, scn });
        }
        self.apply_lock_grants(grants);
        self.clock.advance(self.config.costs.cpu_commit);
        Ok(())
    }

    fn rollback_txn(&mut self, txn: TxnId) -> DbResult<()> {
        let st = self.inst_mut()?.txns.finish(txn)?;
        let mut deferred: Vec<UndoOp> = Vec::new();
        for op in st.undo.iter().rev() {
            // Best-effort: undo targeting unreachable storage is deferred.
            if self.apply_undo_logged(txn, op).is_err() {
                deferred.push(op.clone());
            }
        }
        // Locks release (and waiters wake) before the terminal record so a
        // failed log write can never strand a granted waiter.
        let now = self.clock.now();
        let inst = self.inst_mut()?;
        let grants = inst.locks.release_all(txn, &st.locks, now);
        self.stats.rollbacks += 1;
        if self.dml_tap.is_some() {
            self.emit_dml(DmlChange::Rollback { txn });
        }
        self.apply_lock_grants(grants);
        self.clock.advance(self.config.costs.cpu_commit);
        if deferred.is_empty() {
            let scn = self.inst_mut()?.next_scn();
            let rec = RedoRecord { scn, txn: Some(txn), op: RedoOp::Rollback };
            self.append_record(&rec)?;
            self.flush_redo()?;
        } else {
            // No terminal record: the transaction stays unresolved in the
            // redo stream, so any replay covering the unreachable storage
            // rolls the skipped changes back itself. If the storage comes
            // back *without* a replay (ONLINE tablespace), the deferred
            // undo is applied and the transaction resolved then.
            deferred.reverse();
            self.deferred_undo.push((txn, deferred));
            self.flush_redo()?;
        }
        Ok(())
    }

    /// Applies deferred rollback undo whose storage may have come back,
    /// writing the owning transactions' terminal records once fully
    /// undone. Called after media recovery and tablespace onlining.
    pub(crate) fn drain_deferred_undo(&mut self) {
        if self.deferred_undo.is_empty() || self.inst.is_none() {
            return;
        }
        let pending = std::mem::take(&mut self.deferred_undo);
        for (txn, ops) in pending {
            let mut still: Vec<UndoOp> = Vec::new();
            for op in ops.iter().rev() {
                // Replay may already have rolled the change back; the
                // application is idempotent, so re-applying is harmless.
                if self.apply_undo_logged(txn, op).is_err() {
                    still.push(op.clone());
                }
            }
            if still.is_empty() {
                if let Ok(scn) = self.inst_mut().map(|i| i.next_scn()) {
                    let rec = RedoRecord { scn, txn: Some(txn), op: RedoOp::Rollback };
                    // tidy-allow(error-swallow): the rollback marker is an optimization; undo application already succeeded
                    let _ = self.append_record(&rec);
                }
            } else {
                still.reverse();
                self.deferred_undo.push((txn, still));
            }
        }
    }

    fn apply_undo_logged(&mut self, txn: TxnId, op: &UndoOp) -> DbResult<()> {
        match op {
            UndoOp::UndoInsert { obj, rid } => {
                let key = (rid.file, rid.block);
                let before = self.with_block(key, |img| img.row(rid.slot).cloned())?;
                let Some(before) = before else { return Ok(()) };
                let scn = self.inst_mut()?.next_scn();
                let rec = RedoRecord {
                    scn,
                    txn: Some(txn),
                    op: RedoOp::Delete { obj: *obj, rid: *rid, before: before.clone() },
                };
                let addr = self.append_record(&rec)?;
                let now = self.clock.now();
                self.with_block(key, |img| {
                    img.remove(rid.slot, scn);
                })?;
                let inst = self.inst_mut()?;
                inst.cache.mark_dirty(key, addr, now);
                if let Some(indexes) = inst.indexes.get_mut(obj) {
                    for ix in indexes {
                        ix.remove(&before, *rid);
                    }
                }
            }
            UndoOp::UndoUpdate { obj, rid, before } | UndoOp::UndoDelete { obj, rid, before } => {
                let key = (rid.file, rid.block);
                let current = self.with_block(key, |img| img.row(rid.slot).cloned())?;
                let scn = self.inst_mut()?.next_scn();
                let rec = RedoRecord {
                    scn,
                    txn: Some(txn),
                    op: match &current {
                        Some(cur) => RedoOp::Update {
                            obj: *obj,
                            rid: *rid,
                            before: cur.clone(),
                            after: before.clone(),
                        },
                        None => RedoOp::Insert { obj: *obj, rid: *rid, row: before.clone() },
                    },
                };
                let addr = self.append_record(&rec)?;
                let now = self.clock.now();
                let restored = before.clone();
                self.with_block(key, |img| {
                    img.put(rid.slot, restored, scn);
                })?;
                let inst = self.inst_mut()?;
                inst.cache.mark_dirty(key, addr, now);
                if let Some(indexes) = inst.indexes.get_mut(obj) {
                    for ix in indexes {
                        if let Some(cur) = &current {
                            ix.remove(cur, *rid);
                        }
                        let _ = ix.insert(before, *rid);
                    }
                }
            }
        }
        self.clock.advance(self.config.costs.cpu_per_dml);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Bulk load (direct path)
    // ------------------------------------------------------------------

    /// Direct-path load: writes rows without redo logging (like
    /// `SQL*Loader direct`). The caller must checkpoint (or back up)
    /// afterwards to make the data durable — exactly Oracle's rule for
    /// NOLOGGING loads.
    ///
    /// # Errors
    ///
    /// Fails on storage exhaustion or duplicate keys.
    pub fn bulk_load(&mut self, obj: ObjectId, rows: Vec<Row>) -> DbResult<u64> {
        self.poll();
        let mut n = 0u64;
        for row in rows {
            self.check_unique(obj, &row, None)?;
            let (key, slot) = self.find_insert_slot(obj, row.encoded_len())?;
            let rid = RowId { file: key.0, block: key.1, slot };
            let scn = self.inst_mut()?.next_scn();
            let addr = self.inst_ref()?.redo.tail();
            let now = self.clock.now();
            self.with_block(key, |img| {
                img.put(slot, row.clone(), scn);
            })?;
            let inst = self.inst_mut()?;
            inst.cache.mark_dirty(key, addr, now);
            if let Some(indexes) = inst.indexes.get_mut(&obj) {
                for ix in indexes {
                    ix.insert(&row, rid)?;
                }
            }
            n += 1;
            self.clock.advance(self.config.costs.cpu_per_dml / 5);
        }
        Ok(n)
    }

    // ------------------------------------------------------------------
    // Zero-cost inspection (analysis tooling)
    // ------------------------------------------------------------------

    /// Scans a table without charging simulated I/O — for integrity
    /// checkers and lost-transaction audits that must not perturb timing.
    /// Cached (possibly dirty) images take precedence over disk contents.
    ///
    /// # Errors
    ///
    /// Fails if the table is unknown or its storage unreadable.
    pub fn peek_scan(&self, obj: ObjectId) -> DbResult<Vec<(RowId, Row)>> {
        let inst = self.inst.as_ref().ok_or(DbError::InstanceDown)?;
        let table = inst.catalog.table(obj)?;
        let fs = self.fs.lock();
        let mut out = Vec::new();
        for (file, block) in table.segment.blocks() {
            let key = (file, block);
            let img_owned;
            let img: &BlockImage = if let Some(frame) = inst.cache_peek(key) {
                frame
            } else {
                let df = inst
                    .catalog
                    .datafiles
                    .get(&file)
                    .ok_or_else(|| DbError::NotFound(format!("datafile {}", file.0)))?;
                let bytes = fs.peek_block(df.vfs_id, block as u64)?;
                img_owned = BlockImage::decode(bytes)
                    .map_err(|e| peek_decode_failed(&e, &df.path, block as u64))?;
                &img_owned
            };
            for (slot, row) in img.iter() {
                out.push((RowId { file, block, slot }, row.clone()));
            }
        }
        Ok(out)
    }

    /// Reads one row without charging simulated time (analysis only).
    /// Cached images take precedence over disk contents.
    ///
    /// # Errors
    ///
    /// Fails if the table or its storage is unreadable.
    pub fn peek_row(&self, obj: ObjectId, rid: RowId) -> DbResult<Option<Row>> {
        let inst = self.inst.as_ref().ok_or(DbError::InstanceDown)?;
        inst.catalog.table(obj)?;
        let key = (rid.file, rid.block);
        if let Some(img) = inst.cache_peek(key) {
            return Ok(img.row(rid.slot).cloned());
        }
        let df = inst
            .catalog
            .datafiles
            .get(&rid.file)
            .ok_or_else(|| DbError::NotFound(format!("datafile {}", rid.file.0)))?;
        let fs = self.fs.lock();
        let bytes = fs.peek_block(df.vfs_id, rid.block as u64)?;
        let img = BlockImage::decode(bytes)
            .map_err(|e| peek_decode_failed(&e, &df.path, rid.block as u64))?;
        Ok(img.row(rid.slot).cloned())
    }

    /// Creates a batched zero-cost row reader that memoizes decoded block
    /// images, for audits that probe many rows clustered in the same
    /// blocks (each uncached block is decoded once per reader, not once
    /// per probe).
    pub fn peek_reader(&self) -> PeekReader<'_> {
        PeekReader { server: self, decoded: crate::fasthash::FastMap::default() }
    }

    /// Index lookup without charging simulated time (analysis only).
    ///
    /// # Errors
    ///
    /// Fails if the table or index is unknown.
    pub fn peek_lookup(&self, obj: ObjectId, index: usize, key: &[Value]) -> DbResult<Vec<RowId>> {
        let inst = self.inst.as_ref().ok_or(DbError::InstanceDown)?;
        let ix = inst
            .indexes
            .get(&obj)
            .and_then(|v| v.get(index))
            .ok_or_else(|| DbError::NotFound(format!("index {index} of {obj}")))?;
        Ok(ix.lookup(key))
    }

    /// Resolves a table by name (analysis and driver setup).
    ///
    /// # Errors
    ///
    /// Fails if the instance is down or the table is unknown.
    pub fn table_id(&self, name: &str) -> DbResult<ObjectId> {
        let inst = self.inst.as_ref().ok_or(DbError::InstanceDown)?;
        inst.catalog.table_by_name(name)
    }

    /// Every table currently in the dictionary, with its name (analysis
    /// tooling: the differential oracle walks all of them).
    ///
    /// # Errors
    ///
    /// Fails if the instance is down.
    pub fn tables(&self) -> DbResult<Vec<(ObjectId, String)>> {
        let inst = self.inst.as_ref().ok_or(DbError::InstanceDown)?;
        Ok(inst.catalog.tables.iter().map(|(id, t)| (*id, t.name.clone())).collect())
    }

    // ------------------------------------------------------------------
    // Administrative / operator surface
    // ------------------------------------------------------------------

    /// Takes a cold (consistent) backup: checkpoint, then copy every
    /// datafile to the backup disk together with the dictionary snapshot
    /// and redo position needed to roll forward from it.
    ///
    /// Restore time is dominated by the *nominal* database size (the
    /// paper's full-scale database), charged alongside the real bytes.
    ///
    /// # Errors
    ///
    /// Fails if the instance is down or a copy fails.
    pub fn take_cold_backup(&mut self) -> DbResult<()> {
        self.take_cold_backup_inner(true)
    }

    /// Backgrounded cold backup: the copies keep the disks busy (later
    /// I/O queues behind them) but the caller's timeline is not blocked —
    /// the backup is simply *complete* at a future instant. Used after a
    /// failover, where the new primary must serve clients immediately
    /// while the DBA re-protects it.
    ///
    /// # Errors
    ///
    /// Fails if the instance is down or a copy fails.
    pub fn take_cold_backup_in_background(&mut self) -> DbResult<()> {
        self.take_cold_backup_inner(false)
    }

    fn take_cold_backup_inner(&mut self, advance_clock: bool) -> DbResult<()> {
        self.poll();
        // Cold means cold: no client may be mid-transaction while the
        // datafiles are copied.
        self.kill_all_sessions();
        self.checkpoint_now()?;
        let now = self.clock.now();
        let (files, position, scn, snapshot) = {
            let inst = self.inst.as_ref().ok_or(DbError::InstanceDown)?;
            let files: Vec<(FileNo, recobench_vfs::FileId)> =
                inst.catalog.datafiles.iter().map(|(no, d)| (*no, d.vfs_id)).collect();
            (files, inst.redo.tail(), inst.scn, Arc::new(inst.catalog.clone()))
        };
        if files.is_empty() {
            return Err(DbError::BadAdminCommand("nothing to back up".into()));
        }
        let nominal_per_file = self.config.costs.nominal_db_bytes / files.len() as u64;
        let backup_disk = self.layout.backup_disk;
        self.backups_taken += 1;
        let tag = self.backups_taken;
        let mut pieces = std::collections::BTreeMap::new();
        let mut last = now;
        {
            let mut fs = self.fs.lock();
            for (no, vfs_id) in &files {
                let path = format!("/backup/{}_b{}_f{:02}.bak", self.name, tag, no.0);
                let (done, piece) = fs.copy_file(*vfs_id, &path, backup_disk, FileKind::Backup, now)?;
                let src_disk = fs.meta(*vfs_id)?.disk;
                let d1 = fs.charge_io(src_disk, recobench_vfs::IoKind::Read, nominal_per_file, now)?;
                let d2 =
                    fs.charge_io(backup_disk, recobench_vfs::IoKind::Write, nominal_per_file, now)?;
                last = last.max(done).max(d1).max(d2);
                pieces.insert(*no, piece);
            }
        }
        if advance_clock {
            self.clock.advance_to(last);
        }
        let backup = BackupSet {
            taken_at: last,
            position,
            scn,
            catalog: snapshot,
            pieces,
            nominal_bytes_per_file: nominal_per_file,
        };
        self.events.record(last, backup.event());
        self.backup = Some(backup);
        Ok(())
    }

    /// Paths of every archived log currently on disk (fault targeting:
    /// "delete a archive log file").
    pub fn archive_paths(&self) -> Vec<String> {
        let fs = self.fs.lock();
        fs.list(FileKind::Archive)
            .into_iter()
            .filter(|m| !m.deleted)
            .map(|m| m.path)
            .collect()
    }

    /// Forgets the registered backup — the "backups missing to allow
    /// recovery" operator fault. The backup pieces are also deleted at the
    /// OS level, as an operator reclaiming "unused" space would.
    pub fn discard_backup(&mut self) {
        if let Some(b) = self.backup.take() {
            let mut fs = self.fs.lock();
            for piece in b.pieces.values() {
                if let Ok(meta) = fs.meta(*piece) {
                    // tidy-allow(error-swallow): simulates an operator reclaiming space; missing pieces are the faultload
                    let _ = fs.delete_path(&meta.path);
                }
            }
        }
    }

    /// Deletes a file by path at the OS level — the injector's way of
    /// reproducing `rm /u02/tpcc_03.dbf`. The engine only notices when it
    /// next touches the file.
    ///
    /// # Errors
    ///
    /// Fails if no live file has this path.
    pub fn os_delete_file(&mut self, path: &str) -> DbResult<()> {
        self.fs.lock().delete_path(path)?;
        Ok(())
    }

    /// Takes a datafile offline (`ALTER DATABASE DATAFILE ... OFFLINE`).
    /// In ARCHIVELOG mode the file needs media recovery from the current
    /// checkpoint position to come back.
    ///
    /// # Errors
    ///
    /// Fails if the file is unknown or the instance is down.
    pub fn offline_datafile(&mut self, path: &str) -> DbResult<FileNo> {
        self.poll();
        let file_no = self.inst_ref()?.catalog.datafile_by_path(path)?;
        let now = self.clock.now();
        let position = self.control_ref()?.effective_checkpoint(now).position;
        let st = self.control_mut()?.file_state_mut(file_no);
        st.offline = true;
        st.recover_from = Some(position);
        self.clock.advance(self.config.costs.admin_command);
        Ok(file_no)
    }

    /// Takes a tablespace offline (normal): its dirty blocks are
    /// checkpointed first, so it comes back online without recovery.
    ///
    /// # Errors
    ///
    /// Fails if the tablespace is unknown or the instance is down.
    pub fn offline_tablespace(&mut self, name: &str) -> DbResult<TablespaceId> {
        self.poll();
        self.flush_redo()?;
        let ts = self.inst_ref()?.catalog.tablespace_by_name(name)?;
        let done = {
            let mut fs = self.fs.lock();
            let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
            let files: Vec<FileNo> = inst
                .catalog
                .datafiles
                .iter()
                .filter(|(_, d)| d.tablespace == ts)
                .map(|(no, _)| *no)
                .collect();
            let now = self.clock.now();
            let out = checkpoint::write_dirty(&mut fs, &inst.catalog, &mut inst.cache, now, |k, _| {
                files.contains(&k.0)
            });
            self.stats.blocks_written += out.blocks;
            out.complete_at
        };
        self.clock.advance_to(done);
        let control = self.control_mut()?;
        if !control.ts_offline.contains(&ts) {
            control.ts_offline.push(ts);
        }
        self.clock.advance(self.config.costs.admin_command);
        Ok(ts)
    }

    /// Brings a cleanly offlined tablespace back online.
    ///
    /// # Errors
    ///
    /// Fails if the tablespace is unknown.
    pub fn online_tablespace(&mut self, name: &str) -> DbResult<()> {
        self.poll();
        let ts = self.inst_ref()?.catalog.tablespace_by_name(name)?;
        self.control_mut()?.ts_offline.retain(|t| *t != ts);
        // Rollbacks that could not reach this tablespace while it was
        // offline finish now that its blocks are readable again.
        self.drain_deferred_undo();
        self.clock.advance(self.config.costs.admin_command);
        Ok(())
    }

    /// Lists the paths of the datafiles of a tablespace (fault targeting).
    ///
    /// # Errors
    ///
    /// Fails if the tablespace is unknown or the instance is down.
    pub fn datafile_paths(&self, tablespace: &str) -> DbResult<Vec<String>> {
        let inst = self.inst.as_ref().ok_or(DbError::InstanceDown)?;
        let ts = inst.catalog.tablespace_by_name(tablespace)?;
        Ok(inst
            .catalog
            .datafiles
            .values()
            .filter(|d| d.tablespace == ts)
            .map(|d| d.path.clone())
            .collect())
    }
}

impl Instance {
    /// Read-only view of a cached block, if resident (no stats, no LRU
    /// effect) — used by the zero-cost inspection paths.
    pub(crate) fn cache_peek(&self, key: BlockKey) -> Option<&BlockImage> {
        // `contains` + `get` would bump stats; peek goes around them.
        self.cache.peek(key)
    }
}

/// Decode-failure classification for the read-only peek paths (no `&mut`
/// access, so no event is recorded; the typed error still distinguishes a
/// CRC failure from structural garbage).
fn peek_decode_failed(e: &crate::codec::DecodeError, path: &str, block: u64) -> DbError {
    if e.is_checksum_mismatch() {
        DbError::ChecksumMismatch { path: path.to_string(), block }
    } else {
        DbError::Media(VfsError::Corrupt(path.to_string()))
    }
}

/// Batched zero-cost row reader (see [`DbServer::peek_reader`]).
///
/// Holds a shared borrow of the server, so the audited state cannot move
/// underneath it, and a memo of blocks it has already decoded from disk.
pub struct PeekReader<'a> {
    server: &'a DbServer,
    decoded: crate::fasthash::FastMap<BlockKey, BlockImage>,
}

impl PeekReader<'_> {
    /// Reads one row without charging simulated time, like
    /// [`DbServer::peek_row`], but decoding each uncached block at most
    /// once for the lifetime of the reader.
    ///
    /// # Errors
    ///
    /// Fails if the table or its storage is unreadable.
    pub fn row(&mut self, obj: ObjectId, rid: RowId) -> DbResult<Option<Row>> {
        let inst = self.server.inst.as_ref().ok_or(DbError::InstanceDown)?;
        inst.catalog.table(obj)?;
        let key = (rid.file, rid.block);
        // The buffer cache may hold a newer (dirty) image than disk, so it
        // wins over the memo.
        if let Some(img) = inst.cache_peek(key) {
            return Ok(img.row(rid.slot).cloned());
        }
        if let Some(img) = self.decoded.get(&key) {
            return Ok(img.row(rid.slot).cloned());
        }
        let df = inst
            .catalog
            .datafiles
            .get(&rid.file)
            .ok_or_else(|| DbError::NotFound(format!("datafile {}", rid.file.0)))?;
        let bytes = self.server.fs.lock().peek_block(df.vfs_id, rid.block as u64)?;
        let img = BlockImage::decode(bytes)
            .map_err(|e| peek_decode_failed(&e, &df.path, rid.block as u64))?;
        let row = img.row(rid.slot).cloned();
        self.decoded.insert(key, img);
        Ok(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn test_server(config: InstanceConfig) -> DbServer {
        let clock = SimClock::shared();
        let layout = DiskLayout::four_disk();
        let mut srv = DbServer::on_fresh_disks("TEST", clock, layout, config);
        srv.create_database().unwrap();
        srv
    }

    pub(crate) fn small_config() -> InstanceConfig {
        InstanceConfig::builder()
            .redo_file_bytes(64 * 1024)
            .redo_groups(3)
            .checkpoint_timeout_secs(60)
            .archive_mode(true)
            .cache_blocks(64)
            .build()
    }

    fn setup_table(srv: &mut DbServer) -> ObjectId {
        srv.create_user("tpcc").unwrap();
        srv.create_tablespace("TPCC", 2, 256).unwrap();
        srv.create_table(
            "T",
            "tpcc",
            "TPCC",
            vec![IndexDef { name: "PK".into(), cols: vec![0], unique: true, ordered: true }],
        )
        .unwrap()
    }

    fn row(k: u64, v: &str) -> Row {
        Row::new(vec![Value::U64(k), Value::from(v)])
    }

    #[test]
    fn insert_commit_read_back() {
        let mut srv = test_server(small_config());
        let t = setup_table(&mut srv);
        let s = srv.connect().unwrap();
        let rid = srv.insert(s, t, row(1, "hello")).unwrap();
        srv.commit(s).unwrap();
        assert_eq!(srv.get_row(t, rid).unwrap(), row(1, "hello"));
        assert_eq!(srv.lookup(t, 0, &[Value::U64(1)]).unwrap(), vec![rid]);
        assert_eq!(srv.stats().commits, 1);
        assert!(srv.session_txn_id(s).is_none(), "commit closes the open txn");
    }

    #[test]
    fn rollback_restores_prior_state() {
        let mut srv = test_server(small_config());
        let t = setup_table(&mut srv);
        let s = srv.connect().unwrap();
        let rid = srv.insert(s, t, row(1, "a")).unwrap();
        srv.commit(s).unwrap();

        srv.update(s, t, rid, row(1, "changed")).unwrap();
        let rid2 = srv.insert(s, t, row(2, "new")).unwrap();
        srv.delete(s, t, rid).unwrap();
        srv.rollback(s).unwrap();

        assert_eq!(srv.get_row(t, rid).unwrap(), row(1, "a"));
        assert!(matches!(srv.get_row(t, rid2), Err(DbError::NoSuchRow(_))));
        assert!(srv.lookup(t, 0, &[Value::U64(2)]).unwrap().is_empty());
    }

    #[test]
    fn batched_insert_survives_mid_batch_log_switch_crash() {
        // Enough redo to force at least one log switch while the batch is
        // mid-run: the switch checkpoint writes the target block from the
        // cache, and rows staged but not yet applied to the image must not
        // be lost behind the advanced recovery position.
        let mut srv = test_server(small_config());
        let t = setup_table(&mut srv);
        let s = srv.connect().unwrap();
        let vals: Vec<String> =
            (0..120usize).map(|k| "x".repeat(600 + (k % 11) * 37)).collect();
        let rows: Vec<Row> =
            vals.iter().enumerate().map(|(k, v)| row(k as u64, v)).collect();
        let switches_before = srv.stats().log_switches;
        let rids = srv.insert_batch(s, t, rows.clone()).unwrap();
        assert_eq!(rids.len(), rows.len());
        assert!(
            srv.stats().log_switches > switches_before,
            "the batch must straddle a log switch for this test to bite"
        );
        srv.commit(s).unwrap();
        srv.shutdown_abort().unwrap();
        srv.startup().unwrap();
        assert_eq!(
            srv.peek_scan(t).unwrap().len(),
            rows.len(),
            "crash recovery must replay every batched row"
        );
        for (k, r) in rows.iter().enumerate() {
            let found = srv.lookup(t, 0, &[Value::U64(k as u64)]).unwrap();
            assert_eq!(found.len(), 1, "row {k} lookup");
            assert_eq!(&srv.get_row(t, found[0]).unwrap(), r, "row {k} image");
        }
    }

    #[test]
    fn duplicate_key_rejected_without_side_effects() {
        let mut srv = test_server(small_config());
        let t = setup_table(&mut srv);
        let s = srv.connect().unwrap();
        srv.insert(s, t, row(1, "a")).unwrap();
        let err = srv.insert(s, t, row(1, "dup")).unwrap_err();
        assert!(matches!(err, DbError::DuplicateKey { .. }));
        srv.commit(s).unwrap();
        assert_eq!(srv.peek_scan(t).unwrap().len(), 1);
    }

    #[test]
    fn log_switches_and_checkpoints_happen() {
        let mut srv = test_server(small_config());
        let t = setup_table(&mut srv);
        // 64 KiB logs with ~700-byte records: a few hundred inserts switch
        // several times.
        let s = srv.connect().unwrap();
        for i in 0..200 {
            srv.insert(s, t, row(i, "payload-payload-payload")).unwrap();
            srv.commit(s).unwrap();
        }
        let s = srv.stats();
        assert!(s.log_switches >= 2, "expected switches, got {}", s.log_switches);
        assert!(s.full_checkpoints >= s.log_switches);
        assert!(s.archives_created >= s.log_switches, "archive mode copies every filled log");
        assert!(s.redo_bytes > 64 * 1024);
    }

    #[test]
    fn archive_off_reuses_groups_without_archives() {
        let mut cfg = small_config();
        cfg.archive_mode = false;
        let mut srv = test_server(cfg);
        let t = setup_table(&mut srv);
        let s = srv.connect().unwrap();
        for i in 0..200 {
            srv.insert(s, t, row(i, "payload-payload-payload")).unwrap();
            srv.commit(s).unwrap();
        }
        let st = srv.stats();
        assert!(st.log_switches >= 2);
        assert_eq!(st.archives_created, 0);
    }

    #[test]
    fn offline_tablespace_blocks_dml_then_online_restores() {
        let mut srv = test_server(small_config());
        let t = setup_table(&mut srv);
        let s = srv.connect().unwrap();
        let rid = srv.insert(s, t, row(1, "a")).unwrap();
        srv.commit(s).unwrap();

        srv.offline_tablespace("TPCC").unwrap();
        assert!(matches!(srv.get_row(t, rid), Err(DbError::TablespaceOffline(_))));
        assert!(srv.insert(s, t, row(2, "b")).is_err());
        srv.rollback(s).ok();

        srv.online_tablespace("TPCC").unwrap();
        assert_eq!(srv.get_row(t, rid).unwrap(), row(1, "a"));
    }

    #[test]
    fn os_delete_surfaces_as_media_error_on_miss() {
        let mut cfg = small_config();
        cfg.cache_blocks = 2; // tiny cache: the block falls out quickly
        let mut srv = test_server(cfg);
        let t = setup_table(&mut srv);
        let s = srv.connect().unwrap();
        let rid = srv.insert(s, t, row(1, "a")).unwrap();
        srv.commit(s).unwrap();
        let path = {
            let inst = srv.inst.as_ref().unwrap();
            inst.catalog.datafiles[&rid.file].path.clone()
        };
        srv.os_delete_file(&path).unwrap();
        // While the block stays cached the engine is oblivious — exactly
        // like Oracle serving reads from the SGA after an `rm`.
        assert_eq!(srv.get_row(t, rid).unwrap(), row(1, "a"));
        // Once the block leaves the cache, the next touch hits the OS error.
        srv.inst.as_mut().unwrap().cache.invalidate_file(rid.file);
        let err = srv.get_row(t, rid);
        assert!(
            matches!(err, Err(DbError::Media(_))),
            "read of a deleted file must fail once uncached, got {err:?}"
        );
    }

    #[test]
    fn drop_table_makes_object_unknown() {
        let mut srv = test_server(small_config());
        let t = setup_table(&mut srv);
        let s = srv.connect().unwrap();
        srv.insert(s, t, row(1, "a")).unwrap();
        srv.commit(s).unwrap();
        srv.drop_table("T").unwrap();
        assert!(srv.get_row(t, RowId { file: FileNo(1), block: 0, slot: 0 }).is_err());
        assert!(srv.table_id("T").is_err());
    }

    #[test]
    fn drop_tablespace_removes_files() {
        let mut srv = test_server(small_config());
        let _t = setup_table(&mut srv);
        let paths = srv.datafile_paths("TPCC").unwrap();
        assert_eq!(paths.len(), 2);
        srv.drop_tablespace("TPCC").unwrap();
        let fs = srv.fs.lock();
        for p in paths {
            assert!(fs.lookup(&p).is_err(), "datafile {p} should be gone");
        }
    }

    #[test]
    fn clean_shutdown_and_restart_preserves_data() {
        let mut srv = test_server(small_config());
        let t = setup_table(&mut srv);
        let s = srv.connect().unwrap();
        let rid = srv.insert(s, t, row(7, "persist")).unwrap();
        srv.commit(s).unwrap();
        srv.shutdown_normal().unwrap();
        assert!(!srv.is_open());
        srv.startup().unwrap();
        assert_eq!(srv.get_row(t, rid).unwrap(), row(7, "persist"));
        assert_eq!(srv.lookup(t, 0, &[Value::U64(7)]).unwrap(), vec![rid]);
    }

    #[test]
    fn bulk_load_then_checkpoint_is_durable_across_crash() {
        let mut srv = test_server(small_config());
        let t = setup_table(&mut srv);
        let rows: Vec<Row> = (0..50).map(|i| row(i, "loaded")).collect();
        assert_eq!(srv.bulk_load(t, rows).unwrap(), 50);
        srv.checkpoint_now().unwrap();
        srv.shutdown_abort().unwrap();
        srv.startup().unwrap();
        assert_eq!(srv.peek_scan(t).unwrap().len(), 50);
    }

    #[test]
    fn dml_rejected_while_down() {
        let mut srv = test_server(small_config());
        let t = setup_table(&mut srv);
        srv.shutdown_abort().unwrap();
        assert!(matches!(srv.connect(), Err(DbError::InstanceDown)));
        assert!(matches!(srv.get_row(t, RowId { file: FileNo(1), block: 0, slot: 0 }),
            Err(DbError::InstanceDown)));
    }

    #[test]
    fn dml_on_unknown_session_is_rejected() {
        let mut srv = test_server(small_config());
        let t = setup_table(&mut srv);
        let ghost = SessionId(99);
        assert!(matches!(srv.insert(ghost, t, row(1, "x")), Err(DbError::NoSession(_))));
        assert!(matches!(srv.commit(ghost), Err(DbError::NoSession(_))));
        assert!(matches!(srv.rollback(ghost), Err(DbError::NoSession(_))));
    }

    #[test]
    fn commit_and_rollback_without_open_txn_are_noops() {
        let mut srv = test_server(small_config());
        let _t = setup_table(&mut srv);
        let s = srv.connect().unwrap();
        srv.commit(s).unwrap();
        srv.rollback(s).unwrap();
        assert_eq!(srv.stats().commits, 0);
        assert_eq!(srv.stats().rollbacks, 0);
    }

    #[test]
    fn disconnect_rolls_back_the_open_txn() {
        let mut srv = test_server(small_config());
        let t = setup_table(&mut srv);
        let s = srv.connect().unwrap();
        srv.insert(s, t, row(1, "doomed")).unwrap();
        srv.disconnect(s);
        assert!(!srv.session_exists(s));
        assert!(srv.peek_scan(t).unwrap().is_empty(), "uncommitted work is rolled back");
        assert_eq!(srv.stats().rollbacks, 1);
    }

    #[test]
    fn lock_wait_then_grant_after_commit() {
        let mut srv = test_server(small_config());
        let t = setup_table(&mut srv);
        let writer = srv.connect().unwrap();
        let rid = srv.insert(writer, t, row(1, "v1")).unwrap();
        srv.commit(writer).unwrap();

        srv.update(writer, t, rid, row(1, "v2")).unwrap();
        let reader = srv.connect().unwrap();
        let err = srv.update(reader, t, rid, row(1, "v3")).unwrap_err();
        let holder = srv.session_txn_id(writer).unwrap();
        assert_eq!(err, DbError::LockWait { holder });
        // Nothing of the blocked statement took effect.
        assert_eq!(srv.get_row(t, rid).unwrap(), row(1, "v2"));

        srv.commit(writer).unwrap();
        let grants = srv.take_lock_grants();
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].0, reader);
        // The granted session retries and sees the committed image.
        srv.update(reader, t, rid, row(1, "v3")).unwrap();
        srv.commit(reader).unwrap();
        assert_eq!(srv.get_row(t, rid).unwrap(), row(1, "v3"));
        let st = srv.stats();
        assert_eq!(st.lock_waits, 1);
        assert_eq!(st.lock_grants, 1);
        assert_eq!(st.deadlocks, 0);
    }

    #[test]
    fn deadlock_victim_is_the_requester_and_survivor_completes() {
        let mut srv = test_server(small_config());
        let t = setup_table(&mut srv);
        let setup = srv.connect().unwrap();
        let ra = srv.insert(setup, t, row(1, "a")).unwrap();
        let rb = srv.insert(setup, t, row(2, "b")).unwrap();
        srv.commit(setup).unwrap();

        let s1 = srv.connect().unwrap();
        let s2 = srv.connect().unwrap();
        srv.update(s1, t, ra, row(1, "a1")).unwrap();
        srv.update(s2, t, rb, row(2, "b2")).unwrap();
        assert!(matches!(srv.update(s1, t, rb, row(2, "b1")), Err(DbError::LockWait { .. })));
        let err = srv.update(s2, t, ra, row(1, "a2")).unwrap_err();
        let victim = srv.session_txn_id(s2).unwrap();
        assert!(
            matches!(err, DbError::Deadlock { victim: v, .. } if v == victim),
            "the requester that closed the cycle is the victim, got {err:?}"
        );
        // Victim rolls back; its row lock release unblocks s1.
        srv.rollback(s2).unwrap();
        let grants = srv.take_lock_grants();
        assert_eq!(grants.iter().map(|g| g.0).collect::<Vec<_>>(), vec![s1]);
        srv.update(s1, t, rb, row(2, "b1")).unwrap();
        srv.commit(s1).unwrap();
        assert_eq!(srv.get_row(t, ra).unwrap(), row(1, "a1"));
        assert_eq!(srv.get_row(t, rb).unwrap(), row(2, "b1"));
        assert_eq!(srv.stats().deadlocks, 1);
    }
}
