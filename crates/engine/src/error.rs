//! Engine error type.

use std::error::Error;
use std::fmt;

use recobench_vfs::VfsError;

use crate::types::{ObjectId, RowId, TxnId};

/// Result alias for engine operations.
pub type DbResult<T> = Result<T, DbError>;

/// Errors surfaced by the database server.
///
/// The workload driver treats most of these the way a TPC-C client treats
/// an ORA- error: the transaction failed, decide whether to retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// The instance is not open (shut down, crashed, or still mounting).
    InstanceDown,
    /// The instance is already running.
    AlreadyOpen,
    /// A named entity (user, tablespace, table, index, datafile) is unknown.
    NotFound(String),
    /// An entity with this name already exists.
    AlreadyExists(String),
    /// The tablespace holding the addressed data is offline.
    TablespaceOffline(String),
    /// The datafile holding the addressed data is offline.
    DatafileOffline(u32),
    /// The addressed row does not exist.
    NoSuchRow(RowId),
    /// The object was dropped or never existed.
    NoSuchObject(ObjectId),
    /// A lock could not be granted (held by the blocking transaction).
    LockConflict { holder: TxnId },
    /// The transaction is not active (already committed or rolled back).
    TxnNotActive(TxnId),
    /// An underlying storage failure (the usual symptom of an operator
    /// fault: a deleted or corrupted file).
    Media(VfsError),
    /// The database needs recovery before it can be opened.
    RecoveryRequired(String),
    /// The requested recovery is impossible with the available logs and
    /// backups (e.g. archive mode was off).
    Unrecoverable(String),
    /// An administrative command was used in the wrong state.
    BadAdminCommand(String),
    /// A uniqueness constraint was violated on an index insert.
    DuplicateKey { index: String },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::InstanceDown => write!(f, "instance is not open"),
            DbError::AlreadyOpen => write!(f, "instance is already open"),
            DbError::NotFound(what) => write!(f, "not found: {what}"),
            DbError::AlreadyExists(what) => write!(f, "already exists: {what}"),
            DbError::TablespaceOffline(name) => write!(f, "tablespace {name} is offline"),
            DbError::DatafileOffline(n) => write!(f, "datafile {n} is offline"),
            DbError::NoSuchRow(rid) => write!(f, "no such row: {rid}"),
            DbError::NoSuchObject(o) => write!(f, "no such object: {o}"),
            DbError::LockConflict { holder } => write!(f, "row is locked by {holder}"),
            DbError::TxnNotActive(t) => write!(f, "transaction {t} is not active"),
            DbError::Media(e) => write!(f, "media failure: {e}"),
            DbError::RecoveryRequired(what) => write!(f, "recovery required: {what}"),
            DbError::Unrecoverable(why) => write!(f, "unrecoverable: {why}"),
            DbError::BadAdminCommand(why) => write!(f, "invalid administrative command: {why}"),
            DbError::DuplicateKey { index } => write!(f, "duplicate key in index {index}"),
        }
    }
}

impl Error for DbError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DbError::Media(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VfsError> for DbError {
    fn from(e: VfsError) -> Self {
        DbError::Media(e)
    }
}

impl DbError {
    /// Whether this error indicates the whole service is unavailable (the
    /// client should wait for recovery) rather than a single statement
    /// failing.
    pub fn is_service_loss(&self) -> bool {
        matches!(
            self,
            DbError::InstanceDown | DbError::RecoveryRequired(_) | DbError::Unrecoverable(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_lowercase_and_informative() {
        assert_eq!(DbError::InstanceDown.to_string(), "instance is not open");
        assert!(DbError::LockConflict { holder: TxnId(3) }.to_string().contains("txn#3"));
    }

    #[test]
    fn media_error_chains_source() {
        let e = DbError::Media(VfsError::Deleted("/u02/a.dbf".into()));
        assert!(e.source().is_some());
    }

    #[test]
    fn service_loss_classification() {
        assert!(DbError::InstanceDown.is_service_loss());
        assert!(!DbError::NoSuchRow(RowId { file: crate::types::FileNo(1), block: 0, slot: 0 })
            .is_service_loss());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<DbError>();
    }
}
