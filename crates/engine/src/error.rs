//! Engine error type.

use std::error::Error;
use std::fmt;

use recobench_vfs::VfsError;

use crate::types::{FileNo, ObjectId, RowId, SessionId, TxnId};

/// Result alias for engine operations.
pub type DbResult<T> = Result<T, DbError>;

/// A broken internal invariant detected on a recovery path.
///
/// These used to be `unwrap()`/`expect()` panics; the static-analysis
/// wall (`recobench-tidy`, panic-freedom lint) forbids panicking in
/// recovery code, so invariant breaches surface as typed errors instead.
/// Hitting one means the engine itself is buggy — a run that reports it
/// counts as *failed recovery*, never as silent success.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// A block that was just made resident is missing from the buffer
    /// cache (cache bookkeeping diverged from the storage layer).
    BlockNotResident {
        /// Datafile holding the block.
        file: FileNo,
        /// Block number within the file.
        block: u32,
    },
    /// A log sequence location vanished from the control file mid-archive.
    SeqLocationLost(u64),
    /// A backup piece references a datafile the backup catalog does not
    /// know about (backup metadata is self-inconsistent).
    BackupCatalogMismatch {
        /// The datafile missing from the cloned catalog.
        file: FileNo,
    },
    /// A shipped archived log failed to decode on the stand-by: media
    /// corruption of the shipped copy (in transit or at rest). Distinct
    /// from [`RecoveryError::ArchiveGap`] — the bytes arrived but are bad.
    ShippedArchiveCorrupt {
        /// The corrupt log sequence.
        seq: u64,
    },
    /// A stand-by needs a log sequence its upstream has applied but no
    /// longer holds a shippable copy of: a redo gap. The stand-by cannot
    /// make progress without being re-instantiated from a fresh backup.
    ArchiveGap {
        /// The first missing log sequence.
        seq: u64,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::BlockNotResident { file, block } => {
                write!(f, "block {}/{} not resident after ensure_resident", file.0, block)
            }
            RecoveryError::SeqLocationLost(seq) => {
                write!(f, "log seq {seq} location lost from the control file during archiving")
            }
            RecoveryError::BackupCatalogMismatch { file } => {
                write!(f, "backup piece for datafile {} missing from the backup catalog", file.0)
            }
            RecoveryError::ShippedArchiveCorrupt { seq } => {
                write!(f, "shipped log seq {seq} is corrupt on the stand-by archive copy")
            }
            RecoveryError::ArchiveGap { seq } => {
                write!(f, "redo gap: log seq {seq} is no longer available from the upstream")
            }
        }
    }
}

/// Errors surfaced by the database server.
///
/// The workload driver treats most of these the way a TPC-C client treats
/// an ORA- error: the transaction failed, decide whether to retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// The instance is not open (shut down, crashed, or still mounting).
    InstanceDown,
    /// The instance is already running.
    AlreadyOpen,
    /// A named entity (user, tablespace, table, index, datafile) is unknown.
    NotFound(String),
    /// An entity with this name already exists.
    AlreadyExists(String),
    /// The tablespace holding the addressed data is offline.
    TablespaceOffline(String),
    /// The datafile holding the addressed data is offline.
    DatafileOffline(u32),
    /// The addressed row does not exist.
    NoSuchRow(RowId),
    /// The object was dropped or never existed.
    NoSuchObject(ObjectId),
    /// The statement is blocked on a row lock held by another transaction.
    /// The session is queued FIFO behind the holder; re-issuing the same
    /// statement after the grant arrives resumes the transaction.
    LockWait { holder: TxnId },
    /// Granting the requested lock would close a cycle in the waits-for
    /// graph. The requester is the victim (it must roll back); `cycle`
    /// lists the transactions on the cycle starting with the victim.
    Deadlock {
        /// The transaction chosen to abort (always the requester).
        victim: TxnId,
        /// The waits-for cycle, victim first.
        cycle: Vec<TxnId>,
    },
    /// The transaction is not active (already committed or rolled back).
    TxnNotActive(TxnId),
    /// The session is not connected (never existed, disconnected, or
    /// severed by an instance crash or recovery drain).
    NoSession(SessionId),
    /// An underlying storage failure (the usual symptom of an operator
    /// fault: a deleted or corrupted file).
    Media(VfsError),
    /// A stored block's CRC did not cover its payload: silent corruption
    /// (bit-rot or a torn write) caught by the per-block checksum.
    ChecksumMismatch {
        /// Path of the datafile holding the bad block.
        path: String,
        /// Block number within the file.
        block: u64,
    },
    /// A disk ran out of space (`ENOSPC`) under a write.
    DiskFull {
        /// The full disk's index.
        disk: usize,
    },
    /// The database needs recovery before it can be opened.
    RecoveryRequired(String),
    /// The requested recovery is impossible with the available logs and
    /// backups (e.g. archive mode was off).
    Unrecoverable(String),
    /// An administrative command was used in the wrong state.
    BadAdminCommand(String),
    /// A uniqueness constraint was violated on an index insert.
    DuplicateKey { index: String },
    /// An internal invariant broke on a recovery path (see
    /// [`RecoveryError`]); the recovery attempt is void.
    Recovery(RecoveryError),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::InstanceDown => write!(f, "instance is not open"),
            DbError::AlreadyOpen => write!(f, "instance is already open"),
            DbError::NotFound(what) => write!(f, "not found: {what}"),
            DbError::AlreadyExists(what) => write!(f, "already exists: {what}"),
            DbError::TablespaceOffline(name) => write!(f, "tablespace {name} is offline"),
            DbError::DatafileOffline(n) => write!(f, "datafile {n} is offline"),
            DbError::NoSuchRow(rid) => write!(f, "no such row: {rid}"),
            DbError::NoSuchObject(o) => write!(f, "no such object: {o}"),
            DbError::LockWait { holder } => write!(f, "waiting on a row lock held by {holder}"),
            DbError::Deadlock { victim, cycle } => {
                write!(f, "deadlock detected: {victim} aborted (cycle of {})", cycle.len())
            }
            DbError::TxnNotActive(t) => write!(f, "transaction {t} is not active"),
            DbError::NoSession(s) => write!(f, "session {s} is not connected"),
            DbError::Media(e) => write!(f, "media failure: {e}"),
            DbError::ChecksumMismatch { path, block } => {
                write!(f, "checksum mismatch in block {block} of {path}")
            }
            DbError::DiskFull { disk } => write!(f, "disk {disk} full (ENOSPC)"),
            DbError::RecoveryRequired(what) => write!(f, "recovery required: {what}"),
            DbError::Unrecoverable(why) => write!(f, "unrecoverable: {why}"),
            DbError::BadAdminCommand(why) => write!(f, "invalid administrative command: {why}"),
            DbError::DuplicateKey { index } => write!(f, "duplicate key in index {index}"),
            DbError::Recovery(e) => write!(f, "recovery invariant broken: {e}"),
        }
    }
}

impl Error for DbError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DbError::Media(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VfsError> for DbError {
    fn from(e: VfsError) -> Self {
        match e {
            VfsError::DiskFull { disk, .. } => DbError::DiskFull { disk },
            other => DbError::Media(other),
        }
    }
}

impl From<RecoveryError> for DbError {
    fn from(e: RecoveryError) -> Self {
        DbError::Recovery(e)
    }
}

impl DbError {
    /// Whether this error indicates the whole service is unavailable (the
    /// client should wait for recovery) rather than a single statement
    /// failing.
    pub fn is_service_loss(&self) -> bool {
        matches!(
            self,
            DbError::InstanceDown
                | DbError::RecoveryRequired(_)
                | DbError::Unrecoverable(_)
                | DbError::Recovery(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_lowercase_and_informative() {
        assert_eq!(DbError::InstanceDown.to_string(), "instance is not open");
        assert!(DbError::LockWait { holder: TxnId(3) }.to_string().contains("txn#3"));
        let dl = DbError::Deadlock { victim: TxnId(4), cycle: vec![TxnId(4), TxnId(9)] };
        assert!(dl.to_string().contains("txn#4"));
        assert!(dl.to_string().contains("cycle of 2"));
        assert!(DbError::NoSession(SessionId(8)).to_string().contains("sess#8"));
    }

    #[test]
    fn lock_errors_are_not_service_loss() {
        assert!(!DbError::LockWait { holder: TxnId(1) }.is_service_loss());
        assert!(!DbError::Deadlock { victim: TxnId(1), cycle: vec![TxnId(1)] }.is_service_loss());
        assert!(!DbError::NoSession(SessionId(1)).is_service_loss());
    }

    #[test]
    fn media_error_chains_source() {
        let e = DbError::Media(VfsError::Deleted("/u02/a.dbf".into()));
        assert!(e.source().is_some());
    }

    #[test]
    fn storage_fault_errors_are_typed() {
        let e: DbError = VfsError::DiskFull { disk: 2, path: "/u01/a.dbf".into() }.into();
        assert_eq!(e, DbError::DiskFull { disk: 2 });
        assert!(e.to_string().contains("ENOSPC"));
        assert!(!e.is_service_loss(), "ENOSPC fails the statement, not the service");
        let c = DbError::ChecksumMismatch { path: "/u01/a.dbf".into(), block: 7 };
        assert!(c.to_string().contains("block 7"));
        assert!(!c.is_service_loss());
    }

    #[test]
    fn service_loss_classification() {
        assert!(DbError::InstanceDown.is_service_loss());
        assert!(!DbError::NoSuchRow(RowId { file: crate::types::FileNo(1), block: 0, slot: 0 })
            .is_service_loss());
    }

    #[test]
    fn shipping_errors_distinguish_gap_from_corruption() {
        let corrupt: DbError = RecoveryError::ShippedArchiveCorrupt { seq: 7 }.into();
        assert!(corrupt.to_string().contains("seq 7"));
        assert!(corrupt.to_string().contains("corrupt"));
        let gap: DbError = RecoveryError::ArchiveGap { seq: 9 }.into();
        assert!(gap.to_string().contains("redo gap"));
        assert!(gap.to_string().contains("seq 9"));
        assert_ne!(corrupt, gap);
        assert!(corrupt.is_service_loss(), "a broken standby copy voids the recovery attempt");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<DbError>();
    }
}
