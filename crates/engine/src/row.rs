//! Typed rows and order-preserving key encoding.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::codec::{DecodeResult, Reader, Writer};

/// A single column value.
///
/// The engine is schema-light: rows are vectors of [`Value`]s, and index
/// definitions name column positions. This is enough for TPC-C (whose
/// monetary amounts are carried as integer cents to keep keys exact).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Unsigned integer (identifiers, counts).
    U64(u64),
    /// Signed integer (amounts in cents, balances).
    I64(i64),
    /// Text. Reference-counted so that cloning a row's column vector
    /// (copy-on-write in [`Row::set`]) bumps a pointer instead of copying
    /// string heaps — TPC-C stock and customer rows carry ten-plus text
    /// columns that DML before-images would otherwise reallocate.
    Str(std::sync::Arc<str>),
    /// Raw bytes (filler columns).
    Bytes(Vec<u8>),
}

impl Value {
    /// The unsigned integer inside, if this is a `U64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The signed integer inside, if this is an `I64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// The string inside, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(&**s),
            _ => None,
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.into())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v.into())
    }
}

/// A row: an ordered tuple of values.
///
/// Rows are reference-counted: cloning one is a pointer bump, which lets
/// the DML path share a single allocation between the redo record, the
/// page slot and the undo entry instead of deep-copying the values three
/// times. Mutation goes through [`Row::set`], which copies on write only
/// when the row is actually shared.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Row {
    values: std::sync::Arc<Vec<Value>>,
    /// Memoized [`Row::encoded_len`]; a function of `values`, kept in sync
    /// by `new` and `set`, so block space accounting and insert sizing
    /// never re-walk the columns.
    enc_len: u32,
}

impl Row {
    /// Builds a row from anything convertible to values.
    ///
    /// ```
    /// use recobench_engine::row::{Row, Value};
    ///
    /// let r = Row::new(vec![Value::U64(1), Value::from("name")]);
    /// assert_eq!(r.get(1).and_then(Value::as_str), Some("name"));
    /// ```
    pub fn new(values: Vec<Value>) -> Self {
        let enc_len = (2 + values.iter().map(value_enc_len).sum::<usize>()) as u32;
        Row { values: std::sync::Arc::new(values), enc_len }
    }

    /// The value at column `i`, if present.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// All values, in column order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Replaces the value at column `i`, copying the row first if it is
    /// shared.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set(&mut self, i: usize, value: Value) {
        let slot = &mut std::sync::Arc::make_mut(&mut self.values)[i];
        self.enc_len -= value_enc_len(slot) as u32;
        self.enc_len += value_enc_len(&value) as u32;
        *slot = value;
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the row has no columns.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Encodes the row for storage.
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Appends the encoded row to `w` without allocating.
    pub fn encode_into(&self, w: &mut Writer) {
        w.put_u16(self.values.len() as u16);
        for v in self.values.iter() {
            match v {
                Value::Null => w.put_u8(0),
                Value::U64(x) => {
                    w.put_u8(1);
                    w.put_u64(*x);
                }
                Value::I64(x) => {
                    w.put_u8(2);
                    w.put_i64(*x);
                }
                Value::Str(s) => {
                    w.put_u8(3);
                    w.put_str(s);
                }
                Value::Bytes(b) => {
                    w.put_u8(4);
                    w.put_bytes(b);
                }
            }
        }
    }

    /// Size of the encoded form, in bytes (memoized at construction).
    pub fn encoded_len(&self) -> usize {
        self.enc_len as usize
    }

    /// Decodes a row from its stored form.
    ///
    /// # Errors
    ///
    /// Fails on malformed bytes.
    pub fn decode(buf: Bytes) -> DecodeResult<Row> {
        let mut r = Reader::new(buf);
        Self::decode_from(&mut r)
    }

    /// Decodes a row from a reader positioned at a row boundary.
    ///
    /// # Errors
    ///
    /// Fails on malformed bytes.
    pub fn decode_from(r: &mut Reader) -> DecodeResult<Row> {
        let n = r.get_u16("row column count")? as usize;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            let tag = r.get_u8("value tag")?;
            let v = match tag {
                0 => Value::Null,
                1 => Value::U64(r.get_u64("u64 value")?),
                2 => Value::I64(r.get_i64("i64 value")?),
                3 => Value::Str(r.get_str("str value")?.into()),
                4 => Value::Bytes(r.get_bytes("bytes value")?.to_vec()),
                _ => return Err(crate::codec::DecodeError { context: "value tag" }),
            };
            values.push(v);
        }
        Ok(Row::new(values))
    }
}

/// Encodes a tuple of values into an order-preserving byte key.
///
/// Comparing encoded keys with `memcmp` sorts exactly like comparing the
/// value tuples: integers big-endian (signed ones offset-shifted), strings
/// terminated so that prefixes sort first.
///
/// ```
/// use recobench_engine::row::{encode_key, Value};
///
/// let lo = encode_key(&[Value::U64(1), Value::U64(2)]);
/// let hi = encode_key(&[Value::U64(1), Value::U64(10)]);
/// assert!(lo < hi);
/// ```
pub fn encode_key(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 9);
    encode_key_into(values.iter(), &mut out);
    out
}

/// Appends the order-preserving encoding of `values` to `out`.
///
/// `out` is *not* cleared first, so callers can reuse one scratch buffer
/// across probes (clear, encode, look up) without reallocating.
pub fn encode_key_into<'a, I: IntoIterator<Item = &'a Value>>(values: I, out: &mut Vec<u8>) {
    for v in values {
        encode_key_value(v, out);
    }
}

/// Appends the order-preserving encoding of one value to `out`.
pub fn encode_key_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0x00),
        Value::U64(x) => {
            out.push(0x01);
            out.extend_from_slice(&x.to_be_bytes());
        }
        Value::I64(x) => {
            out.push(0x02);
            // Flip the sign bit so two's complement sorts naturally.
            out.extend_from_slice(&((*x as u64) ^ (1u64 << 63)).to_be_bytes());
        }
        Value::Str(s) => {
            out.push(0x03);
            // 0x00 bytes are escaped as 0x00 0xFF; the terminator is
            // 0x00 0x00, which sorts before any continuation.
            escape_bytes(s.as_bytes(), out);
        }
        Value::Bytes(bytes) => {
            out.push(0x04);
            escape_bytes(bytes, out);
        }
    }
}

/// Encoded size of one value (tag byte plus payload).
fn value_enc_len(v: &Value) -> usize {
    1 + match v {
        Value::Null => 0,
        Value::U64(_) | Value::I64(_) => 8,
        Value::Str(s) => 4 + s.len(),
        Value::Bytes(b) => 4 + b.len(),
    }
}

fn escape_bytes(bytes: &[u8], out: &mut Vec<u8>) {
    for &b in bytes {
        if b == 0 {
            out.extend_from_slice(&[0x00, 0xFF]);
        } else {
            out.push(b);
        }
    }
    out.extend_from_slice(&[0x00, 0x00]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> Row {
        Row::new(vec![
            Value::U64(42),
            Value::I64(-1_000),
            Value::from("hello"),
            Value::Bytes(vec![0, 1, 2]),
            Value::Null,
        ])
    }

    #[test]
    fn row_round_trip() {
        let r = sample_row();
        let enc = r.encode();
        assert_eq!(enc.len(), r.encoded_len());
        assert_eq!(Row::decode(enc).unwrap(), r);
    }

    #[test]
    fn decode_rejects_bad_tag() {
        let mut w = Writer::new();
        w.put_u16(1);
        w.put_u8(99);
        assert!(Row::decode(w.into_bytes()).is_err());
    }

    #[test]
    fn key_orders_unsigned() {
        let ks: Vec<_> = [0u64, 1, 255, 256, u64::MAX]
            .iter()
            .map(|&x| encode_key(&[Value::U64(x)]))
            .collect();
        for w in ks.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn key_orders_signed_across_zero() {
        let ks: Vec<_> = [i64::MIN, -5, -1, 0, 1, i64::MAX]
            .iter()
            .map(|&x| encode_key(&[Value::I64(x)]))
            .collect();
        for w in ks.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn key_orders_strings_with_prefixes() {
        let a = encode_key(&[Value::from("BAR")]);
        let b = encode_key(&[Value::from("BARR")]);
        let c = encode_key(&[Value::from("BAS")]);
        assert!(a < b && b < c);
    }

    #[test]
    fn key_handles_embedded_nul() {
        let a = encode_key(&[Value::Bytes(vec![1, 0, 2])]);
        let b = encode_key(&[Value::Bytes(vec![1, 0, 3])]);
        assert!(a < b);
        // A shorter value is not confused with one that continues past the
        // escape.
        let short = encode_key(&[Value::Bytes(vec![1])]);
        assert!(short < a);
    }

    #[test]
    fn composite_key_orders_lexicographically() {
        let a = encode_key(&[Value::U64(1), Value::from("b")]);
        let b = encode_key(&[Value::U64(2), Value::from("a")]);
        assert!(a < b);
    }
}
