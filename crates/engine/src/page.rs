//! Slotted block images.
//!
//! A datafile block holds a set of rows addressed by slot number, plus the
//! SCN of the last change applied to it. The SCN is what makes redo
//! application idempotent: a record is re-applied only if it is newer than
//! the block image it targets.

use bytes::Bytes;

use crate::codec::{DecodeResult, Reader, Writer};
use crate::row::Row;
use crate::types::Scn;

/// Decoded image of one datafile block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockImage {
    /// SCN of the last change applied to this block.
    pub last_scn: Scn,
    /// `(slot, row)` pairs sorted by slot. Blocks hold a few dozen rows,
    /// where a sorted vector beats a tree map on both probes and clones.
    rows: Vec<(u16, Row)>,
    used_bytes: usize,
}

impl BlockImage {
    /// Per-row bookkeeping overhead (slot id + length prefix).
    const ROW_OVERHEAD: usize = 8;
    /// Block header size.
    const HEADER: usize = 16;

    /// An empty block.
    pub fn empty() -> Self {
        BlockImage { last_scn: Scn::ZERO, rows: Vec::new(), used_bytes: Self::HEADER }
    }

    /// Number of rows stored.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Bytes used by the current contents (header + rows).
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Whether a row of `len` encoded bytes fits in a block of
    /// `block_size` bytes.
    pub fn fits(&self, len: usize, block_size: u32) -> bool {
        self.used_bytes + len + Self::ROW_OVERHEAD <= block_size as usize
    }

    /// The row at `slot`, if present.
    pub fn row(&self, slot: u16) -> Option<&Row> {
        match self.rows.binary_search_by_key(&slot, |(s, _)| *s) {
            Ok(i) => Some(&self.rows[i].1),
            Err(_) => None,
        }
    }

    /// Iterates over `(slot, row)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &Row)> {
        self.rows.iter().map(|(s, r)| (*s, r))
    }

    /// The lowest unoccupied slot number.
    pub fn next_free_slot(&self) -> u16 {
        // Freshly filled blocks are dense (slots 0..n with no gaps), which
        // the last entry alone proves — the common insert path is O(1).
        let n = self.rows.len();
        if n == 0 {
            return 0;
        }
        if self.rows[n - 1].0 as usize == n - 1 {
            return n as u16;
        }
        let mut slot = 0u16;
        for (s, _) in &self.rows {
            if *s != slot {
                break;
            }
            slot += 1;
        }
        slot
    }

    /// Inserts or replaces the row at `slot`, stamping the block with
    /// `scn`. Returns the previous row, if any.
    pub fn put(&mut self, slot: u16, row: Row, scn: Scn) -> Option<Row> {
        let add = row.encoded_len() + Self::ROW_OVERHEAD;
        let prev = match self.rows.binary_search_by_key(&slot, |(s, _)| *s) {
            Ok(i) => Some(std::mem::replace(&mut self.rows[i].1, row)),
            Err(i) => {
                self.rows.insert(i, (slot, row));
                None
            }
        };
        if let Some(p) = &prev {
            self.used_bytes -= p.encoded_len() + Self::ROW_OVERHEAD;
        }
        self.used_bytes += add;
        self.last_scn = self.last_scn.max(scn);
        prev
    }

    /// Removes the row at `slot`, stamping the block with `scn`.
    pub fn remove(&mut self, slot: u16, scn: Scn) -> Option<Row> {
        let prev = match self.rows.binary_search_by_key(&slot, |(s, _)| *s) {
            Ok(i) => Some(self.rows.remove(i).1),
            Err(_) => None,
        };
        if let Some(p) = &prev {
            self.used_bytes -= p.encoded_len() + Self::ROW_OVERHEAD;
        }
        self.last_scn = self.last_scn.max(scn);
        prev
    }

    /// Encodes the block for storage.
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Appends the encoded block to `w` without per-row allocations. The
    /// length prefix comes straight from the row's memoized encoded length,
    /// so no back-patch pass touches the buffer twice.
    pub fn encode_into(&self, w: &mut Writer) {
        w.put_u64(self.last_scn.0);
        w.put_u32(self.rows.len() as u32);
        for (slot, row) in &self.rows {
            w.put_u16(*slot);
            w.put_u32(row.encoded_len() as u32);
            row.encode_into(w);
        }
    }

    /// Decodes a stored block image. An all-zero (never written) image
    /// decodes as an empty block.
    ///
    /// # Errors
    ///
    /// Fails on malformed bytes.
    pub fn decode(buf: Bytes) -> DecodeResult<BlockImage> {
        if buf.is_empty() || buf.iter().all(|&b| b == 0) {
            return Ok(BlockImage::empty());
        }
        let mut r = Reader::new(buf);
        let last_scn = Scn(r.get_u64("block scn")?);
        let n = r.get_u32("block row count")?;
        let mut img = BlockImage::empty();
        for _ in 0..n {
            let slot = r.get_u16("slot id")?;
            let row_bytes = r.get_bytes("row image")?;
            let row = Row::decode(row_bytes)?;
            img.put(slot, row, last_scn);
        }
        img.last_scn = last_scn;
        Ok(img)
    }
}

impl Default for BlockImage {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Value;

    fn row(n: u64) -> Row {
        Row::new(vec![Value::U64(n), Value::from("payload")])
    }

    #[test]
    fn put_get_remove() {
        let mut b = BlockImage::empty();
        assert!(b.put(0, row(1), Scn(5)).is_none());
        assert_eq!(b.row(0).unwrap().get(0).unwrap().as_u64(), Some(1));
        assert_eq!(b.last_scn, Scn(5));
        let old = b.remove(0, Scn(6)).unwrap();
        assert_eq!(old, row(1));
        assert_eq!(b.row_count(), 0);
        assert_eq!(b.last_scn, Scn(6));
    }

    #[test]
    fn replace_updates_accounting() {
        let mut b = BlockImage::empty();
        b.put(3, row(1), Scn(1));
        let before = b.used_bytes();
        b.put(3, row(2), Scn(2));
        assert_eq!(b.used_bytes(), before, "same-size replace keeps usage");
        assert_eq!(b.row_count(), 1);
    }

    #[test]
    fn next_free_slot_finds_gap() {
        let mut b = BlockImage::empty();
        b.put(0, row(0), Scn(1));
        b.put(1, row(1), Scn(1));
        b.put(3, row(3), Scn(1));
        assert_eq!(b.next_free_slot(), 2);
        b.put(2, row(2), Scn(1));
        assert_eq!(b.next_free_slot(), 4);
    }

    #[test]
    fn fits_respects_block_size() {
        let b = BlockImage::empty();
        assert!(b.fits(100, 8192));
        assert!(!b.fits(9000, 8192));
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut b = BlockImage::empty();
        b.put(0, row(10), Scn(7));
        b.put(5, row(20), Scn(9));
        let decoded = BlockImage::decode(b.encode()).unwrap();
        assert_eq!(decoded.last_scn, Scn(9));
        assert_eq!(decoded.row(0), b.row(0));
        assert_eq!(decoded.row(5), b.row(5));
        assert_eq!(decoded.row_count(), 2);
    }

    #[test]
    fn zero_image_decodes_empty() {
        let b = BlockImage::decode(Bytes::from(vec![0u8; 8192])).unwrap();
        assert_eq!(b.row_count(), 0);
        assert_eq!(b.last_scn, Scn::ZERO);
    }

    #[test]
    fn scn_never_regresses() {
        let mut b = BlockImage::empty();
        b.put(0, row(1), Scn(10));
        b.put(1, row(2), Scn(4));
        assert_eq!(b.last_scn, Scn(10));
    }
}
