//! Slotted block images.
//!
//! A datafile block holds a set of rows addressed by slot number, plus the
//! SCN of the last change applied to it. The SCN is what makes redo
//! application idempotent: a record is re-applied only if it is newer than
//! the block image it targets.

use bytes::Bytes;

use crate::codec::{crc32, DecodeError, DecodeResult, Reader, Writer};
use crate::row::Row;
use crate::types::Scn;

/// Current on-disk block image format: v2, with a per-block CRC-32.
///
/// The catalog's `block_format` advertises this, but decoding is
/// self-describing — each stored image carries its own format tag — so
/// snapshots written before checksums existed still load.
pub const BLOCK_FORMAT: u8 = 2;

/// First byte of a v2 (checksummed) block image. Legacy images start with
/// the big-endian block SCN, whose leading byte is zero at any attainable
/// SCN, and never-written blocks read back all-zero — so a nonzero magic
/// cleanly separates the formats.
const BLOCK_MAGIC: u8 = 0xB1;

/// Bytes of v2 header in front of the legacy payload: magic, format
/// version, CRC-32 of everything after the header.
const CHECKSUM_HEADER: usize = 6;

/// Decoded image of one datafile block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockImage {
    /// SCN of the last change applied to this block.
    pub last_scn: Scn,
    /// `(slot, row)` pairs sorted by slot. Blocks hold a few dozen rows,
    /// where a sorted vector beats a tree map on both probes and clones.
    rows: Vec<(u16, Row)>,
    used_bytes: usize,
}

impl BlockImage {
    /// Per-row bookkeeping overhead (slot id + length prefix).
    const ROW_OVERHEAD: usize = 8;
    /// Block header size.
    const HEADER: usize = 16;

    /// An empty block.
    pub fn empty() -> Self {
        BlockImage { last_scn: Scn::ZERO, rows: Vec::new(), used_bytes: Self::HEADER }
    }

    /// Number of rows stored.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Bytes used by the current contents (header + rows).
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Whether a row of `len` encoded bytes fits in a block of
    /// `block_size` bytes.
    pub fn fits(&self, len: usize, block_size: u32) -> bool {
        self.used_bytes + len + Self::ROW_OVERHEAD <= block_size as usize
    }

    /// The row at `slot`, if present.
    pub fn row(&self, slot: u16) -> Option<&Row> {
        match self.rows.binary_search_by_key(&slot, |(s, _)| *s) {
            Ok(i) => Some(&self.rows[i].1),
            Err(_) => None,
        }
    }

    /// Iterates over `(slot, row)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &Row)> {
        self.rows.iter().map(|(s, r)| (*s, r))
    }

    /// The lowest unoccupied slot number.
    pub fn next_free_slot(&self) -> u16 {
        // Freshly filled blocks are dense (slots 0..n with no gaps), which
        // the last entry alone proves — the common insert path is O(1).
        let n = self.rows.len();
        if n == 0 {
            return 0;
        }
        if self.rows[n - 1].0 as usize == n - 1 {
            return n as u16;
        }
        let mut slot = 0u16;
        for (s, _) in &self.rows {
            if *s != slot {
                break;
            }
            slot += 1;
        }
        slot
    }

    /// Inserts or replaces the row at `slot`, stamping the block with
    /// `scn`. Returns the previous row, if any.
    pub fn put(&mut self, slot: u16, row: Row, scn: Scn) -> Option<Row> {
        let add = row.encoded_len() + Self::ROW_OVERHEAD;
        let prev = match self.rows.binary_search_by_key(&slot, |(s, _)| *s) {
            Ok(i) => Some(std::mem::replace(&mut self.rows[i].1, row)),
            Err(i) => {
                self.rows.insert(i, (slot, row));
                None
            }
        };
        if let Some(p) = &prev {
            self.used_bytes -= p.encoded_len() + Self::ROW_OVERHEAD;
        }
        self.used_bytes += add;
        self.last_scn = self.last_scn.max(scn);
        prev
    }

    /// Removes the row at `slot`, stamping the block with `scn`.
    pub fn remove(&mut self, slot: u16, scn: Scn) -> Option<Row> {
        let prev = match self.rows.binary_search_by_key(&slot, |(s, _)| *s) {
            Ok(i) => Some(self.rows.remove(i).1),
            Err(_) => None,
        };
        if let Some(p) = &prev {
            self.used_bytes -= p.encoded_len() + Self::ROW_OVERHEAD;
        }
        self.last_scn = self.last_scn.max(scn);
        prev
    }

    /// Encodes the block for storage.
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Appends the encoded block to `w` without per-row allocations. The
    /// row length prefixes come straight from the memoized encoded lengths;
    /// the only back-patch is the CRC-32 over the finished payload, which
    /// makes every stored block self-verifying.
    pub fn encode_into(&self, w: &mut Writer) {
        let header = w.len();
        w.put_u8(BLOCK_MAGIC);
        w.put_u8(BLOCK_FORMAT);
        w.put_u32(0); // CRC back-patched once the payload is encoded
        w.put_u64(self.last_scn.0);
        w.put_u32(self.rows.len() as u32);
        for (slot, row) in &self.rows {
            w.put_u16(*slot);
            w.put_u32(row.encoded_len() as u32);
            row.encode_into(w);
        }
        let crc = crc32(&w.as_slice()[header + CHECKSUM_HEADER..]);
        w.patch_u32(header + 2, crc);
    }

    /// Decodes a stored block image. An all-zero (never written) image
    /// decodes as an empty block; a legacy (pre-checksum) image decodes
    /// without verification; a v2 image must pass its CRC.
    ///
    /// # Errors
    ///
    /// Fails on malformed bytes; fails with a checksum-mismatch error
    /// (see [`DecodeError::is_checksum_mismatch`]) when a v2 image's CRC
    /// does not cover its payload — bit-rot or a torn write.
    pub fn decode(buf: Bytes) -> DecodeResult<BlockImage> {
        if buf.is_empty() || buf.iter().all(|&b| b == 0) {
            return Ok(BlockImage::empty());
        }
        if buf[0] == BLOCK_MAGIC {
            if buf.len() < CHECKSUM_HEADER {
                return Err(DecodeError { context: "block checksum header" });
            }
            if buf[1] != BLOCK_FORMAT {
                return Err(DecodeError { context: "block format version" });
            }
            let stored = u32::from_be_bytes([buf[2], buf[3], buf[4], buf[5]]);
            if crc32(&buf[CHECKSUM_HEADER..]) != stored {
                return Err(DecodeError::checksum_mismatch());
            }
            return Self::decode_body(buf.slice(CHECKSUM_HEADER..buf.len()));
        }
        // Legacy image from before checksums existed: no header to verify.
        Self::decode_body(buf)
    }

    fn decode_body(buf: Bytes) -> DecodeResult<BlockImage> {
        let mut r = Reader::new(buf);
        let last_scn = Scn(r.get_u64("block scn")?);
        let n = r.get_u32("block row count")?;
        let mut img = BlockImage::empty();
        for _ in 0..n {
            let slot = r.get_u16("slot id")?;
            let row_bytes = r.get_bytes("row image")?;
            let row = Row::decode(row_bytes)?;
            img.put(slot, row, last_scn);
        }
        img.last_scn = last_scn;
        Ok(img)
    }
}

impl Default for BlockImage {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Value;

    fn row(n: u64) -> Row {
        Row::new(vec![Value::U64(n), Value::from("payload")])
    }

    #[test]
    fn put_get_remove() {
        let mut b = BlockImage::empty();
        assert!(b.put(0, row(1), Scn(5)).is_none());
        assert_eq!(b.row(0).unwrap().get(0).unwrap().as_u64(), Some(1));
        assert_eq!(b.last_scn, Scn(5));
        let old = b.remove(0, Scn(6)).unwrap();
        assert_eq!(old, row(1));
        assert_eq!(b.row_count(), 0);
        assert_eq!(b.last_scn, Scn(6));
    }

    #[test]
    fn replace_updates_accounting() {
        let mut b = BlockImage::empty();
        b.put(3, row(1), Scn(1));
        let before = b.used_bytes();
        b.put(3, row(2), Scn(2));
        assert_eq!(b.used_bytes(), before, "same-size replace keeps usage");
        assert_eq!(b.row_count(), 1);
    }

    #[test]
    fn next_free_slot_finds_gap() {
        let mut b = BlockImage::empty();
        b.put(0, row(0), Scn(1));
        b.put(1, row(1), Scn(1));
        b.put(3, row(3), Scn(1));
        assert_eq!(b.next_free_slot(), 2);
        b.put(2, row(2), Scn(1));
        assert_eq!(b.next_free_slot(), 4);
    }

    #[test]
    fn fits_respects_block_size() {
        let b = BlockImage::empty();
        assert!(b.fits(100, 8192));
        assert!(!b.fits(9000, 8192));
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut b = BlockImage::empty();
        b.put(0, row(10), Scn(7));
        b.put(5, row(20), Scn(9));
        let decoded = BlockImage::decode(b.encode()).unwrap();
        assert_eq!(decoded.last_scn, Scn(9));
        assert_eq!(decoded.row(0), b.row(0));
        assert_eq!(decoded.row(5), b.row(5));
        assert_eq!(decoded.row_count(), 2);
    }

    #[test]
    fn zero_image_decodes_empty() {
        let b = BlockImage::decode(Bytes::from(vec![0u8; 8192])).unwrap();
        assert_eq!(b.row_count(), 0);
        assert_eq!(b.last_scn, Scn::ZERO);
    }

    #[test]
    fn scn_never_regresses() {
        let mut b = BlockImage::empty();
        b.put(0, row(1), Scn(10));
        b.put(1, row(2), Scn(4));
        assert_eq!(b.last_scn, Scn(10));
    }

    #[test]
    fn checksum_catches_a_single_flipped_bit() {
        let mut b = BlockImage::empty();
        b.put(0, row(10), Scn(7));
        let encoded = b.encode();
        assert_eq!(encoded[0], super::BLOCK_MAGIC);
        // Flip one payload bit anywhere past the header.
        for at in super::CHECKSUM_HEADER..encoded.len() {
            let mut rotted = encoded.to_vec();
            rotted[at] ^= 0b0100;
            let err = BlockImage::decode(Bytes::from(rotted)).unwrap_err();
            assert!(err.is_checksum_mismatch(), "bit flip at byte {at} must fail the CRC");
        }
        // A flipped header CRC bit also fails verification.
        let mut rotted = encoded.to_vec();
        rotted[3] ^= 1;
        assert!(BlockImage::decode(Bytes::from(rotted)).unwrap_err().is_checksum_mismatch());
    }

    #[test]
    fn legacy_unchecksummed_images_still_decode() {
        // A v1 image: SCN + row count + rows, no magic/CRC header — what a
        // snapshot from before checksums existed holds.
        let mut b = BlockImage::empty();
        b.put(2, row(42), Scn(9));
        let mut w = Writer::new();
        w.put_u64(b.last_scn.0);
        w.put_u32(1);
        w.put_u16(2);
        w.put_u32(row(42).encoded_len() as u32);
        row(42).encode_into(&mut w);
        let legacy = BlockImage::decode(w.into_bytes()).unwrap();
        assert_eq!(legacy.last_scn, Scn(9));
        assert_eq!(legacy.row(2), b.row(2));
    }

    #[test]
    fn torn_prefix_of_an_image_fails_to_decode() {
        let mut b = BlockImage::empty();
        b.put(0, row(1), Scn(3));
        b.put(1, row(2), Scn(3));
        let encoded = b.encode();
        let torn = encoded.slice(0..encoded.len() / 2);
        assert!(BlockImage::decode(torn).unwrap_err().is_checksum_mismatch());
    }
}
