//! A fast, fixed-seed hasher for the engine's internal maps.
//!
//! The standard library's default hasher (SipHash behind a per-process
//! random seed) is built to resist hash-flooding from untrusted keys.
//! Every map in the engine is keyed by internal identifiers — block
//! addresses, object ids, transaction ids — so that defence buys nothing
//! here, while its cost lands on the hottest path in the simulator (the
//! buffer-cache probe under every block access). This multiply-rotate
//! hasher (the Fx/rustc scheme) probes several times faster, and its
//! fixed seed also removes the one source of cross-process iteration
//! nondeterminism the engine had.
//!
//! Not for untrusted input; keep external-facing maps on the default
//! hasher.

use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` using [`FastHasher`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

/// Creates an empty [`FastMap`] with at least `capacity` slots.
pub fn map_with_capacity<K, V>(capacity: usize) -> FastMap<K, V> {
    FastMap::with_capacity_and_hasher(capacity, FastBuildHasher::default())
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher over 64-bit lanes.
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut it = bytes.chunks_exact(8);
        for chunk in &mut it {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = it.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FastHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_of(&(7u32, 42u32)), hash_of(&(7u32, 42u32)));
        assert_eq!(hash_of(&"order_line"), hash_of(&"order_line"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let a = hash_of(&(1u32, 0u32));
        let b = hash_of(&(0u32, 1u32));
        let c = hash_of(&(1u32, 1u32));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn map_behaves_like_hashmap() {
        let mut m: FastMap<(u32, u32), u32> = map_with_capacity(4);
        for i in 0..100 {
            m.insert((i, i * 2), i);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(7, 14)), Some(&7));
        assert_eq!(m.remove(&(7, 14)), Some(7));
        assert_eq!(m.get(&(7, 14)), None);
    }
}
