//! Instance configuration: the paper's tuning knobs plus the calibrated
//! cost model of the simulated platform.

use recobench_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Configuration of a database instance.
///
/// The first four fields are exactly the knobs the paper's Table 3 varies
/// (redo log file size, number of redo groups, checkpoint timeout, archive
/// mode); the rest size the instance and the simulated platform.
///
/// ```
/// use recobench_engine::InstanceConfig;
///
/// let cfg = InstanceConfig::builder()
///     .redo_file_mb(40)
///     .redo_groups(3)
///     .checkpoint_timeout_secs(600)
///     .archive_mode(true)
///     .build();
/// assert_eq!(cfg.redo_file_bytes, 40 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceConfig {
    /// Size of each online redo log file, in bytes.
    pub redo_file_bytes: u64,
    /// Number of online redo log groups (minimum two).
    pub redo_groups: u32,
    /// `log_checkpoint_timeout`: the incremental checkpoint position may
    /// not lag the tail of the log by more than this much time.
    pub checkpoint_timeout: SimDuration,
    /// Whether filled online logs are archived (ARCHIVELOG mode).
    pub archive_mode: bool,
    /// Buffer cache capacity, in blocks.
    pub cache_blocks: usize,
    /// Database block size in bytes.
    pub block_size: u32,
    /// How often the database writer evaluates the incremental checkpoint
    /// target.
    pub dbwr_tick: SimDuration,
    /// Calibrated platform costs.
    pub costs: CostModel,
}

impl InstanceConfig {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> InstanceConfigBuilder {
        InstanceConfigBuilder { cfg: InstanceConfig::default() }
    }
}

impl Default for InstanceConfig {
    fn default() -> Self {
        InstanceConfig {
            redo_file_bytes: 40 * 1024 * 1024,
            redo_groups: 3,
            checkpoint_timeout: SimDuration::from_secs(600),
            archive_mode: true,
            cache_blocks: 384,
            block_size: 8192,
            dbwr_tick: SimDuration::from_secs(5),
            costs: CostModel::default(),
        }
    }
}

/// Builder for [`InstanceConfig`].
#[derive(Debug, Clone)]
pub struct InstanceConfigBuilder {
    cfg: InstanceConfig,
}

impl InstanceConfigBuilder {
    /// Sets the online redo log file size in megabytes.
    pub fn redo_file_mb(mut self, mb: u64) -> Self {
        self.cfg.redo_file_bytes = mb * 1024 * 1024;
        self
    }

    /// Sets the online redo log file size in bytes.
    pub fn redo_file_bytes(mut self, bytes: u64) -> Self {
        self.cfg.redo_file_bytes = bytes;
        self
    }

    /// Sets the number of online redo log groups.
    ///
    /// # Panics
    ///
    /// Panics if `groups < 2` (the engine, like Oracle, requires two).
    pub fn redo_groups(mut self, groups: u32) -> Self {
        assert!(groups >= 2, "at least two redo log groups are required");
        self.cfg.redo_groups = groups;
        self
    }

    /// Sets `log_checkpoint_timeout` in seconds.
    pub fn checkpoint_timeout_secs(mut self, secs: u64) -> Self {
        self.cfg.checkpoint_timeout = SimDuration::from_secs(secs);
        self
    }

    /// Enables or disables ARCHIVELOG mode.
    pub fn archive_mode(mut self, on: bool) -> Self {
        self.cfg.archive_mode = on;
        self
    }

    /// Sets the buffer cache capacity in blocks.
    pub fn cache_blocks(mut self, blocks: usize) -> Self {
        self.cfg.cache_blocks = blocks;
        self
    }

    /// Overrides the platform cost model.
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.cfg.costs = costs;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> InstanceConfig {
        self.cfg
    }
}

/// Calibrated costs of the simulated platform (a year-2000 Pentium III
/// class server, per DESIGN.md §6). These are *platform* constants — the
/// quantities the paper varies live in [`InstanceConfig`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// CPU time to execute one DML row operation.
    pub cpu_per_dml: SimDuration,
    /// CPU time to execute one row read (excluding I/O).
    pub cpu_per_read: SimDuration,
    /// CPU time of transaction begin/commit bookkeeping.
    pub cpu_commit: SimDuration,
    /// Extra bytes charged per redo record beyond its logical encoding,
    /// modelling Oracle's block-level change vectors. Calibrated so the
    /// full-throughput redo generation rate is ~0.45 MB/s, which is what
    /// the paper's Table 3 "#CKPT per experiment" column implies.
    pub redo_overhead_bytes: u64,
    /// CPU time to re-apply one redo record during recovery.
    pub cpu_apply_record: SimDuration,
    /// CPU time to scan past one non-matching redo record during filtered
    /// (single-datafile) recovery.
    pub cpu_skip_record: SimDuration,
    /// Fixed per-archive-file processing overhead during media recovery
    /// (open, header validation, sequence switch).
    pub archive_file_overhead: SimDuration,
    /// Fixed instance startup cost (process creation, SGA allocation).
    pub instance_startup: SimDuration,
    /// Cost of mounting and opening the database (control file reads,
    /// datafile header checks).
    pub mount_open: SimDuration,
    /// Cost of an administrative command round-trip (server manager).
    pub admin_command: SimDuration,
    /// Nominal size of the database for backup/restore sizing. The scaled
    /// TPC-C rows occupy far less, but restore time must reflect the
    /// paper's full-size database.
    pub nominal_db_bytes: u64,
    /// Extra latency added to every archive shipped to a stand-by server
    /// (network copy).
    pub standby_ship_latency: SimDuration,
    /// Fixed part of stand-by activation (role switch, client failover).
    pub standby_activation: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cpu_per_dml: SimDuration::from_micros(100),
            cpu_per_read: SimDuration::from_micros(50),
            cpu_commit: SimDuration::from_micros(300),
            redo_overhead_bytes: 640,
            cpu_apply_record: SimDuration::from_micros(350),
            cpu_skip_record: SimDuration::from_micros(45),
            archive_file_overhead: SimDuration::from_millis(1_000),
            instance_startup: SimDuration::from_secs(11),
            mount_open: SimDuration::from_secs(2),
            admin_command: SimDuration::from_millis(700),
            nominal_db_bytes: 4_500 * 1024 * 1024,
            standby_ship_latency: SimDuration::from_millis(500),
            standby_activation: SimDuration::from_secs(18),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_paper_knobs() {
        let cfg = InstanceConfig::builder()
            .redo_file_mb(1)
            .redo_groups(6)
            .checkpoint_timeout_secs(60)
            .archive_mode(false)
            .build();
        assert_eq!(cfg.redo_file_bytes, 1024 * 1024);
        assert_eq!(cfg.redo_groups, 6);
        assert_eq!(cfg.checkpoint_timeout, SimDuration::from_secs(60));
        assert!(!cfg.archive_mode);
    }

    #[test]
    #[should_panic(expected = "two redo log groups")]
    fn builder_rejects_single_group() {
        let _ = InstanceConfig::builder().redo_groups(1);
    }

    #[test]
    fn default_is_a_valid_table3_config() {
        // The default is F40G3T10 — one of the paper's configurations.
        let cfg = InstanceConfig::default();
        assert_eq!(cfg.redo_file_bytes, 40 * 1024 * 1024);
        assert_eq!(cfg.redo_groups, 3);
        assert_eq!(cfg.checkpoint_timeout, SimDuration::from_secs(600));
    }
}
