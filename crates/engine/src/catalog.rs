//! The data dictionary: users, tablespaces, datafiles, tables, indexes and
//! segment extent maps.
//!
//! Catalog mutations are expressed as [`CatalogChange`] values. During
//! normal operation a change is applied to the live catalog *and* written
//! to the redo stream; during recovery the same changes are re-applied from
//! the log. Every change is idempotent, so replaying records that are
//! already reflected in a checkpoint snapshot is harmless.

use std::collections::BTreeMap;

use recobench_vfs::FileId;
use serde::{Deserialize, Serialize};

use crate::codec::{DecodeError, DecodeResult, Reader, Writer};
use crate::error::{DbError, DbResult};
use crate::types::{FileNo, ObjectId, TablespaceId, UserId};

/// A database user (schema owner).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserDef {
    /// Unique user name.
    pub name: String,
}

/// A tablespace: a named container of datafiles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TablespaceDef {
    /// Unique tablespace name.
    pub name: String,
    /// Datafiles composing the tablespace, in creation order.
    pub files: Vec<FileNo>,
}

/// A datafile registered with the database.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatafileDef {
    /// Path of the file in the simulated filesystem.
    pub path: String,
    /// Handle of the file in the simulated filesystem.
    pub vfs_id: FileId,
    /// Owning tablespace.
    pub tablespace: TablespaceId,
    /// Capacity in blocks.
    pub blocks: u64,
}

/// A secondary or primary index over column positions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexDef {
    /// Index name, unique within the table.
    pub name: String,
    /// Column positions forming the key, in significance order.
    pub cols: Vec<usize>,
    /// Whether key values must be unique.
    pub unique: bool,
    /// Whether the index keeps its keys in sorted order and serves
    /// range/prefix scans. Point-only indexes (`false`) back onto a hash
    /// map, which probes several times faster than a tree descent.
    pub ordered: bool,
}

/// A contiguous run of blocks allocated to a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Extent {
    /// Datafile holding the extent.
    pub file: FileNo,
    /// First block of the run.
    pub start: u32,
    /// Number of blocks.
    pub len: u32,
}

/// The storage map of a table: its allocated extents.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Segment {
    /// Allocated extents, in allocation order.
    pub extents: Vec<Extent>,
}

impl Segment {
    /// Iterates over every `(file, block)` the segment owns, in order.
    pub fn blocks(&self) -> impl Iterator<Item = (FileNo, u32)> + '_ {
        self.extents.iter().flat_map(|e| (e.start..e.start + e.len).map(move |b| (e.file, b)))
    }

    /// Total allocated blocks.
    pub fn block_count(&self) -> u64 {
        self.extents.iter().map(|e| e.len as u64).sum()
    }
}

/// A table definition plus its storage map.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableDef {
    /// Unique table name.
    pub name: String,
    /// Owning user.
    pub owner: UserId,
    /// Tablespace the table's segment allocates from.
    pub tablespace: TablespaceId,
    /// Indexes on the table. Index 0 is conventionally the primary key.
    pub indexes: Vec<IndexDef>,
    /// Allocated storage.
    pub segment: Segment,
}

/// The data dictionary.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    /// Registered users.
    pub users: BTreeMap<UserId, UserDef>,
    /// Registered tablespaces.
    pub tablespaces: BTreeMap<TablespaceId, TablespaceDef>,
    /// Registered datafiles.
    pub datafiles: BTreeMap<FileNo, DatafileDef>,
    /// Registered tables.
    pub tables: BTreeMap<ObjectId, TableDef>,
    /// Per-datafile allocation high-water mark (next free block).
    pub file_high_water: BTreeMap<FileNo, u32>,
    next_user: u32,
    next_tablespace: u32,
    next_object: u32,
    next_file: u32,
}

impl Catalog {
    /// An empty dictionary.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Allocates the next user id.
    pub fn next_user_id(&mut self) -> UserId {
        self.next_user += 1;
        UserId(self.next_user)
    }

    /// Allocates the next tablespace id.
    pub fn next_tablespace_id(&mut self) -> TablespaceId {
        self.next_tablespace += 1;
        TablespaceId(self.next_tablespace)
    }

    /// Allocates the next object id.
    pub fn next_object_id(&mut self) -> ObjectId {
        self.next_object += 1;
        ObjectId(self.next_object)
    }

    /// Allocates the next datafile number.
    pub fn next_file_no(&mut self) -> FileNo {
        self.next_file += 1;
        FileNo(self.next_file)
    }

    /// Finds a user by name.
    ///
    /// # Errors
    ///
    /// Fails if no user has that name.
    pub fn user_by_name(&self, name: &str) -> DbResult<UserId> {
        self.users
            .iter()
            .find(|(_, u)| u.name == name)
            .map(|(id, _)| *id)
            .ok_or_else(|| DbError::NotFound(format!("user {name}")))
    }

    /// Finds a tablespace by name.
    ///
    /// # Errors
    ///
    /// Fails if no tablespace has that name.
    pub fn tablespace_by_name(&self, name: &str) -> DbResult<TablespaceId> {
        self.tablespaces
            .iter()
            .find(|(_, t)| t.name == name)
            .map(|(id, _)| *id)
            .ok_or_else(|| DbError::NotFound(format!("tablespace {name}")))
    }

    /// Finds a table by name.
    ///
    /// # Errors
    ///
    /// Fails if no table has that name.
    pub fn table_by_name(&self, name: &str) -> DbResult<ObjectId> {
        self.tables
            .iter()
            .find(|(_, t)| t.name == name)
            .map(|(id, _)| *id)
            .ok_or_else(|| DbError::NotFound(format!("table {name}")))
    }

    /// The table definition for `obj`.
    ///
    /// # Errors
    ///
    /// Fails if the object does not exist (e.g. it was dropped).
    pub fn table(&self, obj: ObjectId) -> DbResult<&TableDef> {
        self.tables.get(&obj).ok_or(DbError::NoSuchObject(obj))
    }

    /// Finds a datafile by path.
    ///
    /// # Errors
    ///
    /// Fails if no datafile has that path.
    pub fn datafile_by_path(&self, path: &str) -> DbResult<FileNo> {
        self.datafiles
            .iter()
            .find(|(_, d)| d.path == path)
            .map(|(no, _)| *no)
            .ok_or_else(|| DbError::NotFound(format!("datafile {path}")))
    }

    /// Applies a change. Idempotent: re-applying a change that is already
    /// reflected is a no-op.
    pub fn apply(&mut self, change: &CatalogChange) {
        match change {
            CatalogChange::CreateUser { id, name } => {
                self.users.entry(*id).or_insert_with(|| UserDef { name: name.clone() });
                self.next_user = self.next_user.max(id.0);
            }
            CatalogChange::DropUser { id } => {
                self.users.remove(id);
            }
            CatalogChange::CreateTablespace { id, name } => {
                self.tablespaces
                    .entry(*id)
                    .or_insert_with(|| TablespaceDef { name: name.clone(), files: Vec::new() });
                self.next_tablespace = self.next_tablespace.max(id.0);
            }
            CatalogChange::AddDatafile { file_no, def } => {
                if !self.datafiles.contains_key(file_no) {
                    self.datafiles.insert(*file_no, def.clone());
                    if let Some(ts) = self.tablespaces.get_mut(&def.tablespace) {
                        if !ts.files.contains(file_no) {
                            ts.files.push(*file_no);
                        }
                    }
                    self.file_high_water.entry(*file_no).or_insert(0);
                }
                self.next_file = self.next_file.max(file_no.0);
            }
            CatalogChange::DropTablespace { id } => {
                if let Some(ts) = self.tablespaces.remove(id) {
                    for f in &ts.files {
                        self.datafiles.remove(f);
                        self.file_high_water.remove(f);
                    }
                }
                self.tables.retain(|_, t| t.tablespace != *id);
            }
            CatalogChange::CreateTable { id, name, owner, tablespace, indexes } => {
                self.tables.entry(*id).or_insert_with(|| TableDef {
                    name: name.clone(),
                    owner: *owner,
                    tablespace: *tablespace,
                    indexes: indexes.clone(),
                    segment: Segment::default(),
                });
                self.next_object = self.next_object.max(id.0);
            }
            CatalogChange::DropTable { id } => {
                self.tables.remove(id);
            }
            CatalogChange::AllocExtent { table, extent } => {
                if let Some(t) = self.tables.get_mut(table) {
                    if !t.segment.extents.contains(extent) {
                        t.segment.extents.push(*extent);
                    }
                }
                let hw = self.file_high_water.entry(extent.file).or_insert(0);
                *hw = (*hw).max(extent.start + extent.len);
            }
        }
    }
}

/// A logical, idempotent mutation of the data dictionary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CatalogChange {
    /// Registers a user.
    CreateUser {
        /// Assigned id.
        id: UserId,
        /// Unique name.
        name: String,
    },
    /// Removes a user.
    DropUser {
        /// Target user.
        id: UserId,
    },
    /// Registers a tablespace.
    CreateTablespace {
        /// Assigned id.
        id: TablespaceId,
        /// Unique name.
        name: String,
    },
    /// Adds a datafile to a tablespace.
    AddDatafile {
        /// Assigned datafile number.
        file_no: FileNo,
        /// File details.
        def: DatafileDef,
    },
    /// Drops a tablespace including its contents and datafiles.
    DropTablespace {
        /// Target tablespace.
        id: TablespaceId,
    },
    /// Registers a table.
    CreateTable {
        /// Assigned id.
        id: ObjectId,
        /// Unique name.
        name: String,
        /// Owner.
        owner: UserId,
        /// Tablespace for the table's segment.
        tablespace: TablespaceId,
        /// Indexes to maintain.
        indexes: Vec<IndexDef>,
    },
    /// Drops a table.
    DropTable {
        /// Target table.
        id: ObjectId,
    },
    /// Extends a table's segment.
    AllocExtent {
        /// Target table.
        table: ObjectId,
        /// New extent.
        extent: Extent,
    },
}

impl CatalogChange {
    /// Encodes the change into `w` for the redo stream.
    pub fn encode(&self, w: &mut Writer) {
        match self {
            CatalogChange::CreateUser { id, name } => {
                w.put_u8(1);
                w.put_u32(id.0);
                w.put_str(name);
            }
            CatalogChange::DropUser { id } => {
                w.put_u8(2);
                w.put_u32(id.0);
            }
            CatalogChange::CreateTablespace { id, name } => {
                w.put_u8(3);
                w.put_u32(id.0);
                w.put_str(name);
            }
            CatalogChange::AddDatafile { file_no, def } => {
                w.put_u8(4);
                w.put_u32(file_no.0);
                w.put_str(&def.path);
                w.put_u64(def.vfs_id.0);
                w.put_u32(def.tablespace.0);
                w.put_u64(def.blocks);
            }
            CatalogChange::DropTablespace { id } => {
                w.put_u8(5);
                w.put_u32(id.0);
            }
            CatalogChange::CreateTable { id, name, owner, tablespace, indexes } => {
                w.put_u8(6);
                w.put_u32(id.0);
                w.put_str(name);
                w.put_u32(owner.0);
                w.put_u32(tablespace.0);
                w.put_u16(indexes.len() as u16);
                for ix in indexes {
                    w.put_str(&ix.name);
                    w.put_u8(u8::from(ix.unique));
                    w.put_u8(u8::from(ix.ordered));
                    w.put_u16(ix.cols.len() as u16);
                    for c in &ix.cols {
                        w.put_u16(*c as u16);
                    }
                }
            }
            CatalogChange::DropTable { id } => {
                w.put_u8(7);
                w.put_u32(id.0);
            }
            CatalogChange::AllocExtent { table, extent } => {
                w.put_u8(8);
                w.put_u32(table.0);
                w.put_u32(extent.file.0);
                w.put_u32(extent.start);
                w.put_u32(extent.len);
            }
        }
    }

    /// Decodes a change from the redo stream.
    ///
    /// # Errors
    ///
    /// Fails on malformed bytes.
    pub fn decode(r: &mut Reader) -> DecodeResult<CatalogChange> {
        let tag = r.get_u8("catalog change tag")?;
        Ok(match tag {
            1 => CatalogChange::CreateUser {
                id: UserId(r.get_u32("user id")?),
                name: r.get_str("user name")?,
            },
            2 => CatalogChange::DropUser { id: UserId(r.get_u32("user id")?) },
            3 => CatalogChange::CreateTablespace {
                id: TablespaceId(r.get_u32("ts id")?),
                name: r.get_str("ts name")?,
            },
            4 => CatalogChange::AddDatafile {
                file_no: FileNo(r.get_u32("file no")?),
                def: DatafileDef {
                    path: r.get_str("file path")?,
                    vfs_id: FileId(r.get_u64("vfs id")?),
                    tablespace: TablespaceId(r.get_u32("file ts")?),
                    blocks: r.get_u64("file blocks")?,
                },
            },
            5 => CatalogChange::DropTablespace { id: TablespaceId(r.get_u32("ts id")?) },
            6 => {
                let id = ObjectId(r.get_u32("table id")?);
                let name = r.get_str("table name")?;
                let owner = UserId(r.get_u32("owner")?);
                let tablespace = TablespaceId(r.get_u32("table ts")?);
                let nix = r.get_u16("index count")? as usize;
                let mut indexes = Vec::with_capacity(nix);
                for _ in 0..nix {
                    let name = r.get_str("index name")?;
                    let unique = r.get_u8("index unique")? != 0;
                    let ordered = r.get_u8("index ordered")? != 0;
                    let ncols = r.get_u16("index cols")? as usize;
                    let mut cols = Vec::with_capacity(ncols);
                    for _ in 0..ncols {
                        cols.push(r.get_u16("index col")? as usize);
                    }
                    indexes.push(IndexDef { name, cols, unique, ordered });
                }
                CatalogChange::CreateTable { id, name, owner, tablespace, indexes }
            }
            7 => CatalogChange::DropTable { id: ObjectId(r.get_u32("table id")?) },
            8 => CatalogChange::AllocExtent {
                table: ObjectId(r.get_u32("table id")?),
                extent: Extent {
                    file: FileNo(r.get_u32("extent file")?),
                    start: r.get_u32("extent start")?,
                    len: r.get_u32("extent len")?,
                },
            },
            _ => return Err(DecodeError { context: "catalog change tag" }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_table_change(id: u32) -> CatalogChange {
        CatalogChange::CreateTable {
            id: ObjectId(id),
            name: format!("T{id}"),
            owner: UserId(1),
            tablespace: TablespaceId(1),
            indexes: vec![IndexDef { name: "PK".into(), cols: vec![0, 1], unique: true, ordered: true }],
        }
    }

    #[test]
    fn apply_create_lookup() {
        let mut c = Catalog::new();
        c.apply(&CatalogChange::CreateUser { id: UserId(1), name: "tpcc".into() });
        c.apply(&CatalogChange::CreateTablespace { id: TablespaceId(1), name: "TPCC".into() });
        c.apply(&make_table_change(1));
        assert_eq!(c.user_by_name("tpcc").unwrap(), UserId(1));
        assert_eq!(c.tablespace_by_name("TPCC").unwrap(), TablespaceId(1));
        assert_eq!(c.table_by_name("T1").unwrap(), ObjectId(1));
        assert!(c.table_by_name("missing").is_err());
    }

    #[test]
    fn apply_is_idempotent() {
        let mut c = Catalog::new();
        let ch = make_table_change(3);
        c.apply(&ch);
        let snapshot = c.clone();
        c.apply(&ch);
        assert_eq!(c, snapshot);
    }

    #[test]
    fn alloc_extent_tracks_high_water() {
        let mut c = Catalog::new();
        c.apply(&make_table_change(1));
        let ext = Extent { file: FileNo(2), start: 16, len: 16 };
        c.apply(&CatalogChange::AllocExtent { table: ObjectId(1), extent: ext });
        c.apply(&CatalogChange::AllocExtent { table: ObjectId(1), extent: ext });
        assert_eq!(c.table(ObjectId(1)).unwrap().segment.extents.len(), 1);
        assert_eq!(c.file_high_water[&FileNo(2)], 32);
    }

    #[test]
    fn drop_tablespace_cascades() {
        let mut c = Catalog::new();
        c.apply(&CatalogChange::CreateTablespace { id: TablespaceId(1), name: "TPCC".into() });
        c.apply(&CatalogChange::AddDatafile {
            file_no: FileNo(1),
            def: DatafileDef {
                path: "/u01/t1.dbf".into(),
                vfs_id: FileId(9),
                tablespace: TablespaceId(1),
                blocks: 128,
            },
        });
        c.apply(&make_table_change(1));
        c.apply(&CatalogChange::DropTablespace { id: TablespaceId(1) });
        assert!(c.tablespaces.is_empty());
        assert!(c.datafiles.is_empty());
        assert!(c.tables.is_empty());
    }

    #[test]
    fn change_codec_round_trips() {
        let changes = vec![
            CatalogChange::CreateUser { id: UserId(5), name: "dba".into() },
            CatalogChange::DropUser { id: UserId(5) },
            CatalogChange::CreateTablespace { id: TablespaceId(2), name: "SYSTEM".into() },
            CatalogChange::AddDatafile {
                file_no: FileNo(7),
                def: DatafileDef {
                    path: "/u02/d.dbf".into(),
                    vfs_id: FileId(3),
                    tablespace: TablespaceId(2),
                    blocks: 1024,
                },
            },
            CatalogChange::DropTablespace { id: TablespaceId(2) },
            make_table_change(9),
            CatalogChange::DropTable { id: ObjectId(9) },
            CatalogChange::AllocExtent {
                table: ObjectId(9),
                extent: Extent { file: FileNo(7), start: 0, len: 16 },
            },
        ];
        for ch in changes {
            let mut w = Writer::new();
            ch.encode(&mut w);
            let mut r = Reader::new(w.into_bytes());
            assert_eq!(CatalogChange::decode(&mut r).unwrap(), ch);
        }
    }

    #[test]
    fn segment_block_iteration() {
        let seg = Segment {
            extents: vec![
                Extent { file: FileNo(1), start: 0, len: 2 },
                Extent { file: FileNo(2), start: 8, len: 2 },
            ],
        };
        let blocks: Vec<_> = seg.blocks().collect();
        assert_eq!(
            blocks,
            vec![(FileNo(1), 0), (FileNo(1), 1), (FileNo(2), 8), (FileNo(2), 9)]
        );
        assert_eq!(seg.block_count(), 4);
    }

    #[test]
    fn id_allocation_respects_replayed_ids() {
        let mut c = Catalog::new();
        c.apply(&make_table_change(10));
        assert_eq!(c.next_object_id(), ObjectId(11));
    }
}
