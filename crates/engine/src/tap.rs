//! The DML tap: a hook on the client/DDL write path for differential
//! oracles.
//!
//! The torture harness (`recobench-oracle`) keeps a reference model of the
//! database by observing exactly the operation stream the engine
//! acknowledged: row writes as they enter a transaction, the commit SCN
//! the moment durability is promised, rollbacks, and the committed
//! catalog mistakes (dropped tables and tablespaces). Recovery replay
//! deliberately does **not** fire the tap — replay reconstructs state the
//! tap already saw, and the whole point of the oracle is to check that
//! reconstruction independently.
//!
//! When no tap is installed the write path pays a single branch.

use crate::row::Row;
use crate::types::{ObjectId, RowId, Scn, TxnId};

/// One observed change on the client or DDL surface.
///
/// Row changes carry the transaction they belong to; they take effect in
/// the observer's committed state only when the matching [`Commit`]
/// arrives with its SCN (or never, on [`Rollback`]). The two drop
/// variants are auto-committed operator mistakes, stamped with the SCN in
/// force right after they executed.
///
/// [`Commit`]: DmlChange::Commit
/// [`Rollback`]: DmlChange::Rollback
#[derive(Debug, Clone, PartialEq)]
pub enum DmlChange {
    /// A row was inserted (pending until commit).
    Insert {
        /// Owning transaction.
        txn: TxnId,
        /// Target table.
        obj: ObjectId,
        /// Physical address the engine chose.
        rid: RowId,
        /// The row value.
        row: Row,
    },
    /// A row was replaced (pending until commit).
    Update {
        /// Owning transaction.
        txn: TxnId,
        /// Target table.
        obj: ObjectId,
        /// Physical address.
        rid: RowId,
        /// The new row value.
        row: Row,
    },
    /// A row was deleted (pending until commit).
    Delete {
        /// Owning transaction.
        txn: TxnId,
        /// Target table.
        obj: ObjectId,
        /// Physical address.
        rid: RowId,
    },
    /// The transaction committed; its pending changes are durable as of
    /// `scn` (the SCN of the commit record, flushed before this fires).
    Commit {
        /// The committed transaction.
        txn: TxnId,
        /// SCN of the commit record.
        scn: Scn,
    },
    /// The transaction rolled back; its pending changes never happened.
    Rollback {
        /// The rolled-back transaction.
        txn: TxnId,
    },
    /// A table was dropped (auto-committed).
    DropTable {
        /// The dropped table.
        obj: ObjectId,
        /// SCN in force right after the drop.
        scn: Scn,
    },
    /// A tablespace was dropped including contents (auto-committed).
    DropTablespace {
        /// Every table that went down with it.
        tables: Vec<ObjectId>,
        /// SCN in force right after the drop.
        scn: Scn,
    },
}

/// An installed tap (see [`DbServer::set_dml_tap`]).
///
/// [`DbServer::set_dml_tap`]: crate::DbServer::set_dml_tap
pub struct DmlTap(pub(crate) Box<dyn FnMut(&DmlChange) + Send>);

impl std::fmt::Debug for DmlTap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DmlTap").finish_non_exhaustive()
    }
}
