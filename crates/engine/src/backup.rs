//! Cold backups: consistent datafile copies plus the metadata needed to
//! restore and roll forward.

use std::collections::BTreeMap;
use std::sync::Arc;

use recobench_sim::SimTime;
use recobench_vfs::FileId;

use crate::catalog::Catalog;
use crate::types::{FileNo, RedoAddr, Scn};

/// A complete cold backup of the database.
///
/// The backup records the redo position at the instant it was taken:
/// restore + redo from that position reproduces any later state, which is
/// the basis of both media recovery (one datafile) and incomplete
/// point-in-time recovery (whole database).
#[derive(Debug, Clone)]
pub struct BackupSet {
    /// When the backup completed.
    pub taken_at: SimTime,
    /// Redo position to roll forward from.
    pub position: RedoAddr,
    /// SCN at backup time.
    pub scn: Scn,
    /// Dictionary snapshot at backup time.
    pub catalog: Arc<Catalog>,
    /// Backup piece per datafile.
    pub pieces: BTreeMap<FileNo, FileId>,
    /// Nominal bytes each piece represents (restore-time sizing).
    pub nominal_bytes_per_file: u64,
}

impl BackupSet {
    /// The backup piece holding `file`, if the file existed at backup time.
    pub fn piece_for(&self, file: FileNo) -> Option<FileId> {
        self.pieces.get(&file).copied()
    }

    /// Number of datafiles captured.
    pub fn file_count(&self) -> usize {
        self.pieces.len()
    }

    /// This backup as an event for the engine event sink.
    pub fn event(&self) -> crate::events::EngineEvent {
        crate::events::EngineEvent::BackupTaken { files: self.pieces.len() as u64, scn: self.scn.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piece_lookup() {
        let mut pieces = BTreeMap::new();
        pieces.insert(FileNo(1), FileId(10));
        let b = BackupSet {
            taken_at: SimTime::ZERO,
            position: RedoAddr::start_of(1),
            scn: Scn(5),
            catalog: Arc::new(Catalog::new()),
            pieces,
            nominal_bytes_per_file: 1024,
        };
        assert_eq!(b.piece_for(FileNo(1)), Some(FileId(10)));
        assert_eq!(b.piece_for(FileNo(2)), None);
        assert_eq!(b.file_count(), 1);
        assert_eq!(b.event(), crate::events::EngineEvent::BackupTaken { files: 1, scn: 5 });
    }
}
