//! Checkpoint write-out: pushing dirty buffer-cache blocks to datafiles.
//!
//! Two kinds of checkpoint exist, exactly as in Oracle 8i:
//!
//! * **full (log-switch) checkpoints** write every dirty block and advance
//!   the recovery position to the start of the new log sequence — these
//!   are what the paper's Table 3 counts per experiment;
//! * **incremental checkpoints** (DBWR ticks driven by
//!   `log_checkpoint_timeout`) write blocks whose first unwritten change
//!   is older than the timeout, bounding crash-recovery work without a
//!   burst.
//!
//! Writes are *submitted* at the trigger instant and the checkpoint
//! completes when the last one drains; the completion timestamp is what
//! the control file records, so a crash mid-checkpoint correctly falls
//! back to the previous position.

use recobench_sim::SimTime;
use recobench_vfs::SimFs;

use crate::cache::{BufferCache, DirtyInfo};
use crate::catalog::Catalog;
use crate::types::FileNo;

/// Result of a checkpoint write-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Instant the last submitted write completes (equals the trigger
    /// instant when nothing was dirty).
    pub complete_at: SimTime,
    /// Blocks written.
    pub blocks: u64,
    /// Disk that rejected a write with ENOSPC, if any. The affected
    /// blocks stay dirty in the cache; the caller must not advance the
    /// checkpoint position past their redo.
    pub disk_full: Option<recobench_vfs::DiskId>,
}

impl WriteOutcome {
    /// This outcome as a full-checkpoint event for the engine event sink.
    pub fn checkpoint_event(&self) -> crate::events::EngineEvent {
        crate::events::EngineEvent::Checkpoint { blocks: self.blocks, complete_at: self.complete_at }
    }
}

/// Writes every dirty block matching `pred` out to its datafile, returning
/// when the batch drains. Blocks whose datafile no longer exists (dropped
/// or deleted by an operator) are discarded silently — media recovery owns
/// them now.
pub(crate) fn write_dirty<F>(
    fs: &mut SimFs,
    catalog: &Catalog,
    cache: &mut BufferCache,
    now: SimTime,
    pred: F,
) -> WriteOutcome
where
    F: FnMut((FileNo, u32), &DirtyInfo) -> bool,
{
    // Collect (key, bookkeeping) only — the images stay in their frames
    // and are encoded straight out of the cache, instead of deep-copying
    // every dirty block into the batch first.
    let batch = cache.dirty_matching(pred);
    let mut complete_at = now;
    let mut blocks = 0u64;
    let mut disk_full = None;
    for (key, info) in batch {
        cache.clear_dirty(key);
        let Some(df) = catalog.datafiles.get(&key.0) else { continue };
        let mut w = crate::codec::Writer::new();
        if !cache.encode_block_into(key, &mut w) {
            continue;
        }
        match fs.write_block(df.vfs_id, key.1 as u64, w.into_bytes(), now) {
            Ok((done, ())) => {
                complete_at = complete_at.max(done);
                blocks += 1;
            }
            Err(recobench_vfs::VfsError::DiskFull { disk, .. }) => {
                // ENOSPC: the image never reached disk and exists nowhere
                // else, so the frame must stay dirty — a later checkpoint
                // (after the operator frees space) retries it.
                cache.restore_dirty(key, info);
                disk_full.get_or_insert(recobench_vfs::DiskId(disk));
            }
            Err(recobench_vfs::VfsError::Interrupted(_)) => {
                // The machine is dying mid-write-out (crash-at-write
                // fault). Keep the frame dirty; the caller sees the fired
                // crash and refuses to record the checkpoint.
                cache.restore_dirty(key, info);
            }
            Err(_) => {
                // The file is gone (operator fault). The change survives in
                // the redo stream; media recovery will replay it.
            }
        }
    }
    WriteOutcome { complete_at, blocks, disk_full }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{CatalogChange, DatafileDef};
    use crate::page::BlockImage;
    use crate::row::{Row, Value};
    use crate::types::{RedoAddr, Scn, TablespaceId};
    use recobench_sim::DiskProfile;
    use recobench_vfs::{DiskId, FileKind};

    fn setup() -> (SimFs, Catalog, BufferCache) {
        let mut fs = SimFs::new(vec![DiskProfile::server_2000()]);
        let vfs_id = fs.create_block_file("/u01/a.dbf", DiskId(0), FileKind::Data, 8192, 64).unwrap();
        let mut cat = Catalog::new();
        cat.apply(&CatalogChange::CreateTablespace { id: TablespaceId(1), name: "T".into() });
        cat.apply(&CatalogChange::AddDatafile {
            file_no: FileNo(1),
            def: DatafileDef {
                path: "/u01/a.dbf".into(),
                vfs_id,
                tablespace: TablespaceId(1),
                blocks: 64,
            },
        });
        (fs, cat, BufferCache::new(8))
    }

    fn dirty_block(cache: &mut BufferCache, block: u32, val: u64) {
        let mut img = BlockImage::empty();
        img.put(0, Row::new(vec![Value::U64(val)]), Scn(val));
        cache.insert((FileNo(1), block), img);
        cache.mark_dirty(
            (FileNo(1), block),
            RedoAddr { seq: 1, offset: val },
            SimTime::from_secs(val),
        );
    }

    #[test]
    fn write_dirty_persists_and_cleans() {
        let (mut fs, cat, mut cache) = setup();
        dirty_block(&mut cache, 3, 7);
        let out = write_dirty(&mut fs, &cat, &mut cache, SimTime::from_secs(10), |_, _| true);
        assert_eq!(out.blocks, 1);
        assert!(out.complete_at > SimTime::from_secs(10));
        assert_eq!(cache.dirty_count(), 0);
        // The image is really on disk.
        let vfs_id = cat.datafiles[&FileNo(1)].vfs_id;
        let img = BlockImage::decode(fs.peek_block(vfs_id, 3).unwrap()).unwrap();
        assert_eq!(img.row(0).unwrap().get(0).unwrap().as_u64(), Some(7));
    }

    #[test]
    fn predicate_selects_subset() {
        let (mut fs, cat, mut cache) = setup();
        dirty_block(&mut cache, 1, 1);
        dirty_block(&mut cache, 2, 20);
        let out = write_dirty(&mut fs, &cat, &mut cache, SimTime::from_secs(30), |_, d| {
            d.first_time <= SimTime::from_secs(5)
        });
        assert_eq!(out.blocks, 1);
        assert_eq!(cache.dirty_count(), 1);
    }

    #[test]
    fn missing_datafile_blocks_are_dropped() {
        let (mut fs, cat, mut cache) = setup();
        dirty_block(&mut cache, 1, 1);
        fs.delete_path("/u01/a.dbf").unwrap();
        let out = write_dirty(&mut fs, &cat, &mut cache, SimTime::ZERO, |_, _| true);
        assert_eq!(out.blocks, 0);
        assert_eq!(cache.dirty_count(), 0, "frame is clean even though the write failed");
    }

    #[test]
    fn empty_batch_completes_immediately() {
        let (mut fs, cat, mut cache) = setup();
        let now = SimTime::from_secs(5);
        let out = write_dirty(&mut fs, &cat, &mut cache, now, |_, _| true);
        assert_eq!(out, WriteOutcome { complete_at: now, blocks: 0, disk_full: None });
    }

    #[test]
    fn crash_mid_writeout_keeps_unwritten_blocks_dirty() {
        let (mut fs, cat, mut cache) = setup();
        dirty_block(&mut cache, 1, 1);
        dirty_block(&mut cache, 2, 2);
        fs.arm_fault(recobench_vfs::FaultArm::CrashAtWrite { nth: 2, keep_num: 0, keep_den: 1 })
            .unwrap();
        let out = write_dirty(&mut fs, &cat, &mut cache, SimTime::from_secs(1), |_, _| true);
        assert_eq!(out.blocks, 1);
        assert!(fs.crash_write_fired());
        assert_eq!(cache.dirty_count(), 1, "the block the crash ate stays dirty");
    }

    #[test]
    fn enospc_keeps_the_block_dirty() {
        let (mut fs, cat, mut cache) = setup();
        dirty_block(&mut cache, 4, 9);
        fs.arm_fault(recobench_vfs::FaultArm::DiskFull { disk: DiskId(0), after_bytes: 0 })
            .unwrap();
        let out = write_dirty(&mut fs, &cat, &mut cache, SimTime::from_secs(2), |_, _| true);
        assert_eq!(out.blocks, 0);
        assert_eq!(out.disk_full, Some(DiskId(0)));
        assert_eq!(cache.dirty_count(), 1, "the unwritten change must stay dirty");
        // Space freed: the retry drains the backlog.
        fs.clear_faults();
        let out = write_dirty(&mut fs, &cat, &mut cache, SimTime::from_secs(3), |_, _| true);
        assert_eq!((out.blocks, out.disk_full), (1, None));
        assert_eq!(cache.dirty_count(), 0);
    }
}
