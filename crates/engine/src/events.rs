//! Structured engine observability: timestamped, typed events and
//! recovery-phase **spans**.
//!
//! The benchmark's headline numbers are aggregates; the event stream shows
//! *why* they came out that way — when the log switched, how long the
//! switch stalled, when checkpoints completed, and, crucially, where the
//! time went during a recovery (detection, instance restart, media
//! restore, redo scan, redo apply, rollback, stand-by activation). Every
//! instant comes off the simulated clock, so spans are exact and
//! deterministic to the microsecond.
//!
//! The [`EventSink`] replaces the old bounded `Trace`:
//!
//! * every event passes through [`EventSink::record`], which updates a set
//!   of **derived counters** (the recovery-related fields of
//!   `EngineStats`) before buffering — the counters and the stream can
//!   never disagree;
//! * subscribers registered with [`EventSink::subscribe`] see every event
//!   as it happens, regardless of the retention bound (the experiment
//!   harness uses this for span collection and JSONL export);
//! * the retained buffer is bounded ([`EventSink::events`], oldest dropped
//!   first) for cheap in-process inspection by tests and report binaries.

use recobench_sim::SimTime;

use crate::stats::EngineStats;

/// A recovery phase measured as a span (see [`EngineEvent::PhaseSpan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoveryPhase {
    /// Constant operator detection time between fault and procedure start.
    Detection,
    /// Instance restart: startup + mount (+ the `RECOVER` admin command
    /// for incomplete recovery).
    InstanceStartup,
    /// Restoring datafiles from the cold backup.
    MediaRestore,
    /// Reading online or archived redo (per sequence).
    RedoScan,
    /// Applying (or skipping) scanned redo records (per sequence).
    RedoApply,
    /// Rolling back transactions left unresolved by replay.
    TxnRollback,
    /// Stand-by activation: final apply, rollback, open.
    StandbyActivation,
}

impl RecoveryPhase {
    /// Stable snake_case name used in the JSONL export.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryPhase::Detection => "detection",
            RecoveryPhase::InstanceStartup => "instance_startup",
            RecoveryPhase::MediaRestore => "media_restore",
            RecoveryPhase::RedoScan => "redo_scan",
            RecoveryPhase::RedoApply => "redo_apply",
            RecoveryPhase::TxnRollback => "txn_rollback",
            RecoveryPhase::StandbyActivation => "standby_activation",
        }
    }
}

/// Which recovery procedure completed (see
/// [`EngineEvent::RecoveryCompleted`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryProcedure {
    /// Crash recovery during `STARTUP`.
    Crash,
    /// Single-datafile media recovery.
    Media,
    /// Incomplete (point-in-time) recovery of the whole database.
    Incomplete,
}

impl RecoveryProcedure {
    /// Stable snake_case name used in the JSONL export.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryProcedure::Crash => "crash",
            RecoveryProcedure::Media => "media",
            RecoveryProcedure::Incomplete => "incomplete",
        }
    }
}

/// One engine event. The record instant (the first element of the pairs
/// returned by [`EventSink::events`]) is the event's own timestamp; for
/// [`EngineEvent::PhaseSpan`] it is the span's **end**.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineEvent {
    /// The log switched to a new sequence in `group`.
    LogSwitch {
        /// New sequence number.
        seq: u64,
        /// Group now being written.
        group: usize,
    },
    /// A log switch stalled waiting for the next group to become reusable.
    SwitchStall {
        /// Sequence that could not start immediately.
        seq: u64,
        /// Stall length in microseconds.
        micros: u64,
    },
    /// A full checkpoint completed.
    Checkpoint {
        /// Blocks written.
        blocks: u64,
        /// Completion instant.
        complete_at: SimTime,
    },
    /// The incremental checkpoint position advanced (DBWR tick).
    IncrementalAdvance {
        /// Blocks written by the tick.
        blocks: u64,
    },
    /// A filled sequence was archived.
    Archived {
        /// Sequence number.
        seq: u64,
        /// Copy completion instant.
        complete_at: SimTime,
    },
    /// A cold backup of every datafile completed.
    BackupTaken {
        /// Datafiles backed up.
        files: u64,
        /// SCN the backup is consistent at.
        scn: u64,
    },
    /// The instance terminated (cleanly or not).
    InstanceStopped {
        /// Whether it was a clean shutdown.
        clean: bool,
    },
    /// The instance opened (with or without crash recovery).
    InstanceOpened {
        /// Redo records applied during crash recovery (0 for clean opens).
        recovered_records: u64,
    },
    /// A recovery phase ran from `started_at` to the record instant.
    PhaseSpan {
        /// Which phase.
        phase: RecoveryPhase,
        /// Span start; the record instant is the span end.
        started_at: SimTime,
    },
    /// Replay finished processing one log sequence.
    SequenceReplayed {
        /// The sequence.
        seq: u64,
        /// Records applied from it.
        applied: u64,
        /// Records scanned but skipped.
        skipped: u64,
        /// Whether it was read from an archive file.
        archived: bool,
    },
    /// A recovery procedure completed.
    RecoveryCompleted {
        /// Which procedure.
        procedure: RecoveryProcedure,
        /// Records applied over the whole procedure.
        records_applied: u64,
        /// Archive files read over the whole procedure.
        archives_read: u64,
    },
    /// The stand-by applied one shipped archive in the background.
    StandbyArchiveApplied {
        /// The sequence applied.
        seq: u64,
        /// Records it contained.
        records: u64,
    },
    /// Indexes were rebuilt from recovered heap data.
    IndexesRebuilt {
        /// Tables whose indexes were rebuilt.
        tables: u64,
        /// Total index entries inserted.
        entries: u64,
    },
    /// A statement blocked on a row lock and its transaction was queued.
    LockWait {
        /// The blocked transaction.
        waiter: crate::types::TxnId,
        /// The transaction holding the lock.
        holder: crate::types::TxnId,
        /// Table of the contended row.
        obj: crate::types::ObjectId,
    },
    /// A queued transaction was granted the lock it was waiting for.
    LockAcquired {
        /// The transaction that now holds the lock.
        txn: crate::types::TxnId,
        /// How long it waited, in simulated microseconds.
        wait_us: u64,
    },
    /// A lock request closed a waits-for cycle; the requester aborted.
    DeadlockVictim {
        /// The transaction chosen to abort.
        victim: crate::types::TxnId,
        /// Number of transactions on the cycle.
        cycle_len: u64,
    },
    /// A stored block failed its CRC check on read: silent corruption
    /// (bit-rot or a torn write) detected by the checksum layer.
    ChecksumMismatch {
        /// Path of the file holding the bad block.
        path: String,
        /// Block number within the file.
        block: u64,
    },
    /// The failover controller observed the primary dead and began a
    /// promotion (quorum reached, or an operator decided).
    FailoverStarted {
        /// Replicas that voted the primary dead.
        votes: u64,
        /// Replicas enrolled in the set (the quorum denominator).
        replicas: u64,
    },
    /// A stand-by finished activating and is now the primary.
    ReplicaPromoted {
        /// Index of the promoted replica within the set.
        replica: u64,
        /// Log sequence it had applied through at promotion.
        applied_seq: u64,
    },
    /// A surviving stand-by was re-instantiated to follow the newly
    /// promoted primary.
    ReplicaResync {
        /// Index of the resynced replica within the set.
        replica: u64,
        /// Log sequence the fresh instantiation starts from.
        applied_seq: u64,
    },
    /// A repaired ex-primary rejoined the set as a freshly instantiated
    /// stand-by of the current primary.
    FailbackComplete {
        /// Index the rejoining machine was enrolled at.
        replica: u64,
    },
}

impl EngineEvent {
    /// Stable snake_case event name used in the JSONL export.
    pub fn name(&self) -> &'static str {
        match self {
            EngineEvent::LogSwitch { .. } => "log_switch",
            EngineEvent::SwitchStall { .. } => "switch_stall",
            EngineEvent::Checkpoint { .. } => "checkpoint",
            EngineEvent::IncrementalAdvance { .. } => "incremental_advance",
            EngineEvent::Archived { .. } => "archived",
            EngineEvent::BackupTaken { .. } => "backup_taken",
            EngineEvent::InstanceStopped { .. } => "instance_stopped",
            EngineEvent::InstanceOpened { .. } => "instance_opened",
            EngineEvent::PhaseSpan { .. } => "phase_span",
            EngineEvent::SequenceReplayed { .. } => "sequence_replayed",
            EngineEvent::RecoveryCompleted { .. } => "recovery_completed",
            EngineEvent::StandbyArchiveApplied { .. } => "standby_archive_applied",
            EngineEvent::IndexesRebuilt { .. } => "indexes_rebuilt",
            EngineEvent::LockWait { .. } => "lock_wait",
            EngineEvent::LockAcquired { .. } => "lock_acquired",
            EngineEvent::DeadlockVictim { .. } => "deadlock_victim",
            EngineEvent::ChecksumMismatch { .. } => "checksum_mismatch",
            EngineEvent::FailoverStarted { .. } => "failover_started",
            EngineEvent::ReplicaPromoted { .. } => "replica_promoted",
            EngineEvent::ReplicaResync { .. } => "replica_resync",
            EngineEvent::FailbackComplete { .. } => "failback_complete",
        }
    }

    /// Writes the event as one JSON object (no trailing newline) onto
    /// `out`: `{"t_us":…,"server":…,"type":…,…}`. Hand-rolled — the
    /// workspace deliberately has no JSON dependency — and byte-stable for
    /// a given event, which the determinism regression tests rely on.
    pub fn write_json(&self, at: SimTime, server: &str, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(out, "{{\"t_us\":{},\"server\":\"{server}\",\"type\":\"{}\"", at.as_micros(), self.name());
        match self {
            EngineEvent::LogSwitch { seq, group } => {
                let _ = write!(out, ",\"seq\":{seq},\"group\":{group}");
            }
            EngineEvent::SwitchStall { seq, micros } => {
                let _ = write!(out, ",\"seq\":{seq},\"stall_us\":{micros}");
            }
            EngineEvent::Checkpoint { blocks, complete_at } => {
                let _ = write!(out, ",\"blocks\":{blocks},\"complete_us\":{}", complete_at.as_micros());
            }
            EngineEvent::IncrementalAdvance { blocks } => {
                let _ = write!(out, ",\"blocks\":{blocks}");
            }
            EngineEvent::Archived { seq, complete_at } => {
                let _ = write!(out, ",\"seq\":{seq},\"complete_us\":{}", complete_at.as_micros());
            }
            EngineEvent::BackupTaken { files, scn } => {
                let _ = write!(out, ",\"files\":{files},\"scn\":{scn}");
            }
            EngineEvent::InstanceStopped { clean } => {
                let _ = write!(out, ",\"clean\":{clean}");
            }
            EngineEvent::InstanceOpened { recovered_records } => {
                let _ = write!(out, ",\"recovered_records\":{recovered_records}");
            }
            EngineEvent::PhaseSpan { phase, started_at } => {
                let _ = write!(out, ",\"phase\":\"{}\",\"start_us\":{}", phase.name(), started_at.as_micros());
            }
            EngineEvent::SequenceReplayed { seq, applied, skipped, archived } => {
                let _ = write!(out, ",\"seq\":{seq},\"applied\":{applied},\"skipped\":{skipped},\"archived\":{archived}");
            }
            EngineEvent::RecoveryCompleted { procedure, records_applied, archives_read } => {
                let _ = write!(
                    out,
                    ",\"procedure\":\"{}\",\"records_applied\":{records_applied},\"archives_read\":{archives_read}",
                    procedure.name()
                );
            }
            EngineEvent::StandbyArchiveApplied { seq, records } => {
                let _ = write!(out, ",\"seq\":{seq},\"records\":{records}");
            }
            EngineEvent::IndexesRebuilt { tables, entries } => {
                let _ = write!(out, ",\"tables\":{tables},\"entries\":{entries}");
            }
            EngineEvent::LockWait { waiter, holder, obj } => {
                let _ = write!(out, ",\"waiter\":{},\"holder\":{},\"obj\":{}", waiter.0, holder.0, obj.0);
            }
            EngineEvent::LockAcquired { txn, wait_us } => {
                let _ = write!(out, ",\"txn\":{},\"wait_us\":{wait_us}", txn.0);
            }
            EngineEvent::DeadlockVictim { victim, cycle_len } => {
                let _ = write!(out, ",\"victim\":{},\"cycle_len\":{cycle_len}", victim.0);
            }
            EngineEvent::ChecksumMismatch { path, block } => {
                let _ = write!(out, ",\"path\":\"{path}\",\"block\":{block}");
            }
            EngineEvent::FailoverStarted { votes, replicas } => {
                let _ = write!(out, ",\"votes\":{votes},\"replicas\":{replicas}");
            }
            EngineEvent::ReplicaPromoted { replica, applied_seq } => {
                let _ = write!(out, ",\"replica\":{replica},\"applied_seq\":{applied_seq}");
            }
            EngineEvent::ReplicaResync { replica, applied_seq } => {
                let _ = write!(out, ",\"replica\":{replica},\"applied_seq\":{applied_seq}");
            }
            EngineEvent::FailbackComplete { replica } => {
                let _ = write!(out, ",\"replica\":{replica}");
            }
        }
        out.push('}');
    }
}

/// A subscriber sees every recorded event, in order, before buffering.
pub type EventSubscriber = Box<dyn FnMut(SimTime, &EngineEvent) + Send>;

/// The engine-wide event sink: bounded retention, live subscribers, and
/// counters derived from the stream itself.
#[derive(Default)]
pub struct EventSink {
    events: Vec<(SimTime, EngineEvent)>,
    capacity: usize,
    dropped: u64,
    derived: EngineStats,
    subscribers: Vec<EventSubscriber>,
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSink")
            .field("events", &self.events.len())
            .field("capacity", &self.capacity)
            .field("dropped", &self.dropped)
            .field("subscribers", &self.subscribers.len())
            .finish()
    }
}

impl EventSink {
    /// Creates a sink retaining at most `capacity` events (oldest dropped
    /// first). Subscribers and derived counters are unaffected by the
    /// bound.
    pub fn new(capacity: usize) -> Self {
        EventSink { events: Vec::new(), capacity, ..Default::default() }
    }

    /// Records an event at instant `at`: updates the derived counters,
    /// notifies subscribers, then buffers (within the retention bound).
    pub fn record(&mut self, at: SimTime, event: EngineEvent) {
        self.derive(&event);
        for sub in &mut self.subscribers {
            sub(at, &event);
        }
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.remove(0);
            self.dropped += 1;
        }
        self.events.push((at, event));
    }

    fn derive(&mut self, event: &EngineEvent) {
        let d = &mut self.derived;
        match event {
            EngineEvent::LogSwitch { .. } => d.log_switches += 1,
            EngineEvent::SwitchStall { micros, .. } => d.switch_stall_micros += micros,
            EngineEvent::Checkpoint { .. } => d.full_checkpoints += 1,
            EngineEvent::IncrementalAdvance { .. } => d.incremental_advances += 1,
            EngineEvent::Archived { .. } => d.archives_created += 1,
            EngineEvent::SequenceReplayed { applied, skipped, archived, .. } => {
                d.recovery_records_applied += applied;
                d.recovery_records_skipped += skipped;
                if *archived {
                    d.recovery_archives_processed += 1;
                }
            }
            EngineEvent::RecoveryCompleted { procedure, .. } => match procedure {
                RecoveryProcedure::Crash => d.crash_recoveries += 1,
                RecoveryProcedure::Media => d.media_recoveries += 1,
                RecoveryProcedure::Incomplete => d.incomplete_recoveries += 1,
            },
            EngineEvent::StandbyArchiveApplied { records, .. } => {
                d.recovery_records_applied += records;
            }
            EngineEvent::LockWait { .. } => d.lock_waits += 1,
            EngineEvent::LockAcquired { wait_us, .. } => {
                d.lock_grants += 1;
                d.lock_wait_micros += wait_us;
            }
            EngineEvent::DeadlockVictim { .. } => d.deadlocks += 1,
            EngineEvent::ChecksumMismatch { .. } => d.checksum_mismatches += 1,
            EngineEvent::FailoverStarted { .. } => d.failovers += 1,
            EngineEvent::ReplicaPromoted { .. } => d.promotions += 1,
            EngineEvent::ReplicaResync { .. } => d.replica_resyncs += 1,
            EngineEvent::FailbackComplete { .. } => d.failbacks += 1,
            EngineEvent::BackupTaken { .. }
            | EngineEvent::InstanceStopped { .. }
            | EngineEvent::InstanceOpened { .. }
            | EngineEvent::PhaseSpan { .. }
            | EngineEvent::IndexesRebuilt { .. } => {}
        }
    }

    /// Counters derived from every event ever recorded (not just the
    /// retained window). Only the recovery/checkpoint/archive fields of
    /// `EngineStats` are populated; the hot-path counters stay zero.
    pub fn derived(&self) -> EngineStats {
        self.derived
    }

    /// Registers a live subscriber. Subscribers see every subsequent event
    /// regardless of the retention bound and cannot be removed (they live
    /// as long as the server).
    pub fn subscribe<F: FnMut(SimTime, &EngineEvent) + Send + 'static>(&mut self, f: F) {
        self.subscribers.push(Box::new(f));
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> &[(SimTime, EngineEvent)] {
        &self.events
    }

    /// Events dropped from the retained buffer because of the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Raises (or lowers) the retention bound.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
    }

    /// Retained events in `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> Vec<&(SimTime, EngineEvent)> {
        self.events.iter().filter(|(t, _)| *t >= from && *t < to).collect()
    }

    /// Count of retained events matching `pred`.
    pub fn count<F: Fn(&EngineEvent) -> bool>(&self, pred: F) -> usize {
        self.events.iter().filter(|(_, e)| pred(e)).count()
    }

    /// Clears the retained buffer (e.g. at the start of a measurement
    /// window). Derived counters are cumulative and are **not** reset;
    /// subscribers stay registered.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }

    /// The retained events as JSONL, one event per line, tagged with
    /// `server`.
    pub fn to_jsonl(&self, server: &str) -> String {
        let mut out = String::with_capacity(self.events.len() * 96);
        for (at, ev) in &self.events {
            ev.write_json(*at, server, &mut out);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64) -> EngineEvent {
        EngineEvent::LogSwitch { seq, group: 0 }
    }

    #[test]
    fn records_in_order_within_capacity() {
        let mut s = EventSink::new(8);
        for i in 0..5 {
            s.record(SimTime::from_secs(i), ev(i));
        }
        assert_eq!(s.events().len(), 5);
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.events()[0].1, ev(0));
        assert_eq!(s.events()[4].1, ev(4));
    }

    #[test]
    fn capacity_bound_drops_oldest_but_keeps_derived() {
        let mut s = EventSink::new(3);
        for i in 0..10 {
            s.record(SimTime::from_secs(i), ev(i));
        }
        assert_eq!(s.events().len(), 3);
        assert_eq!(s.dropped(), 7);
        assert_eq!(s.events()[0].1, ev(7), "oldest retained is #7");
        assert_eq!(s.derived().log_switches, 10, "derived counters ignore the bound");
    }

    #[test]
    fn derived_counters_follow_the_stream() {
        let mut s = EventSink::new(64);
        s.record(SimTime::ZERO, EngineEvent::SwitchStall { seq: 2, micros: 1_500 });
        s.record(SimTime::ZERO, EngineEvent::Checkpoint { blocks: 8, complete_at: SimTime::ZERO });
        s.record(
            SimTime::ZERO,
            EngineEvent::SequenceReplayed { seq: 3, applied: 40, skipped: 2, archived: true },
        );
        s.record(
            SimTime::ZERO,
            EngineEvent::RecoveryCompleted {
                procedure: RecoveryProcedure::Media,
                records_applied: 40,
                archives_read: 1,
            },
        );
        let d = s.derived();
        assert_eq!(d.switch_stall_micros, 1_500);
        assert_eq!(d.full_checkpoints, 1);
        assert_eq!(d.recovery_records_applied, 40);
        assert_eq!(d.recovery_records_skipped, 2);
        assert_eq!(d.recovery_archives_processed, 1);
        assert_eq!(d.media_recoveries, 1);
    }

    #[test]
    fn subscribers_see_everything_even_past_the_bound() {
        use std::sync::{Arc, Mutex};
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut s = EventSink::new(2);
        let seen2 = Arc::clone(&seen);
        s.subscribe(move |at, e| seen2.lock().unwrap().push((at, e.clone())));
        for i in 0..6 {
            s.record(SimTime::from_secs(i), ev(i));
        }
        assert_eq!(s.events().len(), 2);
        assert_eq!(seen.lock().unwrap().len(), 6);
    }

    #[test]
    fn window_count_and_clear() {
        let mut s = EventSink::new(16);
        s.record(SimTime::from_secs(1), ev(1));
        s.record(
            SimTime::from_secs(5),
            EngineEvent::Checkpoint { blocks: 3, complete_at: SimTime::from_secs(6) },
        );
        s.record(SimTime::from_secs(9), ev(2));
        assert_eq!(s.window(SimTime::from_secs(2), SimTime::from_secs(9)).len(), 1);
        assert_eq!(s.count(|e| matches!(e, EngineEvent::LogSwitch { .. })), 2);
        s.clear();
        assert!(s.events().is_empty());
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.derived().log_switches, 2, "clear never resets derived counters");
    }

    #[test]
    fn jsonl_lines_are_stable_and_self_describing() {
        let mut s = EventSink::new(4);
        s.record(SimTime::from_micros(42), ev(7));
        s.record(
            SimTime::from_micros(99),
            EngineEvent::PhaseSpan {
                phase: RecoveryPhase::RedoApply,
                started_at: SimTime::from_micros(50),
            },
        );
        let jsonl = s.to_jsonl("PRIMARY");
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"t_us\":42,\"server\":\"PRIMARY\",\"type\":\"log_switch\",\"seq\":7,\"group\":0}"
        );
        assert_eq!(
            lines[1],
            "{\"t_us\":99,\"server\":\"PRIMARY\",\"type\":\"phase_span\",\"phase\":\"redo_apply\",\"start_us\":50}"
        );
    }

    #[test]
    fn lock_events_serialize_and_derive_contention_counters() {
        use crate::types::{ObjectId, TxnId};
        let mut s = EventSink::new(8);
        s.record(
            SimTime::from_micros(10),
            EngineEvent::LockWait { waiter: TxnId(2), holder: TxnId(1), obj: ObjectId(7) },
        );
        s.record(SimTime::from_micros(30), EngineEvent::LockAcquired { txn: TxnId(2), wait_us: 20 });
        s.record(
            SimTime::from_micros(50),
            EngineEvent::DeadlockVictim { victim: TxnId(3), cycle_len: 2 },
        );
        let lines: Vec<String> = s.to_jsonl("P").lines().map(str::to_owned).collect();
        assert_eq!(
            lines[0],
            "{\"t_us\":10,\"server\":\"P\",\"type\":\"lock_wait\",\"waiter\":2,\"holder\":1,\"obj\":7}"
        );
        assert_eq!(
            lines[1],
            "{\"t_us\":30,\"server\":\"P\",\"type\":\"lock_acquired\",\"txn\":2,\"wait_us\":20}"
        );
        assert_eq!(
            lines[2],
            "{\"t_us\":50,\"server\":\"P\",\"type\":\"deadlock_victim\",\"victim\":3,\"cycle_len\":2}"
        );
        let d = s.derived();
        assert_eq!(d.lock_waits, 1);
        assert_eq!(d.lock_grants, 1);
        assert_eq!(d.lock_wait_micros, 20);
        assert_eq!(d.deadlocks, 1);
    }

    #[test]
    fn replica_events_serialize_and_derive_failover_counters() {
        let mut s = EventSink::new(8);
        s.record(SimTime::from_micros(5), EngineEvent::FailoverStarted { votes: 2, replicas: 2 });
        s.record(
            SimTime::from_micros(9),
            EngineEvent::ReplicaPromoted { replica: 1, applied_seq: 14 },
        );
        s.record(SimTime::from_micros(12), EngineEvent::ReplicaResync { replica: 0, applied_seq: 15 });
        s.record(SimTime::from_micros(20), EngineEvent::FailbackComplete { replica: 2 });
        let lines: Vec<String> = s.to_jsonl("STANDBY2").lines().map(str::to_owned).collect();
        assert_eq!(
            lines[0],
            "{\"t_us\":5,\"server\":\"STANDBY2\",\"type\":\"failover_started\",\"votes\":2,\"replicas\":2}"
        );
        assert_eq!(
            lines[1],
            "{\"t_us\":9,\"server\":\"STANDBY2\",\"type\":\"replica_promoted\",\"replica\":1,\"applied_seq\":14}"
        );
        assert_eq!(
            lines[2],
            "{\"t_us\":12,\"server\":\"STANDBY2\",\"type\":\"replica_resync\",\"replica\":0,\"applied_seq\":15}"
        );
        assert_eq!(
            lines[3],
            "{\"t_us\":20,\"server\":\"STANDBY2\",\"type\":\"failback_complete\",\"replica\":2}"
        );
        let d = s.derived();
        assert_eq!(d.failovers, 1);
        assert_eq!(d.promotions, 1);
        assert_eq!(d.replica_resyncs, 1);
        assert_eq!(d.failbacks, 1);
    }

    #[test]
    fn checksum_mismatch_serializes_and_derives() {
        let mut s = EventSink::new(4);
        s.record(
            SimTime::from_micros(7),
            EngineEvent::ChecksumMismatch { path: "/u01/tpcc_data01.dbf".into(), block: 42 },
        );
        assert_eq!(
            s.to_jsonl("P").trim_end(),
            "{\"t_us\":7,\"server\":\"P\",\"type\":\"checksum_mismatch\",\"path\":\"/u01/tpcc_data01.dbf\",\"block\":42}"
        );
        assert_eq!(s.derived().checksum_mismatches, 1);
    }
}
