//! Minimal binary codec for on-"disk" structures (redo records, block
//! images, rows).
//!
//! Everything the engine persists into the simulated filesystem round-trips
//! through this codec, so recovery genuinely *reads and parses* logs and
//! blocks rather than cheating through shared memory.

use bytes::Bytes;

/// Error produced when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What the decoder was trying to read.
    pub context: &'static str,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed encoding while reading {}", self.context)
    }
}

impl std::error::Error for DecodeError {}

/// Context string of checksum-verification failures (see
/// [`DecodeError::is_checksum_mismatch`]).
pub const CHECKSUM_CONTEXT: &str = "block checksum";

impl DecodeError {
    /// A decode failure caused by a CRC mismatch: the bytes parsed as a
    /// well-formed structure is irrelevant — the payload is not what was
    /// written.
    pub fn checksum_mismatch() -> Self {
        DecodeError { context: CHECKSUM_CONTEXT }
    }

    /// Whether this failure came from checksum verification (silent
    /// corruption such as bit-rot or a torn write) rather than from a
    /// structurally malformed encoding.
    pub fn is_checksum_mismatch(&self) -> bool {
        self.context == CHECKSUM_CONTEXT
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), computed
/// bitwise — dependency-free and fast enough for the simulator's block
/// sizes. This is the checksum stored in v2 block images.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Result alias for decoding.
pub type DecodeResult<T> = Result<T, DecodeError>;

/// Incremental writer over a growable byte buffer.
///
/// Backed by a plain `Vec<u8>` so hot paths can recycle one allocation:
/// take the vector out with [`Writer::into_vec`], hand it back with
/// [`Writer::from_vec`] (or keep appending to a long-lived writer and
/// drain it with [`Writer::take_vec`]).
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::with_capacity(128) }
    }

    /// Creates a writer that appends to `buf`, reusing its allocation.
    pub fn from_vec(buf: Vec<u8>) -> Self {
        Writer { buf }
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` (big-endian).
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a `u32` (big-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a `u64` (big-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends an `i64` (big-endian, two's complement).
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_slice_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Overwrites the 4 bytes at `at` with `v` (for back-patched length
    /// prefixes).
    ///
    /// # Panics
    ///
    /// Panics if `at + 4` exceeds the bytes written so far.
    pub fn patch_u32(&mut self, at: usize, v: u32) {
        self.buf[at..at + 4].copy_from_slice(&v.to_be_bytes());
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// The bytes written so far (for checksumming a just-encoded span
    /// before back-patching its header).
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes and returns the encoded buffer.
    pub fn into_bytes(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Finishes and returns the raw vector (allocation reusable).
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Drains the accumulated bytes, leaving the writer empty but keeping
    /// it usable (the allocation moves out with the returned vector).
    pub fn take_vec(&mut self) -> Vec<u8> {
        // Seed the replacement with the taken buffer's capacity: a log
        // buffer that just held a 9 KB transaction will hold another, and
        // starting empty would re-pay the whole realloc-and-copy chain on
        // every commit.
        let cap = self.buf.capacity().min(1 << 20);
        std::mem::replace(&mut self.buf, Vec::with_capacity(cap))
    }

    /// Discards everything written after byte `at`, keeping the
    /// allocation (for undoing a speculative encode).
    pub fn truncate(&mut self, at: usize) {
        self.buf.truncate(at);
    }
}

/// Incremental reader over an encoded buffer.
#[derive(Debug)]
pub struct Reader {
    buf: Bytes,
}

impl Reader {
    /// Creates a reader over `buf`.
    pub fn new(buf: Bytes) -> Self {
        Reader { buf }
    }

    fn need(&self, n: usize, context: &'static str) -> DecodeResult<()> {
        if self.buf.remaining() < n {
            Err(DecodeError { context })
        } else {
            Ok(())
        }
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// Fails if the buffer is exhausted.
    pub fn get_u8(&mut self, context: &'static str) -> DecodeResult<u8> {
        self.need(1, context)?;
        Ok(self.buf.get_u8())
    }

    /// Reads a `u16`.
    ///
    /// # Errors
    ///
    /// Fails if the buffer is exhausted.
    pub fn get_u16(&mut self, context: &'static str) -> DecodeResult<u16> {
        self.need(2, context)?;
        Ok(self.buf.get_u16())
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// Fails if the buffer is exhausted.
    pub fn get_u32(&mut self, context: &'static str) -> DecodeResult<u32> {
        self.need(4, context)?;
        Ok(self.buf.get_u32())
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// Fails if the buffer is exhausted.
    pub fn get_u64(&mut self, context: &'static str) -> DecodeResult<u64> {
        self.need(8, context)?;
        Ok(self.buf.get_u64())
    }

    /// Reads an `i64`.
    ///
    /// # Errors
    ///
    /// Fails if the buffer is exhausted.
    pub fn get_i64(&mut self, context: &'static str) -> DecodeResult<i64> {
        self.need(8, context)?;
        Ok(self.buf.get_i64())
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// Fails if the buffer is exhausted or the prefix overruns it.
    pub fn get_bytes(&mut self, context: &'static str) -> DecodeResult<Bytes> {
        let n = self.get_u32(context)? as usize;
        self.need(n, context)?;
        Ok(self.buf.split_to(n))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Fails on exhaustion or invalid UTF-8.
    pub fn get_str(&mut self, context: &'static str) -> DecodeResult<String> {
        let b = self.get_bytes(context)?;
        String::from_utf8(b.to_vec()).map_err(|_| DecodeError { context })
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        let mut r = Reader::new(w.into_bytes());
        assert_eq!(r.get_u8("a").unwrap(), 7);
        assert_eq!(r.get_u16("b").unwrap(), 300);
        assert_eq!(r.get_u32("c").unwrap(), 70_000);
        assert_eq!(r.get_u64("d").unwrap(), u64::MAX);
        assert_eq!(r.get_i64("e").unwrap(), -42);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn string_and_bytes_round_trip() {
        let mut w = Writer::new();
        w.put_str("warehouse");
        w.put_bytes(&[1, 2, 3]);
        let mut r = Reader::new(w.into_bytes());
        assert_eq!(r.get_str("s").unwrap(), "warehouse");
        assert_eq!(r.get_bytes("b").unwrap().as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn truncated_input_errors_with_context() {
        let mut w = Writer::new();
        w.put_u32(10); // length prefix promising 10 bytes that never come
        let mut r = Reader::new(w.into_bytes());
        let err = r.get_bytes("row image").unwrap_err();
        assert_eq!(err.context, "row image");
        assert!(err.to_string().contains("row image"));
    }

    #[test]
    fn empty_reader_errors() {
        let mut r = Reader::new(Bytes::new());
        assert!(r.get_u8("x").is_err());
    }

    #[test]
    fn writer_len_tracks() {
        let mut w = Writer::new();
        assert!(w.is_empty());
        w.put_u64(1);
        assert_eq!(w.len(), 8);
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // The standard IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        // One flipped bit changes the checksum.
        assert_ne!(crc32(&[0b0000_0001]), crc32(&[0b0000_0000]));
    }

    #[test]
    fn checksum_mismatch_is_distinguishable() {
        let e = DecodeError::checksum_mismatch();
        assert!(e.is_checksum_mismatch());
        assert!(!DecodeError { context: "row image" }.is_checksum_mismatch());
    }
}
