//! Point-in-time server snapshots for campaign templating.
//!
//! Every experiment cell pays the same setup before its measured window:
//! create the database, load the schema, take the cold backup. The result
//! is a pure function of the setup inputs, so a campaign captures it once
//! as a [`DbSnapshot`] and boots every cell from a copy-on-write clone via
//! [`DbServer::from_snapshot`]. The clone carries the complete persistent
//! world (filesystem image, control file, backup catalog) *and* the
//! volatile instance (buffer cache, transaction table, redo position), so
//! a restored server is indistinguishable from one that ran the setup
//! itself — except that its event sink starts empty and no DML tap is
//! installed (observers are per-run, not part of database state).
//!
//! Restoring advances the target clock to the capture instant, so the
//! simulated timeline of a restored run matches a monolithic run exactly:
//! the same-seed byte-identical `ExperimentOutcome` contract (DESIGN.md
//! §9) holds with and without templating.

use std::sync::Arc;

use recobench_sim::{SimClock, SimTime};
use recobench_vfs::{FsSnapshot, SnapshotId};

use crate::backup::BackupSet;
use crate::config::InstanceConfig;
use crate::controlfile::ControlFile;
use crate::events::EventSink;
use crate::instance::Instance;
use crate::layout::DiskLayout;
use crate::server::DbServer;
use crate::stats::EngineStats;

/// A captured server: persistent files plus volatile instance state, as of
/// one simulated instant. Cloning shares all block payloads (COW).
///
/// Sessions are *not* captured: like the event sink and DML tap they are
/// client-side observers of the database, not database state. A restored
/// server starts with no connections (and therefore no pending lock
/// grants or deferred undo — both are owned by some session's txn).
#[derive(Debug, Clone)]
pub struct DbSnapshot {
    name: String,
    fs: FsSnapshot,
    layout: DiskLayout,
    config: InstanceConfig,
    control: Option<ControlFile>,
    inst: Option<Instance>,
    backup: Option<BackupSet>,
    stats: EngineStats,
    next_dbwr_tick: SimTime,
    managed_recovery: bool,
    datafile_total: usize,
    txn_floor: u64,
    backups_taken: u32,
    taken_at: SimTime,
}

impl DbSnapshot {
    /// The simulated instant the snapshot was taken at. Restoring advances
    /// the clock here, so restored timelines line up with monolithic ones.
    pub fn taken_at(&self) -> SimTime {
        self.taken_at
    }

    /// Deterministic identity of the captured filesystem image.
    pub fn fs_id(&self) -> SnapshotId {
        self.fs.id()
    }

    /// The server name the snapshot was captured from.
    pub fn server_name(&self) -> &str {
        &self.name
    }
}

impl DbServer {
    /// Captures the server's complete state at the current instant.
    ///
    /// The event sink and DML tap are *not* part of the snapshot: they are
    /// run-scoped observers, and [`DbServer::stats`] folds derived counters
    /// back in, so a restored server's stats window algebra matches a
    /// monolithic run's.
    pub fn snapshot(&self) -> DbSnapshot {
        DbSnapshot {
            name: self.name.clone(),
            fs: FsSnapshot::capture(&self.fs.lock()),
            layout: self.layout.clone(),
            config: self.config.clone(),
            control: self.control.clone(),
            inst: self.inst.clone(),
            backup: self.backup.clone(),
            stats: self.stats,
            next_dbwr_tick: self.next_dbwr_tick,
            managed_recovery: self.managed_recovery,
            datafile_total: self.datafile_total,
            txn_floor: self.txn_floor,
            backups_taken: self.backups_taken,
            taken_at: self.clock.now(),
        }
    }

    /// Boots a server from a snapshot: a copy-on-write clone of the
    /// captured filesystem plus the captured instance, on `clock`. The
    /// clock is advanced to the capture instant (never rewound), so all
    /// subsequent timing matches a server that ran the setup itself.
    pub fn from_snapshot(clock: Arc<SimClock>, snap: &DbSnapshot) -> DbServer {
        clock.advance_to(snap.taken_at);
        DbServer {
            name: snap.name.clone(),
            clock,
            fs: recobench_vfs::fs::shared(snap.fs.materialize()),
            layout: snap.layout.clone(),
            config: snap.config.clone(),
            control: snap.control.clone(),
            inst: snap.inst.clone(),
            backup: snap.backup.clone(),
            stats: snap.stats,
            next_dbwr_tick: snap.next_dbwr_tick,
            managed_recovery: snap.managed_recovery,
            datafile_total: snap.datafile_total,
            txn_floor: snap.txn_floor,
            backups_taken: snap.backups_taken,
            sessions: std::collections::BTreeMap::new(),
            next_session: 0,
            lock_grants: Vec::new(),
            deferred_undo: Vec::new(),
            events: EventSink::new(4096),
            dml_tap: None,
            #[cfg(any(test, feature = "sabotage"))]
            sabotage_skip_redo: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::IndexDef;
    use crate::row::{Row, Value};

    fn prepared() -> DbServer {
        let mut srv = DbServer::on_fresh_disks(
            "SNAP",
            SimClock::shared(),
            DiskLayout::four_disk(),
            InstanceConfig::default(),
        );
        srv.create_database().unwrap();
        srv.create_user("u").unwrap();
        srv.create_tablespace("T", 2, 4096).unwrap();
        let t = srv
            .create_table("KV", "u", "T", vec![IndexDef { name: "PK".into(), cols: vec![0], unique: true, ordered: true }])
            .unwrap();
        let s = srv.connect().unwrap();
        for k in 0..200u64 {
            srv.insert(s, t, Row::new(vec![Value::U64(k), Value::from("payload")])).unwrap();
            srv.commit(s).unwrap();
        }
        srv.disconnect(s);
        srv.take_cold_backup().unwrap();
        srv
    }

    fn table_of(srv: &DbServer) -> crate::types::ObjectId {
        srv.inst.as_ref().unwrap().catalog.table_by_name("KV").unwrap()
    }

    #[test]
    fn restored_server_matches_the_original() {
        let src = prepared();
        let snap = src.snapshot();
        let restored = DbServer::from_snapshot(SimClock::shared(), &snap);
        assert_eq!(restored.clock().now(), snap.taken_at());
        assert!(restored.is_open());
        assert_eq!(restored.current_scn(), src.current_scn());
        let t = table_of(&restored);
        assert_eq!(restored.peek_scan(t).unwrap(), src.peek_scan(t).unwrap());
        assert!(restored.backup().is_some(), "the backup catalog survives the snapshot");
    }

    #[test]
    fn clones_diverge_independently() {
        let snap = prepared().snapshot();
        let mut a = DbServer::from_snapshot(SimClock::shared(), &snap);
        let b = DbServer::from_snapshot(SimClock::shared(), &snap);
        let t = table_of(&a);
        let s = a.connect().unwrap();
        a.insert(s, t, Row::new(vec![Value::U64(9_999), Value::from("extra")])).unwrap();
        a.commit(s).unwrap();
        assert_eq!(a.peek_scan(t).unwrap().len(), 201);
        assert_eq!(b.peek_scan(t).unwrap().len(), 200, "sibling clone is untouched");
    }

    #[test]
    fn identical_workloads_on_clones_replay_identically() {
        let snap = prepared().snapshot();
        let run = || {
            let mut srv = DbServer::from_snapshot(SimClock::shared(), &snap);
            let t = table_of(&srv);
            let s = srv.connect().unwrap();
            for k in 500..540u64 {
                srv.insert(s, t, Row::new(vec![Value::U64(k), Value::from("more")])).unwrap();
                srv.commit(s).unwrap();
            }
            srv.shutdown_abort().unwrap();
            srv.startup().unwrap();
            (srv.clock().now(), srv.current_scn(), srv.stats(), srv.peek_scan(t).unwrap())
        };
        assert_eq!(run(), run(), "two clones of one snapshot are bit-for-bit replicas");
    }

    #[test]
    fn snapshot_ids_are_deterministic() {
        assert_eq!(prepared().snapshot().fs_id(), prepared().snapshot().fs_id());
    }
}
