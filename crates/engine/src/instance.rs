//! The volatile instance: everything a crash destroys.

use recobench_sim::SimTime;

use crate::cache::BufferCache;
use crate::catalog::Catalog;
use crate::fasthash::FastMap;
use crate::heap::PlacementCursor;
use crate::index::Index;
use crate::redo::RedoState;
use crate::txn::{LockTable, TxnTable};
use crate::types::{ObjectId, Scn};

/// An open instance: buffer cache, log buffer, transaction table, live
/// dictionary and indexes. Dropped wholesale on `SHUTDOWN ABORT`.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Live data dictionary.
    pub catalog: Catalog,
    /// Buffer cache.
    pub cache: BufferCache,
    /// Active transactions.
    pub txns: TxnTable,
    /// Row locks.
    pub locks: LockTable,
    /// In-memory indexes per table.
    pub indexes: FastMap<ObjectId, Vec<Index>>,
    /// Volatile redo position and log buffer.
    pub redo: RedoState,
    /// Per-table insert cursors.
    pub cursors: FastMap<ObjectId, PlacementCursor>,
    /// SCN allocator.
    pub scn: Scn,
    /// When the instance opened.
    pub opened_at: SimTime,
}

impl Instance {
    /// Allocates the next SCN.
    pub fn next_scn(&mut self) -> Scn {
        self.scn = self.scn.next();
        self.scn
    }

    /// Rebuilds every index of `obj` from an iterator of `(rid, row)`.
    /// Existing index state for the table is discarded first. Returns the
    /// number of index entries inserted (rows x indexes) so callers can
    /// report rebuild work on the event stream.
    pub fn rebuild_indexes_for<I>(
        &mut self,
        obj: ObjectId,
        defs: &[crate::catalog::IndexDef],
        rows: I,
    ) -> u64
    where
        I: IntoIterator<Item = (crate::types::RowId, crate::row::Row)>,
    {
        let rows: Vec<(crate::types::RowId, crate::row::Row)> = rows.into_iter().collect();
        let mut indexes: Vec<Index> = defs.iter().cloned().map(Index::new).collect();
        for ix in &mut indexes {
            // Duplicate keys on a unique index cannot happen for data
            // produced through the engine; bulk_load keeps the first rid,
            // matching what per-row inserts would leave behind.
            ix.bulk_load(&rows);
        }
        let entries = (rows.len() * indexes.len()) as u64;
        self.indexes.insert(obj, indexes);
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::IndexDef;
    use crate::row::{Row, Value};
    use crate::types::{FileNo, RowId};

    fn blank_instance() -> Instance {
        Instance {
            catalog: Catalog::new(),
            cache: BufferCache::new(8),
            txns: TxnTable::new(),
            locks: LockTable::new(),
            indexes: FastMap::default(),
            redo: RedoState::new(0, 1, 0, 0),
            cursors: FastMap::default(),
            scn: Scn::ZERO,
            opened_at: SimTime::ZERO,
        }
    }

    #[test]
    fn scn_allocator_is_monotone() {
        let mut i = blank_instance();
        let a = i.next_scn();
        let b = i.next_scn();
        assert!(b > a);
    }

    #[test]
    fn rebuild_indexes_replaces_state() {
        let mut i = blank_instance();
        let defs = vec![IndexDef { name: "PK".into(), cols: vec![0], unique: true, ordered: true }];
        let rid = RowId { file: FileNo(1), block: 0, slot: 0 };
        i.rebuild_indexes_for(ObjectId(1), &defs, vec![(rid, Row::new(vec![Value::U64(5)]))]);
        let ix = &i.indexes[&ObjectId(1)][0];
        assert_eq!(ix.lookup(&[Value::U64(5)]), vec![rid]);
        // Rebuilding with nothing clears it.
        i.rebuild_indexes_for(ObjectId(1), &defs, Vec::new());
        assert_eq!(i.indexes[&ObjectId(1)][0].key_count(), 0);
    }
}
