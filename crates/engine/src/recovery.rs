//! Recovery: crash recovery, single-datafile media recovery, and
//! incomplete (point-in-time) recovery of the whole database.
//!
//! All three share one engine: *replay the redo stream*. They differ only
//! in where replay starts (checkpoint position, file recovery position, or
//! backup position), which records they apply (everything, one datafile,
//! or everything before a stop SCN) and what happens afterwards (open,
//! online the file, or `RESETLOGS`).
//!
//! The paper's Table 5 faults resolve through the first two (no committed
//! work lost — *complete* recovery); its Table 4 faults require the third
//! (the damage itself was a committed operation, so the tail of history is
//! sacrificed — *incomplete* recovery).

use std::collections::BTreeMap;
use std::sync::Arc;

use recobench_sim::SimTime;
use recobench_vfs::IoKind;

use crate::controlfile::{CkptRecord, SeqLocation};
use crate::error::{DbError, DbResult};
use crate::events::{EngineEvent, RecoveryPhase, RecoveryProcedure};
use crate::redo::{decode_stream_tolerant, RedoOp, RedoRecord};
use crate::server::DbServer;
use crate::txn::UndoOp;
use crate::types::{FileNo, RedoAddr, Scn, TxnId};

/// What a replay pass applied, for reporting and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Records applied to storage or the dictionary.
    pub applied: u64,
    /// Records scanned but skipped (before the start position, after the
    /// stop SCN, or filtered to another datafile).
    pub skipped: u64,
    /// Archive files read.
    pub archives_read: u64,
    /// Highest SCN seen.
    pub max_scn: Scn,
    /// Highest transaction id seen.
    pub max_txn: u64,
    /// Transactions rolled back because they never committed.
    pub rolled_back: u64,
}

/// Options for one replay pass.
#[derive(Debug, Clone, Copy)]
struct ReplayOpts {
    from: RedoAddr,
    /// Only redo available (online or archived) by this instant may be
    /// read — the crash time for crash recovery, "now" otherwise.
    available_at: SimTime,
    /// Stop before the first record with `scn >= stop_scn`.
    stop_scn: Option<Scn>,
    /// Apply only changes landing in this datafile (commit/rollback
    /// markers are always honoured).
    only_file: Option<FileNo>,
}

impl DbServer {
    /// Starts the instance: mount, open, and crash recovery if the last
    /// stop was not clean.
    ///
    /// # Errors
    ///
    /// Fails if already open, no database exists, or required redo is
    /// unavailable.
    // tidy-entry(recovery)
    pub fn startup(&mut self) -> DbResult<()> {
        if self.inst.is_some() {
            return Err(DbError::AlreadyOpen);
        }
        self.control_ref()?;
        // Sessions never survive an instance boundary; deferred undo does
        // (it belongs to the server, not the instance) so rollbacks parked
        // on an offline tablespace can still finish after a clean restart.
        self.sessions.clear();
        self.lock_grants.clear();
        let startup_began = self.clock.now();
        self.clock.advance(self.config.costs.instance_startup);
        self.clock.advance(self.config.costs.mount_open);
        self.events.record(
            self.clock.now(),
            EngineEvent::PhaseSpan {
                phase: RecoveryPhase::InstanceStartup,
                started_at: startup_began,
            },
        );
        let now = self.clock.now();
        let control = self.control_ref()?;
        let crash_time = control.stopped_at.unwrap_or(now);
        let clean = control.clean_shutdown;
        let ckpt = control.effective_checkpoint(crash_time).clone();
        let (group, seq, flushed) =
            (control.current_group, control.current_seq, control.current_flushed);
        self.inst = Some(self.fresh_instance((*ckpt.catalog).clone(), ckpt.scn, group, seq, flushed));
        self.control_mut()?.clean_shutdown = false;
        let mut recovered_records = 0;
        if !clean {
            let from = self.restore_fractured_datafiles(ckpt.position)?;
            let summary = self.replay(ReplayOpts {
                from,
                available_at: crash_time,
                stop_scn: None,
                only_file: None,
            })?;
            recovered_records = summary.applied;
            self.finish_crash_recovery(&summary)?;
            self.events.record(
                self.clock.now(),
                EngineEvent::RecoveryCompleted {
                    procedure: RecoveryProcedure::Crash,
                    records_applied: summary.applied,
                    archives_read: summary.archives_read,
                },
            );
        }
        self.finalize_open()?;
        self.events.record(self.clock.now(), EngineEvent::InstanceOpened { recovered_records });
        Ok(())
    }

    /// A crash can tear the very datafile write it interrupted, leaving a
    /// "fractured" block: half new image, half old, failing its checksum.
    /// The block's change history is durable in the redo stream, but the
    /// torn image is useless as a replay base — so any datafile caught in
    /// that state is restored from the cold backup and crash replay starts
    /// from the backup position instead of the checkpoint (idempotent SCN
    /// checks make the longer pass safe for healthy files). Returns the
    /// position replay must start from.
    ///
    /// Only *quiet* damage is repaired here: a readable file with a block
    /// that fails to decode. Loud damage (a deleted file) keeps its
    /// existing failure mode, and offline files stay media recovery's
    /// business.
    // tidy-entry(recovery)
    fn restore_fractured_datafiles(&mut self, from: RedoAddr) -> DbResult<RedoAddr> {
        let files: Vec<(FileNo, recobench_vfs::FileId, String)> = {
            let inst = self.inst.as_ref().ok_or(DbError::InstanceDown)?;
            inst.catalog
                .datafiles
                .iter()
                .map(|(no, df)| (*no, df.vfs_id, df.path.clone()))
                .collect()
        };
        let mut from = from;
        for (file_no, vfs_id, path) in files {
            let offline = {
                let control = self.control_ref()?;
                let df_ts = {
                    let inst = self.inst.as_ref().ok_or(DbError::InstanceDown)?;
                    inst.catalog
                        .datafiles
                        .get(&file_no)
                        .ok_or_else(|| DbError::NotFound(format!("datafile {file_no}")))?
                        .tablespace
                };
                control.file_state(file_no).offline || control.is_ts_offline(df_ts)
            };
            if offline {
                continue;
            }
            let readable = self.fs.lock().peek_blocks_written(vfs_id).is_ok();
            if !readable || !self.scan_for_bad_blocks(vfs_id, &path) {
                continue;
            }
            let backup = self.backup.as_ref().ok_or_else(|| {
                DbError::Unrecoverable(format!("datafile {path} torn by crash and no backup exists"))
            })?;
            let piece = backup.piece_for(file_no).ok_or_else(|| {
                DbError::Unrecoverable(format!("no backup piece for torn datafile {path}"))
            })?;
            let position = backup.position;
            let nominal = backup.nominal_bytes_per_file;
            let backup_disk = self.layout.backup_disk;
            let began = self.clock.now();
            {
                let mut fs = self.fs.lock();
                let done = fs.restore_into(piece, vfs_id, began)?;
                let file_disk = fs.meta(vfs_id)?.disk;
                let d1 = fs.charge_io(backup_disk, IoKind::Read, nominal, began)?;
                let d2 = fs.charge_io(file_disk, IoKind::Write, nominal, began)?;
                drop(fs);
                self.clock.advance_to(done.max(d1).max(d2));
            }
            self.events.record(
                self.clock.now(),
                EngineEvent::PhaseSpan { phase: RecoveryPhase::MediaRestore, started_at: began },
            );
            let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
            inst.cache.invalidate_file(file_no);
            from = from.min(position);
        }
        Ok(from)
    }

    fn finish_crash_recovery(&mut self, summary: &ReplaySummary) -> DbResult<()> {
        let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
        inst.scn = Scn(summary.max_scn.0 + 1_000);
        inst.txns.bump_past(summary.max_txn);
        self.txn_floor = self.txn_floor.max(summary.max_txn);
        Ok(())
    }

    /// Rebuilds indexes and insert cursors, takes the post-recovery
    /// checkpoint, and arms background work.
    pub(crate) fn finalize_open(&mut self) -> DbResult<()> {
        let objs: Vec<_> = {
            let inst = self.inst.as_ref().ok_or(DbError::InstanceDown)?;
            inst.catalog.tables.keys().copied().collect()
        };
        let mut tables = 0u64;
        let mut entries = 0u64;
        for obj in objs {
            let defs = {
                let inst = self.inst.as_ref().ok_or(DbError::InstanceDown)?;
                inst.catalog.table(obj)?.indexes.clone()
            };
            let rows = self.peek_scan(obj).unwrap_or_default();
            let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
            entries += inst.rebuild_indexes_for(obj, &defs, rows);
            tables += 1;
            let seg = inst.catalog.table(obj)?.segment.clone();
            let cursor = inst.cursors.entry(obj).or_default();
            *cursor = crate::heap::PlacementCursor::new();
            cursor.seek_last_extent(&seg);
        }
        self.events.record(self.clock.now(), EngineEvent::IndexesRebuilt { tables, entries });
        let done = self.full_checkpoint()?;
        self.clock.advance_to(done);
        self.next_dbwr_tick = self.clock.now() + self.config.dbwr_tick;
        Ok(())
    }

    /// Media recovery of one datafile: restore it from the backup if the
    /// file itself is damaged, then apply its redo from the recovery
    /// position and bring it online.
    ///
    /// # Errors
    ///
    /// Fails if there is no backup when one is needed, or if required redo
    /// has been overwritten without being archived.
    // tidy-entry(recovery)
    pub fn recover_datafile(&mut self, path: &str) -> DbResult<ReplaySummary> {
        self.poll();
        // Media recovery replays redo underneath live row versions; any
        // open transaction would see its uncommitted changes vanish, so
        // all sessions are severed first (their txns roll back).
        self.kill_all_sessions();
        self.flush_redo()?;
        let now = self.clock.now();
        let file_no = {
            let inst = self.inst.as_ref().ok_or(DbError::InstanceDown)?;
            inst.catalog.datafile_by_path(path)?
        };
        let (vfs_id, damaged) = {
            let inst = self.inst.as_ref().ok_or(DbError::InstanceDown)?;
            let df = inst
                .catalog
                .datafiles
                .get(&file_no)
                .ok_or_else(|| DbError::NotFound(format!("datafile {file_no}")))?;
            let fs = self.fs.lock();
            let damaged = match fs.meta(df.vfs_id) {
                Ok(m) => m.deleted || m.corrupt,
                Err(_) => true,
            };
            (df.vfs_id, damaged)
        };
        // Deletion and vfs-level corruption are loud; a torn write or
        // bit-rot is not — the file reads fine and only the per-block CRC
        // knows. Scan before concluding the file is healthy.
        let damaged = damaged || self.scan_for_bad_blocks(vfs_id, path);
        let from = if damaged {
            // Restore the file from the cold backup.
            let backup = self.backup.as_ref().ok_or_else(|| {
                DbError::Unrecoverable(format!("datafile {path} lost and no backup exists"))
            })?;
            let piece = backup.piece_for(file_no).ok_or_else(|| {
                DbError::Unrecoverable(format!("no backup piece for datafile {path}"))
            })?;
            let position = backup.position;
            let nominal = backup.nominal_bytes_per_file;
            let backup_disk = self.layout.backup_disk;
            {
                let mut fs = self.fs.lock();
                let done = fs.restore_into(piece, vfs_id, now)?;
                let file_disk = fs.meta(vfs_id)?.disk;
                let d1 = fs.charge_io(backup_disk, IoKind::Read, nominal, now)?;
                let d2 = fs.charge_io(file_disk, IoKind::Write, nominal, now)?;
                drop(fs);
                self.clock.advance_to(done.max(d1).max(d2));
            }
            self.events.record(
                self.clock.now(),
                EngineEvent::PhaseSpan { phase: RecoveryPhase::MediaRestore, started_at: now },
            );
            let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
            inst.cache.invalidate_file(file_no);
            position
        } else {
            let control = self.control_ref()?;
            control
                .file_state(file_no)
                .recover_from
                .unwrap_or_else(|| control.effective_checkpoint(now).position)
        };
        let summary = self.replay(ReplayOpts {
            from,
            available_at: self.clock.now(),
            stop_scn: None,
            only_file: Some(file_no),
        })?;
        // Bring the file online and persist its recovered blocks.
        {
            let st = self.control_mut()?.file_state_mut(file_no);
            st.offline = false;
            st.recover_from = None;
        }
        {
            let mut fs = self.fs.lock();
            let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
            let now = self.clock.now();
            let out = crate::checkpoint::write_dirty(
                &mut fs,
                &inst.catalog,
                &mut inst.cache,
                now,
                |k, _| k.0 == file_no,
            );
            self.stats.blocks_written += out.blocks;
            drop(fs);
            self.clock.advance_to(out.complete_at);
        }
        // Index entries for recovered rows may have diverged; rebuild.
        self.rebuild_all_indexes()?;
        // Rollback work deferred while this file's storage was unreachable
        // can complete now.
        self.drain_deferred_undo();
        self.clock.advance(self.config.costs.admin_command);
        self.events.record(
            self.clock.now(),
            EngineEvent::RecoveryCompleted {
                procedure: RecoveryProcedure::Media,
                records_applied: summary.applied,
                archives_read: summary.archives_read,
            },
        );
        Ok(summary)
    }

    /// Checksum-walks every written block of a datafile. Returns `true`
    /// if any block fails to decode (the file needs a restore), recording
    /// a [`EngineEvent::ChecksumMismatch`] for each CRC failure.
    fn scan_for_bad_blocks(&mut self, vfs_id: recobench_vfs::FileId, path: &str) -> bool {
        let blocks = {
            let fs = self.fs.lock();
            match fs.peek_blocks_written(vfs_id) {
                Ok(b) => b,
                // Unreadable at the vfs level — damaged by definition.
                Err(_) => return true,
            }
        };
        let mut bad = false;
        for (block, bytes) in blocks {
            if let Err(e) = crate::page::BlockImage::decode(bytes) {
                bad = true;
                if e.is_checksum_mismatch() {
                    self.stats.checksum_mismatches += 1;
                    self.events.record(
                        self.clock.now(),
                        EngineEvent::ChecksumMismatch { path: path.to_string(), block },
                    );
                }
            }
        }
        bad
    }

    fn rebuild_all_indexes(&mut self) -> DbResult<()> {
        let objs: Vec<_> = {
            let inst = self.inst.as_ref().ok_or(DbError::InstanceDown)?;
            inst.catalog.tables.keys().copied().collect()
        };
        let mut tables = 0u64;
        let mut entries = 0u64;
        for obj in objs {
            let defs = {
                let inst = self.inst.as_ref().ok_or(DbError::InstanceDown)?;
                inst.catalog.table(obj)?.indexes.clone()
            };
            let rows = self.peek_scan(obj).unwrap_or_default();
            let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
            entries += inst.rebuild_indexes_for(obj, &defs, rows);
            tables += 1;
        }
        self.events.record(self.clock.now(), EngineEvent::IndexesRebuilt { tables, entries });
        Ok(())
    }

    /// Incomplete point-in-time recovery: restore the whole database from
    /// the cold backup, roll forward to just before `stop_scn`, and open a
    /// new incarnation (`RESETLOGS`). Committed work after the stop point
    /// is lost — that is the price of undoing a committed mistake.
    ///
    /// # Errors
    ///
    /// Fails without a backup, or if the archive chain from the backup is
    /// broken.
    // tidy-entry(recovery)
    pub fn recover_database_until(&mut self, stop_scn: Scn) -> DbResult<ReplaySummary> {
        let backup = self.backup.as_ref().ok_or_else(|| {
            DbError::Unrecoverable("point-in-time recovery requires a backup".into())
        })?;
        let (b_position, b_scn, b_catalog, pieces, nominal) = (
            backup.position,
            backup.scn,
            Arc::clone(&backup.catalog),
            backup.pieces.clone(),
            backup.nominal_bytes_per_file,
        );
        // The damaged instance is taken down hard, and the new incarnation
        // starts with no clients and no pending undo: everything after the
        // stop point — including deferred rollbacks — is discarded.
        if self.inst.is_some() {
            self.shutdown_abort()?;
        }
        self.sessions.clear();
        self.lock_grants.clear();
        self.deferred_undo.clear();
        let startup_began = self.clock.now();
        self.clock.advance(self.config.costs.instance_startup);
        self.clock.advance(self.config.costs.mount_open);
        self.clock.advance(self.config.costs.admin_command);
        self.events.record(
            self.clock.now(),
            EngineEvent::PhaseSpan {
                phase: RecoveryPhase::InstanceStartup,
                started_at: startup_began,
            },
        );
        // Restore every datafile from its backup piece.
        let backup_disk = self.layout.backup_disk;
        {
            let now = self.clock.now();
            let mut fs = self.fs.lock();
            let mut last = now;
            for (file_no, df) in &b_catalog.datafiles {
                let Some(piece) = pieces.get(file_no) else { continue };
                let done = fs.restore_into(*piece, df.vfs_id, now)?;
                let file_disk = fs.meta(df.vfs_id)?.disk;
                let d1 = fs.charge_io(backup_disk, IoKind::Read, nominal, now)?;
                let d2 = fs.charge_io(file_disk, IoKind::Write, nominal, now)?;
                last = last.max(done).max(d1).max(d2);
            }
            drop(fs);
            self.clock.advance_to(last);
            self.events.record(
                self.clock.now(),
                EngineEvent::PhaseSpan { phase: RecoveryPhase::MediaRestore, started_at: now },
            );
        }
        // Reset runtime state to the backup's view of the world.
        {
            let now = self.clock.now();
            let control = self.control_mut()?;
            control.file_states.clear();
            control.ts_offline.clear();
            control.checkpoints = vec![CkptRecord {
                position: b_position,
                scn: b_scn,
                complete_at: now,
                catalog: Arc::clone(&b_catalog),
            }];
        }
        let (group, seq, flushed) = {
            let c = self.control_ref()?;
            (c.current_group, c.current_seq, c.current_flushed)
        };
        self.inst = Some(self.fresh_instance((*b_catalog).clone(), b_scn, group, seq, flushed));
        let summary = self.replay(ReplayOpts {
            from: b_position,
            available_at: self.clock.now(),
            stop_scn: Some(stop_scn),
            only_file: None,
        })?;
        {
            let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
            inst.scn = Scn(summary.max_scn.0.max(stop_scn.0) + 1_000);
            inst.txns.bump_past(summary.max_txn);
            self.txn_floor = self.txn_floor.max(summary.max_txn);
        }
        self.open_resetlogs()?;
        self.finalize_open()?;
        self.events.record(
            self.clock.now(),
            EngineEvent::RecoveryCompleted {
                procedure: RecoveryProcedure::Incomplete,
                records_applied: summary.applied,
                archives_read: summary.archives_read,
            },
        );
        Ok(summary)
    }

    /// `ALTER DATABASE OPEN RESETLOGS`: discard the online logs and start
    /// a new incarnation at the next sequence number.
    // tidy-entry(recovery)
    fn open_resetlogs(&mut self) -> DbResult<()> {
        let new_seq = {
            let control = self.control_ref()?;
            control.seqs.keys().next_back().copied().unwrap_or(0) + 1
        };
        {
            let group_files: Vec<_> =
                self.control_ref()?.groups.iter().map(|g| g.vfs_id).collect();
            {
                let mut fs = self.fs.lock();
                for id in group_files {
                    fs.truncate(id)?;
                }
            }
            let control = self.control_mut()?;
            for loc in control.seqs.values_mut() {
                loc.group = None;
            }
            control.seqs.insert(
                new_seq,
                SeqLocation {
                    group: Some(0),
                    archive: None,
                    archive_done_at: None,
                    released_at: None,
                    end_offset: None,
                },
            );
            control.current_group = 0;
            control.current_seq = new_seq;
            control.current_flushed = 0;
            control.incarnation += 1;
        }
        let overhead = self.config.costs.redo_overhead_bytes;
        let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
        inst.redo = crate::redo::RedoState::new(0, new_seq, 0, overhead);
        Ok(())
    }

    // ------------------------------------------------------------------
    // The replay engine
    // ------------------------------------------------------------------

    fn replay(&mut self, opts: ReplayOpts) -> DbResult<ReplaySummary> {
        let mut summary = ReplaySummary::default();
        let mut live: BTreeMap<TxnId, Vec<UndoOp>> = BTreeMap::new();
        let end_seq = self.control_ref()?.current_seq;
        let overhead = self.config.costs.redo_overhead_bytes;
        let mut stopped = false;
        for seq in opts.from.seq..=end_seq {
            if stopped {
                break;
            }
            let loc = match self.control_ref()?.seq(seq) {
                Some(l) => l.clone(),
                None => {
                    if seq == opts.from.seq && opts.from.offset == 0 {
                        continue;
                    }
                    return Err(DbError::Unrecoverable(format!("no record of log seq {seq}")));
                }
            };
            let start_offset = if seq == opts.from.seq { opts.from.offset } else { 0 };
            let scan_began = self.clock.now();
            let (segments, from_archive) = if let Some(group) = loc.group {
                let vfs_id = self
                    .control_ref()?
                    .groups
                    .get(group)
                    .ok_or_else(|| {
                        DbError::Unrecoverable(format!("log seq {seq} maps to a missing redo group"))
                    })?
                    .vfs_id;
                let now = self.clock.now();
                let mut fs = self.fs.lock();
                let (done, segs) = fs.read_from(vfs_id, start_offset, now)?;
                drop(fs);
                self.clock.advance_to(done);
                (segs, false)
            } else if let (Some(archive), Some(done_at)) = (loc.archive, loc.archive_done_at) {
                if done_at > opts.available_at {
                    return Err(DbError::Unrecoverable(format!(
                        "log seq {seq} was not archived in time"
                    )));
                }
                self.clock.advance(self.config.costs.archive_file_overhead);
                let now = self.clock.now();
                let mut fs = self.fs.lock();
                let (done, segs) = fs.read_from(archive, start_offset, now)?;
                drop(fs);
                self.clock.advance_to(done);
                summary.archives_read += 1;
                (segs, true)
            } else {
                return Err(DbError::Unrecoverable(format!(
                    "redo for log seq {seq} was overwritten and never archived"
                )));
            };
            self.events.record(
                self.clock.now(),
                EngineEvent::PhaseSpan { phase: RecoveryPhase::RedoScan, started_at: scan_began },
            );
            // A torn tail on the *current* log is what a crash mid-flush
            // leaves behind: Oracle treats the last intact record as
            // end-of-log and opens anyway. Anywhere earlier in the chain
            // the same damage means lost committed history — unrecoverable.
            let (records, truncated) = decode_stream_tolerant(&segments, overhead);
            if truncated && seq != end_seq {
                return Err(DbError::Unrecoverable(format!("log seq {seq} is corrupt")));
            }
            let applied_before = summary.applied;
            let skipped_before = summary.skipped;
            let apply_began = self.clock.now();
            for (offset, rec) in records {
                if offset < start_offset {
                    summary.skipped += 1;
                    self.clock.advance(self.config.costs.cpu_skip_record);
                    continue;
                }
                if let Some(stop) = opts.stop_scn {
                    if rec.scn >= stop {
                        stopped = true;
                        break;
                    }
                }
                let addr = RedoAddr { seq, offset };
                self.replay_one(&rec, addr, opts.only_file, &mut live, &mut summary)?;
            }
            self.events.record(
                self.clock.now(),
                EngineEvent::PhaseSpan { phase: RecoveryPhase::RedoApply, started_at: apply_began },
            );
            self.events.record(
                self.clock.now(),
                EngineEvent::SequenceReplayed {
                    seq,
                    applied: summary.applied - applied_before,
                    skipped: summary.skipped - skipped_before,
                    archived: from_archive,
                },
            );
        }
        // Roll back transactions that never resolved.
        let unresolved: Vec<(TxnId, Vec<UndoOp>)> = live.into_iter().collect();
        let rollback_began = self.clock.now();
        for (_txn, ops) in unresolved.iter().rev() {
            for op in ops.iter().rev() {
                self.apply_recovery_undo(op)?;
            }
        }
        summary.rolled_back = unresolved.iter().filter(|(_, ops)| !ops.is_empty()).count() as u64;
        if summary.rolled_back > 0 {
            self.events.record(
                self.clock.now(),
                EngineEvent::PhaseSpan {
                    phase: RecoveryPhase::TxnRollback,
                    started_at: rollback_began,
                },
            );
        }
        Ok(summary)
    }

    fn replay_one(
        &mut self,
        rec: &RedoRecord,
        addr: RedoAddr,
        only_file: Option<FileNo>,
        live: &mut BTreeMap<TxnId, Vec<UndoOp>>,
        summary: &mut ReplaySummary,
    ) -> DbResult<()> {
        summary.max_scn = summary.max_scn.max(rec.scn);
        if let Some(t) = rec.txn {
            summary.max_txn = summary.max_txn.max(t.0);
        }
        let relevant = match (only_file, rec.target_file()) {
            (None, _) => true,
            (Some(f), Some(target)) => f == target,
            // Markers and dictionary changes are always processed.
            (Some(_), None) => true,
        };
        if !relevant {
            summary.skipped += 1;
            self.clock.advance(self.config.costs.cpu_skip_record);
            return Ok(());
        }
        // Test-only broken-engine mode: silently drop the next armed
        // row-change record, exactly the class of bug the differential
        // oracle exists to catch. Markers are never dropped — a lost
        // commit marker fails loudly (rollback of committed work), a lost
        // row change is the silent corruption we want to prove detectable.
        #[cfg(any(test, feature = "sabotage"))]
        {
            if self.sabotage_skip_redo > 0
                && matches!(rec.op, RedoOp::Insert { .. } | RedoOp::Update { .. } | RedoOp::Delete { .. })
            {
                self.sabotage_skip_redo -= 1;
                summary.skipped += 1;
                self.clock.advance(self.config.costs.cpu_skip_record);
                return Ok(());
            }
        }
        match (&rec.op, rec.txn) {
            (RedoOp::Commit, Some(t)) | (RedoOp::Rollback, Some(t)) => {
                live.remove(&t);
                summary.applied += 1;
            }
            (RedoOp::Catalog(change), _) => {
                if only_file.is_none() {
                    let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
                    inst.catalog.apply(change);
                }
                summary.applied += 1;
            }
            (RedoOp::Insert { obj, rid, row }, txn) => {
                let key = (rid.file, rid.block);
                let scn = rec.scn;
                let row2 = row.clone();
                let applied = self.with_block_for_recovery(key, |img| {
                    if img.last_scn < scn {
                        img.put(rid.slot, row2, scn);
                        true
                    } else {
                        false
                    }
                })?;
                if applied {
                    let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
                    inst.cache.mark_dirty(key, addr, self.clock.now());
                }
                if let Some(t) = txn {
                    live.entry(t).or_default().push(UndoOp::UndoInsert { obj: *obj, rid: *rid });
                }
                summary.applied += 1;
            }
            (RedoOp::Update { obj, rid, before, after }, txn) => {
                let key = (rid.file, rid.block);
                let scn = rec.scn;
                let after2 = after.clone();
                let applied = self.with_block_for_recovery(key, |img| {
                    if img.last_scn < scn {
                        img.put(rid.slot, after2, scn);
                        true
                    } else {
                        false
                    }
                })?;
                if applied {
                    let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
                    inst.cache.mark_dirty(key, addr, self.clock.now());
                }
                if let Some(t) = txn {
                    live.entry(t).or_default().push(UndoOp::UndoUpdate {
                        obj: *obj,
                        rid: *rid,
                        before: before.clone(),
                    });
                }
                summary.applied += 1;
            }
            (RedoOp::Delete { obj, rid, before }, txn) => {
                let key = (rid.file, rid.block);
                let scn = rec.scn;
                let applied = self.with_block_for_recovery(key, |img| {
                    if img.last_scn < scn {
                        img.remove(rid.slot, scn);
                        true
                    } else {
                        false
                    }
                })?;
                if applied {
                    let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
                    inst.cache.mark_dirty(key, addr, self.clock.now());
                }
                if let Some(t) = txn {
                    live.entry(t).or_default().push(UndoOp::UndoDelete {
                        obj: *obj,
                        rid: *rid,
                        before: before.clone(),
                    });
                }
                summary.applied += 1;
            }
            (RedoOp::Commit, None) | (RedoOp::Rollback, None) => {
                summary.applied += 1;
            }
        }
        self.clock.advance(self.config.costs.cpu_apply_record);
        Ok(())
    }

    /// Applies an undo operation during recovery (no redo is written; the
    /// post-recovery checkpoint makes the result durable).
    fn apply_recovery_undo(&mut self, op: &UndoOp) -> DbResult<()> {
        type UndoAction = Box<dyn FnOnce(&mut crate::page::BlockImage, Scn)>;
        let (key, action): ((FileNo, u32), UndoAction) =
            match op {
                UndoOp::UndoInsert { rid, .. } => {
                    let slot = rid.slot;
                    ((rid.file, rid.block), Box::new(move |img, scn| {
                        img.remove(slot, scn);
                    }))
                }
                UndoOp::UndoUpdate { rid, before, .. } | UndoOp::UndoDelete { rid, before, .. } => {
                    let slot = rid.slot;
                    let before = before.clone();
                    ((rid.file, rid.block), Box::new(move |img, scn| {
                        img.put(slot, before, scn);
                    }))
                }
            };
        let scn = {
            let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
            inst.next_scn()
        };
        let addr = {
            let inst = self.inst.as_ref().ok_or(DbError::InstanceDown)?;
            inst.redo.tail()
        };
        // The file may be gone (dropped tablespace replay); skip silently.
        if self.with_block_for_recovery(key, |img| action(img, scn)).is_ok() {
            let inst = self.inst.as_mut().ok_or(DbError::InstanceDown)?;
            inst.cache.mark_dirty(key, addr, self.clock.now());
        }
        self.clock.advance(self.config.costs.cpu_apply_record);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::IndexDef;
    use crate::config::InstanceConfig;
    use crate::layout::DiskLayout;
    use crate::row::{Row, Value};
    use crate::types::ObjectId;
    use recobench_sim::SimClock;

    fn server(archive: bool) -> DbServer {
        let cfg = InstanceConfig::builder()
            .redo_file_bytes(64 * 1024)
            .redo_groups(3)
            .checkpoint_timeout_secs(60)
            .archive_mode(archive)
            .cache_blocks(64)
            .build();
        let mut srv = DbServer::on_fresh_disks("RT", SimClock::shared(), DiskLayout::four_disk(), cfg);
        srv.create_database().unwrap();
        srv
    }

    fn setup_table(srv: &mut DbServer) -> ObjectId {
        srv.create_user("tpcc").unwrap();
        srv.create_tablespace("TPCC", 2, 512).unwrap();
        srv.create_table(
            "T",
            "tpcc",
            "TPCC",
            vec![IndexDef { name: "PK".into(), cols: vec![0], unique: true, ordered: true }],
        )
        .unwrap()
    }

    fn row(k: u64, v: &str) -> Row {
        Row::new(vec![Value::U64(k), Value::from(v)])
    }

    #[test]
    fn crash_recovery_preserves_committed_loses_uncommitted() {
        let mut srv = server(true);
        let t = setup_table(&mut srv);
        let s1 = srv.connect().unwrap();
        let rid = srv.insert(s1, t, row(1, "committed")).unwrap();
        srv.commit(s1).unwrap();
        // An uncommitted transaction in flight at crash time.
        let s2 = srv.connect().unwrap();
        let rid2 = srv.insert(s2, t, row(2, "uncommitted")).unwrap();
        // Force its change into durable redo by flushing via another commit.
        let rid3 = srv.insert(s1, t, row(3, "also committed")).unwrap();
        srv.commit(s1).unwrap();

        srv.shutdown_abort().unwrap();
        srv.startup().unwrap();

        assert_eq!(srv.get_row(t, rid).unwrap(), row(1, "committed"));
        assert_eq!(srv.get_row(t, rid3).unwrap(), row(3, "also committed"));
        assert!(matches!(srv.get_row(t, rid2), Err(DbError::NoSuchRow(_))),
            "uncommitted insert must be rolled back");
        assert!(srv.lookup(t, 0, &[Value::U64(2)]).unwrap().is_empty());
        assert_eq!(srv.stats().crash_recoveries, 1);
        assert_eq!(srv.peek_scan(t).unwrap().len(), 2);
        assert!(!srv.session_exists(s2), "the crash severed every session");
    }

    #[test]
    fn crash_recovery_is_idempotent_across_repeated_crashes() {
        let mut srv = server(true);
        let t = setup_table(&mut srv);
        let s = srv.connect().unwrap();
        for i in 0..30 {
            srv.insert(s, t, row(i, "x")).unwrap();
            srv.commit(s).unwrap();
        }
        for _ in 0..3 {
            srv.shutdown_abort().unwrap();
            srv.startup().unwrap();
            assert_eq!(srv.peek_scan(t).unwrap().len(), 30);
        }
    }

    #[test]
    fn crash_recovery_survives_updates_and_deletes() {
        let mut srv = server(true);
        let t = setup_table(&mut srv);
        let s = srv.connect().unwrap();
        let a = srv.insert(s, t, row(1, "a")).unwrap();
        let b = srv.insert(s, t, row(2, "b")).unwrap();
        srv.commit(s).unwrap();
        srv.update(s, t, a, row(1, "a-v2")).unwrap();
        srv.delete(s, t, b).unwrap();
        srv.commit(s).unwrap();
        srv.shutdown_abort().unwrap();
        srv.startup().unwrap();
        assert_eq!(srv.get_row(t, a).unwrap(), row(1, "a-v2"));
        assert!(matches!(srv.get_row(t, b), Err(DbError::NoSuchRow(_))));
    }

    #[test]
    fn media_recovery_restores_deleted_datafile() {
        let mut srv = server(true);
        let t = setup_table(&mut srv);
        // Load some rows, back up, then more committed work. The cold
        // backup severs the first session, so a second one follows it.
        let s = srv.connect().unwrap();
        for i in 0..20 {
            srv.insert(s, t, row(i, "before-backup")).unwrap();
            srv.commit(s).unwrap();
        }
        srv.take_cold_backup().unwrap();
        assert!(!srv.session_exists(s), "cold backup quiesces all clients");
        let s = srv.connect().unwrap();
        for i in 20..40 {
            srv.insert(s, t, row(i, "after-backup")).unwrap();
            srv.commit(s).unwrap();
        }
        let paths = srv.datafile_paths("TPCC").unwrap();
        let victim = paths[0].clone();
        srv.os_delete_file(&victim).unwrap();
        srv.offline_datafile(&victim).unwrap();
        let summary = srv.recover_datafile(&victim).unwrap();
        assert!(summary.applied > 0);
        // All 40 committed rows visible again.
        assert_eq!(srv.peek_scan(t).unwrap().len(), 40);
        assert_eq!(srv.stats().media_recoveries, 1);
    }

    #[test]
    fn media_recovery_without_backup_fails_when_file_lost() {
        let mut srv = server(true);
        let _t = setup_table(&mut srv);
        let victim = srv.datafile_paths("TPCC").unwrap()[0].clone();
        srv.os_delete_file(&victim).unwrap();
        srv.offline_datafile(&victim).unwrap();
        let err = srv.recover_datafile(&victim).unwrap_err();
        assert!(matches!(err, DbError::Unrecoverable(_)));
    }

    #[test]
    fn offline_online_datafile_round_trip_with_recovery() {
        let mut srv = server(true);
        let t = setup_table(&mut srv);
        srv.take_cold_backup().unwrap();
        let s = srv.connect().unwrap();
        let rid = srv.insert(s, t, row(1, "x")).unwrap();
        srv.commit(s).unwrap();
        let victim = {
            let inst = srv.inst.as_ref().unwrap();
            inst.catalog.datafiles[&rid.file].path.clone()
        };
        srv.offline_datafile(&victim).unwrap();
        assert!(matches!(srv.get_row(t, rid), Err(DbError::DatafileOffline(_))));
        srv.recover_datafile(&victim).unwrap();
        assert_eq!(srv.get_row(t, rid).unwrap(), row(1, "x"));
    }

    #[test]
    fn pitr_undoes_a_committed_drop_and_loses_the_tail() {
        let mut srv = server(true);
        let t = setup_table(&mut srv);
        let s = srv.connect().unwrap();
        for i in 0..10 {
            srv.insert(s, t, row(i, "pre-backup")).unwrap();
            srv.commit(s).unwrap();
        }
        srv.take_cold_backup().unwrap();
        let s = srv.connect().unwrap();
        for i in 10..20 {
            srv.insert(s, t, row(i, "pre-fault")).unwrap();
            srv.commit(s).unwrap();
        }
        let stop = srv.current_scn().next();
        // The operator mistake: a committed DROP TABLE.
        srv.drop_table("T").unwrap();
        // Work committed after the fault (will be lost by PITR).
        let t2 = srv
            .create_table("T2", "tpcc", "TPCC",
                vec![IndexDef { name: "PK".into(), cols: vec![0], unique: true, ordered: true }])
            .unwrap();
        srv.insert(s, t2, row(1, "lost")).unwrap();
        srv.commit(s).unwrap();

        let summary = srv.recover_database_until(stop).unwrap();
        assert!(summary.applied > 0);
        // The dropped table is back with all 20 rows.
        let t_again = srv.table_id("T").unwrap();
        assert_eq!(t_again, t);
        assert_eq!(srv.peek_scan(t).unwrap().len(), 20);
        // The post-fault table is gone: its history was sacrificed.
        assert!(srv.table_id("T2").is_err());
        assert_eq!(srv.stats().incomplete_recoveries, 1);
        // The database remains usable in the new incarnation.
        let s = srv.connect().unwrap();
        srv.insert(s, t, row(100, "new-incarnation")).unwrap();
        srv.commit(s).unwrap();
        assert_eq!(srv.peek_scan(t).unwrap().len(), 21);
    }

    #[test]
    fn pitr_recovers_a_dropped_tablespace() {
        let mut srv = server(true);
        let t = setup_table(&mut srv);
        srv.take_cold_backup().unwrap();
        let s = srv.connect().unwrap();
        for i in 0..15 {
            srv.insert(s, t, row(i, "data")).unwrap();
            srv.commit(s).unwrap();
        }
        let stop = srv.current_scn().next();
        srv.drop_tablespace("TPCC").unwrap();
        let summary = srv.recover_database_until(stop).unwrap();
        assert!(summary.applied > 0);
        let t_again = srv.table_id("T").unwrap();
        assert_eq!(srv.peek_scan(t_again).unwrap().len(), 15);
    }

    #[test]
    fn recovery_without_archives_fails_after_log_reuse() {
        let mut srv = server(false); // NOARCHIVELOG
        let t = setup_table(&mut srv);
        srv.take_cold_backup().unwrap();
        // Enough work to cycle all three 64 KiB groups several times.
        let s = srv.connect().unwrap();
        for i in 0..400 {
            srv.insert(s, t, row(i, "spin-the-logs-around-plenty")).unwrap();
            srv.commit(s).unwrap();
        }
        assert!(srv.stats().log_switches > 3);
        let victim = srv.datafile_paths("TPCC").unwrap()[0].clone();
        srv.os_delete_file(&victim).unwrap();
        srv.offline_datafile(&victim).unwrap();
        let err = srv.recover_datafile(&victim).unwrap_err();
        assert!(
            matches!(err, DbError::Unrecoverable(_)),
            "redo was overwritten without archives; got {err:?}"
        );
    }
}
