//! In-memory indexes over heap rows.
//!
//! Indexes are maintained transactionally during normal operation and
//! rebuilt from the heap when an instance (re)opens. Their I/O is not
//! separately modelled: conceptually index blocks live in the same
//! datafiles as the heap (see DESIGN.md §2 for this simplification).

use std::borrow::Borrow;
use std::cell::RefCell;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::ops::Bound;

use crate::catalog::IndexDef;
use crate::error::{DbError, DbResult};
use crate::fasthash::FastMap;
use crate::row::{encode_key_into, encode_key_value, Row, Value};
use crate::types::RowId;

thread_local! {
    /// Scratch buffer for `&self` key probes. Thread-local rather than a
    /// per-index `RefCell` so `Index` stays `Sync`: campaign workers share
    /// read-only snapshot templates (which contain indexes) across threads.
    static PROBE_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Row addresses under one key. Almost every index key maps to exactly
/// one row (all but two TPC-C indexes are unique), so the single-rid
/// case stays inline and pays no heap allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
enum RidSet {
    One(RowId),
    Many(Vec<RowId>),
}

impl RidSet {
    fn as_slice(&self) -> &[RowId] {
        match self {
            RidSet::One(r) => std::slice::from_ref(r),
            RidSet::Many(v) => v.as_slice(),
        }
    }

    fn contains(&self, rid: &RowId) -> bool {
        self.as_slice().contains(rid)
    }

    fn is_empty(&self) -> bool {
        matches!(self, RidSet::Many(v) if v.is_empty())
    }

    fn len(&self) -> usize {
        match self {
            RidSet::One(_) => 1,
            RidSet::Many(v) => v.len(),
        }
    }

    fn push(&mut self, rid: RowId) {
        match self {
            RidSet::One(r) => *self = RidSet::Many(vec![*r, rid]),
            RidSet::Many(v) => v.push(rid),
        }
    }

    /// Removes `rid` if present; returns whether the set is now empty
    /// (the caller then removes the key).
    fn remove(&mut self, rid: RowId) -> bool {
        match self {
            RidSet::One(r) => *r == rid,
            RidSet::Many(v) => {
                v.retain(|x| *x != rid);
                v.is_empty()
            }
        }
    }
}

/// Encoded key bytes with inline storage for the common short key.
///
/// Encoded TPC-C keys are a handful of tag-prefixed integer columns
/// (9 bytes each), so nearly every key fits inline and tree descents
/// compare bytes stored in the node itself instead of chasing a heap
/// pointer per comparison. Long (string) keys spill to a `Vec`.
#[derive(Clone)]
enum KeyBuf {
    Inline(u8, [u8; KeyBuf::INLINE]),
    Heap(Vec<u8>),
}

impl KeyBuf {
    /// Four tagged u64 columns (36 bytes) — the widest numeric PK — fit.
    const INLINE: usize = 38;

    fn from_slice(b: &[u8]) -> Self {
        if b.len() <= Self::INLINE {
            let mut buf = [0u8; Self::INLINE];
            buf[..b.len()].copy_from_slice(b);
            KeyBuf::Inline(b.len() as u8, buf)
        } else {
            KeyBuf::Heap(b.to_vec())
        }
    }

    fn as_slice(&self) -> &[u8] {
        match self {
            KeyBuf::Inline(n, buf) => &buf[..*n as usize],
            KeyBuf::Heap(v) => v,
        }
    }
}

// Ordering delegates to the byte slice, which keeps `Ord` consistent
// with the `Borrow<[u8]>` impl below (a `BTreeMap` requirement).
impl PartialEq for KeyBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for KeyBuf {}

impl PartialOrd for KeyBuf {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for KeyBuf {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Borrow<[u8]> for KeyBuf {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for KeyBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

// Hashing also delegates to the byte slice, so hash-map probes by
// borrowed `&[u8]` land on the same bucket as the owned key.
impl std::hash::Hash for KeyBuf {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// Backing store for one index: sorted tree when the schema declares the
/// index range-scannable, fixed-seed hash map when every probe carries
/// the full key. The hash probe is several times cheaper than a tree
/// descent, and the fixed seed keeps iteration deterministic for a given
/// insertion sequence.
#[derive(Debug, Clone)]
enum KeyStore {
    Ordered(BTreeMap<KeyBuf, RidSet>),
    Point(FastMap<KeyBuf, RidSet>),
}

impl KeyStore {
    fn get(&self, key: &[u8]) -> Option<&RidSet> {
        match self {
            KeyStore::Ordered(m) => m.get(key),
            KeyStore::Point(m) => m.get(key),
        }
    }

    fn get_mut(&mut self, key: &[u8]) -> Option<&mut RidSet> {
        match self {
            KeyStore::Ordered(m) => m.get_mut(key),
            KeyStore::Point(m) => m.get_mut(key),
        }
    }

    fn remove_key(&mut self, key: &[u8]) {
        match self {
            KeyStore::Ordered(m) => {
                m.remove(key);
            }
            KeyStore::Point(m) => {
                m.remove(key);
            }
        }
    }

    /// The occupied-or-vacant insert step shared by [`Index::insert`] and
    /// [`Index::replace`]: one descent/probe covers the existence check
    /// and the insertion.
    fn insert_rid(&mut self, owned: KeyBuf, rid: RowId, unique: bool, name: &str) -> DbResult<()> {
        match self {
            KeyStore::Ordered(m) => match m.entry(owned) {
                Entry::Occupied(mut o) => Self::add_to(o.get_mut(), rid, unique, name),
                Entry::Vacant(v) => {
                    v.insert(RidSet::One(rid));
                    Ok(())
                }
            },
            KeyStore::Point(m) => match m.entry(owned) {
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    Self::add_to(o.get_mut(), rid, unique, name)
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(RidSet::One(rid));
                    Ok(())
                }
            },
        }
    }

    fn add_to(entry: &mut RidSet, rid: RowId, unique: bool, name: &str) -> DbResult<()> {
        if entry.contains(&rid) {
            Ok(())
        } else if unique && !entry.is_empty() {
            Err(DbError::DuplicateKey { index: name.to_string() })
        } else {
            entry.push(rid);
            Ok(())
        }
    }
}

/// One index: an ordered map from encoded key to row addresses.
///
/// Key probes encode into a reusable scratch buffer and look the map up
/// by borrowed `&[u8]`, so the per-probe `Vec<u8>` allocation the old
/// implementation paid is gone. Mutating operations reuse the index's own
/// buffers; `&self` probes use a thread-local one.
#[derive(Debug, Clone)]
pub struct Index {
    def: IndexDef,
    map: KeyStore,
    scratch: Vec<u8>,
    /// Second scratch for operations that need two keys at once
    /// ([`Index::replace`]).
    scratch2: Vec<u8>,
}

impl Index {
    /// Creates an empty index for `def`.
    pub fn new(def: IndexDef) -> Self {
        let map = if def.ordered {
            KeyStore::Ordered(BTreeMap::new())
        } else {
            KeyStore::Point(FastMap::default())
        };
        Index { def, map, scratch: Vec::with_capacity(32), scratch2: Vec::with_capacity(32) }
    }

    /// The definition this index implements.
    pub fn def(&self) -> &IndexDef {
        &self.def
    }

    /// Extracts this index's key from a row.
    ///
    /// Missing columns index as `Null` (rows shorter than the key spec).
    pub fn key_of(&self, row: &Row) -> Vec<u8> {
        let mut key = Vec::with_capacity(self.def.cols.len() * 9);
        self.key_of_into(row, &mut key);
        key
    }

    /// Encodes the row's key for this index into `out` (cleared first),
    /// without cloning any column values.
    fn key_of_into(&self, row: &Row, out: &mut Vec<u8>) {
        out.clear();
        for &c in &self.def.cols {
            encode_key_value(row.get(c).unwrap_or(&Value::Null), out);
        }
    }

    /// Whether an update from `before` to `after` moves this index's key.
    ///
    /// Compares the key columns directly, so callers can skip encoding
    /// (and uniqueness probes) for updates that leave the key in place.
    pub fn key_changed(&self, before: &Row, after: &Row) -> bool {
        self.def.cols.iter().any(|&c| {
            before.get(c).unwrap_or(&Value::Null) != after.get(c).unwrap_or(&Value::Null)
        })
    }

    /// Adds `rid` under the row's key.
    ///
    /// # Errors
    ///
    /// Fails with [`DbError::DuplicateKey`] on a unique index whose key is
    /// already mapped to a different row.
    pub fn insert(&mut self, row: &Row, rid: RowId) -> DbResult<()> {
        let mut key = std::mem::take(&mut self.scratch);
        self.key_of_into(row, &mut key);
        let owned = KeyBuf::from_slice(&key);
        self.scratch = key;
        // One descent/probe covers both the existence check and the
        // insertion; the inline key costs no allocation to build.
        self.map.insert_rid(owned, rid, self.def.unique, &self.def.name)
    }

    /// Rebuilds the index wholesale from `rows`, replacing any current
    /// contents. Equivalent to inserting every row in order (on a unique
    /// index a duplicate key keeps the first rid, exactly as repeated
    /// [`Index::insert`] calls would), but pays one sort over the extracted
    /// keys instead of a tree descent or hash probe per row — recovery
    /// rebuilds hundreds of thousands of entries, where the difference is
    /// a measurable slice of time-to-open.
    pub fn bulk_load(&mut self, rows: &[(RowId, Row)]) {
        let mut key = std::mem::take(&mut self.scratch);
        let mut pairs: Vec<(KeyBuf, RowId)> = Vec::with_capacity(rows.len());
        for (rid, row) in rows {
            self.key_of_into(row, &mut key);
            pairs.push((KeyBuf::from_slice(&key), *rid));
        }
        self.scratch = key;
        // Heap scans yield rows in rid order, so sorting by (key, rid)
        // reproduces the exact per-key rid order sequential inserts build.
        pairs.sort_unstable();
        let mut grouped: Vec<(KeyBuf, RidSet)> = Vec::with_capacity(pairs.len());
        for (k, rid) in pairs {
            match grouped.last_mut() {
                Some((last, set)) if *last == k => {
                    if !self.def.unique {
                        set.push(rid);
                    }
                }
                _ => grouped.push((k, RidSet::One(rid))),
            }
        }
        match &mut self.map {
            KeyStore::Ordered(m) => *m = grouped.into_iter().collect(),
            KeyStore::Point(m) => {
                let mut fresh = FastMap::default();
                fresh.reserve(grouped.len());
                fresh.extend(grouped);
                *m = fresh;
            }
        }
    }

    /// Moves `rid` from `before`'s key to `after`'s key — a no-op when the
    /// two keys are equal, which is the common UPDATE that does not touch
    /// any indexed column (no tree mutation, no allocation).
    ///
    /// # Errors
    ///
    /// Fails with [`DbError::DuplicateKey`] like [`Index::insert`] when the
    /// new key is taken on a unique index.
    pub fn replace(&mut self, before: &Row, after: &Row, rid: RowId) -> DbResult<()> {
        let mut old_key = std::mem::take(&mut self.scratch);
        let mut new_key = std::mem::take(&mut self.scratch2);
        self.key_of_into(before, &mut old_key);
        self.key_of_into(after, &mut new_key);
        if old_key == new_key {
            self.scratch = old_key;
            self.scratch2 = new_key;
            return Ok(());
        }
        if let Some(entry) = self.map.get_mut(old_key.as_slice()) {
            if entry.remove(rid) {
                self.map.remove_key(old_key.as_slice());
            }
        }
        self.scratch = old_key;
        let owned = KeyBuf::from_slice(&new_key);
        self.scratch2 = new_key;
        self.map.insert_rid(owned, rid, self.def.unique, &self.def.name)
    }

    /// Removes `rid` from under the row's key.
    pub fn remove(&mut self, row: &Row, rid: RowId) {
        let mut key = std::mem::take(&mut self.scratch);
        self.key_of_into(row, &mut key);
        if let Some(entry) = self.map.get_mut(key.as_slice()) {
            if entry.remove(rid) {
                self.map.remove_key(key.as_slice());
            }
        }
        self.scratch = key;
    }

    /// Row addresses with exactly the given key values, without cloning
    /// (empty slice when the key is absent).
    pub fn lookup_ref(&self, key_values: &[Value]) -> &[RowId] {
        PROBE_SCRATCH.with(|s| {
            let mut scratch = s.borrow_mut();
            scratch.clear();
            encode_key_into(key_values, &mut scratch);
            match self.map.get(scratch.as_slice()) {
                Some(rids) => rids.as_slice(),
                None => &[],
            }
        })
    }

    /// Row addresses with exactly the given key values.
    pub fn lookup(&self, key_values: &[Value]) -> Vec<RowId> {
        self.lookup_ref(key_values).to_vec()
    }

    /// Row addresses under the key this index extracts from `row`,
    /// without cloning any column values (empty slice when absent).
    pub fn lookup_row_ref(&self, row: &Row) -> &[RowId] {
        PROBE_SCRATCH.with(|s| {
            let mut scratch = s.borrow_mut();
            self.key_of_into(row, &mut scratch);
            match self.map.get(scratch.as_slice()) {
                Some(rids) => rids.as_slice(),
                None => &[],
            }
        })
    }

    /// Row addresses whose keys start with the given prefix values, in key
    /// order.
    pub fn prefix_scan(&self, prefix_values: &[Value]) -> Vec<RowId> {
        self.prefix_range(prefix_values)
            .flat_map(|(_, rids)| rids.as_slice().iter().copied())
            .collect()
    }

    /// The greatest key with the given prefix and its rows, if any
    /// (e.g. "latest order of this customer").
    pub fn last_under_prefix(&self, prefix_values: &[Value]) -> Option<(&[u8], &[RowId])> {
        self.prefix_range(prefix_values)
            .next_back()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
    }

    /// The smallest key with the given prefix and its rows, if any
    /// (e.g. "oldest undelivered order of this district") — O(log n)
    /// where a full [`Index::prefix_scan`] would walk the whole prefix.
    pub fn first_under_prefix(&self, prefix_values: &[Value]) -> Option<(&[u8], &[RowId])> {
        self.prefix_range(prefix_values).next().map(|(k, v)| (k.as_slice(), v.as_slice()))
    }

    fn prefix_range(
        &self,
        prefix_values: &[Value],
    ) -> std::collections::btree_map::Range<'_, KeyBuf, RidSet> {
        let KeyStore::Ordered(map) = &self.map else {
            // A prefix scan against a point index is a schema bug, not a
            // runtime condition: surface it loudly.
            panic!("range scan on point index {}", self.def.name);
        };
        PROBE_SCRATCH.with(|s| {
            let mut scratch = s.borrow_mut();
            scratch.clear();
            encode_key_into(prefix_values, &mut scratch);
            // Both bounds come from one buffer: the prefix, and the prefix
            // followed by 0xFF (which no encoded key byte at a value
            // boundary can reach). `range` consumes the bounds up front, so
            // the scratch guard can drop when this function returns.
            scratch.push(0xFF);
            let hi: &[u8] = &scratch;
            let lo: &[u8] = &hi[..hi.len() - 1];
            map.range::<[u8], _>((Bound::Included(lo), Bound::Excluded(hi)))
        })
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        match &self.map {
            KeyStore::Ordered(m) => m.len(),
            KeyStore::Point(m) => m.len(),
        }
    }

    /// Total number of `(key, rid)` entries across all keys.
    pub fn entry_count(&self) -> usize {
        match &self.map {
            KeyStore::Ordered(m) => m.values().map(RidSet::len).sum(),
            KeyStore::Point(m) => m.values().map(RidSet::len).sum(),
        }
    }

    /// All entries as `(encoded key, rids)` — in key order for ordered
    /// indexes, in (deterministic, fixed-seed) bucket order for point
    /// indexes. For the integrity walkers, which need to prove every
    /// entry points at a live heap row.
    pub fn entries(&self) -> Box<dyn Iterator<Item = (&[u8], &[RowId])> + '_> {
        match &self.map {
            KeyStore::Ordered(m) => Box::new(m.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))),
            KeyStore::Point(m) => Box::new(m.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FileNo;

    fn def(unique: bool) -> IndexDef {
        IndexDef { name: "IX".into(), cols: vec![0, 1], unique, ordered: true }
    }

    fn rid(b: u32) -> RowId {
        RowId { file: FileNo(1), block: b, slot: 0 }
    }

    fn row(a: u64, b: u64) -> Row {
        Row::new(vec![Value::U64(a), Value::U64(b), Value::from("payload")])
    }

    #[test]
    fn insert_lookup_remove() {
        let mut ix = Index::new(def(true));
        ix.insert(&row(1, 2), rid(0)).unwrap();
        assert_eq!(ix.lookup(&[Value::U64(1), Value::U64(2)]), vec![rid(0)]);
        ix.remove(&row(1, 2), rid(0));
        assert!(ix.lookup(&[Value::U64(1), Value::U64(2)]).is_empty());
        assert_eq!(ix.key_count(), 0);
    }

    #[test]
    fn unique_index_rejects_duplicates() {
        let mut ix = Index::new(def(true));
        ix.insert(&row(1, 2), rid(0)).unwrap();
        let err = ix.insert(&row(1, 2), rid(1)).unwrap_err();
        assert!(matches!(err, DbError::DuplicateKey { .. }));
        // Re-inserting the same rid is idempotent (recovery replays).
        ix.insert(&row(1, 2), rid(0)).unwrap();
        assert_eq!(ix.lookup(&[Value::U64(1), Value::U64(2)]).len(), 1);
    }

    #[test]
    fn non_unique_index_accumulates() {
        let mut ix = Index::new(def(false));
        ix.insert(&row(1, 2), rid(0)).unwrap();
        ix.insert(&row(1, 2), rid(1)).unwrap();
        assert_eq!(ix.lookup(&[Value::U64(1), Value::U64(2)]).len(), 2);
    }

    #[test]
    fn prefix_scan_is_ordered_and_bounded() {
        let mut ix = Index::new(def(false));
        ix.insert(&row(1, 3), rid(3)).unwrap();
        ix.insert(&row(1, 1), rid(1)).unwrap();
        ix.insert(&row(1, 2), rid(2)).unwrap();
        ix.insert(&row(2, 1), rid(9)).unwrap();
        assert_eq!(ix.prefix_scan(&[Value::U64(1)]), vec![rid(1), rid(2), rid(3)]);
    }

    #[test]
    fn last_under_prefix_finds_max() {
        let mut ix = Index::new(def(false));
        ix.insert(&row(7, 10), rid(1)).unwrap();
        ix.insert(&row(7, 42), rid(2)).unwrap();
        ix.insert(&row(8, 99), rid(3)).unwrap();
        let (_, rids) = ix.last_under_prefix(&[Value::U64(7)]).unwrap();
        assert_eq!(rids, &[rid(2)]);
        assert!(ix.last_under_prefix(&[Value::U64(9)]).is_none());
    }

    #[test]
    fn short_rows_key_as_null() {
        let mut ix = Index::new(def(false));
        let short = Row::new(vec![Value::U64(5)]);
        ix.insert(&short, rid(0)).unwrap();
        assert_eq!(ix.lookup(&[Value::U64(5), Value::Null]), vec![rid(0)]);
    }
}
