//! In-memory indexes over heap rows.
//!
//! Indexes are maintained transactionally during normal operation and
//! rebuilt from the heap when an instance (re)opens. Their I/O is not
//! separately modelled: conceptually index blocks live in the same
//! datafiles as the heap (see DESIGN.md §2 for this simplification).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::ops::Bound;

use crate::catalog::IndexDef;
use crate::error::{DbError, DbResult};
use crate::row::{encode_key_into, encode_key_value, Row, Value};
use crate::types::RowId;

/// One index: an ordered map from encoded key to row addresses.
///
/// Key probes encode into a reusable scratch buffer and look the map up
/// by borrowed `&[u8]`, so the per-probe `Vec<u8>` allocation the old
/// implementation paid is gone. The scratch lives in a `RefCell` because
/// probes take `&self`; the engine never probes one index re-entrantly.
#[derive(Debug, Clone)]
pub struct Index {
    def: IndexDef,
    map: BTreeMap<Vec<u8>, Vec<RowId>>,
    scratch: RefCell<Vec<u8>>,
    /// Second scratch for operations that need two keys at once
    /// ([`Index::replace`]).
    scratch2: RefCell<Vec<u8>>,
}

impl Index {
    /// Creates an empty index for `def`.
    pub fn new(def: IndexDef) -> Self {
        Index {
            def,
            map: BTreeMap::new(),
            scratch: RefCell::new(Vec::with_capacity(32)),
            scratch2: RefCell::new(Vec::with_capacity(32)),
        }
    }

    /// The definition this index implements.
    pub fn def(&self) -> &IndexDef {
        &self.def
    }

    /// Extracts this index's key from a row.
    ///
    /// Missing columns index as `Null` (rows shorter than the key spec).
    pub fn key_of(&self, row: &Row) -> Vec<u8> {
        let mut key = Vec::with_capacity(self.def.cols.len() * 9);
        self.key_of_into(row, &mut key);
        key
    }

    /// Encodes the row's key for this index into `out` (cleared first),
    /// without cloning any column values.
    fn key_of_into(&self, row: &Row, out: &mut Vec<u8>) {
        out.clear();
        for &c in &self.def.cols {
            encode_key_value(row.get(c).unwrap_or(&Value::Null), out);
        }
    }

    /// Adds `rid` under the row's key.
    ///
    /// # Errors
    ///
    /// Fails with [`DbError::DuplicateKey`] on a unique index whose key is
    /// already mapped to a different row.
    pub fn insert(&mut self, row: &Row, rid: RowId) -> DbResult<()> {
        let mut key = std::mem::take(&mut *self.scratch.borrow_mut());
        self.key_of_into(row, &mut key);
        // Probe by borrowed slice first; only a genuinely new key pays the
        // map-key allocation (and then keeps it, so the scratch is given
        // a fresh vector).
        if let Some(entry) = self.map.get_mut(key.as_slice()) {
            let result = if entry.contains(&rid) {
                Ok(())
            } else if self.def.unique && !entry.is_empty() {
                Err(DbError::DuplicateKey { index: self.def.name.clone() })
            } else {
                entry.push(rid);
                Ok(())
            };
            *self.scratch.borrow_mut() = key;
            return result;
        }
        self.map.insert(key, vec![rid]);
        Ok(())
    }

    /// Moves `rid` from `before`'s key to `after`'s key — a no-op when the
    /// two keys are equal, which is the common UPDATE that does not touch
    /// any indexed column (no tree mutation, no allocation).
    ///
    /// # Errors
    ///
    /// Fails with [`DbError::DuplicateKey`] like [`Index::insert`] when the
    /// new key is taken on a unique index.
    pub fn replace(&mut self, before: &Row, after: &Row, rid: RowId) -> DbResult<()> {
        let mut old_key = std::mem::take(&mut *self.scratch.borrow_mut());
        let mut new_key = std::mem::take(&mut *self.scratch2.borrow_mut());
        self.key_of_into(before, &mut old_key);
        self.key_of_into(after, &mut new_key);
        if old_key == new_key {
            *self.scratch.borrow_mut() = old_key;
            *self.scratch2.borrow_mut() = new_key;
            return Ok(());
        }
        if let Some(entry) = self.map.get_mut(old_key.as_slice()) {
            entry.retain(|r| *r != rid);
            if entry.is_empty() {
                self.map.remove(old_key.as_slice());
            }
        }
        *self.scratch.borrow_mut() = old_key;
        if let Some(entry) = self.map.get_mut(new_key.as_slice()) {
            let result = if entry.contains(&rid) {
                Ok(())
            } else if self.def.unique && !entry.is_empty() {
                Err(DbError::DuplicateKey { index: self.def.name.clone() })
            } else {
                entry.push(rid);
                Ok(())
            };
            *self.scratch2.borrow_mut() = new_key;
            return result;
        }
        self.map.insert(new_key, vec![rid]);
        Ok(())
    }

    /// Removes `rid` from under the row's key.
    pub fn remove(&mut self, row: &Row, rid: RowId) {
        let mut key = std::mem::take(&mut *self.scratch.borrow_mut());
        self.key_of_into(row, &mut key);
        if let Some(entry) = self.map.get_mut(key.as_slice()) {
            entry.retain(|r| *r != rid);
            if entry.is_empty() {
                self.map.remove(key.as_slice());
            }
        }
        *self.scratch.borrow_mut() = key;
    }

    /// Row addresses with exactly the given key values, without cloning
    /// (empty slice when the key is absent).
    pub fn lookup_ref(&self, key_values: &[Value]) -> &[RowId] {
        let mut scratch = self.scratch.borrow_mut();
        scratch.clear();
        encode_key_into(key_values, &mut scratch);
        match self.map.get(scratch.as_slice()) {
            Some(rids) => rids.as_slice(),
            None => &[],
        }
    }

    /// Row addresses with exactly the given key values.
    pub fn lookup(&self, key_values: &[Value]) -> Vec<RowId> {
        self.lookup_ref(key_values).to_vec()
    }

    /// Row addresses under the key this index extracts from `row`,
    /// without cloning any column values (empty slice when absent).
    pub fn lookup_row_ref(&self, row: &Row) -> &[RowId] {
        let mut scratch = self.scratch.borrow_mut();
        self.key_of_into(row, &mut scratch);
        match self.map.get(scratch.as_slice()) {
            Some(rids) => rids.as_slice(),
            None => &[],
        }
    }

    /// Row addresses whose keys start with the given prefix values, in key
    /// order.
    pub fn prefix_scan(&self, prefix_values: &[Value]) -> Vec<RowId> {
        self.prefix_range(prefix_values)
            .flat_map(|(_, rids)| rids.iter().copied())
            .collect()
    }

    /// The greatest key with the given prefix and its rows, if any
    /// (e.g. "latest order of this customer").
    pub fn last_under_prefix(&self, prefix_values: &[Value]) -> Option<(&[u8], &[RowId])> {
        self.prefix_range(prefix_values)
            .next_back()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
    }

    fn prefix_range(
        &self,
        prefix_values: &[Value],
    ) -> std::collections::btree_map::Range<'_, Vec<u8>, Vec<RowId>> {
        let mut scratch = self.scratch.borrow_mut();
        scratch.clear();
        encode_key_into(prefix_values, &mut scratch);
        // Both bounds come from one buffer: the prefix, and the prefix
        // followed by 0xFF (which no encoded key byte at a value boundary
        // can reach). `range` consumes the bounds up front, so the scratch
        // guard can drop when this function returns.
        scratch.push(0xFF);
        let hi: &[u8] = &scratch;
        let lo: &[u8] = &hi[..hi.len() - 1];
        self.map.range::<[u8], _>((Bound::Included(lo), Bound::Excluded(hi)))
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Total number of `(key, rid)` entries across all keys.
    pub fn entry_count(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// All entries as `(encoded key, rids)`, in key order — for the
    /// integrity walkers, which need to prove every entry points at a
    /// live heap row.
    pub fn entries(&self) -> impl Iterator<Item = (&[u8], &[RowId])> {
        self.map.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FileNo;

    fn def(unique: bool) -> IndexDef {
        IndexDef { name: "IX".into(), cols: vec![0, 1], unique }
    }

    fn rid(b: u32) -> RowId {
        RowId { file: FileNo(1), block: b, slot: 0 }
    }

    fn row(a: u64, b: u64) -> Row {
        Row::new(vec![Value::U64(a), Value::U64(b), Value::from("payload")])
    }

    #[test]
    fn insert_lookup_remove() {
        let mut ix = Index::new(def(true));
        ix.insert(&row(1, 2), rid(0)).unwrap();
        assert_eq!(ix.lookup(&[Value::U64(1), Value::U64(2)]), vec![rid(0)]);
        ix.remove(&row(1, 2), rid(0));
        assert!(ix.lookup(&[Value::U64(1), Value::U64(2)]).is_empty());
        assert_eq!(ix.key_count(), 0);
    }

    #[test]
    fn unique_index_rejects_duplicates() {
        let mut ix = Index::new(def(true));
        ix.insert(&row(1, 2), rid(0)).unwrap();
        let err = ix.insert(&row(1, 2), rid(1)).unwrap_err();
        assert!(matches!(err, DbError::DuplicateKey { .. }));
        // Re-inserting the same rid is idempotent (recovery replays).
        ix.insert(&row(1, 2), rid(0)).unwrap();
        assert_eq!(ix.lookup(&[Value::U64(1), Value::U64(2)]).len(), 1);
    }

    #[test]
    fn non_unique_index_accumulates() {
        let mut ix = Index::new(def(false));
        ix.insert(&row(1, 2), rid(0)).unwrap();
        ix.insert(&row(1, 2), rid(1)).unwrap();
        assert_eq!(ix.lookup(&[Value::U64(1), Value::U64(2)]).len(), 2);
    }

    #[test]
    fn prefix_scan_is_ordered_and_bounded() {
        let mut ix = Index::new(def(false));
        ix.insert(&row(1, 3), rid(3)).unwrap();
        ix.insert(&row(1, 1), rid(1)).unwrap();
        ix.insert(&row(1, 2), rid(2)).unwrap();
        ix.insert(&row(2, 1), rid(9)).unwrap();
        assert_eq!(ix.prefix_scan(&[Value::U64(1)]), vec![rid(1), rid(2), rid(3)]);
    }

    #[test]
    fn last_under_prefix_finds_max() {
        let mut ix = Index::new(def(false));
        ix.insert(&row(7, 10), rid(1)).unwrap();
        ix.insert(&row(7, 42), rid(2)).unwrap();
        ix.insert(&row(8, 99), rid(3)).unwrap();
        let (_, rids) = ix.last_under_prefix(&[Value::U64(7)]).unwrap();
        assert_eq!(rids, &[rid(2)]);
        assert!(ix.last_under_prefix(&[Value::U64(9)]).is_none());
    }

    #[test]
    fn short_rows_key_as_null() {
        let mut ix = Index::new(def(false));
        let short = Row::new(vec![Value::U64(5)]);
        ix.insert(&short, rid(0)).unwrap();
        assert_eq!(ix.lookup(&[Value::U64(5), Value::Null]), vec![rid(0)]);
    }
}
