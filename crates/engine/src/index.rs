//! In-memory indexes over heap rows.
//!
//! Indexes are maintained transactionally during normal operation and
//! rebuilt from the heap when an instance (re)opens. Their I/O is not
//! separately modelled: conceptually index blocks live in the same
//! datafiles as the heap (see DESIGN.md §2 for this simplification).

use std::collections::BTreeMap;
use std::ops::Bound;

use crate::catalog::IndexDef;
use crate::error::{DbError, DbResult};
use crate::row::{encode_key, Row, Value};
use crate::types::RowId;

/// One index: an ordered map from encoded key to row addresses.
#[derive(Debug, Clone)]
pub struct Index {
    def: IndexDef,
    map: BTreeMap<Vec<u8>, Vec<RowId>>,
}

impl Index {
    /// Creates an empty index for `def`.
    pub fn new(def: IndexDef) -> Self {
        Index { def, map: BTreeMap::new() }
    }

    /// The definition this index implements.
    pub fn def(&self) -> &IndexDef {
        &self.def
    }

    /// Extracts this index's key from a row.
    ///
    /// Missing columns index as `Null` (rows shorter than the key spec).
    pub fn key_of(&self, row: &Row) -> Vec<u8> {
        let values: Vec<Value> =
            self.def.cols.iter().map(|&c| row.get(c).cloned().unwrap_or(Value::Null)).collect();
        encode_key(&values)
    }

    /// Adds `rid` under the row's key.
    ///
    /// # Errors
    ///
    /// Fails with [`DbError::DuplicateKey`] on a unique index whose key is
    /// already mapped to a different row.
    pub fn insert(&mut self, row: &Row, rid: RowId) -> DbResult<()> {
        let key = self.key_of(row);
        let entry = self.map.entry(key).or_default();
        if entry.contains(&rid) {
            return Ok(());
        }
        if self.def.unique && !entry.is_empty() {
            return Err(DbError::DuplicateKey { index: self.def.name.clone() });
        }
        entry.push(rid);
        Ok(())
    }

    /// Removes `rid` from under the row's key.
    pub fn remove(&mut self, row: &Row, rid: RowId) {
        let key = self.key_of(row);
        if let Some(entry) = self.map.get_mut(&key) {
            entry.retain(|r| *r != rid);
            if entry.is_empty() {
                self.map.remove(&key);
            }
        }
    }

    /// Row addresses with exactly the given key values.
    pub fn lookup(&self, key_values: &[Value]) -> Vec<RowId> {
        self.map.get(&encode_key(key_values)).cloned().unwrap_or_default()
    }

    /// Row addresses whose keys start with the given prefix values, in key
    /// order.
    pub fn prefix_scan(&self, prefix_values: &[Value]) -> Vec<RowId> {
        let lo = encode_key(prefix_values);
        let mut hi = lo.clone();
        hi.push(0xFF);
        self.map
            .range((Bound::Included(lo), Bound::Excluded(hi)))
            .flat_map(|(_, rids)| rids.iter().copied())
            .collect()
    }

    /// The greatest key with the given prefix and its rows, if any
    /// (e.g. "latest order of this customer").
    pub fn last_under_prefix(&self, prefix_values: &[Value]) -> Option<(&[u8], &[RowId])> {
        let lo = encode_key(prefix_values);
        let mut hi = lo.clone();
        hi.push(0xFF);
        self.map
            .range((Bound::Included(lo), Bound::Excluded(hi)))
            .next_back()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FileNo;

    fn def(unique: bool) -> IndexDef {
        IndexDef { name: "IX".into(), cols: vec![0, 1], unique }
    }

    fn rid(b: u32) -> RowId {
        RowId { file: FileNo(1), block: b, slot: 0 }
    }

    fn row(a: u64, b: u64) -> Row {
        Row::new(vec![Value::U64(a), Value::U64(b), Value::from("payload")])
    }

    #[test]
    fn insert_lookup_remove() {
        let mut ix = Index::new(def(true));
        ix.insert(&row(1, 2), rid(0)).unwrap();
        assert_eq!(ix.lookup(&[Value::U64(1), Value::U64(2)]), vec![rid(0)]);
        ix.remove(&row(1, 2), rid(0));
        assert!(ix.lookup(&[Value::U64(1), Value::U64(2)]).is_empty());
        assert_eq!(ix.key_count(), 0);
    }

    #[test]
    fn unique_index_rejects_duplicates() {
        let mut ix = Index::new(def(true));
        ix.insert(&row(1, 2), rid(0)).unwrap();
        let err = ix.insert(&row(1, 2), rid(1)).unwrap_err();
        assert!(matches!(err, DbError::DuplicateKey { .. }));
        // Re-inserting the same rid is idempotent (recovery replays).
        ix.insert(&row(1, 2), rid(0)).unwrap();
        assert_eq!(ix.lookup(&[Value::U64(1), Value::U64(2)]).len(), 1);
    }

    #[test]
    fn non_unique_index_accumulates() {
        let mut ix = Index::new(def(false));
        ix.insert(&row(1, 2), rid(0)).unwrap();
        ix.insert(&row(1, 2), rid(1)).unwrap();
        assert_eq!(ix.lookup(&[Value::U64(1), Value::U64(2)]).len(), 2);
    }

    #[test]
    fn prefix_scan_is_ordered_and_bounded() {
        let mut ix = Index::new(def(false));
        ix.insert(&row(1, 3), rid(3)).unwrap();
        ix.insert(&row(1, 1), rid(1)).unwrap();
        ix.insert(&row(1, 2), rid(2)).unwrap();
        ix.insert(&row(2, 1), rid(9)).unwrap();
        assert_eq!(ix.prefix_scan(&[Value::U64(1)]), vec![rid(1), rid(2), rid(3)]);
    }

    #[test]
    fn last_under_prefix_finds_max() {
        let mut ix = Index::new(def(false));
        ix.insert(&row(7, 10), rid(1)).unwrap();
        ix.insert(&row(7, 42), rid(2)).unwrap();
        ix.insert(&row(8, 99), rid(3)).unwrap();
        let (_, rids) = ix.last_under_prefix(&[Value::U64(7)]).unwrap();
        assert_eq!(rids, &[rid(2)]);
        assert!(ix.last_under_prefix(&[Value::U64(9)]).is_none());
    }

    #[test]
    fn short_rows_key_as_null() {
        let mut ix = Index::new(def(false));
        let short = Row::new(vec![Value::U64(5)]);
        ix.insert(&short, rid(0)).unwrap();
        assert_eq!(ix.lookup(&[Value::U64(5), Value::Null]), vec![rid(0)]);
    }
}
