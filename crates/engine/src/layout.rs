//! Physical placement of database files over the simulated disks.

use recobench_sim::DiskProfile;
use recobench_vfs::{DiskId, SimFs};
use serde::{Deserialize, Serialize};

/// Which simulated disk holds which class of file.
///
/// The default mirrors the paper's testbed: four disks per server, with
/// datafiles spread over two spindles, the online redo logs on their own
/// spindle (so log writes do not seek against data I/O), and archives plus
/// backups on the fourth.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskLayout {
    /// Disks that hold datafiles (round-robin placement).
    pub data_disks: Vec<DiskId>,
    /// Disk that holds every online redo log group.
    pub redo_disk: DiskId,
    /// Disk that receives archived logs.
    pub archive_disk: DiskId,
    /// Disk that holds backup pieces.
    pub backup_disk: DiskId,
}

impl DiskLayout {
    /// The paper's four-disk layout: data on disks 0–1, redo on 2,
    /// archive and backup on 3.
    pub fn four_disk() -> Self {
        DiskLayout {
            data_disks: vec![DiskId(0), DiskId(1)],
            redo_disk: DiskId(2),
            archive_disk: DiskId(3),
            backup_disk: DiskId(3),
        }
    }

    /// A deliberately bad layout with everything on one spindle — used by
    /// ablation benches for the "incorrect distribution of files through
    /// disks" operator-fault class.
    pub fn single_disk() -> Self {
        DiskLayout {
            data_disks: vec![DiskId(0)],
            redo_disk: DiskId(0),
            archive_disk: DiskId(0),
            backup_disk: DiskId(0),
        }
    }

    /// Data disk for the `i`-th datafile (round-robin).
    pub fn data_disk_for(&self, i: usize) -> DiskId {
        self.data_disks[i % self.data_disks.len()]
    }

    /// Number of distinct disks the layout requires.
    pub fn disks_required(&self) -> usize {
        let mut max = self.redo_disk.0.max(self.archive_disk.0).max(self.backup_disk.0);
        for d in &self.data_disks {
            max = max.max(d.0);
        }
        max + 1
    }

    /// Creates a fresh simulated filesystem with enough identical disks
    /// for this layout.
    pub fn build_fs(&self, profile: DiskProfile) -> SimFs {
        SimFs::new(vec![profile; self.disks_required()])
    }
}

impl Default for DiskLayout {
    fn default() -> Self {
        Self::four_disk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_disk_layout_shape() {
        let l = DiskLayout::four_disk();
        assert_eq!(l.disks_required(), 4);
        assert_eq!(l.data_disk_for(0), DiskId(0));
        assert_eq!(l.data_disk_for(1), DiskId(1));
        assert_eq!(l.data_disk_for(2), DiskId(0));
    }

    #[test]
    fn single_disk_layout_shape() {
        let l = DiskLayout::single_disk();
        assert_eq!(l.disks_required(), 1);
        assert_eq!(l.redo_disk, l.archive_disk);
    }

    #[test]
    fn build_fs_provisions_disks() {
        let fs = DiskLayout::four_disk().build_fs(DiskProfile::server_2000());
        assert_eq!(fs.disk_ids().len(), 4);
    }
}
