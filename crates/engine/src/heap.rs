//! Heap placement: where the next row of a table goes.
//!
//! Each open table has a [`PlacementCursor`] walking its segment's blocks
//! in order; when the segment is exhausted a new extent is planned with
//! [`plan_extent`] (round-robin over the tablespace's datafiles, at each
//! file's allocation high-water mark).

use crate::catalog::{Catalog, Extent, Segment};
use crate::error::{DbError, DbResult};
use crate::types::{FileNo, ObjectId};

/// Number of blocks allocated per extent.
pub const EXTENT_BLOCKS: u32 = 64;

/// A table's insert position within its segment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlacementCursor {
    extent: usize,
    offset: u32,
}

impl PlacementCursor {
    /// A cursor at the start of the segment.
    pub fn new() -> Self {
        PlacementCursor::default()
    }

    /// The block the cursor points at, or `None` if the segment is
    /// exhausted.
    pub fn current(&self, seg: &Segment) -> Option<(FileNo, u32)> {
        let e = seg.extents.get(self.extent)?;
        if self.offset < e.len {
            Some((e.file, e.start + self.offset))
        } else {
            None
        }
    }

    /// Moves to the next block in the segment. Returns `false` when the
    /// segment is exhausted.
    pub fn advance(&mut self, seg: &Segment) -> bool {
        match seg.extents.get(self.extent) {
            None => false,
            Some(e) => {
                self.offset += 1;
                if self.offset >= e.len {
                    self.extent += 1;
                    self.offset = 0;
                }
                self.extent < seg.extents.len()
            }
        }
    }

    /// Positions the cursor at the last extent (used after reopening a
    /// table so inserts resume near the end rather than rescanning).
    pub fn seek_last_extent(&mut self, seg: &Segment) {
        self.extent = seg.extents.len().saturating_sub(1);
        self.offset = 0;
    }
}

/// Plans the next extent for `table`: picks the tablespace datafile with
/// the fewest blocks allocated (round-robin effect) and carves
/// [`EXTENT_BLOCKS`] blocks at its high-water mark.
///
/// # Errors
///
/// Fails if the table or its tablespace is gone, if the tablespace has no
/// datafiles, or if every datafile is full (the "let the storage run out
/// of space" operator-fault class).
pub fn plan_extent(catalog: &Catalog, table: ObjectId) -> DbResult<Extent> {
    let tdef = catalog.table(table)?;
    let ts = catalog
        .tablespaces
        .get(&tdef.tablespace)
        .ok_or_else(|| DbError::NotFound(format!("tablespace of {}", tdef.name)))?;
    if ts.files.is_empty() {
        return Err(DbError::NotFound(format!("datafiles in tablespace {}", ts.name)));
    }
    let mut best: Option<(FileNo, u32, u64)> = None; // (file, high_water, free)
    for &f in &ts.files {
        let df = match catalog.datafiles.get(&f) {
            Some(d) => d,
            None => continue,
        };
        let hw = catalog.file_high_water.get(&f).copied().unwrap_or(0);
        let free = df.blocks.saturating_sub(hw as u64);
        if free >= EXTENT_BLOCKS as u64 {
            let better = match best {
                None => true,
                Some((_, bhw, _)) => hw < bhw,
            };
            if better {
                best = Some((f, hw, free));
            }
        }
    }
    let (file, hw, _) = best.ok_or_else(|| {
        DbError::BadAdminCommand(format!("tablespace {} is out of space", ts.name))
    })?;
    Ok(Extent { file, start: hw, len: EXTENT_BLOCKS })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{CatalogChange, DatafileDef, IndexDef};
    use crate::types::{TablespaceId, UserId};
    use recobench_vfs::FileId;

    fn catalog_with_files(blocks_per_file: u64, nfiles: u32) -> Catalog {
        let mut c = Catalog::new();
        c.apply(&CatalogChange::CreateTablespace { id: TablespaceId(1), name: "TPCC".into() });
        for i in 1..=nfiles {
            c.apply(&CatalogChange::AddDatafile {
                file_no: FileNo(i),
                def: DatafileDef {
                    path: format!("/u0{}/t{}.dbf", i % 2 + 1, i),
                    vfs_id: FileId(i as u64),
                    tablespace: TablespaceId(1),
                    blocks: blocks_per_file,
                },
            });
        }
        c.apply(&CatalogChange::CreateTable {
            id: ObjectId(1),
            name: "T".into(),
            owner: UserId(1),
            tablespace: TablespaceId(1),
            indexes: vec![IndexDef { name: "PK".into(), cols: vec![0], unique: true, ordered: true }],
        });
        c
    }

    #[test]
    fn cursor_walks_segment_in_order() {
        let seg = Segment {
            extents: vec![
                Extent { file: FileNo(1), start: 0, len: 2 },
                Extent { file: FileNo(2), start: 4, len: 1 },
            ],
        };
        let mut cur = PlacementCursor::new();
        let mut seen = vec![cur.current(&seg).unwrap()];
        while cur.advance(&seg) {
            seen.push(cur.current(&seg).unwrap());
        }
        assert_eq!(seen, vec![(FileNo(1), 0), (FileNo(1), 1), (FileNo(2), 4)]);
        assert_eq!(cur.current(&seg), None);
    }

    #[test]
    fn plan_extent_round_robins_files() {
        let mut c = catalog_with_files(1024, 2);
        let e1 = plan_extent(&c, ObjectId(1)).unwrap();
        c.apply(&CatalogChange::AllocExtent { table: ObjectId(1), extent: e1 });
        let e2 = plan_extent(&c, ObjectId(1)).unwrap();
        c.apply(&CatalogChange::AllocExtent { table: ObjectId(1), extent: e2 });
        assert_ne!(e1.file, e2.file, "extents alternate over datafiles");
        assert_eq!(e1.start, 0);
        assert_eq!(e2.start, 0);
        let e3 = plan_extent(&c, ObjectId(1)).unwrap();
        assert_eq!(e3.start, EXTENT_BLOCKS, "third extent stacks on the emptier file");
    }

    #[test]
    fn plan_extent_fails_when_full() {
        let mut c = catalog_with_files(EXTENT_BLOCKS as u64, 1);
        let e = plan_extent(&c, ObjectId(1)).unwrap();
        c.apply(&CatalogChange::AllocExtent { table: ObjectId(1), extent: e });
        let err = plan_extent(&c, ObjectId(1)).unwrap_err();
        assert!(matches!(err, DbError::BadAdminCommand(_)));
    }

    #[test]
    fn seek_last_extent_positions_cursor() {
        let seg = Segment {
            extents: vec![
                Extent { file: FileNo(1), start: 0, len: 4 },
                Extent { file: FileNo(1), start: 4, len: 4 },
            ],
        };
        let mut cur = PlacementCursor::new();
        cur.seek_last_extent(&seg);
        assert_eq!(cur.current(&seg), Some((FileNo(1), 4)));
    }
}
