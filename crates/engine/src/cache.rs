//! The buffer cache: decoded block frames with LRU replacement and dirty
//! tracking.
//!
//! The cache is deliberately small relative to the working set (see
//! DESIGN.md §6): the paper's database is far larger than its SGA, and the
//! foreground read misses that result are what make checkpoint write
//! bursts visible in the tpmC curve.

use recobench_sim::SimTime;

use crate::codec::Writer;
use crate::fasthash::{self, FastMap};
use crate::page::BlockImage;
use crate::types::{FileNo, RedoAddr};

/// Cache key: datafile number and block index.
pub type BlockKey = (FileNo, u32);

/// Dirty bookkeeping for a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirtyInfo {
    /// Redo address of the first unwritten change to this block.
    pub first_addr: RedoAddr,
    /// Instant of the first unwritten change.
    pub first_time: SimTime,
    /// Redo address of the last change (WAL: must be flushed before the
    /// block may be written).
    pub last_addr: RedoAddr,
}

/// Sentinel for "no slot" in the intrusive LRU list.
const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Slot {
    key: BlockKey,
    img: BlockImage,
    dirty: Option<DirtyInfo>,
    /// Neighbours in the recency list (`NIL`-terminated both ways).
    prev: usize,
    next: usize,
}

/// A frame evicted to make room, handed back to the caller who must write
/// it out if dirty.
#[derive(Debug)]
pub struct Evicted {
    /// Which block this was.
    pub key: BlockKey,
    /// The block image to write back.
    pub img: BlockImage,
    /// Dirty bookkeeping, if the frame had unwritten changes.
    pub dirty: Option<DirtyInfo>,
}

/// Cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied from memory.
    pub hits: u64,
    /// Lookups requiring a disk read.
    pub misses: u64,
    /// Frames written back on eviction.
    pub dirty_evictions: u64,
}

/// The buffer cache.
///
/// Frames live in a slab (`slots`) threaded onto an intrusive
/// doubly-linked recency list, so every touch, insert and eviction is
/// O(1) — the previous implementation kept a `BTreeMap<stamp, key>`
/// shadow structure and paid a tree rebalance per access.
#[derive(Debug, Clone)]
pub struct BufferCache {
    capacity: usize,
    map: FastMap<BlockKey, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Most-recently-used slot (`NIL` when empty).
    head: usize,
    /// Least-recently-used slot (`NIL` when empty).
    tail: usize,
    /// Number of dirty frames, maintained incrementally so DBWR polls
    /// never pay an O(resident) scan just to learn "nothing to do".
    dirty_n: usize,
    /// Conservative lower bound on the oldest dirty `first_time` (clears
    /// only raise the true minimum, so staleness errs toward scanning).
    oldest_dirty: Option<SimTime>,
    stats: CacheStats,
}

impl BufferCache {
    /// Creates a cache holding at most `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        BufferCache {
            capacity,
            map: fasthash::map_with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            dirty_n: 0,
            oldest_dirty: None,
            stats: CacheStats::default(),
        }
    }

    fn unlink(&mut self, i: usize) {
        // tidy-allow(panic-freedom): callers pass slab indices from the resident map
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            // tidy-allow(panic-freedom): intrusive LRU links are valid slab indices or NIL, branched away above
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            // tidy-allow(panic-freedom): intrusive LRU links are valid slab indices or NIL, branched away above
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        // tidy-allow(panic-freedom): callers pass slab indices from the resident map
        self.slots[i].prev = NIL;
        // tidy-allow(panic-freedom): callers pass slab indices from the resident map
        self.slots[i].next = self.head;
        if self.head != NIL {
            // tidy-allow(panic-freedom): head is a valid slab index or NIL, branched away above
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn note_dirty_cleared(&mut self, was_dirty: bool) {
        if was_dirty {
            self.dirty_n -= 1;
            if self.dirty_n == 0 {
                self.oldest_dirty = None;
            }
        }
    }

    fn touch(&mut self, i: usize) {
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
    }

    /// Looks up a block, bumping its recency. Records a hit or miss.
    pub fn get(&mut self, key: BlockKey) -> Option<&BlockImage> {
        match self.map.get(&key).copied() {
            Some(i) => {
                self.stats.hits += 1;
                self.touch(i);
                Some(&self.slots[i].img)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Whether the block is resident (no recency bump, no stats).
    pub fn contains(&self, key: BlockKey) -> bool {
        self.map.contains_key(&key)
    }

    /// Read-only view of a resident block without touching recency or
    /// hit/miss counters (zero-cost inspection paths).
    pub fn peek(&self, key: BlockKey) -> Option<&BlockImage> {
        self.map.get(&key).map(|&i| &self.slots[i].img)
    }

    /// Mutable access to a *resident* block (no hit/miss accounting; use
    /// after [`BufferCache::get`] or [`BufferCache::insert`]).
    pub fn get_mut(&mut self, key: BlockKey) -> Option<&mut BlockImage> {
        match self.map.get(&key).copied() {
            Some(i) => {
                self.touch(i);
                Some(&mut self.slots[i].img)
            }
            None => None,
        }
    }

    /// Single-probe hot-path lookup: on residency, counts a hit, bumps
    /// recency, and hands out the frame mutably. A miss counts nothing —
    /// the caller falls back to the full read path, which records it.
    pub fn probe_mut(&mut self, key: BlockKey) -> Option<&mut BlockImage> {
        match self.map.get(&key).copied() {
            Some(i) => {
                self.stats.hits += 1;
                self.touch(i);
                Some(&mut self.slots[i].img)
            }
            None => None,
        }
    }

    /// Inserts a block image read from disk. If the cache is full, the
    /// least-recently-used frame is returned for the caller to write back.
    pub fn insert(&mut self, key: BlockKey, img: BlockImage) -> Option<Evicted> {
        if let Some(&i) = self.map.get(&key) {
            // Replacing a resident block: fresh image, clean state.
            self.slots[i].img = img;
            let was_dirty = self.slots[i].dirty.take().is_some();
            self.note_dirty_cleared(was_dirty);
            self.touch(i);
            return None;
        }
        let evicted = if self.map.len() >= self.capacity { self.evict_lru() } else { None };
        let slot = Slot { key, img, dirty: None, prev: NIL, next: NIL };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }

    fn evict_lru(&mut self) -> Option<Evicted> {
        let i = self.tail;
        if i == NIL {
            return None;
        }
        self.unlink(i);
        let key = self.slots[i].key;
        self.map.remove(&key);
        let img = std::mem::take(&mut self.slots[i].img);
        let dirty = self.slots[i].dirty.take();
        self.free.push(i);
        self.note_dirty_cleared(dirty.is_some());
        if dirty.is_some() {
            self.stats.dirty_evictions += 1;
        }
        Some(Evicted { key, img, dirty })
    }

    /// Marks a resident block dirty after a change at `addr`/`now`.
    ///
    /// # Panics
    ///
    /// Panics if the block is not resident (changes always go through a
    /// resident frame).
    pub fn mark_dirty(&mut self, key: BlockKey, addr: RedoAddr, now: SimTime) {
        // tidy-allow(panic-freedom): documented `# Panics` invariant — changes only flow through resident frames
        let &i = self.map.get(&key).expect("dirtied block must be resident");
        match &mut self.slots[i].dirty {
            Some(d) => d.last_addr = d.last_addr.max(addr),
            None => {
                self.slots[i].dirty =
                    Some(DirtyInfo { first_addr: addr, first_time: now, last_addr: addr });
                self.dirty_n += 1;
                self.oldest_dirty = Some(match self.oldest_dirty {
                    Some(t) if t <= now => t,
                    _ => now,
                });
            }
        }
    }

    /// Re-marks a resident block dirty with bookkeeping saved before a
    /// failed write-out (ENOSPC): the change is still only in memory, so
    /// the original first-change address must survive for the checkpoint
    /// position to stay behind its redo.
    ///
    /// # Panics
    ///
    /// Panics if the block is not resident.
    pub fn restore_dirty(&mut self, key: BlockKey, info: DirtyInfo) {
        // tidy-allow(panic-freedom): documented `# Panics` invariant — the failed write-out left the frame resident
        let &i = self.map.get(&key).expect("restored block must be resident");
        if self.slots[i].dirty.replace(info).is_none() {
            self.dirty_n += 1;
        }
        self.oldest_dirty = Some(match self.oldest_dirty {
            Some(t) if t <= info.first_time => t,
            _ => info.first_time,
        });
    }

    /// Lower bound on the oldest dirty frame's `first_time`, or `None`
    /// when nothing is dirty. May lag behind the true minimum after
    /// frames are cleaned; [`BufferCache::refresh_dirty_bound`] restores
    /// exactness after a checkpoint pass.
    pub fn oldest_dirty_time(&self) -> Option<SimTime> {
        self.oldest_dirty
    }

    /// Recomputes the oldest-dirty bound exactly (O(resident); call after
    /// a checkpoint pass, which already walked every frame).
    pub fn refresh_dirty_bound(&mut self) {
        self.oldest_dirty =
            self.iter_resident().filter_map(|s| s.dirty.map(|d| d.first_time)).min();
    }

    /// The oldest first-change redo address among dirty frames — the
    /// incremental checkpoint position (callers substitute the log tail
    /// when this returns `None`).
    pub fn min_dirty_addr(&self) -> Option<RedoAddr> {
        self.iter_resident().filter_map(|s| s.dirty.map(|d| d.first_addr)).min()
    }

    /// Keys and bookkeeping of every dirty frame matching `pred`, in key
    /// order, *without* copying any block image. Pair with
    /// [`BufferCache::encode_block_into`] and [`BufferCache::clear_dirty`]
    /// to write them out allocation-free.
    pub fn dirty_matching<F>(&self, mut pred: F) -> Vec<(BlockKey, DirtyInfo)>
    where
        F: FnMut(BlockKey, &DirtyInfo) -> bool,
    {
        let mut out: Vec<(BlockKey, DirtyInfo)> = self
            .iter_resident()
            .filter_map(|s| s.dirty.filter(|d| pred(s.key, d)).map(|d| (s.key, d)))
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Encodes the resident block at `key` into `w` and returns `true`,
    /// or returns `false` if the block is not resident.
    pub fn encode_block_into(&self, key: BlockKey, w: &mut Writer) -> bool {
        match self.peek(key) {
            Some(img) => {
                img.encode_into(w);
                true
            }
            None => false,
        }
    }

    /// Clears the dirty flag of a resident block (after its image reached
    /// disk).
    pub fn clear_dirty(&mut self, key: BlockKey) {
        if let Some(&i) = self.map.get(&key) {
            let was_dirty = self.slots[i].dirty.take().is_some();
            self.note_dirty_cleared(was_dirty);
        }
    }

    /// Drains and returns every dirty frame matching `pred` (the caller
    /// writes them out and they become clean). Copies each image; the
    /// checkpoint path uses [`BufferCache::dirty_matching`] instead.
    pub fn take_dirty<F>(&mut self, pred: F) -> Vec<(BlockKey, BlockImage, DirtyInfo)>
    where
        F: FnMut(BlockKey, &DirtyInfo) -> bool,
    {
        self.dirty_matching(pred)
            .into_iter()
            .map(|(key, d)| {
                self.clear_dirty(key);
                (key, self.peek(key).expect("dirty frame is resident").clone(), d)
            })
            .collect()
    }

    /// Number of dirty frames (maintained incrementally; O(1)).
    pub fn dirty_count(&self) -> usize {
        self.dirty_n
    }

    /// Number of resident frames.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops every frame belonging to `file` without writing (used when a
    /// datafile is dropped or restored underneath the cache).
    pub fn invalidate_file(&mut self, file: FileNo) {
        let keys: Vec<BlockKey> = self.map.keys().filter(|(f, _)| *f == file).copied().collect();
        for k in keys {
            if let Some(i) = self.map.remove(&k) {
                self.unlink(i);
                self.slots[i].img = BlockImage::empty();
                let was_dirty = self.slots[i].dirty.take().is_some();
                self.note_dirty_cleared(was_dirty);
                self.free.push(i);
            }
        }
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The latest unwritten change address among dirty frames (everything
    /// at or below must be flushed before a full checkpoint's writes are
    /// WAL-safe).
    pub fn max_dirty_last_addr(&self) -> Option<RedoAddr> {
        self.iter_resident().filter_map(|s| s.dirty.map(|d| d.last_addr)).max()
    }

    /// Iterates over resident slots (skipping freed slab entries).
    fn iter_resident(&self) -> impl Iterator<Item = &Slot> {
        self.map.values().map(|&i| &self.slots[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::{Row, Value};
    use crate::types::Scn;

    fn key(n: u32) -> BlockKey {
        (FileNo(1), n)
    }

    fn addr(o: u64) -> RedoAddr {
        RedoAddr { seq: 1, offset: o }
    }

    fn img_with_row(n: u64) -> BlockImage {
        let mut img = BlockImage::empty();
        img.put(0, Row::new(vec![Value::U64(n)]), Scn(n));
        img
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = BufferCache::new(2);
        assert!(c.get(key(1)).is_none());
        c.insert(key(1), BlockImage::empty());
        assert!(c.get(key(1)).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = BufferCache::new(2);
        c.insert(key(1), img_with_row(1));
        c.insert(key(2), img_with_row(2));
        c.get(key(1)); // make 2 the LRU
        let ev = c.insert(key(3), img_with_row(3)).expect("eviction");
        assert_eq!(ev.key, key(2));
        assert!(c.contains(key(1)) && c.contains(key(3)));
    }

    #[test]
    fn dirty_tracking_first_and_last() {
        let mut c = BufferCache::new(2);
        c.insert(key(1), BlockImage::empty());
        c.mark_dirty(key(1), addr(100), SimTime::from_secs(1));
        c.mark_dirty(key(1), addr(300), SimTime::from_secs(3));
        let dirty = c.take_dirty(|_, _| true);
        assert_eq!(dirty.len(), 1);
        let d = dirty[0].2;
        assert_eq!(d.first_addr, addr(100));
        assert_eq!(d.last_addr, addr(300));
        assert_eq!(d.first_time, SimTime::from_secs(1));
        assert_eq!(c.dirty_count(), 0);
    }

    #[test]
    fn min_dirty_addr_is_checkpoint_position() {
        let mut c = BufferCache::new(4);
        c.insert(key(1), BlockImage::empty());
        c.insert(key(2), BlockImage::empty());
        c.mark_dirty(key(1), addr(500), SimTime::ZERO);
        c.mark_dirty(key(2), addr(200), SimTime::ZERO);
        assert_eq!(c.min_dirty_addr(), Some(addr(200)));
        // Writing the older one advances the position.
        let taken = c.take_dirty(|_, d| d.first_addr <= addr(200));
        assert_eq!(taken.len(), 1);
        assert_eq!(c.min_dirty_addr(), Some(addr(500)));
    }

    #[test]
    fn dirty_eviction_returns_payload() {
        let mut c = BufferCache::new(1);
        c.insert(key(1), img_with_row(7));
        c.mark_dirty(key(1), addr(10), SimTime::ZERO);
        let ev = c.insert(key(2), BlockImage::empty()).expect("eviction");
        assert_eq!(ev.key, key(1));
        assert!(ev.dirty.is_some());
        assert_eq!(ev.img.row(0).unwrap().get(0).unwrap().as_u64(), Some(7));
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn invalidate_file_drops_frames() {
        let mut c = BufferCache::new(4);
        c.insert((FileNo(1), 0), BlockImage::empty());
        c.insert((FileNo(2), 0), BlockImage::empty());
        c.invalidate_file(FileNo(1));
        assert!(!c.contains((FileNo(1), 0)));
        assert!(c.contains((FileNo(2), 0)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reinsert_same_key_does_not_evict() {
        let mut c = BufferCache::new(1);
        c.insert(key(1), img_with_row(1));
        assert!(c.insert(key(1), img_with_row(2)).is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "resident")]
    fn mark_dirty_nonresident_panics() {
        let mut c = BufferCache::new(1);
        c.mark_dirty(key(9), addr(1), SimTime::ZERO);
    }
}
