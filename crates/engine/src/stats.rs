//! Engine counters for reporting and calibration.

use serde::{Deserialize, Serialize};

/// Cumulative engine counters, kept on the server so they survive instance
/// restarts. The benchmark runner snapshots and diffs them per measurement
/// window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Committed transactions.
    pub commits: u64,
    /// Rolled-back transactions.
    pub rollbacks: u64,
    /// Redo records generated.
    pub redo_records: u64,
    /// Redo bytes generated (including change-vector padding).
    pub redo_bytes: u64,
    /// LGWR flushes.
    pub log_flushes: u64,
    /// Log switches.
    pub log_switches: u64,
    /// Full (log-switch) checkpoints.
    pub full_checkpoints: u64,
    /// Incremental checkpoint advances performed by DBWR ticks.
    pub incremental_advances: u64,
    /// Blocks written by checkpoints and DBWR.
    pub blocks_written: u64,
    /// Microseconds foreground work stalled waiting for a log group to
    /// become reusable (checkpoint or archiver not finished).
    pub switch_stall_micros: u64,
    /// Archive files produced.
    pub archives_created: u64,
    /// Redo records applied by recovery.
    pub recovery_records_applied: u64,
    /// Redo records scanned but skipped by recovery (filtered or before
    /// the recovery position).
    pub recovery_records_skipped: u64,
    /// Archive files processed by recovery.
    pub recovery_archives_processed: u64,
    /// Instance crash recoveries performed.
    pub crash_recoveries: u64,
    /// Single-datafile media recoveries performed.
    pub media_recoveries: u64,
    /// Point-in-time (incomplete) recoveries performed.
    pub incomplete_recoveries: u64,
    /// Statements that blocked on a contended row lock.
    pub lock_waits: u64,
    /// Lock waits that resolved with a grant (the rest aborted or were
    /// severed by recovery).
    pub lock_grants: u64,
    /// Total simulated microseconds spent waiting for granted locks.
    pub lock_wait_micros: u64,
    /// Deadlocks detected (one victim aborted each).
    pub deadlocks: u64,
    /// Stored blocks whose CRC failed verification (silent corruption
    /// caught by the checksum layer).
    pub checksum_mismatches: u64,
    /// Failovers begun by the replica-set controller (quorum reached or
    /// operator-decided).
    #[serde(default)]
    pub failovers: u64,
    /// Stand-bys promoted to primary.
    #[serde(default)]
    pub promotions: u64,
    /// Surviving stand-bys re-instantiated behind a newly promoted
    /// primary.
    #[serde(default)]
    pub replica_resyncs: u64,
    /// Repaired ex-primaries re-enrolled as stand-bys.
    #[serde(default)]
    pub failbacks: u64,
}

impl EngineStats {
    /// Component-wise difference `self - earlier` (saturating), for
    /// per-window reporting.
    pub fn since(&self, earlier: &EngineStats) -> EngineStats {
        EngineStats {
            commits: self.commits.saturating_sub(earlier.commits),
            rollbacks: self.rollbacks.saturating_sub(earlier.rollbacks),
            redo_records: self.redo_records.saturating_sub(earlier.redo_records),
            redo_bytes: self.redo_bytes.saturating_sub(earlier.redo_bytes),
            log_flushes: self.log_flushes.saturating_sub(earlier.log_flushes),
            log_switches: self.log_switches.saturating_sub(earlier.log_switches),
            full_checkpoints: self.full_checkpoints.saturating_sub(earlier.full_checkpoints),
            incremental_advances: self
                .incremental_advances
                .saturating_sub(earlier.incremental_advances),
            blocks_written: self.blocks_written.saturating_sub(earlier.blocks_written),
            switch_stall_micros: self.switch_stall_micros.saturating_sub(earlier.switch_stall_micros),
            archives_created: self.archives_created.saturating_sub(earlier.archives_created),
            recovery_records_applied: self
                .recovery_records_applied
                .saturating_sub(earlier.recovery_records_applied),
            recovery_records_skipped: self
                .recovery_records_skipped
                .saturating_sub(earlier.recovery_records_skipped),
            recovery_archives_processed: self
                .recovery_archives_processed
                .saturating_sub(earlier.recovery_archives_processed),
            crash_recoveries: self.crash_recoveries.saturating_sub(earlier.crash_recoveries),
            media_recoveries: self.media_recoveries.saturating_sub(earlier.media_recoveries),
            incomplete_recoveries: self
                .incomplete_recoveries
                .saturating_sub(earlier.incomplete_recoveries),
            lock_waits: self.lock_waits.saturating_sub(earlier.lock_waits),
            lock_grants: self.lock_grants.saturating_sub(earlier.lock_grants),
            lock_wait_micros: self.lock_wait_micros.saturating_sub(earlier.lock_wait_micros),
            deadlocks: self.deadlocks.saturating_sub(earlier.deadlocks),
            checksum_mismatches: self.checksum_mismatches.saturating_sub(earlier.checksum_mismatches),
            failovers: self.failovers.saturating_sub(earlier.failovers),
            promotions: self.promotions.saturating_sub(earlier.promotions),
            replica_resyncs: self.replica_resyncs.saturating_sub(earlier.replica_resyncs),
            failbacks: self.failbacks.saturating_sub(earlier.failbacks),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_diffs_componentwise() {
        let a = EngineStats { commits: 10, redo_bytes: 100, ..Default::default() };
        let b = EngineStats { commits: 25, redo_bytes: 400, log_switches: 2, ..Default::default() };
        let d = b.since(&a);
        assert_eq!(d.commits, 15);
        assert_eq!(d.redo_bytes, 300);
        assert_eq!(d.log_switches, 2);
    }

    #[test]
    fn since_saturates() {
        let a = EngineStats { commits: 10, ..Default::default() };
        let d = EngineStats::default().since(&a);
        assert_eq!(d.commits, 0);
    }
}
