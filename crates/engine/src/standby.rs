//! The stand-by database: a second server kept in permanent recovery by
//! shipping and applying the primary's archived logs.
//!
//! This is the paper's §5.3 mechanism. The stand-by is instantiated from
//! the primary's cold backup, then every archived log is shipped (a copy
//! charged on the primary's archive disk — the "overhead of sharing
//! archive log files" visible in Figure 6's tpmC lines) and applied in the
//! background. On a primary failure the stand-by *activates*: it finishes
//! applying what it has received, rolls back unresolved transactions and
//! opens — in near-constant time, independent of the fault type.
//!
//! Whatever redo never made it into an archive is gone: committed
//! transactions whose records sat in the primary's current online group
//! are lost, which is exactly what Figure 7 measures as a function of the
//! redo log file size.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use recobench_sim::{SimClock, SimDuration, SimTime};
use recobench_vfs::{FileKind, IoKind};

use crate::catalog::Catalog;
use crate::config::InstanceConfig;
use crate::controlfile::{CkptRecord, ControlFile, LogGroup, SeqLocation};
use crate::error::{DbError, DbResult, RecoveryError};
use crate::events::{EngineEvent, RecoveryPhase};
use crate::layout::DiskLayout;
use crate::page::BlockImage;
use crate::redo::{decode_stream, RedoOp, RedoRecord};
use crate::server::DbServer;
use crate::txn::UndoOp;
use crate::types::{RedoAddr, Scn, TxnId};

/// A shipped archive retained on the stand-by's archive disk so a
/// downstream (cascaded) stand-by can ship from here instead of from the
/// primary.
#[derive(Debug, Clone)]
pub(crate) struct ShippedArchive {
    pub(crate) segments: Vec<Bytes>,
    pub(crate) bytes: u64,
    /// Instant the copy finished landing on this stand-by's archive disk
    /// (a downstream stand-by can ship it from then on).
    pub(crate) ready_at: SimTime,
}

/// A stand-by server in managed recovery.
#[derive(Debug)]
pub struct StandbyServer {
    server: DbServer,
    applied_seq: u64,
    apply_done_at: SimTime,
    live: BTreeMap<TxnId, Vec<UndoOp>>,
    max_scn: Scn,
    max_txn: u64,
    activated: bool,
    /// Shipped copies retained for cascaded downstream stand-bys.
    pub(crate) received: BTreeMap<u64, ShippedArchive>,
    /// Highest commit SCN seen in applied redo: the exact boundary of the
    /// committed prefix this stand-by would open with.
    last_commit_scn: Scn,
    /// Extra network/link lag added to every ship (topology tuning).
    ship_lag: SimDuration,
    /// Extra delay before each archive's background apply begins.
    apply_delay: SimDuration,
    /// When armed, the next shipped copy lands corrupted (fault injection).
    corrupt_next_ship: bool,
    /// Records applied so far (reporting).
    pub records_applied: u64,
    /// Archives shipped so far (reporting).
    pub archives_shipped: u64,
}

impl StandbyServer {
    /// Instantiates a stand-by from the primary's most recent cold backup:
    /// builds a second machine (own disks), restores every datafile onto
    /// it, and mounts in managed recovery.
    ///
    /// # Errors
    ///
    /// Fails if the primary has no backup.
    pub fn instantiate(
        primary: &DbServer,
        name: &str,
        clock: Arc<SimClock>,
        layout: DiskLayout,
        config: InstanceConfig,
    ) -> DbResult<StandbyServer> {
        Self::instantiate_inner(primary, name, clock, layout, config, true)
    }

    /// Backgrounded instantiation: the restore keeps both machines' disks
    /// busy but does not block the caller's timeline — the stand-by is
    /// simply unable to apply redo until the restore's completion instant.
    /// Used to re-sync survivors behind a just-promoted primary that must
    /// keep serving clients.
    ///
    /// # Errors
    ///
    /// Fails if the primary has no backup.
    pub fn instantiate_in_background(
        primary: &DbServer,
        name: &str,
        clock: Arc<SimClock>,
        layout: DiskLayout,
        config: InstanceConfig,
    ) -> DbResult<StandbyServer> {
        Self::instantiate_inner(primary, name, clock, layout, config, false)
    }

    fn instantiate_inner(
        primary: &DbServer,
        name: &str,
        clock: Arc<SimClock>,
        layout: DiskLayout,
        config: InstanceConfig,
        advance_clock: bool,
    ) -> DbResult<StandbyServer> {
        let backup = primary
            .backup()
            .ok_or_else(|| DbError::Unrecoverable("stand-by requires a primary backup".into()))?
            .clone();
        let mut server = DbServer::on_fresh_disks(name, Arc::clone(&clock), layout, config);
        // Rebuild the physical files on the stand-by machine and remap the
        // dictionary's vfs handles to them.
        let mut catalog: Catalog = (*backup.catalog).clone();
        let now = clock.now();
        let mut last = now;
        {
            let primary_fs = primary.fs().lock();
            let mut fs = server.fs.lock();
            for (i, (file_no, df)) in backup.catalog.datafiles.iter().enumerate() {
                let disk = server.layout.data_disk_for(i);
                let new_id = fs.create_block_file(
                    &df.path,
                    disk,
                    FileKind::Data,
                    server.config.block_size,
                    df.blocks,
                )?;
                if let Some(piece) = backup.piece_for(*file_no) {
                    for (block, img) in primary_fs.peek_blocks_written(piece)? {
                        // tidy-allow(write-site-coverage): standby instantiation writes to the standby's own fs; the crash sweep drives the primary only
                        fs.write_block(new_id, block, img, now)?;
                    }
                }
                let d = fs.charge_io(disk, IoKind::Write, backup.nominal_bytes_per_file, now)?;
                last = last.max(d);
                catalog
                    .datafiles
                    .get_mut(file_no)
                    .ok_or(RecoveryError::BackupCatalogMismatch { file: *file_no })?
                    .vfs_id = new_id;
            }
        }
        // The instantiation transfer also reads the primary's backup disk.
        {
            let mut pfs = primary.fs().lock();
            let d = pfs.charge_io(
                primary.layout.backup_disk,
                IoKind::Read,
                backup.nominal_bytes_per_file * backup.file_count() as u64,
                now,
            )?;
            last = last.max(d);
        }
        if advance_clock {
            clock.advance_to(last);
        }
        server.datafile_total = catalog.datafiles.len();
        // Control file: checkpoint at the backup position; redo groups for
        // life after activation.
        let mut groups = Vec::new();
        {
            let mut fs = server.fs.lock();
            for i in 0..server.config.redo_groups {
                let path = format!("/u03/{}_redo{:02}.log", name, i + 1);
                let id = fs.create_append_file(&path, server.layout.redo_disk, FileKind::Redo)?;
                groups.push(LogGroup { path, vfs_id: id });
            }
        }
        let snapshot = Arc::new(catalog.clone());
        let mut control = ControlFile::new(name, groups, Arc::clone(&snapshot));
        control.checkpoints = vec![CkptRecord {
            position: backup.position,
            scn: backup.scn,
            complete_at: last,
            catalog: snapshot,
        }];
        control.clean_shutdown = false;
        control.seqs.clear();
        server.control = Some(control);
        let inst = server.fresh_instance(catalog, backup.scn, 0, backup.position.seq, 0);
        server.inst = Some(inst);
        server.managed_recovery = true;
        Ok(StandbyServer {
            server,
            applied_seq: backup.position.seq.saturating_sub(1),
            apply_done_at: last,
            live: BTreeMap::new(),
            max_scn: backup.scn,
            max_txn: 0,
            activated: false,
            received: BTreeMap::new(),
            last_commit_scn: backup.scn,
            ship_lag: SimDuration::ZERO,
            apply_delay: SimDuration::ZERO,
            corrupt_next_ship: false,
            records_applied: 0,
            archives_shipped: 0,
        })
    }

    /// The stand-by's server (DML is rejected until activation).
    pub fn server(&self) -> &DbServer {
        &self.server
    }

    /// Mutable access to the stand-by's server (for the driver after
    /// activation).
    pub fn server_mut(&mut self) -> &mut DbServer {
        &mut self.server
    }

    /// Whether [`StandbyServer::activate`] has completed.
    pub fn is_activated(&self) -> bool {
        self.activated
    }

    /// The sequence applied through.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Highest commit SCN contained in the redo applied so far: on
    /// activation this stand-by opens with exactly the commits at or below
    /// this SCN (plus the backup it was instantiated from).
    pub fn last_commit_scn(&self) -> Scn {
        self.last_commit_scn
    }

    /// Tunes this stand-by's topology lags: `ship_lag` is extra network
    /// latency added to every archive ship, `apply_delay` postpones each
    /// archive's background apply.
    pub fn set_lags(&mut self, ship_lag: SimDuration, apply_delay: SimDuration) {
        self.ship_lag = ship_lag;
        self.apply_delay = apply_delay;
    }

    /// Arms a media fault: the next shipped archive copy lands corrupted,
    /// so its decode fails with
    /// [`RecoveryError::ShippedArchiveCorrupt`](crate::error::RecoveryError::ShippedArchiveCorrupt).
    pub fn arm_ship_corruption(&mut self) {
        self.corrupt_next_ship = true;
    }

    /// Ships and applies every primary archive completed by now, in
    /// sequence order. Call periodically (the benchmark driver does so
    /// between transactions).
    ///
    /// # Errors
    ///
    /// Fails only on stand-by storage errors.
    // tidy-entry(recovery)
    pub fn sync(&mut self, primary: &DbServer) -> DbResult<()> {
        if self.activated {
            return Ok(());
        }
        let now = self.server.clock.now();
        loop {
            let next = self.applied_seq + 1;
            let Ok(control) = primary.control_ref() else { break };
            let Some(loc) = control.seq(next) else { break };
            let (Some(archive), Some(done_at)) = (loc.archive, loc.archive_done_at) else { break };
            if done_at + self.ship_lag > now {
                break;
            }
            // Ship: read on the primary's archive disk, network latency,
            // write on the stand-by's archive disk.
            let (segments, bytes) = {
                let mut pfs = primary.fs().lock();
                let segments = pfs.peek_all(archive)?;
                let bytes = pfs.meta(archive)?.size_bytes;
                let _ = pfs.charge_io(primary.layout.archive_disk, IoKind::Read, bytes, done_at)?;
                (segments, bytes)
            };
            self.ingest(next, segments, bytes, done_at)?;
        }
        Ok(())
    }

    /// Ships and applies archives from an **upstream stand-by** (cascaded
    /// topology): reads the upstream's retained shipped copies instead of
    /// the primary's archive disk, so the primary carries no extra I/O for
    /// deep chains.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::ArchiveGap`](crate::error::RecoveryError::ArchiveGap)
    /// when the upstream has applied past the needed sequence but no
    /// longer holds a shippable copy (a redo gap this stand-by cannot
    /// close without re-instantiation); otherwise stand-by storage errors.
    // tidy-entry(recovery)
    pub fn sync_from_standby(&mut self, upstream: &StandbyServer) -> DbResult<()> {
        if self.activated {
            return Ok(());
        }
        let now = self.server.clock.now();
        loop {
            let next = self.applied_seq + 1;
            let Some(copy) = upstream.received.get(&next) else {
                if upstream.applied_seq >= next {
                    return Err(RecoveryError::ArchiveGap { seq: next }.into());
                }
                break;
            };
            if copy.ready_at + self.ship_lag > now {
                break;
            }
            let (segments, bytes, available_at) = (copy.segments.clone(), copy.bytes, copy.ready_at);
            {
                let mut ufs = upstream.server.fs().lock();
                let _ = ufs.charge_io(
                    upstream.server.layout.archive_disk,
                    IoKind::Read,
                    bytes,
                    available_at,
                )?;
            }
            self.ingest(next, segments, bytes, available_at)?;
        }
        Ok(())
    }

    /// Lands one shipped archive on this stand-by: charges the archive-disk
    /// write (after the configured ship lag), decodes, applies in the
    /// background and retains the copy for any downstream stand-by.
    fn ingest(
        &mut self,
        next: u64,
        mut segments: Vec<Bytes>,
        bytes: u64,
        available_at: SimTime,
    ) -> DbResult<()> {
        let ship_done = {
            let mut fs = self.server.fs.lock();
            let arrived =
                available_at + self.server.config.costs.standby_ship_latency + self.ship_lag;
            fs.charge_io(self.server.layout.archive_disk, IoKind::Write, bytes, arrived)?
        };
        self.archives_shipped += 1;
        if self.corrupt_next_ship {
            self.corrupt_next_ship = false;
            if let Some(first) = segments.first_mut() {
                let mut broken = first.as_ref().to_vec();
                // Flip the first record's op tag (after the scn + txn
                // u64s); a flipped tag is never a valid opcode, so the
                // decode below reliably rejects the copy.
                if let Some(b) = broken.get_mut(16) {
                    *b ^= 0xFF;
                }
                *first = Bytes::from(broken);
            }
        }
        // Apply in the background: serialized after previous applies.
        let overhead = self.server.config.costs.redo_overhead_bytes;
        let records = decode_stream(&segments, overhead)
            .map_err(|_| RecoveryError::ShippedArchiveCorrupt { seq: next })?;
        let apply_start = ship_done.max(self.apply_done_at) + self.apply_delay;
        let nrecords = records.len() as u64;
        let cpu = self.server.config.costs.cpu_apply_record * nrecords;
        self.apply_done_at = apply_start + cpu;
        self.apply_records(next, &records, apply_start)?;
        self.applied_seq = next;
        self.received.insert(next, ShippedArchive { segments, bytes, ready_at: ship_done });
        self.server.events.record(
            self.apply_done_at,
            EngineEvent::StandbyArchiveApplied { seq: next, records: nrecords },
        );
        Ok(())
    }

    fn apply_records(&mut self, seq: u64, records: &[(u64, RedoRecord)], at: SimTime) -> DbResult<()> {
        for (offset, rec) in records {
            let addr = RedoAddr { seq, offset: *offset };
            self.apply_one(rec, addr, at)?;
        }
        Ok(())
    }

    fn apply_one(&mut self, rec: &RedoRecord, addr: RedoAddr, at: SimTime) -> DbResult<()> {
        self.max_scn = self.max_scn.max(rec.scn);
        if let Some(t) = rec.txn {
            self.max_txn = self.max_txn.max(t.0);
        }
        if matches!(rec.op, RedoOp::Commit) {
            self.last_commit_scn = self.last_commit_scn.max(rec.scn);
        }
        match (&rec.op, rec.txn) {
            (RedoOp::Commit, Some(t)) | (RedoOp::Rollback, Some(t)) => {
                self.live.remove(&t);
            }
            (RedoOp::Catalog(change), _) => {
                let inst = self.server.inst.as_mut().ok_or(DbError::InstanceDown)?;
                inst.catalog.apply(change);
            }
            (RedoOp::Insert { obj, rid, row }, txn) => {
                let key = (rid.file, rid.block);
                let scn = rec.scn;
                let row = row.clone();
                Self::mutate_block(&mut self.server, key, at, addr, move |img| {
                    if img.last_scn < scn {
                        img.put(rid.slot, row, scn);
                        true
                    } else {
                        false
                    }
                })?;
                if let Some(t) = txn {
                    self.live.entry(t).or_default().push(UndoOp::UndoInsert { obj: *obj, rid: *rid });
                }
            }
            (RedoOp::Update { obj, rid, before, after }, txn) => {
                let key = (rid.file, rid.block);
                let scn = rec.scn;
                let after = after.clone();
                Self::mutate_block(&mut self.server, key, at, addr, move |img| {
                    if img.last_scn < scn {
                        img.put(rid.slot, after, scn);
                        true
                    } else {
                        false
                    }
                })?;
                if let Some(t) = txn {
                    self.live.entry(t).or_default().push(UndoOp::UndoUpdate {
                        obj: *obj,
                        rid: *rid,
                        before: before.clone(),
                    });
                }
            }
            (RedoOp::Delete { obj, rid, before }, txn) => {
                let key = (rid.file, rid.block);
                let scn = rec.scn;
                Self::mutate_block(&mut self.server, key, at, addr, move |img| {
                    if img.last_scn < scn {
                        img.remove(rid.slot, scn);
                        true
                    } else {
                        false
                    }
                })?;
                if let Some(t) = txn {
                    self.live.entry(t).or_default().push(UndoOp::UndoDelete {
                        obj: *obj,
                        rid: *rid,
                        before: before.clone(),
                    });
                }
            }
            (RedoOp::Commit, None) | (RedoOp::Rollback, None) => {}
        }
        self.records_applied += 1;
        Ok(())
    }

    /// Background block mutation: charges stand-by disk *busy time* but
    /// never advances the shared clock (another machine is doing this
    /// work).
    fn mutate_block(
        server: &mut DbServer,
        key: (crate::types::FileNo, u32),
        at: SimTime,
        addr: RedoAddr,
        f: impl FnOnce(&mut BlockImage) -> bool,
    ) -> DbResult<()> {
        let vfs_id = {
            let inst = server.inst.as_ref().ok_or(DbError::InstanceDown)?;
            match inst.catalog.datafiles.get(&key.0) {
                Some(df) => df.vfs_id,
                // The file was dropped by a replayed DDL; skip.
                None => return Ok(()),
            }
        };
        let resident = {
            let inst = server.inst.as_ref().ok_or(DbError::InstanceDown)?;
            inst.cache.contains(key)
        };
        if !resident {
            let img = {
                let mut fs = server.fs.lock();
                let bytes = fs.peek_block(vfs_id, key.1 as u64)?;
                let disk = fs.meta(vfs_id)?.disk;
                fs.charge_io(disk, IoKind::Read, bytes.len() as u64, at)?;
                BlockImage::decode(bytes)
                    .map_err(|_| DbError::Unrecoverable("stand-by block corrupt".into()))?
            };
            let evicted = {
                let inst = server.inst.as_mut().ok_or(DbError::InstanceDown)?;
                inst.cache.insert(key, img)
            };
            if let Some(ev) = evicted {
                if ev.dirty.is_some() {
                    let ev_vfs = {
                        let inst = server.inst.as_ref().ok_or(DbError::InstanceDown)?;
                        inst.catalog.datafiles.get(&ev.key.0).map(|d| d.vfs_id)
                    };
                    if let Some(ev_vfs) = ev_vfs {
                        let mut fs = server.fs.lock();
                        // tidy-allow(write-site-coverage): standby redo-apply eviction targets the standby's own fs; the crash sweep drives the primary only
                        fs.write_block(ev_vfs, ev.key.1 as u64, ev.img.encode(), at)?;
                    }
                }
            }
        }
        let inst = server.inst.as_mut().ok_or(DbError::InstanceDown)?;
        let img = inst
            .cache
            .get_mut(key)
            .ok_or(RecoveryError::BlockNotResident { file: key.0, block: key.1 })?;
        if f(img) {
            inst.cache.mark_dirty(key, addr, at);
        }
        Ok(())
    }

    /// Activates the stand-by after a primary failure: finish applying
    /// what was shipped, roll back unresolved transactions, open. Returns
    /// the instant the stand-by accepts work.
    ///
    /// The caller is responsible for having called [`StandbyServer::sync`]
    /// one final time first.
    ///
    /// # Errors
    ///
    /// Fails on stand-by storage errors or repeated activation.
    // tidy-entry(recovery)
    pub fn activate(&mut self) -> DbResult<SimTime> {
        if self.activated {
            return Err(DbError::AlreadyOpen);
        }
        let clock = Arc::clone(&self.server.clock);
        let activation_began = clock.now();
        clock.advance_to(self.apply_done_at);
        clock.advance(self.server.config.costs.standby_activation);
        // Roll back transactions with no commit record in the applied redo.
        let unresolved: Vec<(TxnId, Vec<UndoOp>)> = std::mem::take(&mut self.live).into_iter().collect();
        let now = clock.now();
        for (_t, ops) in unresolved.iter().rev() {
            for op in ops.iter().rev() {
                let scn = self.max_scn.next();
                self.max_scn = scn;
                let addr = RedoAddr { seq: self.applied_seq, offset: u64::MAX };
                match op {
                    UndoOp::UndoInsert { rid, .. } => {
                        let key = (rid.file, rid.block);
                        let slot = rid.slot;
                        let _ = Self::mutate_block(&mut self.server, key, now, addr, move |img| {
                            img.remove(slot, scn);
                            true
                        });
                    }
                    UndoOp::UndoUpdate { rid, before, .. } | UndoOp::UndoDelete { rid, before, .. } => {
                        let key = (rid.file, rid.block);
                        let slot = rid.slot;
                        let before = before.clone();
                        let _ = Self::mutate_block(&mut self.server, key, now, addr, move |img| {
                            img.put(slot, before, scn);
                            true
                        });
                    }
                }
            }
        }
        // Become a normal, open database in a fresh incarnation.
        let new_seq = self.applied_seq + 1;
        {
            let control = self.server.control_mut()?;
            control.seqs.insert(
                new_seq,
                SeqLocation {
                    group: Some(0),
                    archive: None,
                    archive_done_at: None,
                    released_at: None,
                    end_offset: None,
                },
            );
            control.current_group = 0;
            control.current_seq = new_seq;
            control.current_flushed = 0;
            control.incarnation += 1;
        }
        {
            let overhead = self.server.config.costs.redo_overhead_bytes;
            let max_txn = self.max_txn;
            let scn = Scn(self.max_scn.0 + 1_000);
            let inst = self.server.inst.as_mut().ok_or(DbError::InstanceDown)?;
            inst.redo = crate::redo::RedoState::new(0, new_seq, 0, overhead);
            inst.scn = scn;
            inst.txns.bump_past(max_txn);
            self.server.txn_floor = self.server.txn_floor.max(max_txn);
        }
        self.server.managed_recovery = false;
        self.server.finalize_open()?;
        self.activated = true;
        self.server.events.record(
            clock.now(),
            EngineEvent::PhaseSpan {
                phase: RecoveryPhase::StandbyActivation,
                started_at: activation_began,
            },
        );
        Ok(clock.now())
    }

    /// How long the apply backlog would take from `now` (diagnostics).
    pub fn apply_lag(&self, now: SimTime) -> SimDuration {
        self.apply_done_at.saturating_since(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::IndexDef;
    use crate::row::{Row, Value};
    use crate::types::ObjectId;

    fn cfg(redo_kb: u64) -> InstanceConfig {
        InstanceConfig::builder()
            .redo_file_bytes(redo_kb * 1024)
            .redo_groups(3)
            .checkpoint_timeout_secs(60)
            .archive_mode(true)
            .cache_blocks(64)
            .build()
    }

    fn primary_with_data() -> (DbServer, ObjectId) {
        let clock = SimClock::shared();
        let mut p = DbServer::on_fresh_disks("PRIM", clock, DiskLayout::four_disk(), cfg(64));
        p.create_database().unwrap();
        p.create_user("tpcc").unwrap();
        p.create_tablespace("TPCC", 2, 512).unwrap();
        let t = p
            .create_table(
                "T",
                "tpcc",
                "TPCC",
                vec![IndexDef { name: "PK".into(), cols: vec![0], unique: true, ordered: true }],
            )
            .unwrap();
        let s = p.connect().unwrap();
        for i in 0..10 {
            p.insert(s, t, Row::new(vec![Value::U64(i), Value::from("seed")])).unwrap();
            p.commit(s).unwrap();
        }
        p.take_cold_backup().unwrap();
        (p, t)
    }

    #[test]
    fn standby_follows_and_activates_with_archived_work() {
        let (mut p, t) = primary_with_data();
        let clock = Arc::clone(p.clock());
        let mut sb =
            StandbyServer::instantiate(&p, "STBY", Arc::clone(&clock), DiskLayout::four_disk(), cfg(64))
                .unwrap();
        // Generate enough work to switch logs several times (archives ship).
        let s = p.connect().unwrap();
        for i in 100..300 {
            p.insert(s, t, Row::new(vec![Value::U64(i), Value::from("workload-row-payload")]))
                .unwrap();
            p.commit(s).unwrap();
            sb.sync(&p).unwrap();
        }
        assert!(sb.archives_shipped > 0, "archives must have shipped");
        // Primary dies; stand-by takes over.
        p.shutdown_abort().unwrap();
        sb.sync(&p).unwrap();
        let before = clock.now();
        let ready = sb.activate().unwrap();
        assert!(ready >= before);
        assert!(sb.is_activated());
        let srv = sb.server_mut();
        // Seed rows (pre-backup) are all there.
        let rows = srv.peek_scan(t).unwrap();
        assert!(rows.len() >= 10, "backup rows present, got {}", rows.len());
        // Rows from archived sequences are there; rows from the current
        // (never archived) group are lost.
        assert!(rows.len() < 10 + 200, "tail of redo must be lost");
        // The stand-by accepts new work.
        let s = srv.connect().unwrap();
        srv.insert(s, t, Row::new(vec![Value::U64(9_999), Value::from("post-failover")])).unwrap();
        srv.commit(s).unwrap();
    }

    #[test]
    fn standby_with_no_archives_has_only_backup_state() {
        let (mut p, t) = primary_with_data();
        let clock = Arc::clone(p.clock());
        let mut sb =
            StandbyServer::instantiate(&p, "STBY", Arc::clone(&clock), DiskLayout::four_disk(), cfg(64))
                .unwrap();
        // A little work — not enough to fill a 64 KiB log.
        let s = p.connect().unwrap();
        for i in 100..105 {
            p.insert(s, t, Row::new(vec![Value::U64(i), Value::from("x")])).unwrap();
            p.commit(s).unwrap();
        }
        p.shutdown_abort().unwrap();
        sb.sync(&p).unwrap();
        sb.activate().unwrap();
        assert_eq!(sb.server().peek_scan(t).unwrap().len(), 10, "only backup rows survive");
    }

    #[test]
    fn standby_requires_backup() {
        let clock = SimClock::shared();
        let mut p = DbServer::on_fresh_disks("P2", Arc::clone(&clock), DiskLayout::four_disk(), cfg(64));
        p.create_database().unwrap();
        let err =
            StandbyServer::instantiate(&p, "S2", clock, DiskLayout::four_disk(), cfg(64)).unwrap_err();
        assert!(matches!(err, DbError::Unrecoverable(_)));
    }

    #[test]
    fn corrupt_ship_surfaces_a_typed_recovery_error() {
        let (mut p, t) = primary_with_data();
        let clock = Arc::clone(p.clock());
        let mut sb =
            StandbyServer::instantiate(&p, "STBY", clock, DiskLayout::four_disk(), cfg(64)).unwrap();
        sb.arm_ship_corruption();
        let s = p.connect().unwrap();
        let mut hit = None;
        for i in 100..300 {
            p.insert(s, t, Row::new(vec![Value::U64(i), Value::from("workload-row-payload")]))
                .unwrap();
            p.commit(s).unwrap();
            if let Err(e) = sb.sync(&p) {
                hit = Some(e);
                break;
            }
        }
        match hit {
            Some(DbError::Recovery(RecoveryError::ShippedArchiveCorrupt { seq })) => {
                assert!(seq >= 1);
            }
            other => panic!("expected a typed shipped-archive corruption, got {other:?}"),
        }
    }

    #[test]
    fn cascaded_standby_follows_through_its_upstream() {
        let (mut p, t) = primary_with_data();
        let clock = Arc::clone(p.clock());
        let mut sb1 =
            StandbyServer::instantiate(&p, "SB1", Arc::clone(&clock), DiskLayout::four_disk(), cfg(64))
                .unwrap();
        let mut sb2 =
            StandbyServer::instantiate(&p, "SB2", Arc::clone(&clock), DiskLayout::four_disk(), cfg(64))
                .unwrap();
        let s = p.connect().unwrap();
        for i in 100..300 {
            p.insert(s, t, Row::new(vec![Value::U64(i), Value::from("workload-row-payload")]))
                .unwrap();
            p.commit(s).unwrap();
            sb1.sync(&p).unwrap();
            sb2.sync_from_standby(&sb1).unwrap();
        }
        assert!(sb1.archives_shipped > 0, "upstream must have shipped archives");
        // Let the downstream catch up to everything the upstream retains.
        clock.advance(SimDuration::from_secs(5));
        sb2.sync_from_standby(&sb1).unwrap();
        assert_eq!(sb2.applied_seq(), sb1.applied_seq(), "cascade catches up to its upstream");
        assert!(sb2.last_commit_scn() > Scn::ZERO);
        // The downstream activates into a working primary.
        p.shutdown_abort().unwrap();
        sb2.activate().unwrap();
        let rows = sb2.server().peek_scan(t).unwrap();
        assert!(rows.len() >= 10, "backup rows present on the cascaded stand-by");
    }

    #[test]
    fn activation_is_rejected_twice() {
        let (mut p, _t) = primary_with_data();
        let clock = Arc::clone(p.clock());
        let mut sb =
            StandbyServer::instantiate(&p, "STBY", clock, DiskLayout::four_disk(), cfg(64)).unwrap();
        p.shutdown_abort().unwrap();
        sb.activate().unwrap();
        assert!(matches!(sb.activate(), Err(DbError::AlreadyOpen)));
    }
}
