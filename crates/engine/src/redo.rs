//! Redo records and the volatile redo-log state (log buffer, current
//! group/sequence/offset).
//!
//! The persistent side of logging — which sequence lives in which group,
//! archive locations, checkpoint history — lives in the
//! [control file](crate::controlfile); the I/O choreography (LGWR flushes,
//! log switches, the checkpoints and archiving they trigger) is driven by
//! [`DbServer`](crate::server::DbServer).

use bytes::Bytes;

use crate::catalog::CatalogChange;
use crate::codec::{DecodeError, DecodeResult, Reader, Writer};
use crate::row::Row;
use crate::types::{FileNo, ObjectId, RedoAddr, RowId, Scn, TxnId};

/// The operation described by a redo record.
#[derive(Debug, Clone, PartialEq)]
pub enum RedoOp {
    /// Row inserted (after-image).
    Insert {
        /// Target table.
        obj: ObjectId,
        /// Physical address the row was placed at.
        rid: RowId,
        /// The inserted row.
        row: Row,
    },
    /// Row updated (both images, so recovery can also undo).
    Update {
        /// Target table.
        obj: ObjectId,
        /// Physical address of the row.
        rid: RowId,
        /// Image before the change.
        before: Row,
        /// Image after the change.
        after: Row,
    },
    /// Row deleted (before-image retained for undo).
    Delete {
        /// Target table.
        obj: ObjectId,
        /// Physical address the row was removed from.
        rid: RowId,
        /// Image before the delete.
        before: Row,
    },
    /// Transaction committed.
    Commit,
    /// Transaction rolled back (its compensating records precede this).
    Rollback,
    /// Data-dictionary change (DDL, extent allocation). Always committed.
    Catalog(CatalogChange),
}

/// One entry in the redo stream.
#[derive(Debug, Clone, PartialEq)]
pub struct RedoRecord {
    /// System change number of the change.
    pub scn: Scn,
    /// Owning transaction, if any (DDL records have none).
    pub txn: Option<TxnId>,
    /// The described operation.
    pub op: RedoOp,
}

impl RedoRecord {
    /// Encodes the record for the log.
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Appends the encoded record to `w` without intermediate allocations
    /// (row payloads are written in place behind back-patched length
    /// prefixes).
    pub fn encode_into(&self, w: &mut Writer) {
        w.put_u64(self.scn.0);
        w.put_u64(self.txn.map_or(0, |t| t.0));
        match &self.op {
            RedoOp::Insert { obj, rid, row } => {
                w.put_u8(1);
                w.put_u32(obj.0);
                encode_rid(w, rid);
                put_row(w, row);
            }
            RedoOp::Update { obj, rid, before, after } => {
                w.put_u8(2);
                w.put_u32(obj.0);
                encode_rid(w, rid);
                put_row(w, before);
                put_row(w, after);
            }
            RedoOp::Delete { obj, rid, before } => {
                w.put_u8(3);
                w.put_u32(obj.0);
                encode_rid(w, rid);
                put_row(w, before);
            }
            RedoOp::Commit => w.put_u8(4),
            RedoOp::Rollback => w.put_u8(5),
            RedoOp::Catalog(change) => {
                w.put_u8(6);
                change.encode(w);
            }
        }
    }

    /// Size of the encoded form, in bytes (used to decide log switches
    /// before the record is written into the log buffer).
    pub fn encoded_len(&self) -> usize {
        const HEADER: usize = 8 + 8 + 1; // scn + txn + op tag
        const RID: usize = 4 + 4 + 2;
        HEADER
            + match &self.op {
                RedoOp::Insert { row, .. } => 4 + RID + 4 + row.encoded_len(),
                RedoOp::Update { before, after, .. } => {
                    4 + RID + 4 + before.encoded_len() + 4 + after.encoded_len()
                }
                RedoOp::Delete { before, .. } => 4 + RID + 4 + before.encoded_len(),
                RedoOp::Commit | RedoOp::Rollback => 0,
                RedoOp::Catalog(change) => {
                    // DDL is rare; measuring by encoding is fine off the
                    // hot path.
                    let mut w = Writer::new();
                    change.encode(&mut w);
                    w.len()
                }
            }
    }

    /// Decodes one record from a reader positioned at a record boundary.
    ///
    /// # Errors
    ///
    /// Fails on malformed bytes.
    pub fn decode_from(r: &mut Reader) -> DecodeResult<RedoRecord> {
        let scn = Scn(r.get_u64("record scn")?);
        let txn_raw = r.get_u64("record txn")?;
        let txn = if txn_raw == 0 { None } else { Some(TxnId(txn_raw)) };
        let tag = r.get_u8("record op tag")?;
        let op = match tag {
            1 => RedoOp::Insert {
                obj: ObjectId(r.get_u32("insert obj")?),
                rid: decode_rid(r)?,
                row: Row::decode(r.get_bytes("insert row")?)?,
            },
            2 => RedoOp::Update {
                obj: ObjectId(r.get_u32("update obj")?),
                rid: decode_rid(r)?,
                before: Row::decode(r.get_bytes("update before")?)?,
                after: Row::decode(r.get_bytes("update after")?)?,
            },
            3 => RedoOp::Delete {
                obj: ObjectId(r.get_u32("delete obj")?),
                rid: decode_rid(r)?,
                before: Row::decode(r.get_bytes("delete before")?)?,
            },
            4 => RedoOp::Commit,
            5 => RedoOp::Rollback,
            6 => RedoOp::Catalog(CatalogChange::decode(r)?),
            _ => return Err(DecodeError { context: "record op tag" }),
        };
        Ok(RedoRecord { scn, txn, op })
    }

    /// The datafile this record's change lands in, if it is a row change.
    pub fn target_file(&self) -> Option<FileNo> {
        match &self.op {
            RedoOp::Insert { rid, .. } | RedoOp::Update { rid, .. } | RedoOp::Delete { rid, .. } => {
                Some(rid.file)
            }
            _ => None,
        }
    }
}

fn put_row(w: &mut Writer, row: &Row) {
    // Length-prefixed row, written in place; the prefix is the row's
    // memoized encoded length, so nothing is back-patched.
    w.put_u32(row.encoded_len() as u32);
    row.encode_into(w);
}

fn encode_rid(w: &mut Writer, rid: &RowId) {
    w.put_u32(rid.file.0);
    w.put_u32(rid.block);
    w.put_u16(rid.slot);
}

fn decode_rid(r: &mut Reader) -> DecodeResult<RowId> {
    Ok(RowId {
        file: FileNo(r.get_u32("rid file")?),
        block: r.get_u32("rid block")?,
        slot: r.get_u16("rid slot")?,
    })
}

/// Decodes every record in a sequence's byte segments (as returned by the
/// filesystem), together with each record's starting offset within the
/// sequence. `overhead` is the per-record padding the log writer charged.
///
/// # Errors
///
/// Fails on malformed bytes.
pub fn decode_stream(segments: &[Bytes], overhead: u64) -> DecodeResult<Vec<(u64, RedoRecord)>> {
    let (records, truncated) = decode_stream_tolerant(segments, overhead);
    if truncated {
        return Err(DecodeError { context: "redo stream tail" });
    }
    Ok(records)
}

/// Like [`decode_stream`], but tolerant of a torn tail: decodes records
/// until the stream either ends cleanly or stops mid-record, returning the
/// cleanly decoded prefix plus whether a torn tail was found.
///
/// This is the Oracle end-of-log convention for the *current* online log —
/// a crash can interrupt LGWR mid-write, and everything before the torn
/// record is still valid, durable redo. Callers must only tolerate
/// truncation on the head sequence of the log chain; a torn *archived* or
/// mid-chain sequence means real data loss.
pub fn decode_stream_tolerant(segments: &[Bytes], overhead: u64) -> (Vec<(u64, RedoRecord)>, bool) {
    let mut out = Vec::new();
    let mut offset = 0u64;
    for seg in segments {
        let mut r = Reader::new(seg.clone());
        while r.remaining() > 0 {
            let before = r.remaining();
            match RedoRecord::decode_from(&mut r) {
                Ok(rec) => {
                    let consumed = (before - r.remaining()) as u64;
                    out.push((offset, rec));
                    offset += consumed + overhead;
                }
                Err(_) => return (out, true),
            }
        }
    }
    (out, false)
}

/// Volatile state of the redo subsystem: the log buffer and the write
/// position. Recreated at instance startup from the control file.
#[derive(Debug, Clone)]
pub struct RedoState {
    /// Index of the group currently being written.
    pub current_group: usize,
    /// Sequence number currently being written.
    pub current_seq: u64,
    /// Logical end of the log (flushed + buffered), including padding.
    pub current_offset: u64,
    /// Offset up to which records have been flushed to the online log.
    pub flushed_offset: u64,
    /// Encoded-but-unflushed records, back to back in one buffer (the
    /// LGWR log buffer). The allocation is recycled across flushes.
    buffer: Writer,
    buffer_pad: u64,
    /// Per-record padding (change-vector overhead).
    pub overhead: u64,
}

impl RedoState {
    /// Creates the state for an instance resuming at `(group, seq)` with
    /// `flushed` bytes already in the current log.
    pub fn new(current_group: usize, current_seq: u64, flushed: u64, overhead: u64) -> Self {
        RedoState {
            current_group,
            current_seq,
            current_offset: flushed,
            flushed_offset: flushed,
            buffer: Writer::new(),
            buffer_pad: 0,
            overhead,
        }
    }

    /// The address the *next* record will receive.
    pub fn tail(&self) -> RedoAddr {
        RedoAddr { seq: self.current_seq, offset: self.current_offset }
    }

    /// Padded size the record would occupy in the log.
    pub fn record_cost(&self, encoded_len: usize) -> u64 {
        encoded_len as u64 + self.overhead
    }

    /// Whether appending `cost` more bytes would overflow a log of
    /// `group_bytes` (and therefore requires a switch first).
    pub fn would_overflow(&self, cost: u64, group_bytes: u64) -> bool {
        self.current_offset + cost > group_bytes
    }

    /// Buffers an encoded record and returns its assigned address.
    pub fn buffer_record(&mut self, encoded: Bytes) -> RedoAddr {
        let addr = self.tail();
        let cost = self.record_cost(encoded.len());
        self.current_offset += cost;
        self.buffer_pad += self.overhead;
        self.buffer.put_slice_raw(&encoded);
        addr
    }

    /// Encodes `rec` straight into the log buffer (no per-record
    /// allocation) and returns its assigned address and padded cost.
    pub fn buffer_encode(&mut self, rec: &RedoRecord) -> (RedoAddr, u64) {
        let addr = self.tail();
        let before = self.buffer.len();
        rec.encode_into(&mut self.buffer);
        let cost = self.record_cost(self.buffer.len() - before);
        self.current_offset += cost;
        self.buffer_pad += self.overhead;
        (addr, cost)
    }

    /// Optimistically encodes `rec` into the log buffer. If the padded
    /// record would overflow a log of `group_bytes`, the encode is undone
    /// (buffer truncated back, no accounting) and `None` is returned so
    /// the caller can switch logs first; otherwise the record is admitted
    /// and its address and cost are returned. Encoding *before* the size
    /// check means the common no-switch append measures the record by
    /// writing it once, instead of walking it twice.
    pub fn buffer_encode_checked(
        &mut self,
        rec: &RedoRecord,
        group_bytes: u64,
    ) -> Option<(RedoAddr, u64)> {
        let mark = self.buffer.len();
        rec.encode_into(&mut self.buffer);
        let cost = self.record_cost(self.buffer.len() - mark);
        if self.current_offset + cost > group_bytes {
            self.buffer.truncate(mark);
            return None;
        }
        let addr = self.tail();
        self.current_offset += cost;
        self.buffer_pad += self.overhead;
        Some((addr, cost))
    }

    /// Whether any records await flushing.
    pub fn has_unflushed(&self) -> bool {
        !self.buffer.is_empty()
    }

    /// Takes the buffered records for a flush: the concatenated payload,
    /// the accounting-only pad, and the new flushed offset.
    pub fn take_buffer(&mut self) -> (Bytes, u64, u64) {
        let payload = self.buffer.take_vec();
        let pad = self.buffer_pad;
        self.buffer_pad = 0;
        self.flushed_offset = self.current_offset;
        (Bytes::from(payload), pad, self.flushed_offset)
    }

    /// Moves the write position to the start of the next sequence in
    /// `group`.
    ///
    /// # Panics
    ///
    /// Panics if unflushed records remain (the caller must flush first).
    pub fn switch_to(&mut self, group: usize, seq: u64) {
        assert!(self.buffer.is_empty(), "cannot switch with unflushed redo");
        self.current_group = group;
        self.current_seq = seq;
        self.current_offset = 0;
        self.flushed_offset = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Value;

    fn row(n: u64) -> Row {
        Row::new(vec![Value::U64(n)])
    }

    fn rid() -> RowId {
        RowId { file: FileNo(2), block: 7, slot: 1 }
    }

    #[test]
    fn record_codec_round_trips_all_ops() {
        let records = vec![
            RedoRecord {
                scn: Scn(1),
                txn: Some(TxnId(9)),
                op: RedoOp::Insert { obj: ObjectId(1), rid: rid(), row: row(5) },
            },
            RedoRecord {
                scn: Scn(2),
                txn: Some(TxnId(9)),
                op: RedoOp::Update { obj: ObjectId(1), rid: rid(), before: row(5), after: row(6) },
            },
            RedoRecord {
                scn: Scn(3),
                txn: Some(TxnId(9)),
                op: RedoOp::Delete { obj: ObjectId(1), rid: rid(), before: row(6) },
            },
            RedoRecord { scn: Scn(4), txn: Some(TxnId(9)), op: RedoOp::Commit },
            RedoRecord { scn: Scn(5), txn: Some(TxnId(9)), op: RedoOp::Rollback },
            RedoRecord {
                scn: Scn(6),
                txn: None,
                op: RedoOp::Catalog(CatalogChange::DropTable { id: ObjectId(3) }),
            },
        ];
        for rec in records {
            let mut r = Reader::new(rec.encode());
            assert_eq!(RedoRecord::decode_from(&mut r).unwrap(), rec);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn target_file_only_for_row_changes() {
        let ins = RedoRecord {
            scn: Scn(1),
            txn: Some(TxnId(1)),
            op: RedoOp::Insert { obj: ObjectId(1), rid: rid(), row: row(1) },
        };
        assert_eq!(ins.target_file(), Some(FileNo(2)));
        let commit = RedoRecord { scn: Scn(2), txn: Some(TxnId(1)), op: RedoOp::Commit };
        assert_eq!(commit.target_file(), None);
    }

    #[test]
    fn decode_stream_tracks_offsets_with_overhead() {
        let a = RedoRecord { scn: Scn(1), txn: Some(TxnId(1)), op: RedoOp::Commit };
        let b = RedoRecord { scn: Scn(2), txn: Some(TxnId(2)), op: RedoOp::Commit };
        let ea = a.encode();
        let len_a = ea.len() as u64;
        let mut seg = ea.to_vec();
        seg.extend_from_slice(&b.encode());
        let recs = decode_stream(&[Bytes::from(seg)], 100).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].0, 0);
        assert_eq!(recs[1].0, len_a + 100);
        assert_eq!(recs[1].1, b);
    }

    #[test]
    fn tolerant_decode_returns_the_clean_prefix_of_a_torn_stream() {
        let a = RedoRecord { scn: Scn(1), txn: Some(TxnId(1)), op: RedoOp::Commit };
        let b = RedoRecord {
            scn: Scn(2),
            txn: Some(TxnId(2)),
            op: RedoOp::Insert { obj: ObjectId(1), rid: rid(), row: row(7) },
        };
        let mut seg = a.encode().to_vec();
        let eb = b.encode();
        // Tear the second record at every interior point: the first must
        // always survive, the second never half-apply.
        for cut in 1..eb.len() {
            let mut torn = seg.clone();
            torn.extend_from_slice(&eb[..cut]);
            let (records, truncated) = decode_stream_tolerant(&[Bytes::from(torn)], 10);
            assert!(truncated, "cut at {cut} must be seen as torn");
            assert_eq!(records.len(), 1);
            assert_eq!(records[0].1, a);
            // The strict decoder refuses the same stream outright.
            let mut torn2 = seg.clone();
            torn2.extend_from_slice(&eb[..cut]);
            assert!(decode_stream(&[Bytes::from(torn2)], 10).is_err());
        }
        // An untorn stream decodes identically through both entry points.
        seg.extend_from_slice(&eb);
        let (records, truncated) = decode_stream_tolerant(&[Bytes::from(seg.clone())], 10);
        assert!(!truncated);
        assert_eq!(records, decode_stream(&[Bytes::from(seg)], 10).unwrap());
    }

    #[test]
    fn state_assigns_monotone_addresses() {
        let mut s = RedoState::new(0, 1, 0, 100);
        let a1 = s.buffer_record(Bytes::from_static(b"0123456789"));
        let a2 = s.buffer_record(Bytes::from_static(b"0123456789"));
        assert_eq!(a1, RedoAddr { seq: 1, offset: 0 });
        assert_eq!(a2, RedoAddr { seq: 1, offset: 110 });
        assert!(s.has_unflushed());
        let (payload, pad, flushed) = s.take_buffer();
        assert_eq!(payload.len(), 20);
        assert_eq!(pad, 200);
        assert_eq!(flushed, 220);
        assert!(!s.has_unflushed());
    }

    #[test]
    fn overflow_check_and_switch() {
        let mut s = RedoState::new(0, 1, 0, 0);
        s.buffer_record(Bytes::from(vec![0u8; 900]));
        assert!(s.would_overflow(200, 1000));
        assert!(!s.would_overflow(100, 1000));
        s.take_buffer();
        s.switch_to(1, 2);
        assert_eq!(s.tail(), RedoAddr { seq: 2, offset: 0 });
        assert_eq!(s.current_group, 1);
    }

    #[test]
    #[should_panic(expected = "unflushed")]
    fn switch_with_unflushed_redo_panics() {
        let mut s = RedoState::new(0, 1, 0, 0);
        s.buffer_record(Bytes::from_static(b"x"));
        s.switch_to(1, 2);
    }
}
