//! Integration tests of the engine event stream and the log-switch stall
//! mechanics (the feedback loop that throttles the paper's F1G2T1
//! configuration).

use std::sync::{Arc, Mutex};

use recobench_engine::catalog::IndexDef;
use recobench_engine::row::{Row, Value};
use recobench_engine::{DbServer, DiskLayout, EngineEvent, InstanceConfig};
use recobench_sim::SimClock;

fn server(groups: u32, redo_kb: u64, archive: bool) -> DbServer {
    let cfg = InstanceConfig::builder()
        .redo_file_bytes(redo_kb * 1024)
        .redo_groups(groups)
        .checkpoint_timeout_secs(60)
        .archive_mode(archive)
        .cache_blocks(64)
        .build();
    let mut srv = DbServer::on_fresh_disks("TRC", SimClock::shared(), DiskLayout::four_disk(), cfg);
    srv.create_database().unwrap();
    srv.create_user("u").unwrap();
    srv.create_tablespace("D", 2, 1024).unwrap();
    srv.create_table("T", "u", "D", vec![IndexDef { name: "PK".into(), cols: vec![0], unique: true, ordered: true }])
        .unwrap();
    srv
}

fn churn_from(srv: &mut DbServer, start: u64, n: u64) {
    let t = srv.table_id("T").unwrap();
    let s = srv.connect().unwrap();
    for i in start..start + n {
        srv.insert(s, t, Row::new(vec![Value::U64(i), Value::from("some-payload-bytes-here")]))
            .unwrap();
        srv.commit(s).unwrap();
    }
    srv.disconnect(s);
}

fn churn(srv: &mut DbServer, n: u64) {
    churn_from(srv, 0, n);
}

#[test]
fn events_capture_switches_checkpoints_and_archives() {
    let mut srv = server(3, 48, true);
    churn(&mut srv, 300);
    let events = srv.events();
    let switches = events.count(|e| matches!(e, EngineEvent::LogSwitch { .. }));
    let checkpoints = events.count(|e| matches!(e, EngineEvent::Checkpoint { .. }));
    let archives = events.count(|e| matches!(e, EngineEvent::Archived { .. }));
    assert!(switches >= 2, "expected several switches, saw {switches}");
    assert!(checkpoints >= switches, "every switch checkpoints");
    assert_eq!(archives, switches, "archive mode copies every filled sequence");
    // Timestamps are non-decreasing.
    let mut last = recobench_sim::SimTime::ZERO;
    for (t, _) in events.events() {
        assert!(*t >= last);
        last = *t;
    }
}

#[test]
fn stats_are_derived_from_the_event_stream() {
    // The recovery/checkpoint/archive counters come straight out of the
    // event sink, so (with nothing dropped) they equal a manual count of
    // the retained events.
    let mut srv = server(3, 48, true);
    churn(&mut srv, 300);
    let stats = srv.stats();
    let events = srv.events();
    assert_eq!(events.dropped(), 0, "this workload fits the retention bound");
    assert_eq!(
        stats.log_switches,
        events.count(|e| matches!(e, EngineEvent::LogSwitch { .. })) as u64
    );
    assert_eq!(
        stats.full_checkpoints,
        events.count(|e| matches!(e, EngineEvent::Checkpoint { .. })) as u64
    );
    assert_eq!(
        stats.archives_created,
        events.count(|e| matches!(e, EngineEvent::Archived { .. })) as u64
    );
}

#[test]
fn events_record_instance_lifecycle() {
    let mut srv = server(3, 64, true);
    churn(&mut srv, 20);
    srv.shutdown_abort().unwrap();
    srv.startup().unwrap();
    srv.shutdown_normal().unwrap();
    let events = srv.events();
    assert_eq!(events.count(|e| matches!(e, EngineEvent::InstanceStopped { clean: false })), 1);
    assert_eq!(events.count(|e| matches!(e, EngineEvent::InstanceStopped { clean: true })), 1);
    assert!(events.count(
        |e| matches!(e, EngineEvent::InstanceOpened { recovered_records } if *recovered_records > 0)
    ) >= 1, "the restart after the crash replayed redo");
    assert!(
        events.count(|e| matches!(e, EngineEvent::RecoveryCompleted { .. })) >= 1,
        "crash recovery reports completion"
    );
}

#[test]
fn two_groups_stall_more_than_six_groups() {
    // With only two tiny groups, a switch routinely waits for the previous
    // sequence's checkpoint/archive; with six there is always a free group.
    let mut two = server(2, 16, true);
    churn(&mut two, 400);
    let mut six = server(6, 16, true);
    churn(&mut six, 400);
    let stall2 = two.stats().switch_stall_micros;
    let stall6 = six.stats().switch_stall_micros;
    assert!(
        stall2 >= stall6,
        "fewer groups cannot stall less: two-group {stall2}µs vs six-group {stall6}µs"
    );
    let event_stalls =
        two.events().count(|e| matches!(e, EngineEvent::SwitchStall { .. }));
    assert_eq!(
        event_stalls > 0,
        stall2 > 0,
        "events and counters must agree about stalling"
    );
}

#[test]
fn clearing_the_buffer_starts_a_fresh_window() {
    let mut srv = server(3, 48, true);
    churn(&mut srv, 150);
    assert!(!srv.events().events().is_empty());
    let switches_before = srv.stats().log_switches;
    srv.events_mut().clear();
    assert!(srv.events().events().is_empty());
    assert_eq!(
        srv.stats().log_switches,
        switches_before,
        "clearing the retained window never rewinds the derived counters"
    );
    churn_from(&mut srv, 1_000, 150);
    assert!(srv.events().count(|e| matches!(e, EngineEvent::LogSwitch { .. })) > 0);
}

#[test]
fn subscribers_see_live_events_without_retention_loss() {
    let mut srv = server(3, 48, true);
    let switches = Arc::new(Mutex::new(0u64));
    let counter = Arc::clone(&switches);
    srv.events_mut().subscribe(move |_, e| {
        if matches!(e, EngineEvent::LogSwitch { .. }) {
            *counter.lock().unwrap() += 1;
        }
    });
    churn(&mut srv, 300);
    assert_eq!(*switches.lock().unwrap(), srv.stats().log_switches);
}
