//! Integration tests of the engine event trace and the log-switch stall
//! mechanics (the feedback loop that throttles the paper's F1G2T1
//! configuration).

use recobench_engine::catalog::IndexDef;
use recobench_engine::row::{Row, Value};
use recobench_engine::trace::TraceEvent;
use recobench_engine::{DbServer, DiskLayout, InstanceConfig};
use recobench_sim::SimClock;

fn server(groups: u32, redo_kb: u64, archive: bool) -> DbServer {
    let cfg = InstanceConfig::builder()
        .redo_file_bytes(redo_kb * 1024)
        .redo_groups(groups)
        .checkpoint_timeout_secs(60)
        .archive_mode(archive)
        .cache_blocks(64)
        .build();
    let mut srv = DbServer::on_fresh_disks("TRC", SimClock::shared(), DiskLayout::four_disk(), cfg);
    srv.create_database().unwrap();
    srv.create_user("u").unwrap();
    srv.create_tablespace("D", 2, 1024).unwrap();
    srv.create_table("T", "u", "D", vec![IndexDef { name: "PK".into(), cols: vec![0], unique: true }])
        .unwrap();
    srv
}

fn churn_from(srv: &mut DbServer, start: u64, n: u64) {
    let t = srv.table_id("T").unwrap();
    for i in start..start + n {
        let txn = srv.begin().unwrap();
        srv.insert(txn, t, Row::new(vec![Value::U64(i), Value::from("some-payload-bytes-here")]))
            .unwrap();
        srv.commit(txn).unwrap();
    }
}

fn churn(srv: &mut DbServer, n: u64) {
    churn_from(srv, 0, n);
}

#[test]
fn trace_captures_switches_checkpoints_and_archives() {
    let mut srv = server(3, 48, true);
    churn(&mut srv, 300);
    let trace = srv.trace();
    let switches = trace.count(|e| matches!(e, TraceEvent::LogSwitch { .. }));
    let checkpoints = trace.count(|e| matches!(e, TraceEvent::Checkpoint { .. }));
    let archives = trace.count(|e| matches!(e, TraceEvent::Archived { .. }));
    assert!(switches >= 2, "expected several switches, saw {switches}");
    assert!(checkpoints >= switches, "every switch checkpoints");
    assert_eq!(archives, switches, "archive mode copies every filled sequence");
    // Timestamps are non-decreasing.
    let mut last = recobench_sim::SimTime::ZERO;
    for (t, _) in trace.events() {
        assert!(*t >= last);
        last = *t;
    }
}

#[test]
fn trace_records_instance_lifecycle() {
    let mut srv = server(3, 64, true);
    churn(&mut srv, 20);
    srv.shutdown_abort().unwrap();
    srv.startup().unwrap();
    srv.shutdown_normal().unwrap();
    let trace = srv.trace();
    assert_eq!(trace.count(|e| matches!(e, TraceEvent::InstanceStopped { clean: false })), 1);
    assert_eq!(trace.count(|e| matches!(e, TraceEvent::InstanceStopped { clean: true })), 1);
    assert!(trace.count(
        |e| matches!(e, TraceEvent::InstanceOpened { recovered_records } if *recovered_records > 0)
    ) >= 1, "the restart after the crash replayed redo");
}

#[test]
fn two_groups_stall_more_than_six_groups() {
    // With only two tiny groups, a switch routinely waits for the previous
    // sequence's checkpoint/archive; with six there is always a free group.
    let mut two = server(2, 16, true);
    churn(&mut two, 400);
    let mut six = server(6, 16, true);
    churn(&mut six, 400);
    let stall2 = two.stats().switch_stall_micros;
    let stall6 = six.stats().switch_stall_micros;
    assert!(
        stall2 >= stall6,
        "fewer groups cannot stall less: two-group {stall2}µs vs six-group {stall6}µs"
    );
    let trace_stalls =
        two.trace().count(|e| matches!(e, TraceEvent::SwitchStall { .. }));
    assert_eq!(
        trace_stalls > 0,
        stall2 > 0,
        "trace and counters must agree about stalling"
    );
}

#[test]
fn clear_trace_starts_a_fresh_window() {
    let mut srv = server(3, 48, true);
    churn(&mut srv, 150);
    assert!(!srv.trace().events().is_empty());
    srv.clear_trace();
    assert!(srv.trace().events().is_empty());
    churn_from(&mut srv, 1_000, 150);
    assert!(srv.trace().count(|e| matches!(e, TraceEvent::LogSwitch { .. })) > 0);
}
