//! Property-based tests of the engine's storage formats and index
//! structures: everything persisted must round-trip exactly, and the
//! order-preserving key encoding must sort exactly like the values.

use bytes::Bytes;
use proptest::prelude::*;
use recobench_engine::catalog::{Catalog, CatalogChange, Extent, IndexDef};
use recobench_engine::codec::{Reader, Writer};
use recobench_engine::index::Index;
use recobench_engine::page::BlockImage;
use recobench_engine::redo::{decode_stream, RedoOp, RedoRecord};
use recobench_engine::row::{encode_key, encode_key_into, Row, Value};
use recobench_engine::types::{FileNo, ObjectId, RowId, Scn, TablespaceId, TxnId, UserId};

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<u64>().prop_map(Value::U64),
        any::<i64>().prop_map(Value::I64),
        "[ -~]{0,40}".prop_map(Value::from),
        proptest::collection::vec(any::<u8>(), 0..40).prop_map(Value::Bytes),
    ]
}

fn row_strategy() -> impl Strategy<Value = Row> {
    proptest::collection::vec(value_strategy(), 0..8).prop_map(Row::new)
}

/// Generates two value tuples with identical arity and per-column type,
/// so comparing them exercises within-type key ordering.
fn shape_matched_pair() -> impl Strategy<Value = (Vec<Value>, Vec<Value>)> {
    let column = prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(x, y)| (Value::U64(x), Value::U64(y))),
        (any::<i64>(), any::<i64>()).prop_map(|(x, y)| (Value::I64(x), Value::I64(y))),
        ("[ -~]{0,20}", "[ -~]{0,20}").prop_map(|(x, y)| (Value::from(x), Value::from(y))),
        (
            proptest::collection::vec(any::<u8>(), 0..20),
            proptest::collection::vec(any::<u8>(), 0..20)
        )
            .prop_map(|(x, y)| (Value::Bytes(x), Value::Bytes(y))),
    ];
    proptest::collection::vec(column, 1..4).prop_map(|cols| cols.into_iter().unzip())
}

fn rid_strategy() -> impl Strategy<Value = RowId> {
    (any::<u32>(), any::<u32>(), any::<u16>())
        .prop_map(|(f, b, s)| RowId { file: FileNo(f), block: b, slot: s })
}

fn redo_op_strategy() -> impl Strategy<Value = RedoOp> {
    prop_oneof![
        (any::<u32>(), rid_strategy(), row_strategy())
            .prop_map(|(o, rid, row)| RedoOp::Insert { obj: ObjectId(o), rid, row }),
        (any::<u32>(), rid_strategy(), row_strategy(), row_strategy())
            .prop_map(|(o, rid, before, after)| RedoOp::Update { obj: ObjectId(o), rid, before, after }),
        (any::<u32>(), rid_strategy(), row_strategy())
            .prop_map(|(o, rid, before)| RedoOp::Delete { obj: ObjectId(o), rid, before }),
        Just(RedoOp::Commit),
        Just(RedoOp::Rollback),
        any::<u32>().prop_map(|o| RedoOp::Catalog(CatalogChange::DropTable { id: ObjectId(o) })),
    ]
}

proptest! {
    #[test]
    fn row_codec_round_trips(row in row_strategy()) {
        let encoded = row.encode();
        prop_assert_eq!(encoded.len(), row.encoded_len());
        prop_assert_eq!(Row::decode(encoded).unwrap(), row);
    }

    #[test]
    fn key_encoding_orders_exactly_like_values(
        pair in shape_matched_pair()
    ) {
        // Same-arity, same-type-shape tuples: heterogeneous comparisons
        // order by type tag, which `Value`'s derived Ord also does, so the
        // interesting property is within-type ordering.
        let (a, b) = pair;
        let ka = encode_key(&a);
        let kb = encode_key(&b);
        prop_assert_eq!(ka.cmp(&kb), a.cmp(&b), "byte order must equal value order: {:?} vs {:?}", a, b);
    }

    #[test]
    fn key_encode_into_reused_buffer_matches_fresh_encode(
        tuples in proptest::collection::vec(
            proptest::collection::vec(value_strategy(), 0..4), 1..10)
    ) {
        // The index probes encode into one scratch buffer (clear, encode,
        // look up). Whatever a previous probe left behind, the reused
        // buffer must end up byte-identical to a fresh allocation.
        let mut scratch: Vec<u8> = Vec::new();
        for vals in &tuples {
            scratch.clear();
            encode_key_into(vals, &mut scratch);
            prop_assert_eq!(&scratch, &encode_key(vals));
        }
    }

    #[test]
    fn index_replace_matches_remove_then_insert(
        ops in proptest::collection::vec((0u64..16, 0u64..16, 0u32..8), 1..60)
    ) {
        // `replace` (with its key-unchanged fast path) must index exactly
        // the same rids under the same keys as remove-then-insert. Order
        // within one key's entry list is not part of the contract (the
        // fast path keeps a rid in place where remove+insert re-appends
        // it), so entries compare as sets.
        let def = IndexDef { name: "IX".into(), cols: vec![0], unique: false, ordered: true };
        let mut fast = Index::new(def.clone());
        let mut slow = Index::new(def);
        for (kb, ka, block) in ops {
            let before = Row::new(vec![Value::U64(kb)]);
            let after = Row::new(vec![Value::U64(ka)]);
            let rid = RowId { file: FileNo(1), block, slot: 0 };
            fast.insert(&before, rid).unwrap();
            slow.insert(&before, rid).unwrap();
            fast.replace(&before, &after, rid).unwrap();
            slow.remove(&before, rid);
            slow.insert(&after, rid).unwrap();
            prop_assert_eq!(fast.key_count(), slow.key_count());
            for k in 0..16u64 {
                let mut a = fast.lookup(&[Value::U64(k)]);
                let mut b = slow.lookup(&[Value::U64(k)]);
                a.sort();
                b.sort();
                prop_assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn block_codec_round_trips(
        rows in proptest::collection::vec((any::<u16>(), row_strategy()), 0..20),
        scn in any::<u64>(),
    ) {
        let mut img = BlockImage::empty();
        for (slot, row) in &rows {
            img.put(*slot, row.clone(), Scn(scn));
        }
        let decoded = BlockImage::decode(img.encode()).unwrap();
        prop_assert_eq!(decoded.row_count(), img.row_count());
        for (slot, _) in &rows {
            prop_assert_eq!(decoded.row(*slot), img.row(*slot));
        }
        prop_assert_eq!(decoded.last_scn, img.last_scn);
    }

    #[test]
    fn redo_record_codec_round_trips(
        scn in any::<u64>(),
        txn in proptest::option::of(1u64..u64::MAX),
        op in redo_op_strategy(),
    ) {
        let rec = RedoRecord { scn: Scn(scn), txn: txn.map(TxnId), op };
        let mut r = Reader::new(rec.encode());
        prop_assert_eq!(RedoRecord::decode_from(&mut r).unwrap(), rec);
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn redo_stream_decode_recovers_every_record_and_offset(
        ops in proptest::collection::vec(redo_op_strategy(), 1..30),
        overhead in 0u64..1024,
    ) {
        let records: Vec<RedoRecord> = ops
            .into_iter()
            .enumerate()
            .map(|(i, op)| RedoRecord { scn: Scn(i as u64 + 1), txn: Some(TxnId(1)), op })
            .collect();
        let mut stream = Vec::new();
        let mut offsets = Vec::new();
        let mut pos = 0u64;
        for rec in &records {
            let enc = rec.encode();
            offsets.push(pos);
            pos += enc.len() as u64 + overhead;
            stream.extend_from_slice(&enc);
        }
        let decoded = decode_stream(&[Bytes::from(stream)], overhead).unwrap();
        prop_assert_eq!(decoded.len(), records.len());
        for ((off, rec), (want_off, want_rec)) in decoded.iter().zip(offsets.iter().zip(&records)) {
            prop_assert_eq!(off, want_off);
            prop_assert_eq!(rec, want_rec);
        }
    }

    #[test]
    fn scalar_codec_round_trips(
        u8s in any::<u8>(), u16s in any::<u16>(), u32s in any::<u32>(),
        u64s in any::<u64>(), i64s in any::<i64>(), s in "[ -~]{0,60}",
    ) {
        let mut w = Writer::new();
        w.put_u8(u8s);
        w.put_u16(u16s);
        w.put_u32(u32s);
        w.put_u64(u64s);
        w.put_i64(i64s);
        w.put_str(&s);
        let mut r = Reader::new(w.into_bytes());
        prop_assert_eq!(r.get_u8("a").unwrap(), u8s);
        prop_assert_eq!(r.get_u16("b").unwrap(), u16s);
        prop_assert_eq!(r.get_u32("c").unwrap(), u32s);
        prop_assert_eq!(r.get_u64("d").unwrap(), u64s);
        prop_assert_eq!(r.get_i64("e").unwrap(), i64s);
        prop_assert_eq!(r.get_str("f").unwrap(), s);
    }

    #[test]
    fn catalog_changes_replay_idempotently_in_any_suffix(
        extents in proptest::collection::vec((1u32..4, 0u32..256), 1..20),
        replay_from in 0usize..20,
    ) {
        // Applying a change log, then re-applying any suffix of it, must
        // leave the catalog exactly as after the first pass (this is what
        // recovery relies on when the checkpoint races the log position).
        let mut changes = vec![
            CatalogChange::CreateUser { id: UserId(1), name: "u".into() },
            CatalogChange::CreateTablespace { id: TablespaceId(1), name: "TS".into() },
            CatalogChange::CreateTable {
                id: ObjectId(1),
                name: "T".into(),
                owner: UserId(1),
                tablespace: TablespaceId(1),
                indexes: vec![IndexDef { name: "PK".into(), cols: vec![0], unique: true, ordered: true }],
            },
        ];
        for (file, start) in extents {
            changes.push(CatalogChange::AllocExtent {
                table: ObjectId(1),
                extent: Extent { file: FileNo(file), start: start * 64, len: 64 },
            });
        }
        let mut cat = Catalog::new();
        for ch in &changes {
            cat.apply(ch);
        }
        let snapshot = cat.clone();
        let from = replay_from.min(changes.len());
        for ch in &changes[from..] {
            cat.apply(ch);
        }
        prop_assert_eq!(cat, snapshot);
    }

    #[test]
    fn index_insert_remove_matches_model(
        ops in proptest::collection::vec((any::<bool>(), 0u64..32, 0u32..8), 1..100)
    ) {
        let mut ix = Index::new(IndexDef { name: "IX".into(), cols: vec![0], unique: false, ordered: true });
        let mut model: std::collections::BTreeMap<u64, std::collections::BTreeSet<u32>> =
            std::collections::BTreeMap::new();
        for (insert, key, block) in ops {
            let row = Row::new(vec![Value::U64(key)]);
            let rid = RowId { file: FileNo(1), block, slot: 0 };
            if insert {
                ix.insert(&row, rid).unwrap();
                model.entry(key).or_default().insert(block);
            } else {
                ix.remove(&row, rid);
                if let Some(set) = model.get_mut(&key) {
                    set.remove(&block);
                    if set.is_empty() {
                        model.remove(&key);
                    }
                }
            }
        }
        for (key, blocks) in &model {
            let got: std::collections::BTreeSet<u32> =
                ix.lookup(&[Value::U64(*key)]).into_iter().map(|r| r.block).collect();
            prop_assert_eq!(&got, blocks);
        }
        prop_assert_eq!(ix.key_count(), model.len());
    }
}
