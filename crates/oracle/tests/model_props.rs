//! Property tests for the reference model.
//!
//! Randomized operation streams are decoded from plain `u64` draws into
//! [`DmlChange`] sequences (small transaction/table/rowid spaces so
//! collisions — the interesting cases — are common), then checked against
//! model invariants and an independently written naive interpreter:
//!
//! * the committed state is exactly a replay of the commit log;
//! * every row reflects the **last committed** write, never a pending one;
//! * a rolled-back transaction leaves no trace at all;
//! * `truncate_to` keeps exactly the log prefix below the stop SCN;
//! * the commit log only ever grows, and strictly by SCN.

use std::collections::BTreeMap;

use proptest::prelude::*;
use recobench_engine::row::{Row, Value};
use recobench_engine::types::FileNo;
use recobench_engine::{DmlChange, ObjectId, RowId, Scn, TxnId};
use recobench_oracle::{RefModel, RowOp};

/// Decodes raw draws into an operation stream. Commit SCNs are assigned
/// from a strictly increasing counter, as the engine's redo log does.
fn decode(words: &[u64]) -> Vec<DmlChange> {
    let mut scn = 100u64;
    let mut ops = Vec::with_capacity(words.len());
    for &w in words {
        let txn = TxnId(1 + w % 4);
        let obj = ObjectId(1 + ((w >> 3) % 3) as u32);
        let rid = RowId {
            file: FileNo(1 + ((w >> 5) % 2) as u32),
            block: ((w >> 7) % 8) as u32,
            slot: ((w >> 10) % 4) as u16,
        };
        let row = Row::new(vec![Value::U64(w >> 12), Value::I64((w % 97) as i64)]);
        ops.push(match w % 13 {
            0..=3 => DmlChange::Insert { txn, obj, rid, row },
            4..=6 => DmlChange::Update { txn, obj, rid, row },
            7..=8 => DmlChange::Delete { txn, obj, rid },
            9 | 10 => {
                scn += 1 + (w >> 20) % 5;
                DmlChange::Commit { txn, scn: Scn(scn) }
            }
            11 => DmlChange::Rollback { txn },
            _ => {
                scn += 1;
                DmlChange::DropTable { obj, scn: Scn(scn) }
            }
        });
    }
    ops
}

fn fed(ops: &[DmlChange]) -> RefModel {
    let mut model = RefModel::empty();
    for op in ops {
        model.observe(op);
    }
    model
}

/// A second, independently written interpreter of the same stream — the
/// differential half of the property. Deliberately structured differently
/// from the model: per-transaction journals replayed at commit.
fn naive_committed_state(ops: &[DmlChange]) -> BTreeMap<(ObjectId, RowId), Row> {
    let mut journals: BTreeMap<TxnId, Vec<(ObjectId, RowId, Option<Row>)>> = BTreeMap::new();
    let mut state: BTreeMap<(ObjectId, RowId), Row> = BTreeMap::new();
    for op in ops {
        match op {
            DmlChange::Insert { txn, obj, rid, row } | DmlChange::Update { txn, obj, rid, row } => {
                journals.entry(*txn).or_default().push((*obj, *rid, Some(row.clone())));
            }
            DmlChange::Delete { txn, obj, rid } => {
                journals.entry(*txn).or_default().push((*obj, *rid, None));
            }
            DmlChange::Commit { txn, .. } => {
                for (obj, rid, row) in journals.remove(txn).unwrap_or_default() {
                    match row {
                        Some(r) => {
                            state.insert((obj, rid), r);
                        }
                        None => {
                            state.remove(&(obj, rid));
                        }
                    }
                }
            }
            DmlChange::Rollback { txn } => {
                journals.remove(txn);
            }
            DmlChange::DropTable { obj, .. } => {
                state.retain(|(o, _), _| o != obj);
            }
            DmlChange::DropTablespace { tables, .. } => {
                state.retain(|(o, _), _| !tables.contains(o));
            }
        }
    }
    state
}

/// Replays a slice of the model's own log — used to pin down truncation.
fn replay_log(log: &[recobench_oracle::LogEntry]) -> BTreeMap<(ObjectId, RowId), Row> {
    let mut state = BTreeMap::new();
    for entry in log {
        for op in &entry.ops {
            match op {
                RowOp::Put { obj, rid, row } => {
                    state.insert((*obj, *rid), row.clone());
                }
                RowOp::Del { obj, rid } => {
                    state.remove(&(*obj, *rid));
                }
            }
        }
    }
    state
}

proptest! {
    #[test]
    fn state_is_exactly_a_replay_of_the_commit_log(
        words in proptest::collection::vec(any::<u64>(), 0..250)
    ) {
        let model = fed(&decode(&words));
        prop_assert!(model.scns_strictly_increasing());
        prop_assert_eq!(model.state().clone(), model.rebuild());
        prop_assert_eq!(model.state().clone(), replay_log(model.log()));
    }

    #[test]
    fn every_row_reflects_the_last_committed_write(
        words in proptest::collection::vec(any::<u64>(), 0..250)
    ) {
        let ops = decode(&words);
        let model = fed(&ops);
        prop_assert_eq!(model.state().clone(), naive_committed_state(&ops));
    }

    #[test]
    fn rolled_back_transactions_leave_no_trace(
        words in proptest::collection::vec(any::<u64>(), 0..250)
    ) {
        // Stream A: the victim transaction's operations never happen.
        // Stream B: they happen but every commit of the victim becomes a
        // rollback. The two committed states must be identical.
        let victim = TxnId(1);
        let ops = decode(&words);
        let a: Vec<DmlChange> = ops
            .iter()
            .filter(|op| !matches!(op,
                DmlChange::Insert { txn, .. }
                | DmlChange::Update { txn, .. }
                | DmlChange::Delete { txn, .. }
                | DmlChange::Commit { txn, .. }
                | DmlChange::Rollback { txn } if *txn == victim))
            .cloned()
            .collect();
        let b: Vec<DmlChange> = ops
            .iter()
            .map(|op| match op {
                DmlChange::Commit { txn, .. } if *txn == victim => {
                    DmlChange::Rollback { txn: victim }
                }
                other => other.clone(),
            })
            .collect();
        prop_assert_eq!(fed(&a).state().clone(), fed(&b).state().clone());
    }

    #[test]
    fn truncation_keeps_exactly_the_prefix(
        words in proptest::collection::vec(any::<u64>(), 1..250),
        cut in any::<u64>()
    ) {
        let mut model = fed(&decode(&words));
        let full_log = model.log().to_vec();
        // A stop SCN landing anywhere across (and beyond) the log.
        let keep = (cut % (full_log.len() as u64 + 2)) as usize;
        let stop = full_log
            .get(keep)
            .map(|e| e.scn)
            .unwrap_or_else(|| Scn(u64::MAX));
        model.truncate_to(stop);
        let kept: Vec<_> = full_log.iter().filter(|e| e.scn < stop).cloned().collect();
        prop_assert_eq!(model.log().to_vec(), kept.clone());
        prop_assert_eq!(model.state().clone(), replay_log(&kept));
        prop_assert_eq!(model.open_txns(), 0, "truncation abandons in-flight transactions");
    }

    #[test]
    fn the_commit_log_only_grows_and_only_by_scn(
        words in proptest::collection::vec(any::<u64>(), 0..120)
    ) {
        let mut model = RefModel::empty();
        let mut prev_scns: Vec<Scn> = Vec::new();
        for op in decode(&words) {
            model.observe(&op);
            let scns: Vec<Scn> = model.log().iter().map(|e| e.scn).collect();
            prop_assert!(scns.len() >= prev_scns.len());
            prop_assert_eq!(&scns[..prev_scns.len()], &prev_scns[..],
                "the committed past never changes");
            prev_scns = scns;
        }
    }
}
