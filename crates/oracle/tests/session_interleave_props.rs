//! Differential property test of the session API under interleaving.
//!
//! Two sessions submit a randomized stream of DML against one engine while
//! the DML tap feeds a [`RefModel`]. The stream is interleaved statement by
//! statement, so row locks, FIFO lock waits and two-party deadlocks all
//! fire along the way. A blocked session behaves like a real blocked
//! client: it submits nothing until the lock manager grants its wait, and
//! a deadlock victim rolls back. Whatever subset of operations the engine
//! accepted, the committed state must equal the model's replay — rejected
//! statements (lock waits, deadlock aborts, unique-key violations,
//! vanished rows) must leave no trace on either side.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use recobench_engine::catalog::IndexDef;
use recobench_engine::row::{Row, Value};
use recobench_engine::{DbError, DbServer, DiskLayout, InstanceConfig, ObjectId, RowId, SessionId};
use recobench_oracle::{diff_states, RefModel};
use recobench_sim::SimClock;

/// One decoded client statement. `Commit`/`Rollback` end the session's
/// open transaction; the rest implicitly begin one.
#[derive(Debug, Clone)]
enum Op {
    Insert(Row),
    /// The bool asks for a key-preserving update (the TPC-C shape); a
    /// `false` leaves the drawn key in place, moving the unique key.
    Update(usize, Row, bool),
    Delete(usize),
    Commit,
    Rollback,
}

/// Decodes raw draws into per-session statements. The key space is kept
/// tiny so both sessions fight over the same rows constantly.
fn decode(words: &[u64]) -> Vec<(usize, Op)> {
    words
        .iter()
        .map(|&w| {
            let session = (w % 2) as usize;
            let key = 1 + (w >> 4) % 6;
            let payload = Value::I64(((w >> 8) % 1_000) as i64);
            let row = Row::new(vec![Value::U64(key), payload]);
            let op = match (w >> 1) % 8 {
                0..=2 => Op::Update((w >> 16) as usize, row, (w >> 24) % 4 != 0),
                3 | 4 => Op::Insert(row),
                5 => Op::Delete((w >> 16) as usize),
                6 => Op::Commit,
                _ => Op::Rollback,
            };
            (session, op)
        })
        .collect()
}

fn seeded_server() -> (DbServer, ObjectId, Vec<RowId>) {
    let mut srv = DbServer::on_fresh_disks(
        "PROP",
        SimClock::shared(),
        DiskLayout::four_disk(),
        InstanceConfig::default(),
    );
    srv.create_database().unwrap();
    srv.create_user("u").unwrap();
    srv.create_tablespace("D", 2, 1_024).unwrap();
    let t = srv
        .create_table(
            "T",
            "u",
            "D",
            vec![IndexDef { name: "PK".into(), cols: vec![0], unique: true, ordered: true }],
        )
        .unwrap();
    let s = srv.connect().unwrap();
    let mut pool = Vec::new();
    for key in 0..8u64 {
        pool.push(srv.insert(s, t, Row::new(vec![Value::U64(key), Value::I64(0)])).unwrap());
        srv.commit(s).unwrap();
    }
    srv.disconnect(s);
    (srv, t, pool)
}

/// What became of one submitted statement.
enum Fate {
    /// Applied, failed benignly, or ended the transaction — session free.
    Done,
    /// Lock wait: the statement must be held and retried on grant.
    Parked,
    /// Deadlock victim: the transaction was rolled back, statement dropped.
    Aborted,
}

fn submit(
    srv: &mut DbServer,
    s: SessionId,
    t: ObjectId,
    pool: &mut Vec<RowId>,
    op: &Op,
) -> Fate {
    let result = match op {
        Op::Insert(row) => match srv.insert(s, t, row.clone()) {
            Ok(rid) => {
                pool.push(rid);
                Ok(())
            }
            Err(e) => Err(e),
        },
        Op::Update(i, row, keep_key) => {
            let rid = pool[i % pool.len()];
            if *keep_key {
                // Preserve the row's current key, as every TPC-C update
                // does; the minority case below moves the unique key and
                // exercises the vacated-key enqueue.
                match srv.get_row(t, rid) {
                    Ok(current) => {
                        let mut replacement = row.clone();
                        replacement.set(0, current.get(0).cloned().unwrap_or(Value::U64(0)));
                        srv.update(s, t, rid, replacement)
                    }
                    Err(e) => Err(e),
                }
            } else {
                srv.update(s, t, rid, row.clone())
            }
        }
        Op::Delete(i) => {
            let rid = pool[i % pool.len()];
            srv.delete(s, t, rid)
        }
        Op::Commit => srv.commit(s),
        Op::Rollback => srv.rollback(s),
    };
    match result {
        Ok(()) => Fate::Done,
        Err(DbError::LockWait { .. }) => Fate::Parked,
        Err(DbError::Deadlock { .. }) => {
            srv.rollback(s).expect("victim rollback always succeeds");
            Fate::Aborted
        }
        // Unique-key violations and rows deleted out from under the pool
        // are ordinary statement failures: nothing mutated, txn lives on.
        Err(_) => Fate::Done,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn two_interleaved_sessions_never_diverge_from_the_model(
        words in proptest::collection::vec(any::<u64>(), 1..250)
    ) {
        let (mut srv, t, mut pool) = seeded_server();
        let model = Arc::new(Mutex::new(RefModel::from_server(&srv).unwrap()));
        let sink = Arc::clone(&model);
        srv.set_dml_tap(move |change| sink.lock().unwrap().observe(change));

        let sessions = [srv.connect().unwrap(), srv.connect().unwrap()];
        let mut parked: [Option<Op>; 2] = [None, None];

        for (side, op) in decode(&words) {
            if parked[side].is_some() {
                // A blocked client cannot submit; the statement is lost on
                // the keyboard side, exactly as a real terminal would be.
                continue;
            }
            match submit(&mut srv, sessions[side], t, &mut pool, &op) {
                Fate::Done => {}
                Fate::Parked => parked[side] = Some(op),
                Fate::Aborted => {}
            }
            // A commit, rollback or victim abort may have granted the
            // other session's wait: replay its held statement, which may
            // immediately park again behind a different holder.
            loop {
                let grants = srv.take_lock_grants();
                if grants.is_empty() {
                    break;
                }
                for (granted, _) in grants {
                    let other = sessions.iter().position(|&s| s == granted).unwrap();
                    let held = parked[other].take().expect("granted session was parked");
                    match submit(&mut srv, sessions[other], t, &mut pool, &held) {
                        Fate::Done | Fate::Aborted => {}
                        Fate::Parked => parked[other] = Some(held),
                    }
                }
            }
        }

        // Quiesce: abandon whatever is still open — in-flight work must
        // not count, and a parked wait must cancel cleanly.
        for &s in &sessions {
            srv.rollback(s).unwrap();
            srv.disconnect(s);
        }
        let model = model.lock().unwrap();
        prop_assert_eq!(model.open_txns(), 0, "rollbacks close every model txn");
        let divergences = diff_states(&srv, &model).unwrap();
        prop_assert!(divergences.is_empty(), "engine and model disagree: {divergences:?}");
    }
}
