//! The crash-at-every-write-point sweep: the storage-faultload
//! acceptance test.
//!
//! A fixed, deterministic workload (inserts, updates, deletes,
//! checkpoints) is first run cleanly to enumerate every durable-write
//! site it performs — block writes and redo appends alike, counted by the
//! vfs write counter. Then, for **every** one of those sites, a fresh
//! engine runs the same workload with [`FaultArm::CrashAtWrite`] armed at
//! that site: the nth write persists only a prefix (the tear fraction
//! varies across points, including "nothing" and "everything"), every
//! later write fails, and the harness crash-recovers the instance.
//!
//! After each recovery the differential oracle must find **zero**
//! divergences: every acknowledged commit is intact (durability) and
//! nothing unacknowledged leaked in (atomicity). The one genuinely
//! ambiguous case — a commit whose flush died mid-write, so the client
//! heard an error but the marker may have persisted — is settled by
//! probing the recovered engine ([`RefModel::resolve_in_doubt`]): either
//! answer is legal, but the engine must then *match* the answer it gave.

use std::collections::{BTreeSet, VecDeque};
use std::sync::{Arc, Mutex};

use recobench_engine::{
    DbResult, DbServer, DiskLayout, InstanceConfig, ObjectId, Row, RowId, SessionId, Value,
};
use recobench_engine::catalog::IndexDef;
use recobench_oracle::{diff_states, RefModel};
use recobench_sim::SimClock;
use recobench_vfs::FaultArm;

/// Committed transactions in the workload. Sized so the write-site count
/// comfortably clears the 200-point acceptance floor.
const TXNS: u64 = 210;

fn build_server() -> (DbServer, ObjectId) {
    build_server_with_cache(64)
}

fn build_server_with_cache(cache_blocks: usize) -> (DbServer, ObjectId) {
    let cfg = InstanceConfig::builder()
        .redo_file_bytes(64 * 1024)
        .redo_groups(3)
        .checkpoint_timeout_secs(300)
        .archive_mode(true)
        .cache_blocks(cache_blocks)
        .build();
    let mut srv =
        DbServer::on_fresh_disks("SWEEP", SimClock::shared(), DiskLayout::four_disk(), cfg);
    srv.create_database().unwrap();
    srv.create_user("app").unwrap();
    srv.create_tablespace("DATA", 2, 512).unwrap();
    srv.create_table(
        "T",
        "app",
        "DATA",
        vec![IndexDef { name: "PK".into(), cols: vec![0], unique: true, ordered: true }],
    )
    .unwrap();
    let t = srv.table_id("T").unwrap();
    srv.take_cold_backup().unwrap();
    (srv, t)
}

/// One committed transaction of the deterministic workload: insert a
/// fresh row, every 5th also update an older one, every 7th delete the
/// oldest. All values are i-unique so the in-doubt probe can never
/// confuse a rolled-back write with a committed one.
fn one_txn(
    srv: &mut DbServer,
    s: SessionId,
    t: ObjectId,
    i: u64,
    live: &mut VecDeque<RowId>,
) -> DbResult<()> {
    let rid = srv.insert(s, t, Row::new(vec![Value::U64(i), Value::U64(1_000_000 + i)]))?;
    if i % 5 == 4 {
        if let Some(&urid) = live.back() {
            srv.update(s, t, urid, Row::new(vec![Value::U64(2_000_000 + i), Value::U64(i)]))?;
            live.pop_back();
        }
    }
    if i % 7 == 6 {
        if let Some(rid) = live.pop_front() {
            srv.delete(s, t, rid)?;
        }
    }
    srv.commit(s)?;
    live.push_back(rid);
    Ok(())
}

/// Runs the workload until it finishes or the armed crash fires.
/// Returns whether the crash fired.
fn run_workload(srv: &mut DbServer, t: ObjectId) -> bool {
    let mut live = VecDeque::new();
    let mut session: Option<SessionId> = None;
    for i in 0..TXNS {
        let s = match session {
            Some(s) => s,
            None => match srv.connect() {
                Ok(s) => {
                    session = Some(s);
                    s
                }
                Err(_) => return srv.fs().lock().crash_write_fired(),
            },
        };
        let step = one_txn(srv, s, t, i, &mut live)
            .and_then(|()| if i % 20 == 19 { srv.checkpoint_now() } else { Ok(()) });
        if srv.fs().lock().crash_write_fired() {
            return true;
        }
        if let Err(e) = step {
            panic!("workload failed at txn {i} without a crash: {e}");
        }
    }
    false
}

/// The clean run: counts the workload's write sites and proves the
/// workload itself diverges nowhere.
fn baseline() -> u64 {
    let (mut srv, t) = build_server();
    let model = Arc::new(Mutex::new(RefModel::from_server(&srv).unwrap()));
    {
        let model = Arc::clone(&model);
        srv.set_dml_tap(move |change| model.lock().unwrap().observe(change));
    }
    let before = srv.fs().lock().writes_observed();
    assert!(!run_workload(&mut srv, t), "no fault armed, nothing can fire");
    let writes = srv.fs().lock().writes_observed() - before;
    let divergences = diff_states(&srv, &model.lock().unwrap()).unwrap();
    assert!(divergences.is_empty(), "clean run diverged: {divergences:?}");
    writes
}

/// Crashes the workload at write site `n` (1-based), recovers, and
/// checks the oracle. Returns the model's surviving commit count.
fn crash_at(n: u64) -> u64 {
    let (mut srv, t) = build_server();
    let model = Arc::new(Mutex::new(RefModel::from_server(&srv).unwrap()));
    {
        let model = Arc::clone(&model);
        srv.set_dml_tap(move |change| model.lock().unwrap().observe(change));
    }
    // Vary the tear across the sweep: nothing persists, half persists,
    // everything persists (but the ack is still lost).
    let keep_num = (n % 3) as u32;
    srv.fs()
        .lock()
        .arm_fault(FaultArm::CrashAtWrite { nth: n, keep_num, keep_den: 2 })
        .unwrap();
    let fired = run_workload(&mut srv, t);
    assert!(fired, "write site {n} was never reached");
    if srv.is_open() {
        srv.shutdown_abort().unwrap();
    }
    srv.fs().lock().clear_faults();
    srv.startup().unwrap_or_else(|e| panic!("crash recovery failed at write site {n}: {e}"));
    // Settle the dead transactions: rolled back unless the engine
    // durably committed them before dying.
    let scn = srv.current_scn();
    {
        let mut m = model.lock().unwrap();
        for txn in m.open_txn_ids() {
            m.resolve_in_doubt(&srv, txn, scn).unwrap();
        }
        assert!(m.scns_strictly_increasing(), "site {n}: commit SCNs must stay monotone");
    }
    let m = model.lock().unwrap();
    let divergences = diff_states(&srv, &m).unwrap();
    assert!(
        divergences.is_empty(),
        "write site {n} (keep {keep_num}/2): {} divergences, first: {}",
        divergences.len(),
        divergences[0]
    );
    m.surviving_commits()
}

/// The checked-in coverage manifest: every engine source site that the
/// sweep's workload (and its crash recoveries) drives through the VFS
/// durable-write surface. `recobench-tidy`'s `write-site-coverage` lint
/// statically enumerates the engine's write sites and fails CI when one
/// is missing from this manifest — a new write path cannot ship until
/// the sweep demonstrably exercises it.
const COVERAGE_MANIFEST: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/write_site_coverage.json");

/// Collects this filesystem's observed caller sites, keeping only engine
/// sources (the sweep also drives vfs-internal and harness writes, which
/// tidy does not count).
fn collect_engine_sites(srv: &DbServer, into: &mut BTreeSet<(String, u32)>) {
    for (file, line) in srv.fs().lock().write_sites_observed() {
        if file.starts_with("crates/engine/src/") {
            into.insert((file.to_string(), line));
        }
    }
}

fn render_manifest(sites: &BTreeSet<(String, u32)>) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"generated_by\": ");
    out.push_str(
        "\"UPDATE_WRITE_SITES=1 cargo test -p recobench-oracle --test write_point_sweep\",\n",
    );
    out.push_str("  \"sites\": [\n");
    for (i, (file, line)) in sites.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{file}\", \"line\": {line}}}{}\n",
            if i + 1 < sites.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Proves the sweep exercises every engine write site the static
/// analysis can see — the dynamic half of the coverage cross-check.
///
/// A baseline run plus a spread of crash-recovery runs union their
/// observed `#[track_caller]` write sites; the result must match the
/// checked-in manifest exactly. Set `UPDATE_WRITE_SITES=1` to
/// regenerate after intentionally adding or moving a write site (tidy
/// then re-verifies the static side).
#[test]
fn sweep_observes_the_manifest_write_sites_exactly() {
    let mut observed = BTreeSet::new();
    {
        let (mut srv, t) = build_server();
        assert!(!run_workload(&mut srv, t), "no fault armed, nothing can fire");
        collect_engine_sites(&srv, &mut observed);
    }
    // A starved cache plus fat rows (few per block) forces dirty-frame
    // evictions, driving the read-path write-back site
    // (`ensure_resident_raw`) that the roomy baseline never touches: the
    // working set spans many dirty blocks, and each miss-read evicts one.
    {
        let (mut srv, t) = build_server_with_cache(4);
        let s = srv.connect().unwrap();
        let filler: String = "x".repeat(2048);
        let mut rids = Vec::new();
        for i in 0..60u64 {
            let row = Row::new(vec![Value::U64(i), Value::Str(filler.as_str().into())]);
            rids.push(srv.insert(s, t, row).unwrap());
            srv.commit(s).unwrap();
        }
        // Revisit the oldest rows: every read is a miss that evicts a
        // still-dirty frame.
        for (i, &rid) in rids.iter().take(20).enumerate() {
            let row = Row::new(vec![Value::U64(1000 + i as u64), Value::Str(filler.as_str().into())]);
            srv.update(s, t, rid, row).unwrap();
            srv.commit(s).unwrap();
        }
        collect_engine_sites(&srv, &mut observed);
    }
    // Crash points spread across the run: early (recovery from almost
    // nothing), mid-checkpoint, and late — their recoveries drive the
    // restore/replay write paths the clean run never touches.
    for n in [1, 7, 60, 121, 200] {
        let (mut srv, t) = build_server();
        srv.fs()
            .lock()
            .arm_fault(FaultArm::CrashAtWrite { nth: n, keep_num: (n % 3) as u32, keep_den: 2 })
            .unwrap();
        assert!(run_workload(&mut srv, t), "write site {n} was never reached");
        if srv.is_open() {
            srv.shutdown_abort().unwrap();
        }
        srv.fs().lock().clear_faults();
        srv.startup().unwrap_or_else(|e| panic!("recovery failed at write site {n}: {e}"));
        collect_engine_sites(&srv, &mut observed);
    }
    assert!(!observed.is_empty(), "the sweep workload must drive engine write sites");
    let rendered = render_manifest(&observed);
    if std::env::var_os("UPDATE_WRITE_SITES").is_some() {
        std::fs::write(COVERAGE_MANIFEST, &rendered).expect("write coverage manifest");
        println!("wrote {} site(s) to {COVERAGE_MANIFEST}", observed.len());
        return;
    }
    let on_disk = std::fs::read_to_string(COVERAGE_MANIFEST).unwrap_or_else(|e| {
        panic!(
            "{COVERAGE_MANIFEST} unreadable ({e}); run \
             UPDATE_WRITE_SITES=1 cargo test -p recobench-oracle --test write_point_sweep"
        )
    });
    assert_eq!(
        on_disk, rendered,
        "observed write sites diverge from the checked-in manifest; \
         if a write site was intentionally added or moved, regenerate with \
         UPDATE_WRITE_SITES=1 and let tidy re-verify the static side"
    );
}

/// The sweep itself. Every write site of the workload is a crash point;
/// the acceptance floor is 200 distinct points, all with zero oracle
/// divergences and no committed data lost.
#[test]
fn crash_at_every_write_point_never_diverges() {
    let writes = baseline();
    assert!(writes >= 200, "workload exposes only {writes} write sites (need ≥ 200)");
    let mut min_surviving = u64::MAX;
    for n in 1..=writes {
        min_surviving = min_surviving.min(crash_at(n));
    }
    // Sanity: even the earliest crash point keeps the run's committed
    // prefix — zero commits would mean the oracle verified a no-op.
    assert!(min_surviving < u64::MAX);
    println!("swept {writes} crash points; min surviving commits {min_surviving}");
}
