//! The crash-at-every-write-point sweep: the storage-faultload
//! acceptance test.
//!
//! A fixed, deterministic workload (inserts, updates, deletes,
//! checkpoints) is first run cleanly to enumerate every durable-write
//! site it performs — block writes and redo appends alike, counted by the
//! vfs write counter. Then, for **every** one of those sites, a fresh
//! engine runs the same workload with [`FaultArm::CrashAtWrite`] armed at
//! that site: the nth write persists only a prefix (the tear fraction
//! varies across points, including "nothing" and "everything"), every
//! later write fails, and the harness crash-recovers the instance.
//!
//! After each recovery the differential oracle must find **zero**
//! divergences: every acknowledged commit is intact (durability) and
//! nothing unacknowledged leaked in (atomicity). The one genuinely
//! ambiguous case — a commit whose flush died mid-write, so the client
//! heard an error but the marker may have persisted — is settled by
//! probing the recovered engine ([`RefModel::resolve_in_doubt`]): either
//! answer is legal, but the engine must then *match* the answer it gave.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use recobench_engine::{
    DbResult, DbServer, DiskLayout, InstanceConfig, ObjectId, Row, RowId, SessionId, Value,
};
use recobench_engine::catalog::IndexDef;
use recobench_oracle::{diff_states, RefModel};
use recobench_sim::SimClock;
use recobench_vfs::FaultArm;

/// Committed transactions in the workload. Sized so the write-site count
/// comfortably clears the 200-point acceptance floor.
const TXNS: u64 = 210;

fn build_server() -> (DbServer, ObjectId) {
    let cfg = InstanceConfig::builder()
        .redo_file_bytes(64 * 1024)
        .redo_groups(3)
        .checkpoint_timeout_secs(300)
        .archive_mode(true)
        .cache_blocks(64)
        .build();
    let mut srv =
        DbServer::on_fresh_disks("SWEEP", SimClock::shared(), DiskLayout::four_disk(), cfg);
    srv.create_database().unwrap();
    srv.create_user("app").unwrap();
    srv.create_tablespace("DATA", 2, 512).unwrap();
    srv.create_table(
        "T",
        "app",
        "DATA",
        vec![IndexDef { name: "PK".into(), cols: vec![0], unique: true, ordered: true }],
    )
    .unwrap();
    let t = srv.table_id("T").unwrap();
    srv.take_cold_backup().unwrap();
    (srv, t)
}

/// One committed transaction of the deterministic workload: insert a
/// fresh row, every 5th also update an older one, every 7th delete the
/// oldest. All values are i-unique so the in-doubt probe can never
/// confuse a rolled-back write with a committed one.
fn one_txn(
    srv: &mut DbServer,
    s: SessionId,
    t: ObjectId,
    i: u64,
    live: &mut VecDeque<RowId>,
) -> DbResult<()> {
    let rid = srv.insert(s, t, Row::new(vec![Value::U64(i), Value::U64(1_000_000 + i)]))?;
    if i % 5 == 4 {
        if let Some(&urid) = live.back() {
            srv.update(s, t, urid, Row::new(vec![Value::U64(2_000_000 + i), Value::U64(i)]))?;
            live.pop_back();
        }
    }
    if i % 7 == 6 {
        if let Some(rid) = live.pop_front() {
            srv.delete(s, t, rid)?;
        }
    }
    srv.commit(s)?;
    live.push_back(rid);
    Ok(())
}

/// Runs the workload until it finishes or the armed crash fires.
/// Returns whether the crash fired.
fn run_workload(srv: &mut DbServer, t: ObjectId) -> bool {
    let mut live = VecDeque::new();
    let mut session: Option<SessionId> = None;
    for i in 0..TXNS {
        let s = match session {
            Some(s) => s,
            None => match srv.connect() {
                Ok(s) => {
                    session = Some(s);
                    s
                }
                Err(_) => return srv.fs().lock().crash_write_fired(),
            },
        };
        let step = one_txn(srv, s, t, i, &mut live)
            .and_then(|()| if i % 20 == 19 { srv.checkpoint_now() } else { Ok(()) });
        if srv.fs().lock().crash_write_fired() {
            return true;
        }
        if let Err(e) = step {
            panic!("workload failed at txn {i} without a crash: {e}");
        }
    }
    false
}

/// The clean run: counts the workload's write sites and proves the
/// workload itself diverges nowhere.
fn baseline() -> u64 {
    let (mut srv, t) = build_server();
    let model = Arc::new(Mutex::new(RefModel::from_server(&srv).unwrap()));
    {
        let model = Arc::clone(&model);
        srv.set_dml_tap(move |change| model.lock().unwrap().observe(change));
    }
    let before = srv.fs().lock().writes_observed();
    assert!(!run_workload(&mut srv, t), "no fault armed, nothing can fire");
    let writes = srv.fs().lock().writes_observed() - before;
    let divergences = diff_states(&srv, &model.lock().unwrap()).unwrap();
    assert!(divergences.is_empty(), "clean run diverged: {divergences:?}");
    writes
}

/// Crashes the workload at write site `n` (1-based), recovers, and
/// checks the oracle. Returns the model's surviving commit count.
fn crash_at(n: u64) -> u64 {
    let (mut srv, t) = build_server();
    let model = Arc::new(Mutex::new(RefModel::from_server(&srv).unwrap()));
    {
        let model = Arc::clone(&model);
        srv.set_dml_tap(move |change| model.lock().unwrap().observe(change));
    }
    // Vary the tear across the sweep: nothing persists, half persists,
    // everything persists (but the ack is still lost).
    let keep_num = (n % 3) as u32;
    srv.fs()
        .lock()
        .arm_fault(FaultArm::CrashAtWrite { nth: n, keep_num, keep_den: 2 })
        .unwrap();
    let fired = run_workload(&mut srv, t);
    assert!(fired, "write site {n} was never reached");
    if srv.is_open() {
        srv.shutdown_abort().unwrap();
    }
    srv.fs().lock().clear_faults();
    srv.startup().unwrap_or_else(|e| panic!("crash recovery failed at write site {n}: {e}"));
    // Settle the dead transactions: rolled back unless the engine
    // durably committed them before dying.
    let scn = srv.current_scn();
    {
        let mut m = model.lock().unwrap();
        for txn in m.open_txn_ids() {
            m.resolve_in_doubt(&srv, txn, scn).unwrap();
        }
        assert!(m.scns_strictly_increasing(), "site {n}: commit SCNs must stay monotone");
    }
    let m = model.lock().unwrap();
    let divergences = diff_states(&srv, &m).unwrap();
    assert!(
        divergences.is_empty(),
        "write site {n} (keep {keep_num}/2): {} divergences, first: {}",
        divergences.len(),
        divergences[0]
    );
    m.surviving_commits()
}

/// The sweep itself. Every write site of the workload is a crash point;
/// the acceptance floor is 200 distinct points, all with zero oracle
/// divergences and no committed data lost.
#[test]
fn crash_at_every_write_point_never_diverges() {
    let writes = baseline();
    assert!(writes >= 200, "workload exposes only {writes} write sites (need ≥ 200)");
    let mut min_surviving = u64::MAX;
    for n in 1..=writes {
        min_surviving = min_surviving.min(crash_at(n));
    }
    // Sanity: even the earliest crash point keeps the run's committed
    // prefix — zero commits would mean the oracle verified a no-op.
    assert!(min_surviving < u64::MAX);
    println!("swept {writes} crash points; min surviving commits {min_surviving}");
}
