//! End-to-end torture-harness tests: the differential oracle against the
//! real engine under multi-fault schedules.
//!
//! The two sides of the coin, both covered here:
//!
//! * on the **healthy** engine, schedules across all fault types —
//!   including the 10 000-transaction sweep and faults landing during
//!   earlier recoveries — must produce **zero** divergences;
//! * on an **intentionally broken** engine (the test-only redo-skip
//!   sabotage), the oracle must **catch** the corruption and the shrinker
//!   must reduce the schedule to a tiny reproducer, deterministically.

use recobench_core::RecoveryConfig;
use recobench_engine::{FailoverPolicy, ReplicaTopology};
use recobench_faults::{
    FaultSchedule, FaultType, ReplicaFaultType, ScheduledFault, StorageFaultType,
    TortureFaultKind,
};
use recobench_oracle::{shrink_schedule, TortureOptions, TortureOutcome, TortureRunner};
use recobench_sim::SimRng;
use recobench_tpcc::DriverConfig;

fn op(fault: FaultType, at_secs: u64) -> ScheduledFault {
    ScheduledFault { kind: TortureFaultKind::Operator(fault), at_secs }
}

fn replica(r: ReplicaFaultType, at_secs: u64) -> ScheduledFault {
    ScheduledFault { kind: TortureFaultKind::Replica(r), at_secs }
}

fn storage(s: StorageFaultType, at_secs: u64) -> ScheduledFault {
    ScheduledFault { kind: TortureFaultKind::Storage(s), at_secs }
}

fn kill(at_secs: u64) -> ScheduledFault {
    ScheduledFault { kind: TortureFaultKind::InstanceKill, at_secs }
}

fn sched(seed: u64, duration_secs: u64, faults: Vec<ScheduledFault>) -> FaultSchedule {
    FaultSchedule { seed, duration_secs, faults }
}

fn assert_clean(outcome: &TortureOutcome) {
    assert!(
        !outcome.unrecoverable,
        "healthy engine must recover: {:?}",
        outcome.faults
    );
    assert!(
        !outcome.diverged(),
        "healthy engine must match the model: {:?}",
        outcome.divergences
    );
}

#[test]
fn quiet_schedule_matches_model_exactly() {
    let outcome = TortureRunner::default().run(&FaultSchedule::quiet(7, 120)).unwrap();
    assert_clean(&outcome);
    assert!(outcome.faults.is_empty());
    assert!(outcome.recovery_spans_us.is_empty());
    assert!(outcome.attempted > 1_000, "driver must have run: {}", outcome.attempted);
    assert!(outcome.commits > 0);
    assert_eq!(outcome.timeline.first_error_us, None);
}

#[test]
fn fixed_seed_runs_are_deterministic() {
    let schedule = sched(3, 150, vec![kill(40), op(FaultType::DeleteDatafile, 70)]);
    let a = TortureRunner::default().run(&schedule).unwrap();
    let b = TortureRunner::default().run(&schedule).unwrap();
    assert_eq!(a, b, "same schedule, same options ⇒ identical outcome, field for field");
    assert_clean(&a);
    // And the schedule itself survives a JSON round-trip byte-for-byte.
    assert_eq!(FaultSchedule::from_json(&schedule.to_json()).unwrap().to_json(), schedule.to_json());
}

/// The acceptance sweep: a 20-simulated-minute run with one fault of
/// every paper type, ≥ 10 000 client transactions, zero divergences.
#[test]
fn ten_thousand_transactions_across_all_six_fault_types() {
    // The two incomplete-recovery faults (drop object / drop tablespace)
    // each restore the whole backup and replay forward — ~500 simulated
    // seconds — so they get the second half of the run to themselves.
    let schedule = sched(
        42,
        2_400,
        vec![
            op(FaultType::ShutdownAbort, 100),
            op(FaultType::SetDatafileOffline, 200),
            op(FaultType::SetTablespaceOffline, 300),
            op(FaultType::DeleteDatafile, 400),
            op(FaultType::DeleteUsersObject, 900),
            op(FaultType::DeleteTablespace, 1_600),
        ],
    );
    let outcome = TortureRunner::default().run(&schedule).unwrap();
    assert_clean(&outcome);
    assert!(
        outcome.attempted >= 10_000,
        "sweep must attempt ≥ 10k transactions, got {}",
        outcome.attempted
    );
    for f in &outcome.faults {
        assert!(
            f.injected_at.is_some(),
            "every fault type must actually inject: {:?}",
            f
        );
    }
    assert_eq!(outcome.recovery_spans_us.len(), 6, "one recovery window per fault");
}

/// An engine that silently drops one redo record during replay is exactly
/// the bug class the oracle exists for: the engine's own checks stay
/// green, the differential check does not — and the shrinker reduces the
/// schedule to a reproducer of at most 3 faults, deterministically.
#[test]
fn broken_engine_is_caught_and_shrunk() {
    // A large batch of skips, not one: the victim datafile holds hot
    // load-time segments, so a small skipped prefix is all updates that
    // later replayed updates overwrite — corruption that heals before the
    // diff. Skipping most of the file's replay window leaves rows whose
    // final committed state sat in the prefix permanently wrong. The
    // datafile deletion comes first: its media recovery replays every
    // record since the cold backup, so the skips have records to eat.
    let opts = TortureOptions { sabotage_skip_redo: 2_000, ..TortureOptions::default() };
    let runner = TortureRunner::new(opts);
    let schedule = sched(
        13,
        120,
        vec![op(FaultType::DeleteDatafile, 60), kill(95), op(FaultType::ShutdownAbort, 105)],
    );
    let outcome = runner.run(&schedule).unwrap();
    assert!(
        outcome.diverged(),
        "the oracle must catch a skipped redo record; faults: {:?}",
        outcome.faults
    );

    let fails = |s: &FaultSchedule| runner.run(s).map(|o| o.diverged()).unwrap_or(false);
    let minimal = shrink_schedule(&schedule, fails);
    assert!(
        minimal.faults.len() <= 3 && !minimal.faults.is_empty(),
        "minimal reproducer must keep ≤ 3 faults: {}",
        minimal.to_json()
    );
    assert!(minimal.duration_secs <= schedule.duration_secs);
    assert!(fails(&minimal), "the shrunk schedule must still fail");
    // Shrinking is itself deterministic, byte for byte.
    assert_eq!(minimal.to_json(), shrink_schedule(&schedule, fails).to_json());
}

/// The storage faultload: one fault of each of the five hardware kinds,
/// spaced out over a run. All five must inject and recover, the state
/// must match the model — and slow I/O, which degrades service without
/// interrupting it, must contribute *no* recovery window.
#[test]
fn storage_faultload_all_five_kinds_match_model() {
    let schedule = sched(
        29,
        600,
        vec![
            storage(StorageFaultType::SlowIo, 60),
            storage(StorageFaultType::TornWrite, 120),
            storage(StorageFaultType::BitRot, 200),
            storage(StorageFaultType::DiskFull, 300),
            storage(StorageFaultType::PartialAppend, 400),
        ],
    );
    let outcome = TortureRunner::default().run(&schedule).unwrap();
    assert_clean(&outcome);
    for f in &outcome.faults {
        assert!(f.injected_at.is_some(), "every storage fault must inject: {f:?}");
        assert!(f.ready_at.is_some(), "every storage fault must recover: {f:?}");
    }
    assert_eq!(
        outcome.recovery_spans_us.len(),
        4,
        "four outages: slow I/O never takes service down"
    );
    // The extended schedule round-trips through JSON byte-for-byte.
    assert_eq!(FaultSchedule::from_json(&schedule.to_json()).unwrap().to_json(), schedule.to_json());
}

/// Randomly drawn storage schedules replay deterministically and leave
/// the engine matching the model, like the operator pool always has.
#[test]
fn random_storage_schedule_is_deterministic_and_clean() {
    let schedule = FaultSchedule::random_storage(&mut SimRng::seed_from(91), 4, 500, 60);
    let a = TortureRunner::default().run(&schedule).unwrap();
    let b = TortureRunner::default().run(&schedule).unwrap();
    assert_eq!(a, b, "same storage schedule ⇒ identical outcome");
    assert_clean(&a);
}

/// A second fault arriving while the database is still recovering from
/// the first (the `overtaken` case) must never panic, never corrupt
/// silently: either both recoveries complete and the state matches the
/// model, or the run reports itself unrecoverable.
fn fault_then_kill_during_recovery(first: TortureFaultKind) {
    let faults = vec![ScheduledFault { kind: first, at_secs: 60 }, kill(61)];
    let outcome = TortureRunner::default().run(&sched(17, 600, faults)).unwrap();
    let first_report = &outcome.faults[0];
    let second = &outcome.faults[1];
    assert!(first_report.injected_at.is_some(), "first fault must inject: {first_report:?}");
    if second.overtaken {
        // The kill fired at the instant the first recovery finished.
        assert_eq!(second.injected_at, first_report.ready_at);
    }
    if !outcome.unrecoverable {
        assert!(
            !outcome.diverged(),
            "after stacked recoveries the state must still match: {:?}",
            outcome.divergences
        );
        for f in &outcome.faults {
            assert!(
                f.ready_at.is_some() || f.skipped.is_some(),
                "every fault either recovers or is accounted for: {f:?}"
            );
        }
    }
}

#[test]
fn kill_during_recovery_from_shutdown_abort() {
    fault_then_kill_during_recovery(TortureFaultKind::Operator(FaultType::ShutdownAbort));
}

#[test]
fn kill_during_recovery_from_delete_datafile() {
    fault_then_kill_during_recovery(TortureFaultKind::Operator(FaultType::DeleteDatafile));
}

#[test]
fn kill_during_recovery_from_delete_tablespace() {
    fault_then_kill_during_recovery(TortureFaultKind::Operator(FaultType::DeleteTablespace));
}

#[test]
fn kill_during_recovery_from_set_datafile_offline() {
    fault_then_kill_during_recovery(TortureFaultKind::Operator(FaultType::SetDatafileOffline));
}

#[test]
fn kill_during_recovery_from_set_tablespace_offline() {
    fault_then_kill_during_recovery(TortureFaultKind::Operator(FaultType::SetTablespaceOffline));
}

#[test]
fn kill_during_recovery_from_delete_users_object() {
    fault_then_kill_during_recovery(TortureFaultKind::Operator(FaultType::DeleteUsersObject));
}

#[test]
fn kill_during_recovery_from_instance_kill() {
    fault_then_kill_during_recovery(TortureFaultKind::InstanceKill);
}

/// The availability timeline and the recovery windows must tell the same
/// story under a multi-fault schedule: no successful transaction lands
/// strictly inside any recovery window, the first service-loss instant is
/// the first outage, and service does not return before the recovery that
/// ends the outage does.
#[test]
fn timeline_agrees_with_recovery_spans() {
    let schedule = sched(
        21,
        400,
        vec![kill(50), op(FaultType::SetDatafileOffline, 150), kill(250)],
    );
    let outcome = TortureRunner::default().run(&schedule).unwrap();
    assert_clean(&outcome);
    assert_eq!(outcome.recovery_spans_us.len(), 3);

    let tl = &outcome.timeline;
    for &(start, end) in &outcome.recovery_spans_us {
        for (i, &successes) in tl.buckets.iter().enumerate() {
            let bucket_start = tl.start_us + i as u64 * tl.bucket_us;
            let bucket_end = bucket_start + tl.bucket_us;
            if bucket_start >= start && bucket_end <= end {
                assert_eq!(
                    successes, 0,
                    "bucket [{bucket_start},{bucket_end}) lies inside recovery \
                     window [{start},{end}) yet saw {successes} successes"
                );
            }
        }
    }
    assert_eq!(
        tl.first_error_us,
        Some(outcome.recovery_spans_us[0].0),
        "service loss is the first outage instant"
    );
    let service_return = tl.service_return_us.expect("service must return");
    assert!(
        service_return >= outcome.recovery_spans_us[0].1,
        "service return ({service_return}) precedes the end of the recovery \
         window that caused the outage ({})",
        outcome.recovery_spans_us[0].1
    );
}

/// When a second fault overtakes the first recovery, the two windows form
/// one outage: the service-return instant must not precede the end of the
/// *last* recovery window.
#[test]
fn merged_outage_returns_after_the_last_recovery_span() {
    let schedule = sched(23, 600, vec![op(FaultType::DeleteUsersObject, 60), kill(61)]);
    let outcome = TortureRunner::default().run(&schedule).unwrap();
    assert_clean(&outcome);
    assert!(outcome.faults[1].overtaken, "the kill must land during the PITR recovery");
    let last_end = outcome.recovery_spans_us.last().expect("spans recorded").1;
    let service_return = outcome.timeline.service_return_us.expect("service must return");
    assert!(
        service_return >= last_end,
        "service return ({service_return}) precedes the last recovery end ({last_end})"
    );
}

/// The replica-set acceptance run: a contended 8-terminal TPC-C load over
/// a two-stand-by fan-out under auto-quorum, the primary killed mid-load
/// and then the newly promoted node killed too (double fault). Both kills
/// must promote, service must resume on the survivor, and the survivor's
/// state must match the model exactly — any acked tail the failovers
/// sacrificed is *specified* as lost, not diverged.
#[test]
fn double_fault_failover_matches_model_under_contention() {
    let opts = TortureOptions {
        config: RecoveryConfig::named("F1G3T1").expect("known configuration"),
        driver: DriverConfig { terminals: 8, ..DriverConfig::default() },
        topology: ReplicaTopology::fan_out(2),
        policy: FailoverPolicy::AutoQuorum,
        ..TortureOptions::default()
    };
    let runner = TortureRunner::new(opts);
    let schedule = sched(
        61,
        300,
        vec![
            replica(ReplicaFaultType::KillPrimary, 80),
            replica(ReplicaFaultType::KillPromoted, 160),
        ],
    );
    let a = runner.run(&schedule).unwrap();
    assert_clean(&a);
    assert_eq!(a.failovers, 2, "both kills must promote a survivor: {:?}", a.faults);
    for f in &a.faults {
        assert!(f.injected_at.is_some(), "both kills must inject: {f:?}");
        assert!(f.ready_at.is_some(), "both failovers must complete: {f:?}");
    }
    assert_eq!(a.recovery_spans_us.len(), 2, "one recovery window per failover");
    assert!(a.commits > 0, "terminals must commit across both failovers");
    assert!(
        a.timeline.service_return_us.is_some(),
        "service must return after the double fault"
    );
    // Byte-identical rerun: replica sets must not cost determinism.
    let b = runner.run(&schedule).unwrap();
    assert_eq!(a, b, "same schedule, same topology ⇒ identical outcome");
}

/// Shipping faults against the replica set never interrupt the primary:
/// a corrupted shipped archive freezes one stand-by and a partition
/// isolates another, but the service keeps running, the state matches,
/// and no failover (and no recovery window) happens.
#[test]
fn replica_shipping_faults_degrade_the_set_without_an_outage() {
    let opts = TortureOptions {
        topology: ReplicaTopology::fan_out(2),
        policy: FailoverPolicy::AutoQuorum,
        ..TortureOptions::default()
    };
    let runner = TortureRunner::new(opts);
    let schedule = sched(
        33,
        180,
        vec![
            replica(ReplicaFaultType::CorruptShippedArchive, 40),
            replica(ReplicaFaultType::PartitionReplica, 90),
        ],
    );
    let outcome = runner.run(&schedule).unwrap();
    assert_clean(&outcome);
    assert_eq!(outcome.failovers, 0, "shipping faults must not trigger failover");
    assert!(outcome.recovery_spans_us.is_empty(), "no outage, no recovery window");
    assert_eq!(outcome.timeline.first_error_us, None, "the primary never hiccups");
    for f in &outcome.faults {
        assert!(f.injected_at.is_some(), "both faults must inject: {f:?}");
    }
}

/// Without a configured topology, a schedule containing replica faults
/// auto-provisions a two-node fan-out — the corpus-replay path.
#[test]
fn replica_faults_auto_provision_a_fan_out() {
    let schedule = sched(5, 200, vec![replica(ReplicaFaultType::KillPrimary, 60)]);
    let outcome = TortureRunner::default().run(&schedule).unwrap();
    assert_clean(&outcome);
    assert_eq!(outcome.failovers, 1, "the kill must promote: {:?}", outcome.faults);
    assert!(outcome.faults[0].ready_at.is_some());
}

/// A cascaded chain behind the primary fails over too: the chain head is
/// the most advanced node and wins promotion, and the chain tail resyncs
/// behind it.
#[test]
fn cascaded_chain_fails_over_and_matches_model() {
    let opts = TortureOptions {
        topology: ReplicaTopology::cascade(2),
        policy: FailoverPolicy::AutoQuorum,
        ..TortureOptions::default()
    };
    let runner = TortureRunner::new(opts);
    let schedule = sched(9, 240, vec![replica(ReplicaFaultType::KillPrimary, 100)]);
    let outcome = runner.run(&schedule).unwrap();
    assert_clean(&outcome);
    assert_eq!(outcome.failovers, 1, "the chain must promote: {:?}", outcome.faults);
}
