//! Property test for torn-redo-tail recovery.
//!
//! A random tear fraction is armed on the redo log ([`FaultArm::PartialAppend`])
//! after a random number of committed transactions. The flush that hits the
//! tear cannot reconcile the durable log with the in-memory redo stream, so
//! the instance aborts — and crash recovery must then either replay the last
//! record (the tear kept all of it) or cleanly stop at the torn tail
//! (Oracle's end-of-log behavior). Whatever it decides, no transaction
//! committed *before* the tear may be lost, nothing unacknowledged may leak
//! in, and the one genuinely ambiguous commit (errored at the client, maybe
//! durable anyway) is settled by probing the recovered engine.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use recobench_engine::catalog::IndexDef;
use recobench_engine::{DbServer, DiskLayout, InstanceConfig, ObjectId, Row, Value};
use recobench_oracle::{diff_states, RefModel};
use recobench_sim::SimClock;
use recobench_vfs::{FaultArm, FileKind, FileMatch};

fn build_server() -> (DbServer, ObjectId) {
    let cfg = InstanceConfig::builder()
        .redo_file_bytes(64 * 1024)
        .redo_groups(3)
        .checkpoint_timeout_secs(300)
        .archive_mode(true)
        .cache_blocks(64)
        .build();
    let mut srv =
        DbServer::on_fresh_disks("TORN", SimClock::shared(), DiskLayout::four_disk(), cfg);
    srv.create_database().unwrap();
    srv.create_user("app").unwrap();
    srv.create_tablespace("DATA", 2, 512).unwrap();
    srv.create_table(
        "T",
        "app",
        "DATA",
        vec![IndexDef { name: "PK".into(), cols: vec![0], unique: true, ordered: true }],
    )
    .unwrap();
    let t = srv.table_id("T").unwrap();
    (srv, t)
}

/// Rows are i-unique so the in-doubt probe can never mistake a
/// rolled-back write for a committed one.
fn row(i: u64) -> Row {
    Row::new(vec![Value::U64(i), Value::U64(1_000_000 + i)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn torn_redo_tail_never_loses_committed_work(
        n_pre in 1u64..20,
        keep_den in 1u32..=8,
        keep_raw in 0u32..=8,
    ) {
        // Tear fraction spans "nothing persists" through "everything
        // persists but the ack is still lost".
        let keep_num = keep_raw % (keep_den + 1);
        let (mut srv, t) = build_server();
        let model = Arc::new(Mutex::new(RefModel::from_server(&srv).unwrap()));
        {
            let model = Arc::clone(&model);
            srv.set_dml_tap(move |change| model.lock().unwrap().observe(change));
        }
        let s = srv.connect().unwrap();
        for i in 0..n_pre {
            srv.insert(s, t, row(i)).unwrap();
            srv.commit(s).unwrap();
        }
        srv.fs()
            .lock()
            .arm_fault(FaultArm::PartialAppend {
                target: FileMatch::Kind(FileKind::Redo),
                keep_num,
                keep_den,
            })
            .unwrap();
        // Keep committing until the tear fires. The redo append that hits
        // it persists only a prefix and errors; the instance aborts.
        let mut died = false;
        for i in n_pre..n_pre + 32 {
            let mut step = srv.insert(s, t, row(i)).map(|_| ());
            if step.is_ok() {
                step = srv.commit(s);
            }
            if step.is_err() || !srv.is_open() {
                died = true;
                break;
            }
        }
        prop_assert!(died, "the armed redo tear never fired");
        prop_assert!(!srv.is_open(), "a torn redo append must abort the instance");
        srv.fs().lock().clear_faults();
        if let Err(e) = srv.startup() {
            prop_assert!(
                false,
                "crash recovery failed on torn tail (keep {keep_num}/{keep_den}): {e}"
            );
        }
        // Settle the in-doubt transactions: the engine's answer (rolled
        // back or durably committed) is legal either way, but the model
        // must then hold the same answer.
        let scn = srv.current_scn();
        {
            let mut m = model.lock().unwrap();
            for txn in m.open_txn_ids() {
                m.resolve_in_doubt(&srv, txn, scn).unwrap();
            }
            prop_assert!(m.scns_strictly_increasing());
        }
        let m = model.lock().unwrap();
        let divergences = diff_states(&srv, &m).unwrap();
        prop_assert!(
            divergences.is_empty(),
            "keep {keep_num}/{keep_den} after {n_pre} commits: {} divergences, first: {}",
            divergences.len(),
            divergences[0]
        );
        prop_assert!(
            m.surviving_commits() >= n_pre,
            "a pre-tear committed txn was lost: {} survive of {n_pre} acked",
            m.surviving_commits()
        );
    }
}
