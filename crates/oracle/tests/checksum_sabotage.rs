//! Self-test of the checksum detection chain against deliberate bit-rot.
//!
//! The engine's sabotage hook (`DbServer::sabotage_bit_rot`, compiled in
//! here via the crate's self-dependency on the `sabotage` feature) flips
//! one bit of one written datafile block — silent corruption no vfs error
//! ever reports. Both detection layers must flag it independently:
//!
//! * the engine's own integrity walk ([`DbServer::verify_integrity`])
//!   must report a checksum mismatch, and
//! * the differential oracle ([`diff_states`]) must diverge — either the
//!   rotted heap scan fails (an `Integrity` finding) or the damaged rows
//!   surface as lost/mismatched.
//!
//! Media recovery of the rotted file must then close the loop: restore
//! from backup, replay, and the oracle goes clean again.

use std::sync::{Arc, Mutex};

use recobench_engine::catalog::IndexDef;
use recobench_engine::{DbServer, DiskLayout, InstanceConfig, ObjectId, Row, Value};
use recobench_oracle::{diff_states, RefModel};
use recobench_sim::SimClock;

fn build_server() -> (DbServer, ObjectId) {
    let cfg = InstanceConfig::builder()
        .redo_file_bytes(64 * 1024)
        .redo_groups(3)
        .checkpoint_timeout_secs(300)
        .archive_mode(true)
        .cache_blocks(64)
        .build();
    let mut srv =
        DbServer::on_fresh_disks("ROT", SimClock::shared(), DiskLayout::four_disk(), cfg);
    srv.create_database().unwrap();
    srv.create_user("app").unwrap();
    srv.create_tablespace("DATA", 2, 512).unwrap();
    srv.create_table(
        "T",
        "app",
        "DATA",
        vec![IndexDef { name: "PK".into(), cols: vec![0], unique: true, ordered: true }],
    )
    .unwrap();
    let t = srv.table_id("T").unwrap();
    srv.take_cold_backup().unwrap();
    (srv, t)
}

#[test]
fn injected_bit_rot_is_flagged_by_both_detection_layers() {
    let (mut srv, t) = build_server();
    let model = Arc::new(Mutex::new(RefModel::from_server(&srv).unwrap()));
    {
        let model = Arc::clone(&model);
        srv.set_dml_tap(move |change| model.lock().unwrap().observe(change));
    }
    let s = srv.connect().unwrap();
    for i in 0..40u64 {
        srv.insert(s, t, Row::new(vec![Value::U64(i), Value::U64(1_000_000 + i)])).unwrap();
        srv.commit(s).unwrap();
    }
    // Push the rows to disk so there is a written block to rot.
    srv.checkpoint_now().unwrap();

    // Baseline: everything healthy, walk actually checksums blocks.
    let clean = srv.verify_integrity().unwrap();
    assert!(clean.violations.is_empty(), "pre-rot violations: {:?}", clean.violations);
    assert!(clean.blocks_checksummed > 0, "the walk must visit written blocks");
    assert!(diff_states(&srv, &model.lock().unwrap()).unwrap().is_empty());

    // Rot one bit in the first datafile that has written blocks.
    let rotted = srv
        .datafile_paths("DATA")
        .unwrap()
        .into_iter()
        .find(|p| srv.sabotage_bit_rot(p, 0xB17_0B07).is_ok())
        .expect("a checkpointed table must have a rottable datafile");

    // Layer 1: the engine's own walk names the damage.
    let report = srv.verify_integrity().unwrap();
    assert!(
        report.violations.iter().any(|v| v.contains("checksum mismatch")),
        "integrity walk missed the flipped bit: {:?}",
        report.violations
    );
    assert_eq!(srv.datafiles_with_bad_checksums().unwrap(), vec![rotted.clone()]);

    // Layer 2: the differential oracle refuses to call the state clean.
    let divergences = diff_states(&srv, &model.lock().unwrap()).unwrap();
    assert!(!divergences.is_empty(), "the oracle passed silently rotted storage");

    // Detection → repair: media recovery restores the file and the run
    // is indistinguishable from one where the rot never happened.
    srv.recover_datafile(&rotted).unwrap();
    let divergences = diff_states(&srv, &model.lock().unwrap()).unwrap();
    assert!(divergences.is_empty(), "post-recovery divergences: {divergences:?}");
    assert!(srv.datafiles_with_bad_checksums().unwrap().is_empty());
}
