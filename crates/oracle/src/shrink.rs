//! Schedule shrinking: from a failing torture schedule to a minimal
//! reproducer.
//!
//! The shrinker is deliberately classic delta-debugging, specialised to
//! the three axes a [`FaultSchedule`] has:
//!
//! 1. **drop faults** — greedily remove every fault whose absence keeps
//!    the failure, to a fixed point (order-independent because the pass
//!    repeats until nothing drops);
//! 2. **bisect injection times** — per fault, binary-search the smallest
//!    `at_secs` that still fails (earlier faults ⇒ less workload before
//!    the interesting part);
//! 3. **truncate the workload** — binary-search the smallest
//!    `duration_secs` (bounded below by the latest remaining fault) that
//!    still fails.
//!
//! The passes repeat until a whole sweep changes nothing. Every candidate
//! is judged by re-running the full schedule, so the result is *sound* (it
//! really fails) and — the runner being deterministic — the minimisation
//! itself is reproducible byte-for-byte for a given input.

use recobench_faults::FaultSchedule;

/// Shrinks `initial` to a locally-minimal schedule on which `still_fails`
/// holds. `still_fails` must be deterministic; it is typically
/// `|s| runner.run(s).map(|o| o.diverged()).unwrap_or(false)`.
///
/// If `initial` does not fail under `still_fails`, it is returned
/// unchanged (there is nothing to minimise).
pub fn shrink_schedule<F>(initial: &FaultSchedule, mut still_fails: F) -> FaultSchedule
where
    F: FnMut(&FaultSchedule) -> bool,
{
    if !still_fails(initial) {
        return initial.clone();
    }
    let mut cur = initial.clone();
    loop {
        let before = cur.clone();

        // Pass 1: drop faults to a fixed point.
        loop {
            let mut dropped = false;
            let mut i = 0;
            while i < cur.faults.len() {
                let mut cand = cur.clone();
                cand.faults.remove(i);
                if still_fails(&cand) {
                    cur = cand;
                    dropped = true;
                } else {
                    i += 1;
                }
            }
            if !dropped {
                break;
            }
        }

        // Pass 2: bisect each fault's injection time toward 0.
        for i in 0..cur.faults.len() {
            let mut lo = 0u64;
            let mut hi = cur.faults[i].at_secs;
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let mut cand = cur.clone();
                cand.faults[i].at_secs = mid;
                if still_fails(&cand) {
                    cur = cand;
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
        }

        // Pass 3: truncate the run. The latest fault must still fit.
        let min_dur = cur.faults.iter().map(|f| f.at_secs).max().unwrap_or(0);
        let mut lo = min_dur;
        let mut hi = cur.duration_secs;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let mut cand = cur.clone();
            cand.duration_secs = mid;
            if still_fails(&cand) {
                cur = cand;
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }

        if cur == before {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recobench_faults::{FaultType, ScheduledFault, TortureFaultKind};

    fn kill(at_secs: u64) -> ScheduledFault {
        ScheduledFault { kind: TortureFaultKind::InstanceKill, at_secs }
    }

    #[test]
    fn shrinks_to_the_one_guilty_fault() {
        // Synthetic failure condition: the schedule fails iff it contains
        // a fault at a time ≥ 100. The shrinker must strip everything
        // else, pull the time down to exactly 100, and truncate the run.
        let initial = FaultSchedule {
            seed: 1,
            duration_secs: 600,
            faults: vec![
                kill(50),
                kill(130),
                ScheduledFault {
                    kind: TortureFaultKind::Operator(FaultType::ShutdownAbort),
                    at_secs: 250,
                },
                kill(400),
            ],
        };
        let fails = |s: &FaultSchedule| s.faults.iter().any(|f| f.at_secs >= 100);
        let min = shrink_schedule(&initial, fails);
        assert_eq!(min.faults.len(), 1);
        assert_eq!(min.faults[0].at_secs, 100);
        assert_eq!(min.duration_secs, 100);
        assert!(fails(&min));
    }

    #[test]
    fn needs_two_faults_keeps_two() {
        let initial = FaultSchedule {
            seed: 9,
            duration_secs: 300,
            faults: vec![kill(30), kill(60), kill(90), kill(120)],
        };
        // Fails only while at least two faults remain.
        let fails = |s: &FaultSchedule| s.faults.len() >= 2;
        let min = shrink_schedule(&initial, fails);
        assert_eq!(min.faults.len(), 2);
        assert!(min.faults.iter().all(|f| f.at_secs == 0), "times bisect to zero");
        assert_eq!(min.duration_secs, 0);
    }

    #[test]
    fn passing_schedule_is_returned_unchanged() {
        let initial = FaultSchedule { seed: 3, duration_secs: 120, faults: vec![kill(10)] };
        let min = shrink_schedule(&initial, |_| false);
        assert_eq!(min, initial);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let initial = FaultSchedule {
            seed: 4,
            duration_secs: 500,
            faults: vec![kill(17), kill(101), kill(333)],
        };
        let fails = |s: &FaultSchedule| s.faults.iter().map(|f| f.at_secs).sum::<u64>() >= 150;
        let a = shrink_schedule(&initial, fails);
        let b = shrink_schedule(&initial, fails);
        assert_eq!(a.to_json(), b.to_json());
    }
}
