//! The differential check: recovered engine vs. reference model.
//!
//! Four families of divergence, mirroring what the paper's measures are
//! supposed to guarantee:
//!
//! * **lost rows** — a committed (and, after incomplete recovery,
//!   *supposed-to-survive*) row the engine no longer has: a lost
//!   committed transaction the benchmark failed to count;
//! * **phantom rows / value mismatches** — state the engine has but never
//!   acknowledged (dirty or resurrected data);
//! * **table-set mismatches** — a table that should exist (or should have
//!   stayed dropped) after recovery;
//! * **integrity violations** — the engine's own structural invariants
//!   (heap ↔ index ↔ control file ↔ catalog), via
//!   [`DbServer::verify_integrity`].

use std::collections::BTreeMap;
use std::fmt;

use recobench_engine::{DbResult, DbServer, ObjectId, Row, RowId};

use crate::model::RefModel;

/// One way the engine and the model disagree.
#[derive(Debug, Clone, PartialEq)]
pub enum Divergence {
    /// The model has a committed row the engine lost.
    LostRow {
        /// Table.
        obj: ObjectId,
        /// Physical address.
        rid: RowId,
        /// What the row should hold.
        expected: Row,
    },
    /// The engine has a row the model never committed.
    PhantomRow {
        /// Table.
        obj: ObjectId,
        /// Physical address.
        rid: RowId,
        /// What the engine holds.
        actual: Row,
    },
    /// Both sides have the row, with different values.
    ValueMismatch {
        /// Table.
        obj: ObjectId,
        /// Physical address.
        rid: RowId,
        /// What the model committed.
        expected: Row,
        /// What the engine holds.
        actual: Row,
    },
    /// A table that should exist is gone from the engine's catalog.
    MissingTable {
        /// The table.
        obj: ObjectId,
        /// Its name at baseline.
        name: String,
    },
    /// A table that should have stayed dropped is back.
    PhantomTable {
        /// The table.
        obj: ObjectId,
    },
    /// A structural invariant violation the engine's own walkers found.
    Integrity(String),
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::LostRow { obj, rid, .. } => {
                write!(f, "lost row: table {} rid {rid}", obj.0)
            }
            Divergence::PhantomRow { obj, rid, .. } => {
                write!(f, "phantom row: table {} rid {rid}", obj.0)
            }
            Divergence::ValueMismatch { obj, rid, .. } => {
                write!(f, "value mismatch: table {} rid {rid}", obj.0)
            }
            Divergence::MissingTable { obj, name } => {
                write!(f, "missing table: {name} (id {})", obj.0)
            }
            Divergence::PhantomTable { obj } => {
                write!(f, "phantom table: id {}", obj.0)
            }
            Divergence::Integrity(v) => write!(f, "integrity: {v}"),
        }
    }
}

/// Compares the open engine against the model and returns every
/// divergence, table-set mismatches first, then row differences in
/// address order, then the engine's own integrity violations.
///
/// Call only when the database is fully recovered (open, nothing
/// offline); a row diff against half-restored storage would blame the
/// engine for rows it is still entitled to be missing.
///
/// # Errors
///
/// Fails if the engine cannot be inspected at all (instance down).
pub fn diff_states(server: &DbServer, model: &RefModel) -> DbResult<Vec<Divergence>> {
    let mut divergences = Vec::new();

    // ---- table set ---------------------------------------------------
    let engine_tables: BTreeMap<ObjectId, String> = server.tables()?.into_iter().collect();
    let expected = model.expected_tables();
    for (obj, name) in &expected {
        if !engine_tables.contains_key(obj) {
            divergences.push(Divergence::MissingTable { obj: *obj, name: name.to_string() });
        }
    }
    for obj in engine_tables.keys() {
        if !expected.contains_key(obj) {
            // Supposed to be dropped (or never known), yet present.
            divergences.push(Divergence::PhantomTable { obj: *obj });
        }
    }

    // ---- rows, over tables both sides agree exist --------------------
    let mut engine_rows: BTreeMap<(ObjectId, RowId), Row> = BTreeMap::new();
    for obj in engine_tables.keys() {
        if expected.contains_key(obj) {
            // An unreadable heap (e.g. a block failing its checksum) is a
            // finding in its own right, not a reason to abort the diff —
            // the model's rows for it then surface as lost.
            let rows = match server.peek_scan(*obj) {
                Ok(rows) => rows,
                Err(e) => {
                    divergences
                        .push(Divergence::Integrity(format!("table {} unreadable: {e}", obj.0)));
                    continue;
                }
            };
            for (rid, row) in rows {
                engine_rows.insert((*obj, rid), row);
            }
        }
    }
    for (key @ (obj, rid), expected_row) in model.state() {
        if !engine_tables.contains_key(obj) {
            continue; // already reported as MissingTable
        }
        match engine_rows.get(key) {
            None => divergences.push(Divergence::LostRow {
                obj: *obj,
                rid: *rid,
                expected: expected_row.clone(),
            }),
            Some(actual) if actual != expected_row => {
                divergences.push(Divergence::ValueMismatch {
                    obj: *obj,
                    rid: *rid,
                    expected: expected_row.clone(),
                    actual: actual.clone(),
                });
            }
            Some(_) => {}
        }
    }
    for (key @ (obj, rid), actual) in &engine_rows {
        if !model.state().contains_key(key) {
            divergences.push(Divergence::PhantomRow {
                obj: *obj,
                rid: *rid,
                actual: actual.clone(),
            });
        }
    }

    // ---- structural invariants ---------------------------------------
    let report = server.verify_integrity()?;
    divergences.extend(report.violations.into_iter().map(Divergence::Integrity));

    Ok(divergences)
}
