//! The reference model: a deliberately simple in-memory "DBMS" that
//! consumes the engine's DML tap and predicts what the real engine's
//! committed state must look like.
//!
//! The model is the *judge*, so it shares no mechanism with the engine:
//! no pages, no redo, no cache — just a sorted map from physical row
//! address to row value, a pending buffer per open transaction, and a log
//! of committed changes keyed by commit SCN. Recovery semantics reduce to
//! one operation: [`RefModel::truncate_to`] rebuilds the state as of a
//! stop SCN, which is exactly what the engine's incomplete (point-in-time)
//! recovery promises.

use std::collections::BTreeMap;

use recobench_engine::{
    DbResult, DbServer, DmlChange, ObjectId, Row, RowId, Scn, TxnId,
};

/// One committed row-level change.
#[derive(Debug, Clone, PartialEq)]
pub enum RowOp {
    /// The row at `rid` now holds `row` (insert or update).
    Put {
        /// Table.
        obj: ObjectId,
        /// Physical address.
        rid: RowId,
        /// The value.
        row: Row,
    },
    /// The row at `rid` is gone.
    Del {
        /// Table.
        obj: ObjectId,
        /// Physical address.
        rid: RowId,
    },
}

/// The changes one commit (or auto-committed drop) made durable.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// Commit SCN — the durability point the engine promised.
    pub scn: Scn,
    /// The changes, in execution order.
    pub ops: Vec<RowOp>,
}

/// The reference model. Feed it every [`DmlChange`] the engine's tap
/// emits (install with `DbServer::set_dml_tap`), then compare its
/// [`state`](RefModel::state) against the engine with
/// [`diff_states`](crate::diff_states).
#[derive(Debug, Clone, Default)]
pub struct RefModel {
    /// Committed state at the moment the model was instantiated (after
    /// load + cold backup, before the tap went live).
    baseline: BTreeMap<(ObjectId, RowId), Row>,
    /// Tables known at instantiation, by id.
    baseline_tables: BTreeMap<ObjectId, String>,
    /// Current committed state: baseline + every committed log entry.
    state: BTreeMap<(ObjectId, RowId), Row>,
    /// Uncommitted changes per open transaction.
    pending: BTreeMap<TxnId, Vec<RowOp>>,
    /// Committed changes in commit order.
    log: Vec<LogEntry>,
    /// Tables currently dropped, with the SCN of the drop.
    dropped: BTreeMap<ObjectId, Scn>,
    /// Every commit acknowledgement ever observed, including ones later
    /// sacrificed by incomplete recovery.
    acked_commits: u64,
}

impl RefModel {
    /// An empty model with no baseline — for property tests that drive
    /// the observer directly.
    pub fn empty() -> RefModel {
        RefModel::default()
    }

    /// Snapshots `server`'s committed state as the model baseline.
    ///
    /// Call *between* transactions (nothing in flight) and *before*
    /// installing the tap, so the snapshot and the observed stream
    /// together cover exactly the engine's history.
    ///
    /// # Errors
    ///
    /// Fails if the server cannot be inspected (instance down).
    pub fn from_server(server: &DbServer) -> DbResult<RefModel> {
        let mut baseline = BTreeMap::new();
        let mut baseline_tables = BTreeMap::new();
        for (obj, name) in server.tables()? {
            baseline_tables.insert(obj, name);
            for (rid, row) in server.peek_scan(obj)? {
                baseline.insert((obj, rid), row);
            }
        }
        Ok(RefModel {
            state: baseline.clone(),
            baseline,
            baseline_tables,
            ..RefModel::default()
        })
    }

    /// Consumes one observed change.
    pub fn observe(&mut self, change: &DmlChange) {
        match change {
            DmlChange::Insert { txn, obj, rid, row }
            | DmlChange::Update { txn, obj, rid, row } => {
                self.pending
                    .entry(*txn)
                    .or_default()
                    .push(RowOp::Put { obj: *obj, rid: *rid, row: row.clone() });
            }
            DmlChange::Delete { txn, obj, rid } => {
                self.pending.entry(*txn).or_default().push(RowOp::Del { obj: *obj, rid: *rid });
            }
            DmlChange::Commit { txn, scn } => {
                let ops = self.pending.remove(txn).unwrap_or_default();
                apply(&mut self.state, &ops);
                self.log.push(LogEntry { scn: *scn, ops });
                self.acked_commits += 1;
            }
            DmlChange::Rollback { txn } => {
                self.pending.remove(txn);
            }
            DmlChange::DropTable { obj, scn } => {
                let ops = self.drop_ops(&[*obj]);
                apply(&mut self.state, &ops);
                self.log.push(LogEntry { scn: *scn, ops });
                self.dropped.insert(*obj, *scn);
            }
            DmlChange::DropTablespace { tables, scn } => {
                let ops = self.drop_ops(tables);
                apply(&mut self.state, &ops);
                self.log.push(LogEntry { scn: *scn, ops });
                for obj in tables {
                    self.dropped.insert(*obj, *scn);
                }
            }
        }
    }

    /// `Del` ops for every current row of the given tables.
    fn drop_ops(&self, tables: &[ObjectId]) -> Vec<RowOp> {
        let mut ops = Vec::new();
        for obj in tables {
            for ((o, rid), _) in self.rows_of(*obj) {
                ops.push(RowOp::Del { obj: *o, rid: *rid });
            }
        }
        ops
    }

    /// Current rows of one table, in address order.
    pub fn rows_of(&self, obj: ObjectId) -> impl Iterator<Item = (&(ObjectId, RowId), &Row)> {
        let lo = (obj, RowId { file: recobench_engine::types::FileNo(0), block: 0, slot: 0 });
        self.state.range(lo..).take_while(move |((o, _), _)| *o == obj)
    }

    /// The committed state: physical address → row value.
    pub fn state(&self) -> &BTreeMap<(ObjectId, RowId), Row> {
        &self.state
    }

    /// Tables the database is expected to have right now: the baseline
    /// set minus effective drops.
    pub fn expected_tables(&self) -> BTreeMap<ObjectId, &str> {
        self.baseline_tables
            .iter()
            .filter(|(obj, _)| !self.dropped.contains_key(obj))
            .map(|(obj, name)| (*obj, name.as_str()))
            .collect()
    }

    /// Rewinds the model to the committed state as of `stop`: entries
    /// with `scn < stop` survive, everything after never happened —
    /// the contract of the engine's `RECOVER DATABASE UNTIL` (incomplete
    /// recovery sacrifices the tail, and only the tail).
    ///
    /// In-flight transactions are discarded too: the server they were
    /// open against is gone.
    pub fn truncate_to(&mut self, stop: Scn) {
        self.log.retain(|e| e.scn < stop);
        self.dropped.retain(|_, scn| *scn < stop);
        self.pending.clear();
        self.state = self.rebuild();
    }

    /// Recomputes the state from scratch: baseline + every log entry, in
    /// order. [`state`](RefModel::state) must always equal this — the
    /// incremental-apply invariant the property tests pin down.
    pub fn rebuild(&self) -> BTreeMap<(ObjectId, RowId), Row> {
        let mut state = self.baseline.clone();
        for entry in &self.log {
            apply(&mut state, &entry.ops);
        }
        state
    }

    /// The committed log, in commit order.
    pub fn log(&self) -> &[LogEntry] {
        &self.log
    }

    /// Whether the log's commit SCNs are strictly increasing — they must
    /// be: the engine hands out commit SCNs monotonically, and incomplete
    /// recovery only ever removes a suffix.
    pub fn scns_strictly_increasing(&self) -> bool {
        self.log.windows(2).all(|w| w[0].scn < w[1].scn)
    }

    /// Commits currently surviving in the log.
    pub fn surviving_commits(&self) -> u64 {
        self.log.len() as u64
    }

    /// Every commit acknowledgement ever observed (not reduced by
    /// [`truncate_to`](RefModel::truncate_to)).
    pub fn acked_commits(&self) -> u64 {
        self.acked_commits
    }

    /// Open (uncommitted) transactions currently buffered.
    pub fn open_txns(&self) -> usize {
        self.pending.len()
    }

    /// Ids of the buffered (uncommitted) transactions, for post-crash
    /// in-doubt resolution.
    pub fn open_txn_ids(&self) -> Vec<TxnId> {
        self.pending.keys().copied().collect()
    }

    /// Resolves a transaction left *in doubt* by a crash: the commit call
    /// errored because the instance died mid-flush, yet the commit marker
    /// may still have reached the durable prefix of the log — in which
    /// case crash recovery replays the whole transaction anyway. The
    /// client heard "error", the database says "committed", and both are
    /// right; only the model has to pick a side.
    ///
    /// Replay is atomic (all of the transaction or none of it), so
    /// probing the recovered engine for the first buffered row effect
    /// decides which happened; the ops are then applied or discarded to
    /// match. Returns `true` if the engine durably committed it.
    ///
    /// `scn` orders the entry in the log if it committed; pass the
    /// engine's post-recovery SCN (commit SCNs are monotone, so it sorts
    /// after everything already logged). A transaction resolved as
    /// committed does **not** count as acknowledged — no ack was heard.
    ///
    /// # Errors
    ///
    /// Fails if the engine cannot be inspected.
    pub fn resolve_in_doubt(
        &mut self,
        server: &DbServer,
        txn: TxnId,
        scn: Scn,
    ) -> DbResult<bool> {
        let Some(ops) = self.pending.remove(&txn) else { return Ok(false) };
        let committed = match ops.first() {
            None => false,
            Some(RowOp::Put { obj, rid, row }) => {
                server.peek_row(*obj, *rid)?.as_ref() == Some(row)
            }
            Some(RowOp::Del { obj, rid }) => server.peek_row(*obj, *rid)?.is_none(),
        };
        if committed {
            apply(&mut self.state, &ops);
            self.log.push(LogEntry { scn, ops });
        }
        Ok(committed)
    }
}

/// Applies committed ops to a state map, last writer wins.
fn apply(state: &mut BTreeMap<(ObjectId, RowId), Row>, ops: &[RowOp]) {
    for op in ops {
        match op {
            RowOp::Put { obj, rid, row } => {
                state.insert((*obj, *rid), row.clone());
            }
            RowOp::Del { obj, rid } => {
                state.remove(&(*obj, *rid));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recobench_engine::row::Value;
    use recobench_engine::types::FileNo;

    fn rid(b: u32, s: u16) -> RowId {
        RowId { file: FileNo(1), block: b, slot: s }
    }

    fn row(v: u64) -> Row {
        Row::new(vec![Value::U64(v)])
    }

    const T: ObjectId = ObjectId(7);

    #[test]
    fn commit_applies_and_rollback_discards() {
        let mut m = RefModel::empty();
        m.observe(&DmlChange::Insert { txn: TxnId(1), obj: T, rid: rid(0, 0), row: row(1) });
        m.observe(&DmlChange::Insert { txn: TxnId(2), obj: T, rid: rid(0, 1), row: row(2) });
        assert!(m.state().is_empty(), "pending writes are invisible");
        m.observe(&DmlChange::Commit { txn: TxnId(1), scn: Scn(10) });
        m.observe(&DmlChange::Rollback { txn: TxnId(2) });
        assert_eq!(m.state().len(), 1);
        assert_eq!(m.state().get(&(T, rid(0, 0))), Some(&row(1)));
        assert_eq!(m.surviving_commits(), 1);
        assert_eq!(m.open_txns(), 0);
    }

    #[test]
    fn truncate_keeps_exactly_the_prefix() {
        let mut m = RefModel::empty();
        for i in 0..5u64 {
            m.observe(&DmlChange::Insert {
                txn: TxnId(i),
                obj: T,
                rid: rid(i as u32, 0),
                row: row(i),
            });
            m.observe(&DmlChange::Commit { txn: TxnId(i), scn: Scn(10 + i) });
        }
        m.truncate_to(Scn(12));
        assert_eq!(m.surviving_commits(), 2, "scn 10 and 11 survive");
        assert_eq!(m.state().len(), 2);
        assert_eq!(m.acked_commits(), 5, "acknowledgements are history, not state");
        assert!(m.scns_strictly_increasing());
    }

    #[test]
    fn drop_table_removes_rows_and_truncate_restores_them() {
        let mut m = RefModel::empty();
        m.observe(&DmlChange::Insert { txn: TxnId(1), obj: T, rid: rid(0, 0), row: row(1) });
        m.observe(&DmlChange::Commit { txn: TxnId(1), scn: Scn(10) });
        m.observe(&DmlChange::DropTable { obj: T, scn: Scn(11) });
        assert!(m.state().is_empty());
        assert!(m.expected_tables().is_empty(), "no baseline tables in this test");
        m.truncate_to(Scn(11));
        assert_eq!(m.state().len(), 1, "the drop never happened");
        assert!(m.scns_strictly_increasing());
    }

    #[test]
    fn state_always_equals_rebuild() {
        let mut m = RefModel::empty();
        m.observe(&DmlChange::Insert { txn: TxnId(1), obj: T, rid: rid(0, 0), row: row(1) });
        m.observe(&DmlChange::Commit { txn: TxnId(1), scn: Scn(1) });
        m.observe(&DmlChange::Update { txn: TxnId(2), obj: T, rid: rid(0, 0), row: row(9) });
        m.observe(&DmlChange::Delete { txn: TxnId(2), obj: T, rid: rid(0, 0) });
        m.observe(&DmlChange::Commit { txn: TxnId(2), scn: Scn(2) });
        assert_eq!(*m.state(), m.rebuild());
        assert!(m.state().is_empty(), "insert, update, delete: net nothing");
    }
}
