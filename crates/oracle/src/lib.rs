//! The RecoBench torture harness: a model-based differential oracle.
//!
//! The paper's dependability measures (lost transactions, integrity
//! violations) are only as trustworthy as the oracle that computes them —
//! and in the base benchmark the engine is its own judge. This crate adds
//! an *independent* judge and a much harder faultload:
//!
//! * [`RefModel`] — a deliberately simple in-memory reference DBMS that
//!   observes the engine's DML tap (`DbServer::set_dml_tap`) and predicts
//!   the exact committed row state the engine must present after any
//!   recovery, complete or incomplete;
//! * [`diff_states`] — the differential check: lost rows, phantom rows,
//!   value mismatches, table-set mismatches, plus the engine's own
//!   heap/index/control-file invariant walkers;
//! * [`TortureRunner`] — executes randomized multi-fault
//!   [`FaultSchedule`]s (all six paper fault types plus raw instance
//!   kills, arbitrary times, faults landing during recovery from earlier
//!   faults) against an engine + model pair;
//! * [`shrink_schedule`] — delta-debugs a failing schedule to a minimal
//!   reproducer, serializable as JSON for the regression corpus under
//!   `tests/corpus/`.
//!
//! What the oracle can prove: every commit the engine acknowledged is
//! present after recovery (minus exactly the tail an incomplete recovery
//! is specified to sacrifice), nothing unacknowledged survives, and the
//! storage structures agree with each other. What it cannot prove:
//! wall-clock performance properties, and anything about state the tap
//! never saw (the model starts from a snapshot taken after the initial
//! load). See DESIGN.md §11.
//!
//! [`FaultSchedule`]: recobench_faults::FaultSchedule

pub mod diff;
pub mod model;
pub mod shrink;
pub mod torture;

pub use diff::{diff_states, Divergence};
pub use model::{LogEntry, RefModel, RowOp};
pub use shrink::shrink_schedule;
pub use torture::{FaultReport, TortureOptions, TortureOutcome, TortureRunner};
